//! End-to-end equivalence: every workload must validate under every flow —
//! the optimizations may only change performance, never results. (The
//! paper's own validation methodology, §VIII.)

use sycl_mlir_repro::benchsuite::{all_workloads, run_workload, Category};
use sycl_mlir_repro::core::FlowKind;

fn check_category(category: Category) {
    for w in all_workloads() {
        if w.category != category {
            continue;
        }
        // Small sizes keep the suite fast; kernels are size-generic.
        let size = match category {
            Category::Polybench => 32,
            Category::SingleKernel => {
                if w.name.starts_with("Sobel") {
                    32
                } else if w.name.starts_with("NBody") {
                    64
                } else {
                    256
                }
            }
            Category::Stencil => w.scaled_size.min(64),
            // Group-aligned (WG = 16) so the dyn nd-range variants take
            // their zero-extent tail launch here too.
            Category::Reduction | Category::Sparse => 64,
        };
        for kind in FlowKind::all() {
            let r = run_workload(&w, size, kind)
                .unwrap_or_else(|e| panic!("{} [{}]: {e}", w.name, kind.name()));
            if kind == FlowKind::AdaptiveCpp && w.acpp_fails {
                assert!(
                    !r.valid,
                    "{} should mirror the paper's ACpp failure",
                    w.name
                );
                continue;
            }
            assert!(r.valid, "{} [{}] failed validation", w.name, kind.name());
            assert!(r.cycles.is_finite() && r.cycles > 0.0);
        }
    }
}

#[test]
fn polybench_validates_under_all_flows() {
    check_category(Category::Polybench);
}

#[test]
fn single_kernel_validates_under_all_flows() {
    check_category(Category::SingleKernel);
}

#[test]
fn stencils_validate_under_all_flows() {
    check_category(Category::Stencil);
}

#[test]
fn reductions_validate_under_all_flows() {
    check_category(Category::Reduction);
}

#[test]
fn sparse_validates_under_all_flows() {
    check_category(Category::Sparse);
}

/// The headline direction of Fig. 3: SYCL-MLIR beats DPC++ decisively on
/// the internalization + reduction workloads and never loses elsewhere by
/// more than noise.
#[test]
fn fig3_shape_holds_at_small_scale() {
    let names_win = ["GEMM", "SYR2K", "SYRK", "Covariance"];
    for name in names_win {
        let w = all_workloads()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        let base = run_workload(&w, w.scaled_size.min(48), FlowKind::Dpcpp).unwrap();
        let sm = run_workload(&w, w.scaled_size.min(48), FlowKind::SyclMlir).unwrap();
        assert!(base.valid && sm.valid);
        let speedup = base.cycles / sm.cycles;
        assert!(
            speedup > 1.2,
            "{name}: expected a clear win, got {speedup:.2}x"
        );
    }
    // SYR2K (4 refs) must beat GEMM (2 refs) — the paper's peak.
    let gemm = all_workloads()
        .into_iter()
        .find(|w| w.name == "GEMM")
        .unwrap();
    let syr2k = all_workloads()
        .into_iter()
        .find(|w| w.name == "SYR2K")
        .unwrap();
    let g = run_workload(&gemm, 48, FlowKind::Dpcpp).unwrap().cycles
        / run_workload(&gemm, 48, FlowKind::SyclMlir).unwrap().cycles;
    let s = run_workload(&syr2k, 48, FlowKind::Dpcpp).unwrap().cycles
        / run_workload(&syr2k, 48, FlowKind::SyclMlir).unwrap().cycles;
    assert!(s > g, "SYR2K ({s:.2}x) should out-speed GEMM ({g:.2}x)");
}

/// Dead-argument elimination translates into cheaper launches under
/// SYCL-MLIR when constants make arguments dead (§VII-B).
#[test]
fn sobel7_constant_filter_pays_off() {
    let w = all_workloads()
        .into_iter()
        .find(|w| w.name == "Sobel7")
        .unwrap();
    let base = run_workload(&w, 32, FlowKind::Dpcpp).unwrap();
    let sm = run_workload(&w, 32, FlowKind::SyclMlir).unwrap();
    assert!(base.valid && sm.valid);
    assert!(
        sm.stats.constant_accesses > 0,
        "filter loads must hit the constant cache under SYCL-MLIR"
    );
    assert!(sm.cycles < base.cycles, "Sobel7 should benefit (§VIII)");
}
