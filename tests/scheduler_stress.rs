//! Randomized hazard-DAG stress testing for the launch scheduler.
//!
//! A seeded generator produces random command-group graphs — shared
//! buffers under every access-mode mix, aliased USM allocations, host
//! tasks, indirect-index gathers through a shared index buffer,
//! barrier-ladder work-group reductions, 1–64 submissions — and executes
//! each one under every scheduler mode (serial chain, level barriers,
//! full out-of-order overlap) at 1 and 4 worker threads, plus the
//! tree-walk reference. Outputs (every buffer
//! and USM allocation, compared bit-for-bit), per-kernel statistics,
//! launch/JIT cycles and the report's cycle totals must be identical
//! everywhere; when the generator injects a failing kernel, all
//! configurations must report the *same* error — the lexicographically
//! first `(submission, work-group)` failure.
//!
//! The deterministic tests at the bottom pin the error contract exactly:
//! divergent barriers and out-of-bounds accesses (panics) injected at
//! known positions in multi-launch graphs.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use std::panic::{catch_unwind, AssertUnwindSafe};
use sycl_mlir_repro::core::FlowKind;
use sycl_mlir_repro::dialects::arith;
use sycl_mlir_repro::frontend::{full_context, KernelModuleBuilder, KernelSig};
use sycl_mlir_repro::runtime::{
    compile_program, hostgen::generate_host_ir, HostOp, Program, Queue, SyclRuntime,
};
use sycl_mlir_repro::sim::{
    decode_kernel, run_plan_graph_report, AccessorVal, CostModel, DataVec, Device, Engine,
    ExecLimits, ExecStats, FaultPlan, FaultSite, HostNode, HostView, JitMode, KernelPlan,
    LaunchDag, LaunchStatus, MemoryPool, NdRangeSpec, PlanLaunch, RtValue, SchedPolicy,
};
use sycl_mlir_repro::sycl::device as sdev;
use sycl_mlir_repro::sycl::types::AccessMode;

const LEN: i64 = 32;

/// One kernel argument of a generated submission: a buffer accessor or a
/// USM allocation (aliasing is the point — several submissions naming the
/// same id exercise the hazard edges).
#[derive(Clone, Copy, Debug)]
enum Arg {
    Buf(usize),
    Usm(usize),
}

/// One generated command group.
#[derive(Clone, Debug)]
enum Sub {
    /// `combine(src read, dst read+write)`.
    Combine {
        src: Arg,
        dst: Arg,
        global: i64,
        local: i64,
    },
    /// `scale_io(a read+write)`.
    ScaleIo { a: Arg, global: i64, local: i64 },
    /// `gather(idx read, src read, dst read+write)` — the sparse-family
    /// indirect-index shape: the subscript into `src` is *loaded* from
    /// the shared index buffer.
    Gather {
        src: Arg,
        dst: Arg,
        global: i64,
        local: i64,
    },
    /// `wg_sum(a read+write)` — the reduction-family shape: a
    /// work-group-local tile plus a barrier ladder; each group replaces
    /// its slice of `a` with the group sum.
    WgSum { a: Arg, global: i64 },
    /// A kernel with work-groups >= 2 stuck at a divergent barrier.
    BadLate { global: i64, local: i64 },
    /// A host task over buffers.
    Host(HostOp),
}

/// The fixed work-group size of `wg_sum` (its barrier ladder is unrolled
/// at build time, so the launch must match).
const WG_SUM_LOCAL: i64 = 8;

/// A fully determined random graph: initial data plus the submission list.
struct GraphSpec {
    bufs: Vec<Vec<f32>>,
    usms: Vec<Vec<f32>>,
    /// The shared index buffer `gather` reads through (in-bounds values;
    /// allocated after the f32 buffers so their ids stay stable).
    idx: Vec<i32>,
    subs: Vec<Sub>,
}

impl GraphSpec {
    fn generate(seed: u64) -> GraphSpec {
        let mut rng = TestRng::new(seed);
        let n_buf = 2 + rng.below(3);
        let n_usm = 1 + rng.below(2);
        let bufs = (0..n_buf)
            .map(|b| {
                (0..LEN)
                    .map(|i| (i as f32) * 0.25 + b as f32)
                    .collect::<Vec<f32>>()
            })
            .collect();
        let usms = (0..n_usm)
            .map(|u| {
                (0..LEN)
                    .map(|i| (i as f32) * 0.5 - u as f32)
                    .collect::<Vec<f32>>()
            })
            .collect();
        let idx = (0..LEN).map(|_| rng.below(LEN as usize) as i32).collect();
        let n_sub = 1 + rng.below(64);
        // ~1 in 8 graphs carries one divergent kernel at a random spot.
        let bad_at = if rng.below(8) == 0 {
            Some(rng.below(n_sub))
        } else {
            None
        };
        let mut subs = Vec::with_capacity(n_sub);
        for s in 0..n_sub {
            if bad_at == Some(s) {
                let local = [4, 8][rng.below(2)];
                subs.push(Sub::BadLate { global: LEN, local });
                continue;
            }
            let arg = |rng: &mut TestRng| -> Arg {
                if rng.below(4) == 0 {
                    Arg::Usm(rng.below(n_usm))
                } else {
                    Arg::Buf(rng.below(n_buf))
                }
            };
            let local = [4, 8][rng.below(2)];
            let global = [8, 16, 32][rng.below(3)].max(local);
            match rng.below(14) {
                0 | 1 => {
                    // Host task (buffers only).
                    let op = match rng.below(3) {
                        0 => HostOp::Scale {
                            buffer: sycl_mlir_repro::runtime::BufferId(rng.below(n_buf)),
                            factor: [0.5, 2.0, 1.5][rng.below(3)],
                        },
                        1 => HostOp::Shift {
                            buffer: sycl_mlir_repro::runtime::BufferId(rng.below(n_buf)),
                            delta: [1.0, -2.0][rng.below(2)],
                        },
                        _ => HostOp::AddInto {
                            dst: sycl_mlir_repro::runtime::BufferId(rng.below(n_buf)),
                            src: sycl_mlir_repro::runtime::BufferId(rng.below(n_buf)),
                        },
                    };
                    subs.push(Sub::Host(op));
                }
                2..=5 => subs.push(Sub::Combine {
                    src: arg(&mut rng),
                    dst: arg(&mut rng),
                    global,
                    local,
                }),
                6 | 7 => {
                    let src = arg(&mut rng);
                    let mut dst = arg(&mut rng);
                    // `gather` reads `src` at data-dependent positions
                    // while writing `dst[gid]`: if both name the same
                    // resource, the result depends on work-item order
                    // *within* the launch. Keep them distinct — aliasing
                    // across launches (the hazard DAG's job) is still
                    // generated freely.
                    match (src, dst) {
                        (Arg::Buf(a), Arg::Buf(b)) if a == b => dst = Arg::Buf((a + 1) % n_buf),
                        (Arg::Usm(a), Arg::Usm(b)) if a == b => dst = Arg::Buf(0),
                        _ => {}
                    }
                    subs.push(Sub::Gather {
                        src,
                        dst,
                        global,
                        local,
                    });
                }
                8 => subs.push(Sub::WgSum {
                    a: arg(&mut rng),
                    global: global.max(WG_SUM_LOCAL),
                }),
                _ => subs.push(Sub::ScaleIo {
                    a: arg(&mut rng),
                    global,
                    local,
                }),
            }
        }
        GraphSpec {
            bufs,
            usms,
            idx,
            subs,
        }
    }

    /// A fresh runtime with the spec's initial data (ids are allocation
    /// order, so every call produces the same id assignment).
    fn runtime(&self) -> SyclRuntime {
        let mut rt = SyclRuntime::new();
        for data in &self.bufs {
            rt.buffer_f32(data.clone(), &[LEN]);
        }
        // The index buffer comes after every f32 buffer so their ids
        // (allocation order) stay stable across the generator history.
        rt.buffer_i32(self.idx.clone(), &[LEN]);
        for data in &self.usms {
            rt.usm_alloc_f32(data.clone());
        }
        rt
    }

    /// The shared index buffer's id (allocated right after the f32
    /// buffers).
    fn idx_buf(&self) -> sycl_mlir_repro::runtime::BufferId {
        sycl_mlir_repro::runtime::BufferId(self.bufs.len())
    }

    /// Record the submissions on a queue.
    fn queue(&self) -> Queue {
        let mut q = Queue::new();
        for sub in &self.subs {
            match *sub {
                Sub::Combine {
                    src,
                    dst,
                    global,
                    local,
                } => {
                    q.submit(|h| {
                        match src {
                            Arg::Buf(b) => {
                                h.accessor(sycl_mlir_repro::runtime::BufferId(b), AccessMode::Read);
                            }
                            Arg::Usm(u) => {
                                h.usm(sycl_mlir_repro::runtime::UsmId(u), LEN);
                            }
                        }
                        match dst {
                            Arg::Buf(b) => {
                                h.accessor(
                                    sycl_mlir_repro::runtime::BufferId(b),
                                    AccessMode::ReadWrite,
                                );
                            }
                            Arg::Usm(u) => {
                                h.usm(sycl_mlir_repro::runtime::UsmId(u), LEN);
                            }
                        }
                        h.parallel_for_nd("combine", &[global], &[local]);
                    });
                }
                Sub::ScaleIo { a, global, local } => {
                    q.submit(|h| {
                        match a {
                            Arg::Buf(b) => {
                                h.accessor(
                                    sycl_mlir_repro::runtime::BufferId(b),
                                    AccessMode::ReadWrite,
                                );
                            }
                            Arg::Usm(u) => {
                                h.usm(sycl_mlir_repro::runtime::UsmId(u), LEN);
                            }
                        }
                        h.parallel_for_nd("scale_io", &[global], &[local]);
                    });
                }
                Sub::Gather {
                    src,
                    dst,
                    global,
                    local,
                } => {
                    q.submit(|h| {
                        h.accessor(self.idx_buf(), AccessMode::Read);
                        match src {
                            Arg::Buf(b) => {
                                h.accessor(sycl_mlir_repro::runtime::BufferId(b), AccessMode::Read);
                            }
                            Arg::Usm(u) => {
                                h.usm(sycl_mlir_repro::runtime::UsmId(u), LEN);
                            }
                        }
                        match dst {
                            Arg::Buf(b) => {
                                h.accessor(
                                    sycl_mlir_repro::runtime::BufferId(b),
                                    AccessMode::ReadWrite,
                                );
                            }
                            Arg::Usm(u) => {
                                h.usm(sycl_mlir_repro::runtime::UsmId(u), LEN);
                            }
                        }
                        h.parallel_for_nd("gather", &[global], &[local]);
                    });
                }
                Sub::WgSum { a, global } => {
                    q.submit(|h| {
                        match a {
                            Arg::Buf(b) => {
                                h.accessor(
                                    sycl_mlir_repro::runtime::BufferId(b),
                                    AccessMode::ReadWrite,
                                );
                            }
                            Arg::Usm(u) => {
                                h.usm(sycl_mlir_repro::runtime::UsmId(u), LEN);
                            }
                        }
                        h.parallel_for_nd("wg_sum", &[global], &[WG_SUM_LOCAL]);
                    });
                }
                Sub::BadLate { global, local } => {
                    q.submit(|h| h.parallel_for_nd("bad_late", &[global], &[local]));
                }
                Sub::Host(op) => {
                    q.submit(|h| h.host_task(op));
                }
            }
        }
        q
    }
}

/// Build the kernel module every generated graph uses (three templates).
fn build_module(rt: &SyclRuntime, q: &Queue) -> sycl_mlir_repro::ir::Module {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f32t = ctx.f32_type();

    // combine: dst[g] = dst[g] * 0.75 + src[g] * 0.5 + 0.25
    let sig = KernelSig::new("combine", 1, true)
        .accessor(f32t.clone(), 1, AccessMode::Read)
        .accessor(f32t.clone(), 1, AccessMode::ReadWrite);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::global_id(b, item, 0);
        let va = sdev::load_via_id(b, args[0], &[gid]);
        let vb = sdev::load_via_id(b, args[1], &[gid]);
        let f32t = b.ctx().f32_type();
        let c0 = arith::constant_float(b, 0.75, f32t.clone());
        let c1 = arith::constant_float(b, 0.5, f32t.clone());
        let c2 = arith::constant_float(b, 0.25, f32t);
        let t = arith::mulf(b, vb, c0);
        let u = arith::mulf(b, va, c1);
        let s = arith::addf(b, t, u);
        let s2 = arith::addf(b, s, c2);
        sdev::store_via_id(b, s2, args[1], &[gid]);
    });

    // scale_io: a[g] = a[g] * 0.5 + 3.0
    let sig = KernelSig::new("scale_io", 1, true).accessor(f32t.clone(), 1, AccessMode::ReadWrite);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::global_id(b, item, 0);
        let v = sdev::load_via_id(b, args[0], &[gid]);
        let f32t = b.ctx().f32_type();
        let c0 = arith::constant_float(b, 0.5, f32t.clone());
        let c1 = arith::constant_float(b, 3.0, f32t);
        let t = arith::mulf(b, v, c0);
        let s = arith::addf(b, t, c1);
        sdev::store_via_id(b, s, args[0], &[gid]);
    });

    // gather: dst[g] += src[idx[g]] — the sparse-family indirect-index
    // shape (the subscript is loaded, widened with index_cast, and used
    // unmasked: the shared index buffer carries in-bounds values in the
    // random graphs; the OOB pin below feeds it out-of-bounds ones).
    let sig = KernelSig::new("gather", 1, true)
        .accessor(ctx.i32_type(), 1, AccessMode::Read)
        .accessor(f32t.clone(), 1, AccessMode::Read)
        .accessor(f32t.clone(), 1, AccessMode::ReadWrite);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::global_id(b, item, 0);
        let raw = sdev::load_via_id(b, args[0], &[gid]);
        let index_ty = b.ctx().index_type();
        let j = arith::index_cast(b, raw, index_ty);
        let v = sdev::load_via_id(b, args[1], &[j]);
        let d = sdev::load_via_id(b, args[2], &[gid]);
        let s = arith::addf(b, d, v);
        sdev::store_via_id(b, s, args[2], &[gid]);
    });

    // wg_sum: each work-group replaces its slice of `a` with the group
    // sum — the reduction-family shape (local tile + barrier ladder,
    // unrolled for WG_SUM_LOCAL). Every group touches only its own
    // slice, so the result is schedule-independent even when launches
    // alias.
    let sig = KernelSig::new("wg_sum", 1, true).accessor(f32t.clone(), 1, AccessMode::ReadWrite);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::global_id(b, item, 0);
        let lid = sdev::local_id(b, item, 0);
        let g = sdev::get_group(b, item);
        let f32t = b.ctx().f32_type();
        let tile = sdev::local_alloca(b, f32t, &[WG_SUM_LOCAL]);
        let v = sdev::load_via_id(b, args[0], &[gid]);
        sycl_mlir_repro::dialects::memref::store(b, v, tile, &[lid]);
        sdev::group_barrier(b, g);
        let mut stride = WG_SUM_LOCAL / 2;
        while stride >= 1 {
            let s = arith::constant_index(b, stride);
            let active = arith::cmpi(b, "slt", lid, s);
            sycl_mlir_repro::dialects::scf::build_if(
                b,
                active,
                &[],
                |inner| {
                    let lo = sycl_mlir_repro::dialects::memref::load(inner, tile, &[lid]);
                    let partner = arith::addi(inner, lid, s);
                    let hi = sycl_mlir_repro::dialects::memref::load(inner, tile, &[partner]);
                    let sum = arith::addf(inner, lo, hi);
                    sycl_mlir_repro::dialects::memref::store(inner, sum, tile, &[lid]);
                    vec![]
                },
                |_| vec![],
            );
            sdev::group_barrier(b, g);
            stride /= 2;
        }
        let zero = arith::constant_index(b, 0);
        let total = sycl_mlir_repro::dialects::memref::load(b, tile, &[zero]);
        sdev::store_via_id(b, total, args[0], &[gid]);
    });

    // bad_late: work-groups >= 2 hit a divergent barrier (only the group
    // leader reaches it).
    let sig = KernelSig::new("bad_late", 1, true);
    kb.add_kernel(&sig, |b, _args, item| {
        divergent_from(b, item, 2);
    });

    generate_host_ir(kb.module(), rt, q);
    kb.finish()
}

/// Emit "if (local_id == 0 && group_id >= from) barrier" — a divergent
/// barrier for every group at or past `from`.
fn divergent_from(
    b: &mut sycl_mlir_repro::ir::Builder<'_>,
    item: sycl_mlir_repro::ir::ValueId,
    from: i64,
) {
    let lid = sdev::local_id(b, item, 0);
    let gid = sdev::group_id(b, item, 0);
    let zero = arith::constant_index(b, 0);
    let thr = arith::constant_index(b, from);
    let leader = arith::cmpi(b, "eq", lid, zero);
    let late = arith::cmpi(b, "sge", gid, thr);
    let cond = b.build_value("arith.andi", &[leader, late], b.ctx().i1_type(), vec![]);
    let g = sdev::get_group(b, item);
    sycl_mlir_repro::dialects::scf::build_if(
        b,
        cond,
        &[],
        |inner| {
            sdev::group_barrier(inner, g);
            vec![]
        },
        |_| vec![],
    );
}

/// Every observable of one run: the report table plus final memory.
type Observation = Result<
    (
        Vec<(String, ExecStats, u64, u64)>,
        u64,
        Vec<Vec<u32>>,
        Vec<Vec<u32>>,
    ),
    String,
>;

fn observe(spec: &GraphSpec, program: &mut Program, q: &Queue, device: &Device) -> Observation {
    let mut rt = spec.runtime();
    let report = sycl_mlir_repro::runtime::exec::run(program, &mut rt, q, device)
        .map_err(|e| e.to_string())?;
    let rows = report
        .kernel_runs
        .iter()
        .map(|k| {
            (
                k.kernel.clone(),
                k.stats.clone(),
                k.launch_cycles.to_bits(),
                k.jit_cycles.to_bits(),
            )
        })
        .collect();
    let cycles = report.measured_cycles().to_bits();
    let bufs = (0..spec.bufs.len())
        .map(|b| {
            rt.read_f32(sycl_mlir_repro::runtime::BufferId(b))
                .iter()
                .map(|x| x.to_bits())
                .collect()
        })
        .collect();
    let usms = (0..spec.usms.len())
        .map(|u| {
            rt.usm_read_f32(sycl_mlir_repro::runtime::UsmId(u))
                .iter()
                .map(|x| x.to_bits())
                .collect()
        })
        .collect();
    Ok((rows, cycles, bufs, usms))
}

/// The scheduler-mode × thread-count sweep every graph runs under.
fn configs() -> Vec<(&'static str, Device)> {
    let plan = |threads, batch, overlap| {
        Device::with_engine(Engine::Plan)
            .threads(threads)
            .batch(batch)
            .overlap(overlap)
    };
    vec![
        (
            "tree-serial",
            Device::with_engine(Engine::TreeWalk)
                .threads(1)
                .batch(false)
                .overlap(false),
        ),
        ("serial-t1", plan(1, false, false)),
        ("serial-t4", plan(4, false, false)),
        ("level-t1", plan(1, true, false)),
        ("level-t4", plan(4, true, false)),
        ("overlap-t1", plan(1, true, true)),
        ("overlap-t4", plan(4, true, true)),
        // The closure-JIT axis: both extremes of the third execution
        // tier must observe every graph identically to the bytecode
        // loop (the unpinned configs above follow the environment, so
        // these two keep the differential meaningful either way).
        ("jit-always-t1", plan(1, true, true).jit(JitMode::Always)),
        ("jit-always-t4", plan(4, true, true).jit(JitMode::Always)),
        ("jit-off-t4", plan(4, true, true).jit(JitMode::Off)),
        // The host-node axis: host tasks as first-class graph nodes (the
        // default above) vs the legacy segmented schedule that drains the
        // graph around every host task — bit-identical buffers, reports
        // and failure positions either way.
        ("segmented-t1", plan(1, true, true).host_nodes(false)),
        ("segmented-t4", plan(4, true, true).host_nodes(false)),
        // The ready-set policy axis: FIFO publication order vs the
        // critical-path default — ordering moves wall time only.
        ("fifo-t4", plan(4, true, true).sched(SchedPolicy::Fifo)),
        (
            "segmented-fifo-t4",
            plan(4, true, false)
                .host_nodes(false)
                .sched(SchedPolicy::Fifo),
        ),
    ]
}

/// One graph's full differential round trip.
fn check_graph(seed: u64) {
    let spec = GraphSpec::generate(seed);
    let q = spec.queue();
    let rt0 = spec.runtime();
    let module = build_module(&rt0, &q);
    let mut program = compile_program(FlowKind::SyclMlir, module).expect("compiles");

    let mut reference: Option<(&'static str, Observation)> = None;
    for (name, device) in configs() {
        let got = observe(&spec, &mut program, &q, &device);
        match &reference {
            None => reference = Some((name, got)),
            Some((ref_name, want)) => {
                assert_eq!(
                    want,
                    &got,
                    "seed {seed}: `{name}` diverges from `{ref_name}` \
                     ({} submissions)",
                    spec.subs.len()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// ~200 random hazard DAGs: identical outputs, statistics, report
    /// tables — or identical errors — under every scheduler mode and
    /// thread count.
    #[test]
    fn random_graphs_bit_identical_across_schedulers(seed in 0u64..u64::MAX) {
        check_graph(seed);
    }
}

/// The generated population must actually cover the interesting shapes —
/// host tasks, USM aliases, failing kernels, long queues — otherwise the
/// property above quietly degenerates.
#[test]
fn generator_population_covers_the_interesting_shapes() {
    let (mut hosts, mut usm_args, mut bads, mut long) = (0, 0, 0, 0);
    let (mut gathers, mut wg_sums) = (0, 0);
    for seed in 0..200_u64 {
        let spec = GraphSpec::generate(seed * 65_537 + 7);
        if spec.subs.len() >= 32 {
            long += 1;
        }
        for sub in &spec.subs {
            match sub {
                Sub::Host(_) => hosts += 1,
                Sub::BadLate { .. } => bads += 1,
                Sub::Combine { src, dst, .. } => {
                    if matches!(src, Arg::Usm(_)) || matches!(dst, Arg::Usm(_)) {
                        usm_args += 1;
                    }
                }
                Sub::Gather { src, dst, .. } => {
                    gathers += 1;
                    if matches!(src, Arg::Usm(_)) || matches!(dst, Arg::Usm(_)) {
                        usm_args += 1;
                    }
                }
                Sub::WgSum { a, .. } => {
                    wg_sums += 1;
                    if matches!(a, Arg::Usm(_)) {
                        usm_args += 1;
                    }
                }
                Sub::ScaleIo { a: Arg::Usm(_), .. } => usm_args += 1,
                Sub::ScaleIo { .. } => {}
            }
        }
    }
    assert!(hosts > 100, "host tasks underrepresented: {hosts}");
    assert!(usm_args > 100, "USM arguments underrepresented: {usm_args}");
    assert!(bads > 5, "failing kernels underrepresented: {bads}");
    assert!(long > 10, "long queues underrepresented: {long}");
    assert!(
        gathers > 100,
        "indirect-index kernels underrepresented: {gathers}"
    );
    assert!(
        wg_sums > 50,
        "reduction-family kernels underrepresented: {wg_sums}"
    );
}

// ----------------------------------------------------------------------
// Deterministic error-ordering pins
// ----------------------------------------------------------------------

/// Build a module with `scale_io`, the divergent `bad_late` and an
/// out-of-bounds `oob` kernel, submit the given kernel names in order
/// over one shared buffer, and return each configuration's failure text.
/// A `fault` plan, when given, is injected into every configuration's
/// device.
fn run_error_graph(kernels: &[&str], fault: Option<FaultPlan>) -> Vec<(String, String)> {
    let build = || {
        let ctx = full_context();
        let mut kb = KernelModuleBuilder::new(&ctx);
        let f32t = ctx.f32_type();
        let sig =
            KernelSig::new("scale_io", 1, true).accessor(f32t.clone(), 1, AccessMode::ReadWrite);
        kb.add_kernel(&sig, |b, args, item| {
            let gid = sdev::global_id(b, item, 0);
            let v = sdev::load_via_id(b, args[0], &[gid]);
            let f32t = b.ctx().f32_type();
            let c = arith::constant_float(b, 0.5, f32t);
            let t = arith::mulf(b, v, c);
            sdev::store_via_id(b, t, args[0], &[gid]);
        });
        let sig = KernelSig::new("bad_late", 1, true);
        kb.add_kernel(&sig, |b, _args, item| divergent_from(b, item, 2));
        // oob: stores to gid + 1000 — an out-of-bounds panic in every
        // work-group.
        let sig = KernelSig::new("oob", 1, true).accessor(f32t, 1, AccessMode::Write);
        kb.add_kernel(&sig, |b, args, item| {
            let gid = sdev::global_id(b, item, 0);
            let big = arith::constant_index(b, 1000);
            let idx = arith::addi(b, gid, big);
            let f32t = b.ctx().f32_type();
            let v = arith::constant_float(b, 1.0, f32t);
            sdev::store_via_id(b, v, args[0], &[idx]);
        });
        kb
    };

    let mut out = Vec::new();
    for (name, device) in configs() {
        let device = match fault {
            Some(f) => device.fault(f),
            None => device,
        };
        let mut rt = SyclRuntime::new();
        let buf = rt.buffer_f32(vec![1.0; LEN as usize], &[LEN]);
        let mut q = Queue::new();
        for k in kernels {
            q.submit(|h| {
                if *k != "bad_late" {
                    h.accessor(buf, AccessMode::ReadWrite);
                }
                h.parallel_for_nd(k, &[LEN], &[8]);
            });
        }
        let mut kb = build();
        generate_host_ir(kb.module(), &rt, &q);
        let module = kb.finish();
        let mut program = compile_program(FlowKind::SyclMlir, module).expect("compiles");
        let failure = match catch_unwind(AssertUnwindSafe(|| {
            sycl_mlir_repro::runtime::exec::run(&mut program, &mut rt, &q, &device)
        })) {
            Ok(Ok(_)) => panic!("`{name}`: expected the graph to fail"),
            Ok(Err(e)) => format!("error: {e}"),
            Err(payload) => {
                let text = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "<opaque panic>".into());
                format!("panic: {text}")
            }
        };
        out.push((name.to_string(), failure));
    }
    out
}

/// All scheduler modes and thread counts must report launch 1's group 2 —
/// the lexicographically first divergent barrier — even though launch 3
/// diverges everywhere (including its group 0).
#[test]
fn divergent_barrier_position_is_mode_independent() {
    let results = run_error_graph(&["scale_io", "bad_late", "scale_io", "bad_late"], None);
    let (ref_name, want) = &results[0];
    assert!(
        want.contains("divergent barrier") && want.contains("[2, 0, 0]"),
        "`{ref_name}` reported: {want}"
    );
    for (name, got) in &results[1..] {
        assert_eq!(got, want, "`{name}` diverges from `{ref_name}`");
    }
}

/// An out-of-bounds access in launch 1 must win over a divergent barrier
/// in launch 2, in every mode — and surface as the same *structured
/// error* text: kernel-reachable out-of-bounds is a `SimError`, not a
/// panic, under every engine.
#[test]
fn oob_error_position_is_mode_independent() {
    let results = run_error_graph(&["scale_io", "oob", "bad_late"], None);
    let (ref_name, want) = &results[0];
    assert!(
        want.starts_with("error:") && want.contains("out of bounds"),
        "`{ref_name}` reported: {want}"
    );
    for (name, got) in &results[1..] {
        assert_eq!(got, want, "`{name}` diverges from `{ref_name}`");
    }
}

/// The mirror ordering: a divergent barrier in launch 1 must win over an
/// out-of-bounds panic in launch 3, in every mode.
#[test]
fn earlier_divergence_beats_later_oob_panic() {
    let results = run_error_graph(&["scale_io", "bad_late", "scale_io", "oob"], None);
    let (ref_name, want) = &results[0];
    assert!(
        want.contains("divergent barrier") && want.contains("[2, 0, 0]"),
        "`{ref_name}` reported: {want}"
    );
    for (name, got) in &results[1..] {
        assert_eq!(got, want, "`{name}` diverges from `{ref_name}`");
    }
}

/// An out-of-bounds access reached through a **fuzzed gather** — the
/// faulting index is data (loaded out of the index buffer), not a
/// static subscript — must surface as the identical structured error at
/// the identical `(launch, group)` position under every engine
/// (tree walk, plan bytecode, closure JIT), scheduler mode and thread
/// count. The index data comes from a seeded rng over a range that
/// overruns the buffer, exactly how a fuzzer would feed it.
#[test]
fn fuzzed_gather_oob_position_is_engine_independent() {
    // Fuzzed indices in 0..48 over a length-32 buffer: some overrun.
    let mut rng = TestRng::new(0xFEED);
    let idx: Vec<i32> = (0..LEN).map(|_| rng.below(48) as i32).collect();
    let first_oob = idx.iter().position(|&j| j >= LEN as i32);
    assert!(
        first_oob.is_some(),
        "the fuzzed index data must contain an out-of-bounds entry"
    );

    let mut results = Vec::new();
    for (name, device) in configs() {
        let mut rt = SyclRuntime::new();
        let src = rt.buffer_f32(vec![1.0; LEN as usize], &[LEN]);
        let dst = rt.buffer_f32(vec![0.0; LEN as usize], &[LEN]);
        let idx_buf = rt.buffer_i32(idx.clone(), &[LEN]);
        let mut q = Queue::new();
        // A clean launch first, then the faulting gather, then another
        // clean launch the failure bound must prune consistently.
        q.submit(|h| {
            h.accessor(src, AccessMode::ReadWrite);
            h.parallel_for_nd("scale_io", &[LEN], &[8]);
        });
        q.submit(|h| {
            h.accessor(idx_buf, AccessMode::Read);
            h.accessor(src, AccessMode::Read);
            h.accessor(dst, AccessMode::ReadWrite);
            h.parallel_for_nd("gather", &[LEN], &[8]);
        });
        q.submit(|h| {
            h.accessor(dst, AccessMode::ReadWrite);
            h.parallel_for_nd("scale_io", &[LEN], &[8]);
        });

        let ctx = full_context();
        let mut kb = KernelModuleBuilder::new(&ctx);
        let f32t = ctx.f32_type();
        let sig =
            KernelSig::new("scale_io", 1, true).accessor(f32t.clone(), 1, AccessMode::ReadWrite);
        kb.add_kernel(&sig, |b, args, item| {
            let gid = sdev::global_id(b, item, 0);
            let v = sdev::load_via_id(b, args[0], &[gid]);
            let f32t = b.ctx().f32_type();
            let c = arith::constant_float(b, 0.5, f32t);
            let t = arith::mulf(b, v, c);
            sdev::store_via_id(b, t, args[0], &[gid]);
        });
        let sig = KernelSig::new("gather", 1, true)
            .accessor(ctx.i32_type(), 1, AccessMode::Read)
            .accessor(f32t.clone(), 1, AccessMode::Read)
            .accessor(f32t, 1, AccessMode::ReadWrite);
        kb.add_kernel(&sig, |b, args, item| {
            let gid = sdev::global_id(b, item, 0);
            let raw = sdev::load_via_id(b, args[0], &[gid]);
            let index_ty = b.ctx().index_type();
            let j = arith::index_cast(b, raw, index_ty);
            let v = sdev::load_via_id(b, args[1], &[j]);
            let d = sdev::load_via_id(b, args[2], &[gid]);
            let s = arith::addf(b, d, v);
            sdev::store_via_id(b, s, args[2], &[gid]);
        });
        generate_host_ir(kb.module(), &rt, &q);
        let module = kb.finish();
        let mut program = compile_program(FlowKind::SyclMlir, module).expect("compiles");
        let err = sycl_mlir_repro::runtime::exec::run(&mut program, &mut rt, &q, &device)
            .expect_err("the fuzzed gather must fail");
        results.push((name, err.to_string()));
    }

    let (ref_name, want) = &results[0];
    assert!(
        want.contains("out of bounds"),
        "`{ref_name}` reported: {want}"
    );
    for (name, got) in &results[1..] {
        assert_eq!(got, want, "`{name}` diverges from `{ref_name}`");
    }
}

// ----------------------------------------------------------------------
// Fault injection
// ----------------------------------------------------------------------

/// Decode the `scale_io` template into a standalone kernel plan for the
/// direct graph-report tests below.
fn decoded_scale_plan() -> KernelPlan {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f32t = ctx.f32_type();
    let sig = KernelSig::new("scale_io", 1, true).accessor(f32t, 1, AccessMode::ReadWrite);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::global_id(b, item, 0);
        let v = sdev::load_via_id(b, args[0], &[gid]);
        let f32t = b.ctx().f32_type();
        let c0 = arith::constant_float(b, 0.5, f32t.clone());
        let c1 = arith::constant_float(b, 3.0, f32t);
        let t = arith::mulf(b, v, c0);
        let s = arith::addf(b, t, c1);
        sdev::store_via_id(b, s, args[0], &[gid]);
    });
    let m = kb.finish();
    let dev = m
        .lookup_symbol(m.top(), sycl_mlir_repro::sycl::DEVICE_MODULE_SYM)
        .expect("device module");
    let op = m.lookup_symbol(dev, "scale_io").expect("kernel symbol");
    decode_kernel(&m, op).expect("scale_io decodes")
}

/// One graph-report run of the fault-injection shape: a `0 -> 1 -> 2`
/// chain over buffer A plus an independent launch 3 over buffer B.
/// Returns the report and the final bits of both buffers.
fn fault_shape_run(
    plan: &KernelPlan,
    threads: usize,
    limits: &ExecLimits,
) -> (sycl_mlir_repro::sim::GraphReport, Vec<u32>, Vec<u32>) {
    let nd = NdRangeSpec::d1(LEN, 8);
    let acc = |mem| {
        RtValue::Accessor(AccessorVal {
            mem,
            range: [LEN, 1, 1],
            offset: [0, 0, 0],
            rank: 1,
            constant: false,
        })
    };
    let mut pool = MemoryPool::new();
    let ma = pool.alloc(DataVec::F32((0..LEN).map(|i| i as f32).collect()));
    let mb = pool.alloc(DataVec::F32((0..LEN).map(|i| 0.125 * i as f32).collect()));
    let args_a = [acc(ma)];
    let args_b = [acc(mb)];
    let launches = [
        PlanLaunch::kernel(plan, &args_a, nd),
        PlanLaunch::kernel(plan, &args_a, nd),
        PlanLaunch::kernel(plan, &args_a, nd),
        PlanLaunch::kernel(plan, &args_b, nd),
    ];
    let dag = LaunchDag::from_edges(4, &[(0, 1), (1, 2)]);
    let report = run_plan_graph_report(
        &launches,
        &dag,
        &mut pool,
        &CostModel::default(),
        threads,
        false,
        limits,
        SchedPolicy::default(),
    )
    .expect("well-formed graph");
    let bits = |mem| {
        let DataVec::F32(f) = pool.data(mem) else {
            panic!("f32 buffer")
        };
        f.iter().map(|x| x.to_bits()).collect::<Vec<u32>>()
    };
    let (ba, bb) = (bits(ma), bits(mb));
    (report, ba, bb)
}

/// Injected faults — decode, claim-site, instruction-count — fail their
/// launch with the pinned error at a deterministic work-group, cancel
/// every transitive successor with the root cause, and leave independent
/// launches bit-identical to a clean run, at every thread count.
#[test]
fn injected_fault_cancels_successors_and_spares_independents() {
    let plan = decoded_scale_plan();
    for threads in [1_usize, 4] {
        let (clean, clean_a, clean_b) = fault_shape_run(&plan, threads, &ExecLimits::none());
        assert!(
            clean.statuses.iter().all(|s| *s == LaunchStatus::Completed),
            "clean run must complete everywhere (threads={threads})"
        );
        for site in [FaultSite::Decode, FaultSite::Claim(2), FaultSite::Instr(7)] {
            let fault = FaultPlan { launch: 0, site };
            let limits = ExecLimits {
                fault: Some(fault),
                ..ExecLimits::none()
            };
            let (report, faulted_a, faulted_b) = fault_shape_run(&plan, threads, &limits);
            let want_group = match site {
                FaultSite::Claim(g) => g as usize,
                _ => 0,
            };
            match &report.statuses[0] {
                LaunchStatus::Failed { group, error } => {
                    // The recorded error is the raw fault text stamped
                    // with its `(launch, group)` position.
                    assert_eq!(
                        error.message(),
                        format!(
                            "{} (launch 0, work-group {want_group})",
                            fault.error().message()
                        ),
                        "threads={threads} {site:?}: wrong error"
                    );
                    assert_eq!(
                        *group, want_group,
                        "threads={threads} {site:?}: wrong failing group"
                    );
                }
                other => panic!("threads={threads} {site:?}: launch 0 reported {other:?}"),
            }
            // Transitive successors are cancelled with the root cause and
            // report zeroed statistics.
            for li in [1, 2] {
                assert_eq!(
                    report.statuses[li],
                    LaunchStatus::Cancelled { cause: 0 },
                    "threads={threads} {site:?}: launch {li} not cancelled"
                );
                assert_eq!(report.stats[li].work_groups, 0);
                assert_eq!(report.stats[li].work_items, 0);
            }
            // The independent launch completes bit-identically to the
            // clean run: same statistics, same final buffer bits.
            assert_eq!(report.statuses[3], LaunchStatus::Completed);
            assert_eq!(
                report.stats[3], clean.stats[3],
                "threads={threads} {site:?}: independent launch stats diverge"
            );
            assert_eq!(
                faulted_b, clean_b,
                "threads={threads} {site:?}: independent buffer diverges"
            );
            // Buffer A saw at most the faulted launch's partial groups —
            // never launch 1's or 2's writes. The decode fault runs no
            // group at all, so A must be untouched; all clean-run values
            // differ from the initial ones, so equality would be a leak.
            if site == FaultSite::Decode {
                let initial: Vec<u32> = (0..LEN).map(|i| (i as f32).to_bits()).collect();
                assert_eq!(faulted_a, initial, "decode fault must run no group");
                assert_ne!(clean_a, initial);
            }
            // The lexicographic first-failure bound.
            let (fl, fg, _) = report.first_failure().expect("a failure is recorded");
            assert_eq!((fl, fg), (0, want_group), "threads={threads} {site:?}");
        }
    }
}

/// An injected fault must surface as the same pinned error text under
/// every scheduler mode, thread count and engine — even when a later
/// independent launch also fails (the lexicographic bound holds for
/// faults too).
#[test]
fn injected_fault_position_is_mode_independent() {
    let fault = FaultPlan {
        launch: 1,
        site: FaultSite::Claim(1),
    };
    let results = run_error_graph(&["scale_io", "scale_io", "bad_late"], Some(fault));
    let (ref_name, want) = &results[0];
    assert_eq!(
        want,
        &format!(
            "error: simulation error: {} (launch 1, work-group 1)",
            fault.error().message()
        ),
        "`{ref_name}` must report the pinned fault text"
    );
    for (name, got) in &results[1..] {
        assert_eq!(got, want, "`{name}` diverges from `{ref_name}`");
    }
}

// ----------------------------------------------------------------------
// Host tasks in the failure-position contract
// ----------------------------------------------------------------------

/// The scheduler-mode sweep for the host-task pins below: the tree-walk
/// reference plus the plan engine under batch on/off × threads 1/4 ×
/// host-nodes on/off (the segmented legacy schedule and the one-graph
/// default must be indistinguishable through every observable).
fn host_configs() -> Vec<(String, Device)> {
    let mut cfgs = vec![
        (
            "tree-serial".to_string(),
            Device::with_engine(Engine::TreeWalk)
                .threads(1)
                .batch(false)
                .overlap(false),
        ),
        (
            "tree-serial-segmented".to_string(),
            Device::with_engine(Engine::TreeWalk)
                .threads(1)
                .batch(false)
                .overlap(false)
                .host_nodes(false),
        ),
    ];
    for host_nodes in [true, false] {
        for batch in [false, true] {
            for threads in [1_usize, 4] {
                cfgs.push((
                    format!("plan-hn{host_nodes}-batch{batch}-t{threads}"),
                    Device::with_engine(Engine::Plan)
                        .threads(threads)
                        .batch(batch)
                        .overlap(true)
                        .host_nodes(host_nodes),
                ));
            }
        }
    }
    cfgs
}

/// Build the two-kernel module (`scale_io`, `bad_late`) the host-task
/// pins below run, for the given runtime + queue.
fn host_pin_module(rt: &SyclRuntime, q: &Queue) -> sycl_mlir_repro::ir::Module {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f32t = ctx.f32_type();
    let sig = KernelSig::new("scale_io", 1, true).accessor(f32t, 1, AccessMode::ReadWrite);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::global_id(b, item, 0);
        let v = sdev::load_via_id(b, args[0], &[gid]);
        let f32t = b.ctx().f32_type();
        let c = arith::constant_float(b, 0.5, f32t);
        let t = arith::mulf(b, v, c);
        sdev::store_via_id(b, t, args[0], &[gid]);
    });
    let sig = KernelSig::new("bad_late", 1, true);
    kb.add_kernel(&sig, |b, _args, item| divergent_from(b, item, 2));
    generate_host_ir(kb.module(), rt, q);
    kb.finish()
}

/// **The PR 9 re-stamping regression pin.** A divergent kernel submitted
/// *after* a host task must report its **submission-order** `(launch,
/// work-group)` position — under batch on/off, threads 1/4, host nodes
/// on/off and both engines. Under the segmented legacy schedule the
/// divergent kernel is launch 0 *of its segment*; the old code re-stamped
/// only `LimitExceeded` errors with the submission index, so every other
/// error kind (this divergent barrier included) leaked the segment-local
/// position. All modes must agree on `(launch 2, work-group 2)`.
#[test]
fn divergent_kernel_after_host_task_reports_submission_position() {
    let mut results = Vec::new();
    for (name, device) in host_configs() {
        let mut rt = SyclRuntime::new();
        let buf = rt.buffer_f32(vec![1.0; LEN as usize], &[LEN]);
        let mut q = Queue::new();
        // Submission 0: a clean kernel. 1: a host task (the segmentation
        // point under host-nodes off). 2: the divergent kernel — segment-
        // locally launch 0. 3: a clean kernel pruned by the failure.
        q.submit(|h| {
            h.accessor(buf, AccessMode::ReadWrite);
            h.parallel_for_nd("scale_io", &[LEN], &[8]);
        });
        q.submit(|h| {
            h.host_task(HostOp::Scale {
                buffer: buf,
                factor: 2.0,
            })
        });
        q.submit(|h| h.parallel_for_nd("bad_late", &[LEN], &[8]));
        q.submit(|h| {
            h.accessor(buf, AccessMode::ReadWrite);
            h.parallel_for_nd("scale_io", &[LEN], &[8]);
        });
        let module = host_pin_module(&rt, &q);
        let mut program = compile_program(FlowKind::SyclMlir, module).expect("compiles");
        let err = sycl_mlir_repro::runtime::exec::run(&mut program, &mut rt, &q, &device)
            .expect_err("the divergent kernel must fail the run");
        results.push((name, err.to_string()));
    }
    let (ref_name, want) = &results[0];
    assert!(
        want.contains("divergent barrier") && want.contains("(launch 2, work-group 2)"),
        "`{ref_name}` must report the submission-order position, got: {want}"
    );
    for (name, got) in &results[1..] {
        assert_eq!(got, want, "`{name}` diverges from `{ref_name}`");
    }
}

/// A type-mismatched host `AddInto` surfaces as a **structured
/// [`SimError`]** with pinned text and the submission position — not as
/// the raw panic that used to escape `run_host_op` — in both host-node
/// modes and at every thread count; and the device stays usable for the
/// next run.
#[test]
fn host_addinto_type_mismatch_is_a_structured_error() {
    for (name, device) in host_configs() {
        let mut rt = SyclRuntime::new();
        let dst = rt.buffer_f32(vec![1.0; LEN as usize], &[LEN]);
        let src = rt.buffer_i32(vec![3; LEN as usize], &[LEN]);
        let mut q = Queue::new();
        q.submit(|h| {
            h.accessor(dst, AccessMode::ReadWrite);
            h.parallel_for_nd("scale_io", &[LEN], &[8]);
        });
        q.submit(|h| h.host_task(HostOp::AddInto { dst, src }));
        let module = host_pin_module(&rt, &q);
        let mut program = compile_program(FlowKind::SyclMlir, module).expect("compiles");
        let err = catch_unwind(AssertUnwindSafe(|| {
            sycl_mlir_repro::runtime::exec::run(&mut program, &mut rt, &q, &device)
        }))
        .unwrap_or_else(|_| panic!("`{name}`: the mismatch must not escape as a panic"))
        .expect_err("the mismatched AddInto must fail the run");
        assert_eq!(
            err.to_string(),
            "simulation error: host AddInto over mismatched element types i32 -> f32 \
             (launch 1, work-group 0)",
            "`{name}`: wrong error"
        );

        // The failure is contained: the same device runs the next
        // (well-typed) program cleanly.
        let mut rt2 = SyclRuntime::new();
        let ok = rt2.buffer_f32(vec![4.0; LEN as usize], &[LEN]);
        let mut q2 = Queue::new();
        q2.submit(|h| {
            h.accessor(ok, AccessMode::ReadWrite);
            h.parallel_for_nd("scale_io", &[LEN], &[8]);
        });
        q2.submit(|h| {
            h.host_task(HostOp::Shift {
                buffer: ok,
                delta: 1.0,
            })
        });
        let module2 = host_pin_module(&rt2, &q2);
        let mut program2 = compile_program(FlowKind::SyclMlir, module2).expect("compiles");
        sycl_mlir_repro::runtime::exec::run(&mut program2, &mut rt2, &q2, &device)
            .unwrap_or_else(|e| panic!("`{name}`: device unusable after the mismatch: {e}"));
        assert_eq!(rt2.read_f32(ok)[0], 3.0, "`{name}`: 4.0 * 0.5 + 1.0");
    }
}

/// An injected fault targeting a **host node** fails it at its single
/// logical work-group with the pinned fault text and cascades the
/// cancellation to every dependent launch — at every fault site, thread
/// count and ready-set policy (graph-level; host-nodes mode is what puts
/// the host task in the graph at all).
#[test]
fn injected_fault_on_host_node_cascades_to_successors() {
    let plan = decoded_scale_plan();
    let nd = NdRangeSpec::d1(LEN, 8);
    let mut pool = MemoryPool::new();
    let ma = pool.alloc(DataVec::F32((0..LEN).map(|i| i as f32).collect()));
    let args_a = [RtValue::Accessor(AccessorVal {
        mem: ma,
        range: [LEN, 1, 1],
        offset: [0, 0, 0],
        rank: 1,
        constant: false,
    })];
    let host = HostNode::new(move |view: &HostView<'_, '_>| {
        let n = view.len(ma) as i64;
        for i in 0..n {
            let RtValue::F32(x) = view.load(ma, i) else {
                panic!("f32 buffer")
            };
            view.store(ma, i, RtValue::F32(x + 100.0));
        }
        Ok(())
    });
    // 0 (kernel) -> 1 (host) -> 2 (kernel), all over buffer A.
    let launches = [
        PlanLaunch::kernel(&plan, &args_a, nd),
        PlanLaunch::host(&host),
        PlanLaunch::kernel(&plan, &args_a, nd),
    ];
    let dag = LaunchDag::from_edges(3, &[(0, 1), (1, 2)]);
    for threads in [1_usize, 4] {
        for sched in [SchedPolicy::Fifo, SchedPolicy::CritPath] {
            for site in [FaultSite::Decode, FaultSite::Claim(0), FaultSite::Instr(7)] {
                let fault = FaultPlan { launch: 1, site };
                let limits = ExecLimits {
                    fault: Some(fault),
                    ..ExecLimits::none()
                };
                let report = run_plan_graph_report(
                    &launches,
                    &dag,
                    &mut pool,
                    &CostModel::default(),
                    threads,
                    false,
                    &limits,
                    sched,
                )
                .expect("well-formed graph");
                assert_eq!(
                    report.statuses[0],
                    LaunchStatus::Completed,
                    "threads={threads} {sched:?} {site:?}"
                );
                match &report.statuses[1] {
                    LaunchStatus::Failed { group, error } => {
                        assert_eq!(*group, 0, "a host node has exactly one group");
                        assert_eq!(
                            error.message(),
                            format!("{} (launch 1, work-group 0)", fault.error().message()),
                            "threads={threads} {sched:?} {site:?}: wrong cause text"
                        );
                    }
                    other => {
                        panic!("threads={threads} {sched:?} {site:?}: host reported {other:?}")
                    }
                }
                assert_eq!(
                    report.statuses[2],
                    LaunchStatus::Cancelled { cause: 1 },
                    "threads={threads} {sched:?} {site:?}: successor not cancelled"
                );
                // The faulted host closure never ran and the cancelled
                // kernel never wrote: buffer A holds exactly launch 0's
                // output each round (the iterations stack one scale each).
                assert_eq!(report.stats[1], ExecStats::default());
                let (fl, fg, _) = report.first_failure().expect("a failure is recorded");
                assert_eq!((fl, fg), (1, 0), "threads={threads} {sched:?} {site:?}");
            }
        }
    }
}

/// A clean host node in a graph runs its closure exactly once between
/// its predecessor and successor (hazard order), reports zeroed
/// statistics, and the result is bit-identical at both thread counts and
/// under both ready-set policies.
#[test]
fn host_node_in_graph_runs_in_hazard_order() {
    let plan = decoded_scale_plan();
    let nd = NdRangeSpec::d1(LEN, 8);
    let mut want: Option<Vec<u32>> = None;
    for threads in [1_usize, 4] {
        for sched in [SchedPolicy::Fifo, SchedPolicy::CritPath] {
            let mut pool = MemoryPool::new();
            let ma = pool.alloc(DataVec::F32((0..LEN).map(|i| i as f32).collect()));
            let args_a = [RtValue::Accessor(AccessorVal {
                mem: ma,
                range: [LEN, 1, 1],
                offset: [0, 0, 0],
                rank: 1,
                constant: false,
            })];
            let host = HostNode::new(move |view: &HostView<'_, '_>| {
                let n = view.len(ma) as i64;
                for i in 0..n {
                    let RtValue::F32(x) = view.load(ma, i) else {
                        panic!("f32 buffer")
                    };
                    view.store(ma, i, RtValue::F32(x + 100.0));
                }
                Ok(())
            });
            let launches = [
                PlanLaunch::kernel(&plan, &args_a, nd),
                PlanLaunch::host(&host),
                PlanLaunch::kernel(&plan, &args_a, nd),
            ];
            let dag = LaunchDag::from_edges(3, &[(0, 1), (1, 2)]);
            let report = run_plan_graph_report(
                &launches,
                &dag,
                &mut pool,
                &CostModel::default(),
                threads,
                false,
                &ExecLimits::none(),
                sched,
            )
            .expect("well-formed graph");
            assert!(report
                .statuses
                .iter()
                .all(|s| *s == LaunchStatus::Completed));
            // Host rows report zeroed statistics in every mode.
            assert_eq!(report.stats[1], ExecStats::default());
            assert_eq!(report.stats[1].work_groups, 0);
            let DataVec::F32(f) = pool.data(ma) else {
                panic!("f32 buffer")
            };
            // Element 0: ((0 * 0.5 + 3) + 100) * 0.5 + 3 = 54.5 — the
            // closure ran exactly once, strictly between the kernels.
            assert_eq!(f[0], 54.5, "threads={threads} {sched:?}");
            let bits: Vec<u32> = f.iter().map(|x| x.to_bits()).collect();
            match &want {
                None => want = Some(bits),
                Some(w) => assert_eq!(&bits, w, "threads={threads} {sched:?}"),
            }
        }
    }
}

/// A plain kernel error earlier in the queue beats a later injected
/// fault, in every mode: faults obey the same lexicographic first-failure
/// contract as organic failures.
#[test]
fn earlier_kernel_error_beats_later_injected_fault() {
    let fault = FaultPlan {
        launch: 2,
        site: FaultSite::Decode,
    };
    let results = run_error_graph(&["scale_io", "oob", "scale_io"], Some(fault));
    let (ref_name, want) = &results[0];
    assert!(
        want.starts_with("error:") && want.contains("out of bounds"),
        "`{ref_name}` reported: {want}"
    );
    for (name, got) in &results[1..] {
        assert_eq!(got, want, "`{name}` diverges from `{ref_name}`");
    }
}
