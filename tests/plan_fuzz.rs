//! Property-based `fuse_plan` testing: random **legal** plan bytecode,
//! executed fused and unfused, must stay bit-identical — outputs (memory,
//! i.e. every live register that was materialized by a store), statistics
//! and error ordering. The hand-written per-pattern unit tests in
//! `crates/sim/src/plan.rs` pin each peephole's near-misses; this suite
//! closes the gap between those examples and the full space of register
//! programs the decoder can emit.
//!
//! The generator builds structurally valid bytecode directly (typed
//! register pools, masked in-bounds indices, forward-only branches,
//! constant loop bounds), deliberately including the raw material of every
//! fusion pattern — `Load`+`addf`/`mulf`, `muli`+`addi`, `cmpi`+branch —
//! *and* runtime failures (division by zero) whose position fused and
//! unfused execution must agree on.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use sycl_mlir_repro::sim::plan::{CmpPred, FloatBin, FuncPlan, Instr, IntBin, ItemQ};
use sycl_mlir_repro::sim::{
    fuse_plan, run_plan_launch, CostModel, DataVec, ExecStats, KernelPlan, MemRefVal, MemoryPool,
    NdRangeSpec, RtValue, SimError, Space,
};

const BUF_LEN: usize = 16;

/// Builds one random legal function plan over two memref parameters
/// (an `f32` buffer in register 0, an `i64` buffer in register 1).
struct Gen {
    rng: TestRng,
    code: Vec<Instr>,
    /// Initialized integer-valued registers.
    ints: Vec<u32>,
    /// Initialized float-valued registers.
    floats: Vec<u32>,
    next_reg: u32,
    sites: u32,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            rng: TestRng::new(seed),
            code: Vec::new(),
            ints: Vec::new(),
            floats: Vec::new(),
            next_reg: 2, // 0 = f32 memref param, 1 = i64 memref param
            sites: 0,
        }
    }

    fn fresh(&mut self) -> u32 {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn pick_int(&mut self) -> u32 {
        let i = self.rng.below(self.ints.len());
        self.ints[i]
    }

    fn pick_float(&mut self) -> u32 {
        let i = self.rng.below(self.floats.len());
        self.floats[i]
    }

    fn site(&mut self) -> u32 {
        let s = self.sites;
        self.sites += 1;
        s
    }

    /// An integer register holding an in-bounds index: `existing & 15`.
    fn masked_index(&mut self) -> u32 {
        let mask = self.fresh();
        self.code.push(Instr::Const {
            dst: mask,
            val: RtValue::Int(BUF_LEN as i64 - 1),
        });
        let src = self.pick_int();
        let dst = self.fresh();
        self.code.push(Instr::BinInt {
            op: IntBin::And,
            dst,
            l: src,
            r: mask,
        });
        dst
    }

    fn int_bin_op(&mut self) -> IntBin {
        [
            IntBin::Add,
            IntBin::Sub,
            IntBin::Mul,
            IntBin::DivS, // division by zero must fail identically
            IntBin::RemS,
            IntBin::And,
            IntBin::Or,
            IntBin::Xor,
            IntBin::MinS,
            IntBin::MaxS,
        ][self.rng.below(10)]
    }

    fn float_bin_op(&mut self) -> FloatBin {
        [
            FloatBin::Add,
            FloatBin::Sub,
            FloatBin::Mul,
            FloatBin::Div,
            FloatBin::Min,
            FloatBin::Max,
        ][self.rng.below(6)]
    }

    fn cmp_pred(&mut self) -> CmpPred {
        [
            CmpPred::Eq,
            CmpPred::Ne,
            CmpPred::Slt,
            CmpPred::Sle,
            CmpPred::Sgt,
            CmpPred::Sge,
        ][self.rng.below(6)]
    }

    /// Emit one simple (non-block) instruction.
    fn simple(&mut self) {
        match self.rng.below(10) {
            0 => {
                let dst = self.fresh();
                let val = self.rng.in_range(-3, 6) as i64;
                self.code.push(Instr::Const {
                    dst,
                    val: RtValue::Int(val),
                });
                self.ints.push(dst);
            }
            1 => {
                let dst = self.fresh();
                let v = self.rng.in_range(-4, 5) as f64 * 0.5;
                let val = if self.rng.below(2) == 0 {
                    RtValue::F32(v as f32)
                } else {
                    RtValue::F64(v)
                };
                self.code.push(Instr::Const { dst, val });
                self.floats.push(dst);
            }
            2 => {
                let (op, l, r) = (self.int_bin_op(), self.pick_int(), self.pick_int());
                let dst = self.fresh();
                self.code.push(Instr::BinInt { op, dst, l, r });
                self.ints.push(dst);
            }
            3 => {
                let op = self.float_bin_op();
                let (l, r) = (self.pick_float(), self.pick_float());
                let dst = self.fresh();
                let f32_out = self.rng.below(2) == 0;
                self.code.push(Instr::BinFloat {
                    op,
                    dst,
                    l,
                    r,
                    f32_out,
                });
                self.floats.push(dst);
            }
            4 => {
                let pred = self.cmp_pred();
                let (l, r) = (self.pick_int(), self.pick_int());
                let dst = self.fresh();
                self.code.push(Instr::CmpI { pred, dst, l, r });
                self.ints.push(dst);
            }
            5 => {
                // The muli + addi linear-addressing chain (MulAddInt bait).
                let (a, b, c) = (self.pick_int(), self.pick_int(), self.pick_int());
                let t = self.fresh();
                self.code.push(Instr::BinInt {
                    op: IntBin::Mul,
                    dst: t,
                    l: a,
                    r: b,
                });
                let dst = self.fresh();
                self.code.push(Instr::BinInt {
                    op: IntBin::Add,
                    dst,
                    l: t,
                    r: c,
                });
                self.ints.push(dst);
                // Sometimes also read the intermediate — the near-miss
                // that must block the fusion without changing results.
                if self.rng.below(4) == 0 {
                    self.ints.push(t);
                }
            }
            6 => {
                // Load + float accumulate (LoadBinFloat bait).
                let idx = self.masked_index();
                let loaded = self.fresh();
                let site = self.site();
                self.code.push(Instr::Load {
                    dst: loaded,
                    mem: 0,
                    idx: [idx, 0, 0],
                    rank: 1,
                    site,
                });
                let other = self.pick_float();
                let dst = self.fresh();
                let (l, r) = if self.rng.below(2) == 0 {
                    (loaded, other)
                } else {
                    (other, loaded)
                };
                let op = if self.rng.below(2) == 0 {
                    FloatBin::Add
                } else {
                    FloatBin::Mul
                };
                self.code.push(Instr::BinFloat {
                    op,
                    dst,
                    l,
                    r,
                    f32_out: self.rng.below(2) == 0,
                });
                self.floats.push(dst);
                if self.rng.below(4) == 0 {
                    self.floats.push(loaded); // near-miss: second read
                }
            }
            7 => {
                // Plain load from the i64 buffer.
                let idx = self.masked_index();
                let dst = self.fresh();
                let site = self.site();
                self.code.push(Instr::Load {
                    dst,
                    mem: 1,
                    idx: [idx, 0, 0],
                    rank: 1,
                    site,
                });
                self.ints.push(dst);
            }
            8 => {
                // Store a float to the f32 buffer.
                let idx = self.masked_index();
                let val = self.pick_float();
                let site = self.site();
                self.code.push(Instr::Store {
                    val,
                    mem: 0,
                    idx: [idx, 0, 0],
                    rank: 1,
                    site,
                });
            }
            _ => {
                // A work-item position: makes later branch conditions
                // item-dependent.
                let dst = self.fresh();
                self.code.push(Instr::ItemQuery {
                    dst,
                    q: ItemQ::GlobalId,
                    dim: sycl_mlir_repro::sim::plan::DimSrc::Const(0),
                });
                self.ints.push(dst);
            }
        }
    }

    /// Emit an `if`-shaped block: `cmpi` + `BranchIfFalse` (CmpIBranch
    /// bait) around a short straight-line body. Registers defined inside
    /// are scoped out afterwards (the branch may skip them).
    fn if_block(&mut self) {
        let pred = self.cmp_pred();
        let (l, r) = (self.pick_int(), self.pick_int());
        let cond = self.fresh();
        self.code.push(Instr::CmpI {
            pred,
            dst: cond,
            l,
            r,
        });
        if self.rng.below(4) == 0 {
            self.ints.push(cond); // near-miss: condition also read later
        }
        let branch_at = self.code.len();
        self.code.push(Instr::BranchIfFalse {
            cond,
            target: u32::MAX, // patched below
        });
        let (ints, floats) = (self.ints.len(), self.floats.len());
        for _ in 0..self.rng.below(3) + 1 {
            self.simple();
        }
        self.ints.truncate(ints);
        self.floats.truncate(floats);
        let after = self.code.len() as u32;
        let Instr::BranchIfFalse { target, .. } = &mut self.code[branch_at] else {
            unreachable!()
        };
        *target = after;
    }

    /// Emit a constant-bound counted loop around a short body.
    fn for_loop(&mut self) {
        let (lb, ub, step) = (self.fresh(), self.fresh(), self.fresh());
        self.code.push(Instr::Const {
            dst: lb,
            val: RtValue::Int(0),
        });
        self.code.push(Instr::Const {
            dst: ub,
            val: RtValue::Int(self.rng.in_range(1, 4) as i64),
        });
        self.code.push(Instr::Const {
            dst: step,
            val: RtValue::Int(1),
        });
        let iv = self.fresh();
        let enter_at = self.code.len();
        self.code.push(Instr::ForEnter {
            lb,
            ub,
            step,
            iv,
            exit: u32::MAX, // patched below
        });
        let body = self.code.len() as u32;
        self.ints.push(iv);
        let (ints, floats) = (self.ints.len(), self.floats.len());
        for _ in 0..self.rng.below(3) + 1 {
            self.simple();
        }
        self.ints.truncate(ints);
        self.floats.truncate(floats);
        self.code.push(Instr::ForNext { iv, step, ub, body });
        let exit_pc = self.code.len() as u32;
        let Instr::ForEnter { exit, .. } = &mut self.code[enter_at] else {
            unreachable!()
        };
        *exit = exit_pc;
    }

    fn finish(mut self) -> KernelPlan {
        // Seed the pools so every picker has material.
        let seed_int = self.fresh();
        self.code.insert(
            0,
            Instr::Const {
                dst: seed_int,
                val: RtValue::Int(3),
            },
        );
        let seed_float = self.fresh();
        self.code.insert(
            1,
            Instr::Const {
                dst: seed_float,
                val: RtValue::F32(1.5),
            },
        );
        self.ints.push(seed_int);
        self.floats.push(seed_float);

        let len = self.rng.below(24) + 8;
        for _ in 0..len {
            match self.rng.below(8) {
                0 => self.if_block(),
                1 => self.for_loop(),
                2 if self.code.len() > 4 => self.code.push(Instr::Barrier),
                _ => self.simple(),
            }
        }

        // Materialize live registers: without these stores the register
        // file would be unobservable through `run_plan_launch`.
        for _ in 0..3 {
            let idx = self.masked_index();
            let val = self.pick_float();
            let site = self.site();
            self.code.push(Instr::Store {
                val,
                mem: 0,
                idx: [idx, 0, 0],
                rank: 1,
                site,
            });
        }
        let iidx = self.masked_index();
        let ival = self.pick_int();
        let isite = self.site();
        self.code.push(Instr::Store {
            val: ival,
            mem: 1,
            idx: [iidx, 0, 0],
            rank: 1,
            site: isite,
        });
        self.code.push(Instr::Return {
            vals: Vec::new().into_boxed_slice(),
        });

        KernelPlan {
            funcs: vec![FuncPlan {
                code: self.code,
                reg_count: self.next_reg,
                params: vec![0, 1],
                has_item_param: false,
            }],
            dense_consts: Vec::new(),
            mem_sites: self.sites,
            local_sites: 0,
            fused_pairs: 0,
        }
    }
}

/// Run `plan` against fresh buffers; returns the outcome plus both final
/// buffer images.
fn execute(plan: &KernelPlan) -> (Result<ExecStats, SimError>, Vec<f32>, Vec<i64>) {
    let mut pool = MemoryPool::new();
    let mf = pool.alloc(DataVec::F32(
        (0..BUF_LEN).map(|i| i as f32 * 0.25).collect(),
    ));
    let mi = pool.alloc(DataVec::I64((0..BUF_LEN).map(|i| i as i64 - 4).collect()));
    let args = [
        RtValue::MemRef(MemRefVal {
            mem: mf,
            offset: 0,
            shape: [BUF_LEN as i64, 1, 1],
            rank: 1,
            space: Space::Global,
        }),
        RtValue::MemRef(MemRefVal {
            mem: mi,
            offset: 0,
            shape: [BUF_LEN as i64, 1, 1],
            rank: 1,
            space: Space::Global,
        }),
    ];
    let result = run_plan_launch(
        plan,
        &args,
        NdRangeSpec::d1(8, 4),
        &mut pool,
        &CostModel::default(),
        1,
    );
    let DataVec::F32(f) = pool.data(mf) else {
        panic!()
    };
    let DataVec::I64(i) = pool.data(mi) else {
        panic!()
    };
    (result, f.clone(), i.clone())
}

/// One seed's round trip: generate, fuse a clone, execute both, compare
/// everything. Returns the number of pairs fused.
fn check_seed(seed: u64) -> u32 {
    let plan = Gen::new(seed).finish();
    let mut fused = plan.clone();
    let pairs = fuse_plan(&mut fused);
    let (base, base_f, base_i) = execute(&plan);
    let (opt, opt_f, opt_i) = execute(&fused);
    match (&base, &opt) {
        (Ok(b), Ok(o)) => assert_eq!(b, o, "stats diverge (seed {seed})"),
        (Err(b), Err(o)) => assert_eq!(b.message, o.message, "errors diverge (seed {seed})"),
        _ => panic!(
            "one execution failed, the other did not (seed {seed}): unfused={base:?} fused={opt:?}"
        ),
    }
    // Buffer images must match bit-for-bit even on the error path: both
    // engines stop at the same failing work-group.
    assert_eq!(
        base_f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        opt_f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "f32 buffer diverges (seed {seed})"
    );
    assert_eq!(base_i, opt_i, "i64 buffer diverges (seed {seed})");
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fused and unfused execution of random legal bytecode agree on
    /// registers-made-observable, statistics and error ordering.
    #[test]
    fn fused_random_bytecode_matches_unfused(seed in 0u64..u64::MAX) {
        check_seed(seed);
    }
}

/// The generator must actually feed the fusion pass — otherwise the
/// property above passes vacuously on unfusable programs.
#[test]
fn random_bytecode_exercises_fusion_broadly() {
    let mut total = 0_u32;
    for seed in 0..128_u64 {
        total += check_seed(seed * 7919 + 13);
    }
    assert!(
        total > 100,
        "expected the random programs to trigger fusion broadly, got {total} fused pairs"
    );
}
