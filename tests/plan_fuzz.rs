//! Property-based `fuse_plan` testing: random **legal** plan bytecode,
//! executed fused and unfused, must stay bit-identical — outputs (memory,
//! i.e. every live register that was materialized by a store), statistics
//! and error ordering. The hand-written per-pattern unit tests in
//! `crates/sim/src/plan.rs` pin each peephole's near-misses; this suite
//! closes the gap between those examples and the full space of register
//! programs the decoder can emit.
//!
//! The generator builds structurally valid bytecode directly (typed
//! register pools, masked in-bounds indices, forward-only branches,
//! constant loop bounds), deliberately including the raw material of every
//! fusion pattern — `Load`+`addf`/`mulf`, `muli`+`addi`, `cmpi`+branch,
//! the `vec.ctor`+`acc.subscript`+`Load`/`Store` accessor chains, the
//! un-CSE'd 4-instruction window (the `Const 0` re-materialized between
//! the subscript and the access), indirect-index chains whose subscript
//! is *loaded* out of a buffer, accumulate-into-view shapes that force
//! the write-through variants, the `Load`+`mulf`+`addf`
//! multiply-accumulate chain, accumulate+`Store` — *and* runtime
//! failures (division by zero) whose position fused and unfused
//! execution must agree on. Deterministic pin tests additionally hold a
//! superinstruction that fails **mid-chain** to the unfused error and to
//! the out-of-order scheduler's lexicographic `(launch, group)` failure
//! bound.

use proptest::prelude::*;
use proptest::test_runner::TestRng;
use sycl_mlir_repro::sim::plan::{CmpPred, FloatBin, FuncPlan, Instr, IntBin, ItemQ};
use sycl_mlir_repro::sim::{
    fuse_plan, run_plan_launch, AccessorVal, CostModel, DataVec, ExecStats, KernelPlan, MemRefVal,
    MemoryPool, NdRangeSpec, RtValue, SimError, Space,
};

const BUF_LEN: usize = 16;

/// Builds one random legal function plan over three parameters: an `f32`
/// memref in register 0, an `i64` memref in register 1 and an `f32`
/// accessor in register 2 (the raw material of the indexed-access
/// chains).
struct Gen {
    rng: TestRng,
    code: Vec<Instr>,
    /// Initialized integer-valued registers.
    ints: Vec<u32>,
    /// Initialized float-valued registers.
    floats: Vec<u32>,
    next_reg: u32,
    sites: u32,
}

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen {
            rng: TestRng::new(seed),
            code: Vec::new(),
            ints: Vec::new(),
            floats: Vec::new(),
            // 0 = f32 memref param, 1 = i64 memref param, 2 = accessor.
            next_reg: 3,
            sites: 0,
        }
    }

    fn fresh(&mut self) -> u32 {
        let r = self.next_reg;
        self.next_reg += 1;
        r
    }

    fn pick_int(&mut self) -> u32 {
        let i = self.rng.below(self.ints.len());
        self.ints[i]
    }

    fn pick_float(&mut self) -> u32 {
        let i = self.rng.below(self.floats.len());
        self.floats[i]
    }

    fn site(&mut self) -> u32 {
        let s = self.sites;
        self.sites += 1;
        s
    }

    /// An integer register holding `src & 15` — in-bounds by masking.
    fn mask_reg(&mut self, src: u32) -> u32 {
        let mask = self.fresh();
        self.code.push(Instr::Const {
            dst: mask,
            val: RtValue::Int(BUF_LEN as i64 - 1),
        });
        let dst = self.fresh();
        self.code.push(Instr::BinInt {
            op: IntBin::And,
            dst,
            l: src,
            r: mask,
        });
        dst
    }

    /// An integer register holding an in-bounds index: `existing & 15`.
    fn masked_index(&mut self) -> u32 {
        let src = self.pick_int();
        self.mask_reg(src)
    }

    fn int_bin_op(&mut self) -> IntBin {
        [
            IntBin::Add,
            IntBin::Sub,
            IntBin::Mul,
            IntBin::DivS, // division by zero must fail identically
            IntBin::RemS,
            IntBin::And,
            IntBin::Or,
            IntBin::Xor,
            IntBin::MinS,
            IntBin::MaxS,
        ][self.rng.below(10)]
    }

    fn float_bin_op(&mut self) -> FloatBin {
        [
            FloatBin::Add,
            FloatBin::Sub,
            FloatBin::Mul,
            FloatBin::Div,
            FloatBin::Min,
            FloatBin::Max,
        ][self.rng.below(6)]
    }

    fn cmp_pred(&mut self) -> CmpPred {
        [
            CmpPred::Eq,
            CmpPred::Ne,
            CmpPred::Slt,
            CmpPred::Sle,
            CmpPred::Sgt,
            CmpPred::Sge,
        ][self.rng.below(6)]
    }

    /// Emit one simple (non-block) instruction.
    fn simple(&mut self) {
        match self.rng.below(10) {
            0 => {
                let dst = self.fresh();
                let val = self.rng.in_range(-3, 6) as i64;
                self.code.push(Instr::Const {
                    dst,
                    val: RtValue::Int(val),
                });
                self.ints.push(dst);
            }
            1 => {
                let dst = self.fresh();
                let v = self.rng.in_range(-4, 5) as f64 * 0.5;
                let val = if self.rng.below(2) == 0 {
                    RtValue::F32(v as f32)
                } else {
                    RtValue::F64(v)
                };
                self.code.push(Instr::Const { dst, val });
                self.floats.push(dst);
            }
            2 => {
                let (op, l, r) = (self.int_bin_op(), self.pick_int(), self.pick_int());
                let dst = self.fresh();
                self.code.push(Instr::BinInt { op, dst, l, r });
                self.ints.push(dst);
            }
            3 => {
                let op = self.float_bin_op();
                let (l, r) = (self.pick_float(), self.pick_float());
                let dst = self.fresh();
                let f32_out = self.rng.below(2) == 0;
                self.code.push(Instr::BinFloat {
                    op,
                    dst,
                    l,
                    r,
                    f32_out,
                });
                self.floats.push(dst);
            }
            4 => {
                let pred = self.cmp_pred();
                let (l, r) = (self.pick_int(), self.pick_int());
                let dst = self.fresh();
                self.code.push(Instr::CmpI { pred, dst, l, r });
                self.ints.push(dst);
            }
            5 => {
                // The muli + addi linear-addressing chain (MulAddInt bait).
                let (a, b, c) = (self.pick_int(), self.pick_int(), self.pick_int());
                let t = self.fresh();
                self.code.push(Instr::BinInt {
                    op: IntBin::Mul,
                    dst: t,
                    l: a,
                    r: b,
                });
                let dst = self.fresh();
                self.code.push(Instr::BinInt {
                    op: IntBin::Add,
                    dst,
                    l: t,
                    r: c,
                });
                self.ints.push(dst);
                // Sometimes also read the intermediate — the near-miss
                // that must block the fusion without changing results.
                if self.rng.below(4) == 0 {
                    self.ints.push(t);
                }
            }
            6 => {
                // Load + float accumulate (LoadBinFloat bait).
                let idx = self.masked_index();
                let loaded = self.fresh();
                let site = self.site();
                self.code.push(Instr::Load {
                    dst: loaded,
                    mem: 0,
                    idx: [idx, 0, 0],
                    rank: 1,
                    site,
                });
                let other = self.pick_float();
                let dst = self.fresh();
                let (l, r) = if self.rng.below(2) == 0 {
                    (loaded, other)
                } else {
                    (other, loaded)
                };
                let op = if self.rng.below(2) == 0 {
                    FloatBin::Add
                } else {
                    FloatBin::Mul
                };
                self.code.push(Instr::BinFloat {
                    op,
                    dst,
                    l,
                    r,
                    f32_out: self.rng.below(2) == 0,
                });
                self.floats.push(dst);
                if self.rng.below(4) == 0 {
                    self.floats.push(loaded); // near-miss: second read
                }
            }
            7 => {
                // Plain load from the i64 buffer.
                let idx = self.masked_index();
                let dst = self.fresh();
                let site = self.site();
                self.code.push(Instr::Load {
                    dst,
                    mem: 1,
                    idx: [idx, 0, 0],
                    rank: 1,
                    site,
                });
                self.ints.push(dst);
            }
            8 => {
                // Store a float to the f32 buffer.
                let idx = self.masked_index();
                let val = self.pick_float();
                let site = self.site();
                self.code.push(Instr::Store {
                    val,
                    mem: 0,
                    idx: [idx, 0, 0],
                    rank: 1,
                    site,
                });
            }
            _ => {
                // A work-item position: makes later branch conditions
                // item-dependent.
                let dst = self.fresh();
                self.code.push(Instr::ItemQuery {
                    dst,
                    q: ItemQ::GlobalId,
                    dim: sycl_mlir_repro::sim::plan::DimSrc::Const(0),
                });
                self.ints.push(dst);
            }
        }
    }

    /// Emit the accessor addressing chain — `vec.ctor`, `acc.subscript`,
    /// then `Load`/`Store` (AccLoadIndexed / AccStoreIndexed bait). The
    /// masked index and the inner zero index are materialized *before*
    /// the chain so the three members stay adjacent.
    fn acc_chain(&mut self) {
        let idx = self.masked_index();
        let zero = self.fresh();
        self.code.push(Instr::Const {
            dst: zero,
            val: RtValue::Int(0),
        });
        let id = self.fresh();
        self.code.push(Instr::VecCtor {
            dst: id,
            comps: [idx, 0, 0],
            rank: 1,
        });
        let view = self.fresh();
        self.code.push(Instr::AccSubscript {
            dst: view,
            acc: 2,
            id,
        });
        if self.rng.below(2) == 0 {
            let dst = self.fresh();
            let site = self.site();
            self.code.push(Instr::Load {
                dst,
                mem: view,
                idx: [zero, 0, 0],
                rank: 1,
                site,
            });
            self.floats.push(dst);
        } else {
            let val = self.pick_float();
            let site = self.site();
            self.code.push(Instr::Store {
                val,
                mem: view,
                idx: [zero, 0, 0],
                rank: 1,
                site,
            });
        }
        // Near-miss: a second read of the subscripted view blocks the
        // chain (the view register is no longer elidable) without
        // changing results.
        if self.rng.below(4) == 0 {
            let dst = self.fresh();
            let site = self.site();
            self.code.push(Instr::Load {
                dst,
                mem: view,
                idx: [zero, 0, 0],
                rank: 1,
                site,
            });
            self.floats.push(dst);
        }
    }

    /// Emit the un-CSE'd DPC++ accessor chain — `vec.ctor`,
    /// `acc.subscript`, then a *freshly materialized* `Const 0` and the
    /// `Load`/`Store` (AccLoadQuad / AccStoreQuad bait): unoptimized
    /// DPC++ re-materializes the inner zero index between the subscript
    /// and the access instead of hoisting it, so the 4-instruction
    /// window must capture the interposed constant.
    fn quad_chain(&mut self) {
        let idx = self.masked_index();
        // Near-miss material: an earlier zero the access can index with
        // instead of the chain's own constant, breaking the
        // `idx == cst` guard while keeping the access in bounds.
        let early_zero = if self.rng.below(4) == 0 {
            let r = self.fresh();
            self.code.push(Instr::Const {
                dst: r,
                val: RtValue::Int(0),
            });
            Some(r)
        } else {
            None
        };
        let id = self.fresh();
        self.code.push(Instr::VecCtor {
            dst: id,
            comps: [idx, 0, 0],
            rank: 1,
        });
        let view = self.fresh();
        self.code.push(Instr::AccSubscript {
            dst: view,
            acc: 2,
            id,
        });
        let zero = self.fresh();
        self.code.push(Instr::Const {
            dst: zero,
            val: RtValue::Int(0),
        });
        let access_idx = early_zero.unwrap_or(zero);
        if self.rng.below(2) == 0 {
            let dst = self.fresh();
            let site = self.site();
            self.code.push(Instr::Load {
                dst,
                mem: view,
                idx: [access_idx, 0, 0],
                rank: 1,
                site,
            });
            self.floats.push(dst);
        } else {
            let val = self.pick_float();
            let site = self.site();
            self.code.push(Instr::Store {
                val,
                mem: view,
                idx: [access_idx, 0, 0],
                rank: 1,
                site,
            });
        }
        // The quad keeps the constant's register write: reading it later
        // is legal whether or not the window fused (no read-count
        // legality on the quad).
        if self.rng.below(4) == 0 {
            self.ints.push(zero);
        }
    }

    /// Indirect-index (gather) bait: the accessor subscript is computed
    /// from a value *loaded* out of the i64 buffer — the
    /// register-computed-subscript shape of the sparse workloads. The
    /// chain downstream of the indirection is emitted in the un-CSE'd
    /// quad order and must still fuse.
    fn gather_chain(&mut self) {
        let iidx = self.masked_index();
        let loaded = self.fresh();
        let site = self.site();
        self.code.push(Instr::Load {
            dst: loaded,
            mem: 1,
            idx: [iidx, 0, 0],
            rank: 1,
            site,
        });
        let idx = self.mask_reg(loaded);
        let id = self.fresh();
        self.code.push(Instr::VecCtor {
            dst: id,
            comps: [idx, 0, 0],
            rank: 1,
        });
        let view = self.fresh();
        self.code.push(Instr::AccSubscript {
            dst: view,
            acc: 2,
            id,
        });
        let zero = self.fresh();
        self.code.push(Instr::Const {
            dst: zero,
            val: RtValue::Int(0),
        });
        if self.rng.below(2) == 0 {
            let dst = self.fresh();
            let site = self.site();
            self.code.push(Instr::Load {
                dst,
                mem: view,
                idx: [zero, 0, 0],
                rank: 1,
                site,
            });
            self.floats.push(dst);
        } else {
            let val = self.pick_float();
            let site = self.site();
            self.code.push(Instr::Store {
                val,
                mem: view,
                idx: [zero, 0, 0],
                rank: 1,
                site,
            });
        }
    }

    /// Accumulate-into-view bait: subscript once, then both read *and*
    /// write through the view. The multiply-read view blocks the elided
    /// chain, so the write-through variants (AccLoadIdxWt /
    /// AccStoreIdxWt, and StoreBinFloatWt when the accumulator is also
    /// re-read) must pick it up.
    fn view_accum(&mut self) {
        let idx = self.masked_index();
        let zero = self.fresh();
        self.code.push(Instr::Const {
            dst: zero,
            val: RtValue::Int(0),
        });
        let id = self.fresh();
        self.code.push(Instr::VecCtor {
            dst: id,
            comps: [idx, 0, 0],
            rank: 1,
        });
        let view = self.fresh();
        self.code.push(Instr::AccSubscript {
            dst: view,
            acc: 2,
            id,
        });
        if self.rng.below(2) == 0 {
            // Read-modify-write: the load chain writes the view through,
            // the accumulate+store pair follows.
            let loaded = self.fresh();
            let site = self.site();
            self.code.push(Instr::Load {
                dst: loaded,
                mem: view,
                idx: [zero, 0, 0],
                rank: 1,
                site,
            });
            let other = self.pick_float();
            let t = self.fresh();
            let op = if self.rng.below(2) == 0 {
                FloatBin::Add
            } else {
                FloatBin::Mul
            };
            self.code.push(Instr::BinFloat {
                op,
                dst: t,
                l: loaded,
                r: other,
                f32_out: self.rng.below(2) == 0,
            });
            let site = self.site();
            self.code.push(Instr::Store {
                val: t,
                mem: view,
                idx: [zero, 0, 0],
                rank: 1,
                site,
            });
            // Re-reading the accumulator demotes the store pair to its
            // write-through form.
            if self.rng.below(4) == 0 {
                self.floats.push(t);
            }
        } else {
            // Write-then-read: the store chain writes the view through,
            // the trailing load reads it back.
            let val = self.pick_float();
            let site = self.site();
            self.code.push(Instr::Store {
                val,
                mem: view,
                idx: [zero, 0, 0],
                rank: 1,
                site,
            });
            let dst = self.fresh();
            let site = self.site();
            self.code.push(Instr::Load {
                dst,
                mem: view,
                idx: [zero, 0, 0],
                rank: 1,
                site,
            });
            self.floats.push(dst);
        }
    }

    /// Emit the multiply-accumulate chain: `Load` + `mulf` + `addf`
    /// (LoadMulAddF bait) with random operand orders and narrowings.
    fn fma_chain(&mut self) {
        let idx = self.masked_index();
        let loaded = self.fresh();
        let site = self.site();
        self.code.push(Instr::Load {
            dst: loaded,
            mem: 0,
            idx: [idx, 0, 0],
            rank: 1,
            site,
        });
        let b = self.pick_float();
        let prod = self.fresh();
        let (ml, mr) = if self.rng.below(2) == 0 {
            (loaded, b)
        } else {
            (b, loaded)
        };
        self.code.push(Instr::BinFloat {
            op: FloatBin::Mul,
            dst: prod,
            l: ml,
            r: mr,
            f32_out: self.rng.below(2) == 0,
        });
        let c = self.pick_float();
        let dst = self.fresh();
        let (al, ar) = if self.rng.below(2) == 0 {
            (prod, c)
        } else {
            (c, prod)
        };
        self.code.push(Instr::BinFloat {
            op: FloatBin::Add,
            dst,
            l: al,
            r: ar,
            f32_out: self.rng.below(2) == 0,
        });
        self.floats.push(dst);
        // Near-misses: re-reading the loaded value or the product blocks
        // the chain (the pair prefix may still fuse).
        if self.rng.below(4) == 0 {
            self.floats.push(loaded);
        }
        if self.rng.below(4) == 0 {
            self.floats.push(prod);
        }
    }

    /// Emit the accumulate-then-store pair: float binary op + `Store`
    /// (StoreBinFloat bait).
    fn store_accum(&mut self) {
        let idx = self.masked_index();
        let (l, r) = (self.pick_float(), self.pick_float());
        let t = self.fresh();
        let op = self.float_bin_op();
        self.code.push(Instr::BinFloat {
            op,
            dst: t,
            l,
            r,
            f32_out: self.rng.below(2) == 0,
        });
        let site = self.site();
        self.code.push(Instr::Store {
            val: t,
            mem: 0,
            idx: [idx, 0, 0],
            rank: 1,
            site,
        });
        // Near-miss: the accumulated value is also read later.
        if self.rng.below(4) == 0 {
            self.floats.push(t);
        }
    }

    /// Emit an `if`-shaped block: `cmpi` + `BranchIfFalse` (CmpIBranch
    /// bait) around a short straight-line body. Registers defined inside
    /// are scoped out afterwards (the branch may skip them).
    fn if_block(&mut self) {
        let pred = self.cmp_pred();
        let (l, r) = (self.pick_int(), self.pick_int());
        let cond = self.fresh();
        self.code.push(Instr::CmpI {
            pred,
            dst: cond,
            l,
            r,
        });
        if self.rng.below(4) == 0 {
            self.ints.push(cond); // near-miss: condition also read later
        }
        let branch_at = self.code.len();
        self.code.push(Instr::BranchIfFalse {
            cond,
            target: u32::MAX, // patched below
        });
        let (ints, floats) = (self.ints.len(), self.floats.len());
        for _ in 0..self.rng.below(3) + 1 {
            self.simple();
        }
        self.ints.truncate(ints);
        self.floats.truncate(floats);
        let after = self.code.len() as u32;
        let Instr::BranchIfFalse { target, .. } = &mut self.code[branch_at] else {
            unreachable!()
        };
        *target = after;
    }

    /// Emit a constant-bound counted loop around a short body.
    fn for_loop(&mut self) {
        let (lb, ub, step) = (self.fresh(), self.fresh(), self.fresh());
        self.code.push(Instr::Const {
            dst: lb,
            val: RtValue::Int(0),
        });
        self.code.push(Instr::Const {
            dst: ub,
            val: RtValue::Int(self.rng.in_range(1, 4) as i64),
        });
        self.code.push(Instr::Const {
            dst: step,
            val: RtValue::Int(1),
        });
        let iv = self.fresh();
        let enter_at = self.code.len();
        self.code.push(Instr::ForEnter {
            lb,
            ub,
            step,
            iv,
            exit: u32::MAX, // patched below
        });
        let body = self.code.len() as u32;
        self.ints.push(iv);
        let (ints, floats) = (self.ints.len(), self.floats.len());
        for _ in 0..self.rng.below(3) + 1 {
            self.simple();
        }
        self.ints.truncate(ints);
        self.floats.truncate(floats);
        self.code.push(Instr::ForNext { iv, step, ub, body });
        let exit_pc = self.code.len() as u32;
        let Instr::ForEnter { exit, .. } = &mut self.code[enter_at] else {
            unreachable!()
        };
        *exit = exit_pc;
    }

    fn finish(mut self) -> KernelPlan {
        // Seed the pools so every picker has material.
        let seed_int = self.fresh();
        self.code.insert(
            0,
            Instr::Const {
                dst: seed_int,
                val: RtValue::Int(3),
            },
        );
        let seed_float = self.fresh();
        self.code.insert(
            1,
            Instr::Const {
                dst: seed_float,
                val: RtValue::F32(1.5),
            },
        );
        self.ints.push(seed_int);
        self.floats.push(seed_float);

        let len = self.rng.below(24) + 8;
        for _ in 0..len {
            match self.rng.below(14) {
                0 => self.if_block(),
                1 => self.for_loop(),
                2 if self.code.len() > 4 => self.code.push(Instr::Barrier),
                3 => self.acc_chain(),
                4 => self.fma_chain(),
                5 => self.store_accum(),
                6 => self.quad_chain(),
                7 => self.gather_chain(),
                8 => self.view_accum(),
                _ => self.simple(),
            }
        }

        // Materialize live registers: without these stores the register
        // file would be unobservable through `run_plan_launch`.
        for _ in 0..3 {
            let idx = self.masked_index();
            let val = self.pick_float();
            let site = self.site();
            self.code.push(Instr::Store {
                val,
                mem: 0,
                idx: [idx, 0, 0],
                rank: 1,
                site,
            });
        }
        let iidx = self.masked_index();
        let ival = self.pick_int();
        let isite = self.site();
        self.code.push(Instr::Store {
            val: ival,
            mem: 1,
            idx: [iidx, 0, 0],
            rank: 1,
            site: isite,
        });
        self.code.push(Instr::Return {
            vals: Vec::new().into_boxed_slice(),
        });

        KernelPlan {
            funcs: vec![FuncPlan {
                code: self.code,
                reg_count: self.next_reg,
                params: vec![0, 1, 2],
                has_item_param: false,
            }],
            dense_consts: Vec::new(),
            mem_sites: self.sites,
            local_sites: 0,
            fused_pairs: 0,
            fused_chains: 0,
            fused_quads: 0,
            fused_wt: 0,
        }
    }
}

/// Run `plan` against fresh buffers; returns the outcome plus all three
/// final buffer images (f32 memref, i64 memref, accessor-backed f32).
#[allow(clippy::type_complexity)]
fn execute(plan: &KernelPlan) -> (Result<ExecStats, SimError>, Vec<f32>, Vec<i64>, Vec<f32>) {
    let mut pool = MemoryPool::new();
    let mf = pool.alloc(DataVec::F32(
        (0..BUF_LEN).map(|i| i as f32 * 0.25).collect(),
    ));
    let mi = pool.alloc(DataVec::I64((0..BUF_LEN).map(|i| i as i64 - 4).collect()));
    let ma = pool.alloc(DataVec::F32(
        (0..BUF_LEN).map(|i| i as f32 * 0.5 - 2.0).collect(),
    ));
    let args = [
        RtValue::MemRef(MemRefVal {
            mem: mf,
            offset: 0,
            shape: [BUF_LEN as i64, 1, 1],
            rank: 1,
            space: Space::Global,
        }),
        RtValue::MemRef(MemRefVal {
            mem: mi,
            offset: 0,
            shape: [BUF_LEN as i64, 1, 1],
            rank: 1,
            space: Space::Global,
        }),
        RtValue::Accessor(AccessorVal {
            mem: ma,
            range: [BUF_LEN as i64, 1, 1],
            offset: [0, 0, 0],
            rank: 1,
            constant: false,
        }),
    ];
    let result = run_plan_launch(
        plan,
        &args,
        NdRangeSpec::d1(8, 4),
        &mut pool,
        &CostModel::default(),
        1,
    );
    let DataVec::F32(f) = pool.data(mf) else {
        panic!()
    };
    let DataVec::I64(i) = pool.data(mi) else {
        panic!()
    };
    let DataVec::F32(a) = pool.data(ma) else {
        panic!()
    };
    (result, f.clone(), i.clone(), a.clone())
}

/// One seed's round trip: generate, fuse a clone, execute both, compare
/// everything. Returns `(pairs, chains, quads, write_through)` fused.
fn check_seed(seed: u64) -> (u32, u32, u32, u32) {
    let plan = Gen::new(seed).finish();
    let mut fused = plan.clone();
    fuse_plan(&mut fused);
    let (base, base_f, base_i, base_a) = execute(&plan);
    let (opt, opt_f, opt_i, opt_a) = execute(&fused);
    match (&base, &opt) {
        (Ok(b), Ok(o)) => assert_eq!(b, o, "stats diverge (seed {seed})"),
        (Err(b), Err(o)) => assert_eq!(b.message(), o.message(), "errors diverge (seed {seed})"),
        _ => panic!(
            "one execution failed, the other did not (seed {seed}): unfused={base:?} fused={opt:?}"
        ),
    }
    // Buffer images must match bit-for-bit even on the error path: both
    // engines stop at the same failing work-group.
    assert_eq!(
        base_f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        opt_f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "f32 buffer diverges (seed {seed})"
    );
    assert_eq!(base_i, opt_i, "i64 buffer diverges (seed {seed})");
    assert_eq!(
        base_a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        opt_a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "accessor buffer diverges (seed {seed})"
    );
    (
        fused.fused_pairs,
        fused.fused_chains,
        fused.fused_quads,
        fused.fused_wt,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fused and unfused execution of random legal bytecode agree on
    /// registers-made-observable, statistics and error ordering.
    #[test]
    fn fused_random_bytecode_matches_unfused(seed in 0u64..u64::MAX) {
        check_seed(seed);
    }
}

/// The generator must actually feed the fusion pass — otherwise the
/// property above passes vacuously on unfusable programs. The pair
/// patterns, the three-instruction chains, the un-CSE'd 4-instruction
/// window and the write-through variants must all fire broadly.
#[test]
fn random_bytecode_exercises_fusion_broadly() {
    let (mut pairs, mut chains, mut quads, mut wt) = (0_u32, 0_u32, 0_u32, 0_u32);
    for seed in 0..128_u64 {
        let (p, c, q, w) = check_seed(seed * 7919 + 13);
        pairs += p;
        chains += c;
        quads += q;
        wt += w;
    }
    assert!(
        pairs > 100,
        "expected the random programs to trigger pair fusion broadly, got {pairs}"
    );
    assert!(
        chains > 50,
        "expected the random programs to trigger chain fusion broadly, got {chains}"
    );
    assert!(
        quads > 25,
        "expected the un-CSE'd 4-instruction window to fire broadly, got {quads}"
    );
    assert!(
        wt > 25,
        "expected the write-through chains to fire broadly, got {wt}"
    );
}

/// The new patterns are chains-gated. Sweep every fuse level over the
/// fixed seed population, through both the bytecode loop and the
/// closure-JIT tier, and count what fired: the un-CSE'd 4-instruction
/// window and the write-through chains must each fire broadly at
/// `FuseLevel::Chains` and never below it, while execution at every
/// level and tier stays bit-identical to the unfused baseline.
#[test]
fn fuse_level_sweep_pins_quad_and_write_through_gating() {
    use sycl_mlir_repro::sim::{fuse_plan_with, FuseLevel};

    for level in [FuseLevel::Off, FuseLevel::Pairs, FuseLevel::Chains] {
        let (mut quads, mut wt) = (0_u32, 0_u32);
        for seed in 0..128_u64 {
            let seed = seed * 7919 + 13;
            let plan = Gen::new(seed).finish();
            let mut fused = plan.clone();
            fuse_plan_with(&mut fused, level);
            quads += fused.fused_quads;
            wt += fused.fused_wt;

            let (base, base_f, base_i, base_a) = execute(&plan);
            for (label, (run, f, i, a)) in
                [("bytecode", execute(&fused)), ("jit", execute_jit(&fused))]
            {
                match (&base, &run) {
                    (Ok(b), Ok(o)) => {
                        assert_eq!(b, o, "stats diverge (seed {seed}, {level:?}, {label})")
                    }
                    (Err(b), Err(o)) => assert_eq!(
                        b.message(),
                        o.message(),
                        "errors diverge (seed {seed}, {level:?}, {label})"
                    ),
                    _ => panic!(
                        "one execution failed, the other did not \
                         (seed {seed}, {level:?}, {label}): unfused={base:?} fused={run:?}"
                    ),
                }
                assert_eq!(
                    base_f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "f32 buffer diverges (seed {seed}, {level:?}, {label})"
                );
                assert_eq!(
                    base_i, i,
                    "i64 buffer diverges (seed {seed}, {level:?}, {label})"
                );
                assert_eq!(
                    base_a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "accessor buffer diverges (seed {seed}, {level:?}, {label})"
                );
            }
        }
        if level == FuseLevel::Chains {
            assert!(
                quads > 25,
                "{level:?}: expected the 4-instruction window to fire broadly, got {quads}"
            );
            assert!(
                wt > 25,
                "{level:?}: expected the write-through chains to fire broadly, got {wt}"
            );
        } else {
            assert_eq!(quads, 0, "{level:?} must not form 4-instruction windows");
            assert_eq!(wt, 0, "{level:?} must not form write-through chains");
        }
    }
}

// ----------------------------------------------------------------------
// Deterministic pins: mid-chain errors and the scheduler's failure bound
// ----------------------------------------------------------------------

/// A plan whose work-items of groups `>= fail_from` run a
/// `Load`+`mulf`+`addf` chain that loads an *integer* — the `mulf`, the
/// chain's second member, raises "float op on non-float". Work-items
/// first store a marker so the set of groups that ran is observable.
fn mid_chain_failing_plan(fail_from: i64) -> KernelPlan {
    // Fixed layout: pcs 0..=9 set up registers, the guard branches to the
    // chain head at pc 12 (so the head is a jump target — legal; only
    // non-head members must not be) and the taken-path jump at pc 11
    // skips to the return at pc 16.
    let code = vec![
        // r3 = global id, r4 = group id, r5 = 0, r6 = f32 1.5, r7 = bound.
        Instr::ItemQuery {
            dst: 3,
            q: ItemQ::GlobalId,
            dim: sycl_mlir_repro::sim::plan::DimSrc::Const(0),
        },
        Instr::ItemQuery {
            dst: 4,
            q: ItemQ::GroupId,
            dim: sycl_mlir_repro::sim::plan::DimSrc::Const(0),
        },
        Instr::Const {
            dst: 5,
            val: RtValue::Int(0),
        },
        Instr::Const {
            dst: 6,
            val: RtValue::F32(1.5),
        },
        Instr::Const {
            dst: 7,
            val: RtValue::Int(fail_from),
        },
        // Marker: f32buf[gid & 15] = gid as f32.
        Instr::Const {
            dst: 8,
            val: RtValue::Int(BUF_LEN as i64 - 1),
        },
        Instr::BinInt {
            op: IntBin::And,
            dst: 9,
            l: 3,
            r: 8,
        },
        Instr::SiToFp {
            dst: 10,
            x: 3,
            f32_out: true,
        },
        Instr::Store {
            val: 10,
            mem: 0,
            idx: [9, 0, 0],
            rank: 1,
            site: 0,
        },
        // if group_id >= fail_from, run the failing chain (the
        // cmpi+branch itself fuses to CmpIBranch).
        Instr::CmpI {
            pred: CmpPred::Slt,
            dst: 11,
            l: 4,
            r: 7,
        },
        Instr::BranchIfFalse {
            cond: 11,
            target: 12, // the chain head
        },
        Instr::Jump { target: 16 }, // early groups skip to the return
        // t = load i64buf[0] (an Int!); u = t * 1.5 raises
        // "float op on non-float" from the chain's second member.
        Instr::Load {
            dst: 12,
            mem: 1,
            idx: [5, 0, 0],
            rank: 1,
            site: 1,
        },
        Instr::BinFloat {
            op: FloatBin::Mul,
            dst: 13,
            l: 12,
            r: 6,
            f32_out: false,
        },
        Instr::BinFloat {
            op: FloatBin::Add,
            dst: 14,
            l: 13,
            r: 6,
            f32_out: true,
        },
        Instr::Store {
            val: 14,
            mem: 0,
            idx: [5, 0, 0],
            rank: 1,
            site: 2,
        },
        Instr::Return {
            vals: Vec::new().into_boxed_slice(),
        },
    ];
    KernelPlan {
        funcs: vec![FuncPlan {
            code,
            reg_count: 15,
            params: vec![0, 1, 2],
            has_item_param: false,
        }],
        dense_consts: Vec::new(),
        mem_sites: 3,
        local_sites: 0,
        fused_pairs: 0,
        fused_chains: 0,
        fused_quads: 0,
        fused_wt: 0,
    }
}

/// A plan that divides by zero in every work-item: a distinct error text,
/// so the *reported* error identifies which launch the scheduler picked.
fn div_zero_plan() -> KernelPlan {
    let code = vec![
        Instr::Const {
            dst: 3,
            val: RtValue::Int(1),
        },
        Instr::Const {
            dst: 4,
            val: RtValue::Int(0),
        },
        Instr::BinInt {
            op: IntBin::DivS,
            dst: 5,
            l: 3,
            r: 4,
        },
        Instr::Return {
            vals: Vec::new().into_boxed_slice(),
        },
    ];
    KernelPlan {
        funcs: vec![FuncPlan {
            code,
            reg_count: 6,
            params: vec![0, 1, 2],
            has_item_param: false,
        }],
        dense_consts: Vec::new(),
        mem_sites: 0,
        local_sites: 0,
        fused_pairs: 0,
        fused_chains: 0,
        fused_quads: 0,
        fused_wt: 0,
    }
}

/// A superinstruction that fails **mid-chain** must raise exactly the
/// error of the unfused sequence, at the same `(launch, group)` position,
/// and the out-of-order scheduler's lexicographic failure bound must
/// still prune past it correctly: with a second launch failing everywhere
/// under a *different* error text, the first launch's group-3 error must
/// win under every thread count, fused and unfused.
#[test]
fn mid_chain_error_matches_unfused_and_bound_prunes_correctly() {
    use sycl_mlir_repro::sim::{run_plan_graph, LaunchDag, PlanLaunch};

    let unfused_a = mid_chain_failing_plan(3);
    let mut fused_a = unfused_a.clone();
    fuse_plan(&mut fused_a);
    // The failing chain fused (Load+mulf+addf), and so did the guard
    // (cmpi+branch) and the marker/store shapes.
    assert!(
        fused_a.fused_chains >= 1,
        "the failing Load+mulf+addf chain must fuse (got {} chains)",
        fused_a.fused_chains
    );
    let unfused_b = div_zero_plan();
    let mut fused_b = unfused_b.clone();
    fuse_plan(&mut fused_b);

    let nd = NdRangeSpec::d1(32, 4); // 8 groups per launch
    let run = |a: &KernelPlan, b: &KernelPlan, threads: usize| {
        let mut pool = MemoryPool::new();
        let mf = pool.alloc(DataVec::F32(vec![-1.0; BUF_LEN]));
        let mi = pool.alloc(DataVec::I64(vec![7; BUF_LEN]));
        let ma = pool.alloc(DataVec::F32(vec![0.0; BUF_LEN]));
        let acc = RtValue::Accessor(AccessorVal {
            mem: ma,
            range: [BUF_LEN as i64, 1, 1],
            offset: [0, 0, 0],
            rank: 1,
            constant: false,
        });
        let args = [
            RtValue::MemRef(MemRefVal {
                mem: mf,
                offset: 0,
                shape: [BUF_LEN as i64, 1, 1],
                rank: 1,
                space: Space::Global,
            }),
            RtValue::MemRef(MemRefVal {
                mem: mi,
                offset: 0,
                shape: [BUF_LEN as i64, 1, 1],
                rank: 1,
                space: Space::Global,
            }),
            acc,
        ];
        let launches = [
            PlanLaunch::kernel(a, &args, nd),
            PlanLaunch::kernel(b, &args, nd),
        ];
        let err = run_plan_graph(
            &launches,
            &LaunchDag::independent(2),
            &mut pool,
            &CostModel::default(),
            threads,
            false,
        )
        .expect_err("both launches fail");
        let DataVec::F32(f) = pool.data(mf) else {
            panic!()
        };
        (err.message(), f.clone())
    };

    for threads in [1_usize, 4] {
        let (unfused_msg, unfused_buf) = run(&unfused_a, &unfused_b, threads);
        let (fused_msg, fused_buf) = run(&fused_a, &fused_b, threads);
        // The minimal failure is launch 0, group 3 — the mid-chain mulf
        // error, never launch 1's division by zero.
        assert_eq!(
            unfused_msg, "float op on non-float (launch 0, work-group 3)",
            "threads={threads}: wrong launch won the failure bound"
        );
        assert_eq!(
            fused_msg, unfused_msg,
            "threads={threads}: fused chain reports a different error"
        );
        if threads == 1 {
            // Serial claim order makes the post-failure buffer state
            // deterministic: groups 0..=2 stored their markers, group 3's
            // first work-item (gid 12) stored its marker before failing,
            // and everything past the bound — including all of launch 1 —
            // was pruned. (At threads > 1 groups beyond the bound may
            // race ahead before it tightens, so only the reported error
            // is pinned there.)
            let mut expect = vec![-1.0_f32; BUF_LEN];
            for (gid, slot) in expect.iter_mut().enumerate().take(13) {
                *slot = gid as f32;
            }
            assert_eq!(unfused_buf, expect, "unfused post-failure buffer");
            assert_eq!(fused_buf, expect, "fused post-failure buffer");
        } else {
            // Keep the buffers bound so the closure's returns stay used.
            let _ = (&fused_buf, &unfused_buf);
        }
    }
}

// ----------------------------------------------------------------------
// The op-budget axis: limit trips must be fuse-invariant
// ----------------------------------------------------------------------

/// Execute `plan` alone (threads = 1, serial claim order) under `limits`.
fn execute_limited(
    plan: &KernelPlan,
    limits: &sycl_mlir_repro::sim::ExecLimits,
) -> Result<ExecStats, SimError> {
    use sycl_mlir_repro::sim::run_plan_launch_limited;
    let mut pool = MemoryPool::new();
    let mf = pool.alloc(DataVec::F32(vec![-1.0; BUF_LEN]));
    let mi = pool.alloc(DataVec::I64(vec![7; BUF_LEN]));
    let ma = pool.alloc(DataVec::F32(vec![0.0; BUF_LEN]));
    let args = [
        RtValue::MemRef(MemRefVal {
            mem: mf,
            offset: 0,
            shape: [BUF_LEN as i64, 1, 1],
            rank: 1,
            space: Space::Global,
        }),
        RtValue::MemRef(MemRefVal {
            mem: mi,
            offset: 0,
            shape: [BUF_LEN as i64, 1, 1],
            rank: 1,
            space: Space::Global,
        }),
        RtValue::Accessor(AccessorVal {
            mem: ma,
            range: [BUF_LEN as i64, 1, 1],
            offset: [0, 0, 0],
            rank: 1,
            constant: false,
        }),
    ];
    run_plan_launch_limited(
        plan,
        &args,
        NdRangeSpec::d1(32, 4),
        &mut pool,
        &CostModel::default(),
        1,
        limits,
    )
}

/// The op budget is **fuse-invariant**: a superinstruction settles the
/// full weight of its members, so for *every* budget value the three
/// fuse levels must agree — all complete with identical statistics, or
/// all trip `LimitExceeded { kind: Ops }` at the same work-group. Swept
/// exhaustively from a starving budget of 1 past the kernel's total op
/// count.
#[test]
fn op_budget_trips_are_fuse_invariant() {
    use sycl_mlir_repro::sim::{fuse_plan_with, ExecLimits, FuseLevel, LimitKind};

    // The guard never fires: a clean kernel with fusable chains.
    let plan = mid_chain_failing_plan(1 << 40);
    let levels = [FuseLevel::Off, FuseLevel::Pairs, FuseLevel::Chains];
    let plans: Vec<KernelPlan> = levels
        .iter()
        .map(|&lv| {
            let mut p = plan.clone();
            fuse_plan_with(&mut p, lv);
            p
        })
        .collect();
    assert!(
        plans[2].fused_chains >= 1 && plans[1].fused_pairs >= 1,
        "the template must actually fuse at both levels"
    );

    let (mut trips, mut completions) = (0_u32, 0_u32);
    for budget in 1..=512_u64 {
        let limits = ExecLimits {
            max_ops: Some(budget),
            ..ExecLimits::none()
        };
        let mut results = plans.iter().map(|p| execute_limited(p, &limits));
        let reference = results.next().expect("three fuse levels");
        match &reference {
            Ok(stats) => {
                completions += 1;
                for (r, lv) in results.zip(&levels[1..]) {
                    assert_eq!(
                        r.as_ref().expect("fused run must also complete"),
                        stats,
                        "budget {budget}, fuse {lv:?}: stats diverge"
                    );
                }
            }
            Err(e) => {
                trips += 1;
                assert_eq!(
                    e.limit_kind(),
                    Some(LimitKind::Ops),
                    "budget {budget}: expected an op-budget trip, got: {e}"
                );
                for (r, lv) in results.zip(&levels[1..]) {
                    let f = r.expect_err("fused run must also trip");
                    assert_eq!(
                        f.message(),
                        e.message(),
                        "budget {budget}, fuse {lv:?}: trip position diverges"
                    );
                }
            }
        }
    }
    // The sweep must cover both regimes, or the property is vacuous.
    assert!(trips > 0, "no budget in the sweep tripped");
    assert!(completions > 0, "no budget in the sweep completed");
}

// ----------------------------------------------------------------------
// The closure-JIT tier: every seed through compiled closures
// ----------------------------------------------------------------------

/// [`execute`] through the closure-JIT tier: the identical launch, pool
/// image and nd-range, but with the plan compiled to a closure chain and
/// attached to the graph launch (a graph of one is exactly what
/// `run_plan_launch` runs internally).
fn execute_jit(plan: &KernelPlan) -> (Result<ExecStats, SimError>, Vec<f32>, Vec<i64>, Vec<f32>) {
    use sycl_mlir_repro::sim::{jit_compile, run_plan_graph, LaunchDag, PlanLaunch};
    let mut pool = MemoryPool::new();
    let mf = pool.alloc(DataVec::F32(
        (0..BUF_LEN).map(|i| i as f32 * 0.25).collect(),
    ));
    let mi = pool.alloc(DataVec::I64((0..BUF_LEN).map(|i| i as i64 - 4).collect()));
    let ma = pool.alloc(DataVec::F32(
        (0..BUF_LEN).map(|i| i as f32 * 0.5 - 2.0).collect(),
    ));
    let args = [
        RtValue::MemRef(MemRefVal {
            mem: mf,
            offset: 0,
            shape: [BUF_LEN as i64, 1, 1],
            rank: 1,
            space: Space::Global,
        }),
        RtValue::MemRef(MemRefVal {
            mem: mi,
            offset: 0,
            shape: [BUF_LEN as i64, 1, 1],
            rank: 1,
            space: Space::Global,
        }),
        RtValue::Accessor(AccessorVal {
            mem: ma,
            range: [BUF_LEN as i64, 1, 1],
            offset: [0, 0, 0],
            rank: 1,
            constant: false,
        }),
    ];
    let compiled = jit_compile(plan);
    let launches = [PlanLaunch {
        plan: Some(plan),
        args: &args,
        nd: NdRangeSpec::d1(8, 4),
        jit: Some(&compiled),
        host: None,
        facts: None,
    }];
    let result = run_plan_graph(
        &launches,
        &LaunchDag::independent(1),
        &mut pool,
        &CostModel::default(),
        1,
        false,
    )
    .map(|mut out| out.stats.pop().expect("one launch in, one stats out"));
    let DataVec::F32(f) = pool.data(mf) else {
        panic!()
    };
    let DataVec::I64(i) = pool.data(mi) else {
        panic!()
    };
    let DataVec::F32(a) = pool.data(ma) else {
        panic!()
    };
    (result, f.clone(), i.clone(), a.clone())
}

/// One seed's closure-tier round trip: the compiled chain must agree
/// with the bytecode loop on statistics, error texts and every buffer
/// bit — for the raw plan and for its fused form.
fn check_seed_jit(seed: u64) {
    let plan = Gen::new(seed).finish();
    let mut fused = plan.clone();
    fuse_plan(&mut fused);
    for (p, label) in [(&plan, "unfused"), (&fused, "fused")] {
        let (base, base_f, base_i, base_a) = execute(p);
        let (jit, jit_f, jit_i, jit_a) = execute_jit(p);
        match (&base, &jit) {
            (Ok(b), Ok(j)) => assert_eq!(b, j, "stats diverge (seed {seed}, {label})"),
            (Err(b), Err(j)) => assert_eq!(
                b.message(),
                j.message(),
                "errors diverge (seed {seed}, {label})"
            ),
            _ => panic!(
                "one tier failed, the other did not (seed {seed}, {label}): \
                 bytecode={base:?} jit={jit:?}"
            ),
        }
        assert_eq!(
            base_f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            jit_f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "f32 buffer diverges (seed {seed}, {label})"
        );
        assert_eq!(base_i, jit_i, "i64 buffer diverges (seed {seed}, {label})");
        assert_eq!(
            base_a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            jit_a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "accessor buffer diverges (seed {seed}, {label})"
        );
    }
}

/// Every fixed fuzz seed through the closure tier — the same seed
/// population as `random_bytecode_exercises_fusion_broadly`, so the
/// closure compiler sees every superinstruction the fuzzer can build.
#[test]
fn closure_jit_matches_bytecode_on_all_fuzz_seeds() {
    for seed in 0..128_u64 {
        check_seed_jit(seed * 7919 + 13);
    }
}

/// [`execute_limited`] through the closure-JIT tier (same launch shape).
fn execute_jit_limited(
    plan: &KernelPlan,
    limits: &sycl_mlir_repro::sim::ExecLimits,
) -> Result<ExecStats, SimError> {
    use sycl_mlir_repro::sim::{jit_compile, run_plan_graph_limited, LaunchDag, PlanLaunch};
    let mut pool = MemoryPool::new();
    let mf = pool.alloc(DataVec::F32(vec![-1.0; BUF_LEN]));
    let mi = pool.alloc(DataVec::I64(vec![7; BUF_LEN]));
    let ma = pool.alloc(DataVec::F32(vec![0.0; BUF_LEN]));
    let args = [
        RtValue::MemRef(MemRefVal {
            mem: mf,
            offset: 0,
            shape: [BUF_LEN as i64, 1, 1],
            rank: 1,
            space: Space::Global,
        }),
        RtValue::MemRef(MemRefVal {
            mem: mi,
            offset: 0,
            shape: [BUF_LEN as i64, 1, 1],
            rank: 1,
            space: Space::Global,
        }),
        RtValue::Accessor(AccessorVal {
            mem: ma,
            range: [BUF_LEN as i64, 1, 1],
            offset: [0, 0, 0],
            rank: 1,
            constant: false,
        }),
    ];
    let compiled = jit_compile(plan);
    let launches = [PlanLaunch {
        plan: Some(plan),
        args: &args,
        nd: NdRangeSpec::d1(32, 4),
        jit: Some(&compiled),
        host: None,
        facts: None,
    }];
    let mut out = run_plan_graph_limited(
        &launches,
        &LaunchDag::independent(1),
        &mut pool,
        &CostModel::default(),
        1,
        false,
        limits,
        sycl_mlir_repro::sim::SchedPolicy::default(),
    )?;
    Ok(out.stats.pop().expect("one launch in, one stats out"))
}

/// The op budget is **tier-invariant** on top of fuse-invariant: at
/// every fuse level and every budget value, the closure tier and the
/// bytecode loop either both complete with identical statistics or both
/// trip `LimitExceeded { kind: Ops }` with the same message (hence the
/// same work-group position) — the closure tier charges the same
/// per-instruction weights from its flattened tables.
#[test]
fn op_budget_trips_are_tier_invariant() {
    use sycl_mlir_repro::sim::{fuse_plan_with, ExecLimits, FuseLevel, LimitKind};

    let plan = mid_chain_failing_plan(1 << 40);
    let levels = [FuseLevel::Off, FuseLevel::Pairs, FuseLevel::Chains];
    let plans: Vec<KernelPlan> = levels
        .iter()
        .map(|&lv| {
            let mut p = plan.clone();
            fuse_plan_with(&mut p, lv);
            p
        })
        .collect();

    let (mut trips, mut completions) = (0_u32, 0_u32);
    for budget in 1..=512_u64 {
        let limits = ExecLimits {
            max_ops: Some(budget),
            ..ExecLimits::none()
        };
        for (p, lv) in plans.iter().zip(&levels) {
            let bytecode = execute_limited(p, &limits);
            let jit = execute_jit_limited(p, &limits);
            match (&bytecode, &jit) {
                (Ok(b), Ok(j)) => {
                    completions += 1;
                    assert_eq!(
                        b, j,
                        "budget {budget}, fuse {lv:?}: stats diverge across tiers"
                    );
                }
                (Err(b), Err(j)) => {
                    trips += 1;
                    assert_eq!(
                        b.limit_kind(),
                        Some(LimitKind::Ops),
                        "budget {budget}, fuse {lv:?}: expected an op-budget trip, got: {b}"
                    );
                    assert_eq!(
                        b.message(),
                        j.message(),
                        "budget {budget}, fuse {lv:?}: trip position diverges across tiers"
                    );
                }
                _ => panic!(
                    "budget {budget}, fuse {lv:?}: one tier tripped, the other did not: \
                     bytecode={bytecode:?} jit={jit:?}"
                ),
            }
        }
    }
    assert!(trips > 0, "no budget in the sweep tripped");
    assert!(completions > 0, "no budget in the sweep completed");
}

// ----------------------------------------------------------------------
// PR 10: the decode-time verifier over the fuzz population, plus
// deliberate bait — plans the verifier must reject (or must refuse to
// prove) with deterministic, structured findings.
// ----------------------------------------------------------------------

/// [`execute`] through the graph scheduler with verifier `facts`
/// attached: proven sites take the unchecked-index fast path. Must stay
/// bit-identical to the fully-checked run for every legal plan.
#[allow(clippy::type_complexity)]
fn execute_with_facts(
    plan: &KernelPlan,
    facts: Option<&sycl_mlir_repro::sim::PlanFacts>,
) -> (Result<ExecStats, SimError>, Vec<f32>, Vec<i64>, Vec<f32>) {
    use sycl_mlir_repro::sim::{run_plan_graph, LaunchDag, PlanLaunch};
    let mut pool = MemoryPool::new();
    let mf = pool.alloc(DataVec::F32(
        (0..BUF_LEN).map(|i| i as f32 * 0.25).collect(),
    ));
    let mi = pool.alloc(DataVec::I64((0..BUF_LEN).map(|i| i as i64 - 4).collect()));
    let ma = pool.alloc(DataVec::F32(
        (0..BUF_LEN).map(|i| i as f32 * 0.5 - 2.0).collect(),
    ));
    let args = [
        RtValue::MemRef(MemRefVal {
            mem: mf,
            offset: 0,
            shape: [BUF_LEN as i64, 1, 1],
            rank: 1,
            space: Space::Global,
        }),
        RtValue::MemRef(MemRefVal {
            mem: mi,
            offset: 0,
            shape: [BUF_LEN as i64, 1, 1],
            rank: 1,
            space: Space::Global,
        }),
        RtValue::Accessor(AccessorVal {
            mem: ma,
            range: [BUF_LEN as i64, 1, 1],
            offset: [0, 0, 0],
            rank: 1,
            constant: false,
        }),
    ];
    let launches = [PlanLaunch {
        plan: Some(plan),
        args: &args,
        nd: NdRangeSpec::d1(8, 4),
        jit: None,
        host: None,
        facts,
    }];
    let result = run_plan_graph(
        &launches,
        &LaunchDag::independent(1),
        &mut pool,
        &CostModel::default(),
        1,
        false,
    )
    .map(|mut out| out.stats.pop().expect("one launch in, one stats out"));
    let DataVec::F32(f) = pool.data(mf) else {
        panic!()
    };
    let DataVec::I64(i) = pool.data(mi) else {
        panic!()
    };
    let DataVec::F32(a) = pool.data(ma) else {
        panic!()
    };
    (result, f.clone(), i.clone(), a.clone())
}

/// Every fuzz seed is **lint-clean** (the generator emits structurally
/// legal bytecode), the verifier is deterministic on it, and running
/// the fused plan with the proven-site facts attached is bit-identical
/// to the fully-checked run — across the whole 128-seed population.
/// The interval pass must also prove a substantial share of the masked
/// (`& 15`) accessor subscripts, or the fast path is dead code.
#[test]
fn verifier_accepts_fuzz_population_and_elision_is_bit_identical() {
    use sycl_mlir_repro::sim::verify_plan;
    let (mut proven_total, mut sites_total) = (0_u64, 0_u64);
    for seed in 0..128_u64 {
        let seed = seed * 7919 + 13;
        let plan = Gen::new(seed).finish();
        let mut facts = verify_plan(&plan)
            .unwrap_or_else(|errs| panic!("fuzz seed {seed} must verify clean: {errs:?}"));
        let again = verify_plan(&plan).expect("deterministic");
        assert_eq!(
            (facts.sites_total, facts.sites_proven),
            (again.sites_total, again.sites_proven),
            "verification must be deterministic (seed {seed})"
        );
        proven_total += u64::from(facts.sites_proven);
        sites_total += u64::from(facts.sites_total);
        // The fuzz plans run standalone (no IR module), so the device
        // layer never fills the barrier counts in. Mark the barriers
        // unproven so the A/B below isolates the *bounds-check* elision.
        facts.barriers_total = 1;
        facts.barriers_uniform = 0;
        // Verification happens pre-fusion; fusion preserves site ids, so
        // the proofs transfer to the fused plan — exactly the product
        // pipeline's order.
        let mut fused = plan.clone();
        fuse_plan(&mut fused);
        for p in [&plan, &fused] {
            let (base, bf, bi, ba) = execute_with_facts(p, None);
            let (fast, ff, fi, fa) = execute_with_facts(p, Some(&facts));
            match (&base, &fast) {
                (Ok(b), Ok(f)) => assert_eq!(b, f, "stats diverge under elision (seed {seed})"),
                (Err(b), Err(f)) => assert_eq!(
                    b.message(),
                    f.message(),
                    "errors diverge under elision (seed {seed})"
                ),
                _ => panic!(
                    "elision changed the outcome (seed {seed}): checked={base:?} elided={fast:?}"
                ),
            }
            assert_eq!(
                bf.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                ff.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "f32 buffer diverges under elision (seed {seed})"
            );
            assert_eq!(bi, fi, "i64 buffer diverges under elision (seed {seed})");
            assert_eq!(
                ba.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                fa.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "accessor buffer diverges under elision (seed {seed})"
            );
        }
    }
    // The fuzz population gathers through *loaded* indices on purpose
    // (unprovable by design), so the provable share is lower than the
    // benchsuite's; the population is fixed, so the floor is exact.
    assert!(
        proven_total * 6 >= sites_total,
        "expected a substantial provable share, got {proven_total}/{sites_total}"
    );
}

/// A minimal legal single-function plan around `body`, with the fuzz
/// parameter convention (f32 memref r0, i64 memref r1, accessor r2).
fn bait_plan(body: Vec<Instr>, reg_count: u32, mem_sites: u32) -> KernelPlan {
    KernelPlan {
        funcs: vec![FuncPlan {
            code: body,
            reg_count,
            params: vec![0, 1, 2],
            has_item_param: false,
        }],
        dense_consts: Vec::new(),
        mem_sites,
        local_sites: 0,
        fused_pairs: 0,
        fused_chains: 0,
        fused_quads: 0,
        fused_wt: 0,
    }
}

/// Bait 1 — a provably out-of-bounds subscript. Not a *verification*
/// error (buffer lengths are runtime facts), but the per-launch
/// instantiation must refuse to elide the site and both runs must fail
/// with byte-identical out-of-bounds texts and positions.
#[test]
fn oob_bait_is_never_elided_and_fails_identically() {
    use sycl_mlir_repro::sim::verify_plan;
    let plan = bait_plan(
        vec![
            Instr::Const {
                dst: 3,
                val: RtValue::Int(999),
            },
            Instr::Const {
                dst: 4,
                val: RtValue::F32(1.0),
            },
            Instr::Store {
                val: 4,
                mem: 0,
                idx: [3, 0, 0],
                rank: 1,
                site: 0,
            },
            Instr::Return {
                vals: Vec::new().into_boxed_slice(),
            },
        ],
        5,
        1,
    );
    let mut facts = verify_plan(&plan).expect("structurally legal");
    facts.barriers_total = 1;
    facts.barriers_uniform = 0;
    let (base, ..) = execute_with_facts(&plan, None);
    let (fast, ..) = execute_with_facts(&plan, Some(&facts));
    let be = base.expect_err("store at 999 is out of bounds");
    let fe = fast.expect_err("store at 999 is out of bounds");
    assert_eq!(be, fe, "facts must not change the OOB failure");
    assert!(
        be.message()
            .contains("device memory access out of bounds: index 999 of buffer"),
        "expected the exact bounds text, got: {}",
        be.message()
    );
}

/// Bait 2 — type-confused register reuse: an integer register fed to a
/// float ALU op. The type-class pass must reject it with the offending
/// pc, identically on every run (what strict rejects is exactly what
/// lint reports).
#[test]
fn type_confusion_bait_is_rejected() {
    use sycl_mlir_repro::sim::verify_plan;
    let plan = bait_plan(
        vec![
            Instr::Const {
                dst: 3,
                val: RtValue::Int(7),
            },
            Instr::BinFloat {
                op: FloatBin::Add,
                dst: 4,
                l: 3,
                r: 3,
                f32_out: false,
            },
            Instr::Return {
                vals: Vec::new().into_boxed_slice(),
            },
        ],
        5,
        0,
    );
    let errs = verify_plan(&plan).expect_err("type confusion must be rejected");
    assert_eq!(
        verify_plan(&plan).expect_err("deterministic"),
        errs,
        "strict must reject exactly what lint reports"
    );
    assert!(
        errs.iter().any(|e| {
            e.pc == 1
                && e.message
                    .contains("holds an integer but is used as a float")
        }),
        "expected the type-class finding at pc 1, got: {errs:?}"
    );
}

/// Bait 3 — a jump into the middle of an instruction window, skipping
/// the definition its target consumes; and a jump clean out of the
/// function. Both must be rejected with structured findings, never a
/// panic.
#[test]
fn corrupted_jump_bait_is_rejected() {
    use sycl_mlir_repro::sim::verify_plan;
    // Jump over the definition of r3 straight into its use.
    let skip_def = bait_plan(
        vec![
            Instr::Jump { target: 2 },
            Instr::Const {
                dst: 3,
                val: RtValue::F32(2.0),
            },
            Instr::BinFloat {
                op: FloatBin::Mul,
                dst: 4,
                l: 3,
                r: 3,
                f32_out: false,
            },
            Instr::Return {
                vals: Vec::new().into_boxed_slice(),
            },
        ],
        5,
        0,
    );
    let errs = verify_plan(&skip_def).expect_err("jump past a def must be rejected");
    assert!(
        errs.iter()
            .any(|e| e.pc == 2 && e.message.contains("register r3 read before definition")),
        "expected the def-before-use finding at the jump target, got: {errs:?}"
    );

    // Jump target outside the function entirely: a fatal structural
    // finding from the first pass.
    let out_of_range = bait_plan(
        vec![
            Instr::Jump { target: 999 },
            Instr::Return {
                vals: Vec::new().into_boxed_slice(),
            },
        ],
        3,
        0,
    );
    let errs = verify_plan(&out_of_range).expect_err("wild jump must be rejected");
    assert!(
        errs.iter()
            .any(|e| e.pc == 0 && e.message.contains("pc target 999 out of bounds")),
        "expected the fatal target finding, got: {errs:?}"
    );
    assert_eq!(
        verify_plan(&out_of_range).expect_err("deterministic"),
        errs,
        "strict must reject exactly what lint reports"
    );
}

/// Randomly corrupting one jump target of every fuzz seed's plan either
/// leaves it verifiable or produces a deterministic, structured
/// rejection — `verify_plan` must never panic on corrupted bytecode and
/// must report the same findings every time (the strict/lint contract).
#[test]
fn corrupted_fuzz_plans_reject_deterministically() {
    use sycl_mlir_repro::sim::verify_plan;
    let mut rejected = 0_u32;
    for seed in 0..128_u64 {
        let seed = seed * 7919 + 13;
        let mut plan = Gen::new(seed).finish();
        let mut rng = TestRng::new(seed ^ 0x5eed);
        let code = &mut plan.funcs[0].code;
        let len = code.len();
        // Corrupt the first branching instruction (if any) to a random
        // in-or-out-of-range pc; otherwise corrupt a register operand.
        let corrupted = code.iter_mut().find_map(|instr| match instr {
            Instr::Jump { target } | Instr::BranchIfFalse { target, .. } => {
                *target = rng.below(len * 2) as u32;
                Some(())
            }
            Instr::ForEnter { exit, .. } => {
                *exit = rng.below(len * 2) as u32;
                Some(())
            }
            _ => None,
        });
        if corrupted.is_none() {
            // No branches this seed: confuse a binop's operand instead.
            for instr in code.iter_mut() {
                if let Instr::BinFloat { l, .. } = instr {
                    *l = 1; // r1 is the i64 memref parameter — a memref fed to a float op
                    break;
                }
            }
        }
        let first = verify_plan(&plan);
        let second = verify_plan(&plan);
        match (first, second) {
            (Ok(a), Ok(b)) => {
                assert_eq!(
                    (a.sites_total, a.sites_proven),
                    (b.sites_total, b.sites_proven),
                    "facts must be deterministic (seed {seed})"
                );
            }
            (Err(a), Err(b)) => {
                assert_eq!(a, b, "findings must be deterministic (seed {seed})");
                assert!(!a.is_empty());
                rejected += 1;
            }
            _ => panic!("verification verdict must be deterministic (seed {seed})"),
        }
    }
    assert!(
        rejected > 32,
        "expected corruption to trip the verifier broadly, got {rejected}/128"
    );
}
