//! Integration tests reproducing every listing of the paper as an
//! executable assertion (see DESIGN.md's per-experiment index).

use sycl_mlir_repro::analysis::{
    MemoryAccessAnalysis, ReachingDefinitions, Uniformity, UniformityAnalysis,
};
use sycl_mlir_repro::dialects::{affine, arith, func, memref, scf};
use sycl_mlir_repro::frontend::full_context;
use sycl_mlir_repro::ir::Pass;
use sycl_mlir_repro::ir::{Attribute, Builder, Module, OpId, WalkControl};
use sycl_mlir_repro::sycl::device as sdev;
use sycl_mlir_repro::sycl::types::{accessor_type, item_type, nd_item_type, AccessMode, Target};
use sycl_mlir_repro::transform::DetectReductionPass;

/// Listing 1: `{MODS: a, PMODS: b}` for the load of `%ptr1` after the
/// two-armed store.
#[test]
fn listing1_reaching_definitions() {
    let ctx = full_context();
    let mut m = Module::new(&ctx);
    let memt = ctx.memref_type(ctx.i32_type(), &[]);
    let top = m.top();
    let (f, entry) = func::build_func(
        &mut m,
        top,
        "foo",
        &[
            ctx.i1_type(),
            ctx.i32_type(),
            ctx.i32_type(),
            memt.clone(),
            memt,
        ],
        &[],
    );
    let cond = m.block_arg(entry, 0);
    let v1 = m.block_arg(entry, 1);
    let v2 = m.block_arg(entry, 2);
    let ptr1 = m.block_arg(entry, 3);
    let ptr2 = m.block_arg(entry, 4);
    let load = {
        let mut b = Builder::at_end(&mut m, entry);
        scf::build_if(
            &mut b,
            cond,
            &[],
            |inner| {
                let s = memref::store(inner, v1, ptr1, &[]);
                inner
                    .module()
                    .set_attr(s, "tag", Attribute::Str("a".into()));
                vec![]
            },
            |inner| {
                let s = memref::store(inner, v2, ptr2, &[]);
                inner
                    .module()
                    .set_attr(s, "tag", Attribute::Str("b".into()));
                vec![]
            },
        );
        let l = memref::load(&mut b, ptr1, &[]);
        func::build_return(&mut b, &[]);
        b.module().def_op(l).unwrap()
    };
    sycl_mlir_repro::ir::verify(&m).unwrap();

    let rd = ReachingDefinitions::compute(&m, f);
    let defs = rd.defs_for_load(&m, load);
    let tag = |op: OpId| {
        m.attr(op, "tag")
            .and_then(|a| a.as_str())
            .unwrap()
            .to_string()
    };
    assert_eq!(
        defs.mods().into_iter().map(tag).collect::<Vec<_>>(),
        vec!["a"]
    );
    let tag2 = |op: OpId| {
        m.attr(op, "tag")
            .and_then(|a| a.as_str())
            .unwrap()
            .to_string()
    };
    assert_eq!(
        defs.pmods().into_iter().map(tag2).collect::<Vec<_>>(),
        vec!["b"]
    );
}

/// Listing 2: `%cond`, `%load` and `%cond1` are all non-uniform.
#[test]
fn listing2_uniformity() {
    let ctx = full_context();
    let mut m = Module::new(&ctx);
    let nd2 = nd_item_type(&ctx, 2);
    let top = m.top();
    let (f, entry) = func::build_func(&mut m, top, "non_uniform", &[nd2, ctx.index_type()], &[]);
    sdev::mark_kernel(&mut m, f);
    let item = m.block_arg(entry, 0);
    let idx = m.block_arg(entry, 1);
    let (cond, load, cond1) = {
        let mut b = Builder::at_end(&mut m, entry);
        let i64t = b.ctx().i64_type();
        let alloca = memref::alloca(&mut b, i64t.clone(), &[10]);
        let gid = sdev::global_id(&mut b, item, 0);
        let zero = arith::constant_index(&mut b, 0);
        let cond = arith::cmpi(&mut b, "sgt", gid, zero);
        let c1 = arith::constant_int(&mut b, 1, i64t.clone());
        let c2 = arith::constant_int(&mut b, 2, i64t.clone());
        scf::build_if(
            &mut b,
            cond,
            &[],
            |inner| {
                memref::store(inner, c1, alloca, &[idx]);
                vec![]
            },
            |inner| {
                memref::store(inner, c2, alloca, &[idx]);
                vec![]
            },
        );
        let load = memref::load(&mut b, alloca, &[idx]);
        let zero64 = arith::constant_int(&mut b, 0, i64t);
        let cond1 = arith::cmpi(&mut b, "sgt", load, zero64);
        func::build_return(&mut b, &[]);
        (cond, load, cond1)
    };
    let ua = UniformityAnalysis::compute(&m, f);
    assert_eq!(ua.value(cond), Uniformity::NonUniform);
    assert_eq!(ua.value(load), Uniformity::NonUniform);
    assert_eq!(ua.value(cond1), Uniformity::NonUniform);
}

/// Listing 3: the access matrix and offset vector of §V-D.
#[test]
fn listing3_access_matrix() {
    let ctx = full_context();
    let mut m = Module::new(&ctx);
    let acc3 = accessor_type(&ctx, ctx.f32_type(), 3, AccessMode::Read, Target::Global);
    let item2 = item_type(&ctx, 2);
    let top = m.top();
    let (f, entry) = func::build_func(&mut m, top, "mem_acc", &[acc3, item2], &[]);
    sdev::mark_kernel(&mut m, f);
    let acc = m.block_arg(entry, 0);
    let item = m.block_arg(entry, 1);
    {
        let mut b = Builder::at_end(&mut m, entry);
        let gid_x = sdev::item_get_id(&mut b, item, 0);
        let gid_y = sdev::item_get_id(&mut b, item, 1);
        let zero = arith::constant_index(&mut b, 0);
        let n = arith::constant_index(&mut b, 64);
        let one = arith::constant_index(&mut b, 1);
        affine::build_affine_for(&mut b, zero, n, one, &[], |inner, i, _| {
            let c1 = arith::constant_index(inner, 1);
            let c2 = arith::constant_index(inner, 2);
            let add1 = arith::addi(inner, gid_x, c1);
            let mul1 = arith::muli(inner, i, c2);
            let add1a = arith::addi(inner, mul1, c2);
            let add1b = arith::addi(inner, add1a, gid_y);
            let id = sdev::make_id(inner, &[add1, mul1, add1b]);
            let view = sdev::subscript(inner, acc, id);
            let z = arith::constant_index(inner, 0);
            affine::load(inner, view, &[z]);
            vec![]
        });
        func::build_return(&mut b, &[]);
    }
    let maa = MemoryAccessAnalysis::analyze(&m, f);
    assert_eq!(maa.accesses.len(), 1);
    let a = &maa.accesses[0];
    // The exact matrix and offsets printed in §V-D.
    assert_eq!(a.matrix, vec![vec![1, 0, 0], vec![0, 0, 2], vec![0, 1, 2]]);
    assert_eq!(a.offsets, vec![1, 0, 2]);
}

/// Listings 4 → 5: the reduction rewrite produces the `iter_args` loop and
/// leaves exactly one load and one store of the reduced element.
#[test]
fn listing4_to_listing5_reduction() {
    let ctx = full_context();
    let mut m = Module::new(&ctx);
    let f32t = ctx.f32_type();
    let mem1 = ctx.memref_type(f32t.clone(), &[1]);
    let memd = ctx.memref_type(f32t, &[-1]);
    let top = m.top();
    let (f, entry) = func::build_func(
        &mut m,
        top,
        "reduction",
        &[mem1, memd, ctx.index_type(), ctx.index_type()],
        &[],
    );
    m.set_attr(
        f,
        sycl_mlir_repro::analysis::alias::ARG_BUFFER_IDS_ATTR,
        Attribute::DenseI64(vec![0, 1, -1, -1]),
    );
    let ptr = m.block_arg(entry, 0);
    let other = m.block_arg(entry, 1);
    let lb = m.block_arg(entry, 2);
    let ub = m.block_arg(entry, 3);
    {
        let mut b = Builder::at_end(&mut m, entry);
        let one = arith::constant_index(&mut b, 1);
        let zero = arith::constant_index(&mut b, 0);
        affine::build_affine_for(&mut b, lb, ub, one, &[], |inner, iv, _| {
            let val = affine::load(inner, ptr, &[zero]);
            let o = affine::load(inner, other, &[iv]);
            let res = arith::addf(inner, val, o);
            affine::store(inner, res, ptr, &[zero]);
            vec![]
        });
        func::build_return(&mut b, &[]);
    }
    let mut pass = DetectReductionPass::default();
    assert!(pass.run(&mut m).unwrap());
    assert_eq!(pass.rewritten, 1);
    sycl_mlir_repro::ir::verify(&m).unwrap();

    // Listing 5 shape: loop carries one scalar; the element is loaded once
    // before and stored once after.
    let mut loops = Vec::new();
    m.walk(m.top(), &mut |op| {
        if m.op_is(op, "affine.for") {
            loops.push(op);
        }
        WalkControl::Advance
    });
    assert_eq!(loops.len(), 1);
    assert_eq!(m.op_results(loops[0]).len(), 1, "one iter_args result");
    let mut stores_in_loop = 0;
    m.walk(loops[0], &mut |op| {
        if m.op_is(op, "affine.store") {
            stores_in_loop += 1;
        }
        WalkControl::Advance
    });
    assert_eq!(stores_in_loop, 0, "no store left inside the loop");
}

/// Listings 6 → 7 and 8 → 9 combined: the GEMM application compiled by the
/// full SYCL-MLIR flow shows the raised host ops and the internalized
/// kernel with its two barriers.
#[test]
fn listing6_to_9_full_flow() {
    let spec = sycl_mlir_repro::benchsuite::all_workloads()
        .into_iter()
        .find(|w| w.name == "GEMM")
        .expect("GEMM registered");
    let app = (spec.build)(32);
    let mut module = app.module;
    let flow = sycl_mlir_repro::core::Flow::new(sycl_mlir_repro::core::FlowKind::SyclMlir);
    flow.compile(&mut module).expect("pipeline runs");

    let text = sycl_mlir_repro::ir::print_module(&module);
    // Listing 9: raised host ops.
    assert!(text.contains("sycl.host.constructor"), "{text}");
    assert!(text.contains("sycl.host.schedule_kernel"), "{text}");
    assert!(
        !text.contains("llvm.call"),
        "no un-raised runtime calls left"
    );
    // Listing 7: two barriers and two local tiles in the kernel.
    assert_eq!(text.matches("sycl.group.barrier").count(), 2, "{text}");
    assert_eq!(text.matches("sycl.local.alloca").count(), 2, "{text}");
}

/// §VIII: Gramschmidt's candidate loop sits in a divergent region and is
/// not internalized; Correlation/Covariance expose 5 and 4 reduction
/// opportunities.
#[test]
fn section8_optimization_counts() {
    use sycl_mlir_repro::transform::{
        DeadArgumentEliminationPass, HostDeviceConstantPropagationPass, LicmPass,
        LoopInternalizationPass, RaiseHostPass,
    };
    let counts = |name: &str| {
        let spec = sycl_mlir_repro::benchsuite::all_workloads()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap_or_else(|| panic!("{name} registered"));
        let app = (spec.build)(32);
        let mut m = app.module;
        RaiseHostPass::default().run(&mut m).unwrap();
        HostDeviceConstantPropagationPass::default()
            .run(&mut m)
            .unwrap();
        sycl_mlir_repro::transform::CanonicalizePass
            .run(&mut m)
            .unwrap();
        sycl_mlir_repro::transform::CsePass.run(&mut m).unwrap();
        LicmPass::new(true).run(&mut m).unwrap();
        let mut red = DetectReductionPass::default();
        red.run(&mut m).unwrap();
        let mut int = LoopInternalizationPass::default();
        int.run(&mut m).unwrap();
        let _ = DeadArgumentEliminationPass::default().run(&mut m);
        (red.rewritten, int.stats.clone())
    };

    let (red, int) = counts("Correlation");
    assert_eq!(
        red, 5,
        "Correlation has five reduction opportunities (§VIII)"
    );
    assert_eq!(
        int.internalized_loops, 0,
        "correlation loops sit in divergent regions"
    );

    let (red, _) = counts("Covariance");
    assert_eq!(
        red, 4,
        "Covariance has four reduction opportunities (§VIII)"
    );

    let (_, int) = counts("Gramschmidt");
    assert!(
        int.skipped_divergent >= 1,
        "Gramschmidt candidate skipped for divergence (§VIII)"
    );
    assert_eq!(int.internalized_loops, 0);

    let (_, int) = counts("GEMM");
    assert_eq!(int.prefetched_refs, 2, "GEMM prefetches two refs (§VIII)");

    let (_, int) = counts("SYR2K");
    assert_eq!(int.prefetched_refs, 4, "SYR2K prefetches four refs (§VIII)");
}
