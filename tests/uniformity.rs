//! The uniformity analysis (§V-C, Listing 2) against *real compiled
//! kernels* — the benchsuite's reduction-family barrier ladders must come
//! out statically uniform (that is what licenses the divergence-free
//! group driver), while an `scf.if`-guarded barrier under a work-item-id
//! condition must be flagged divergent.

use sycl_mlir_repro::analysis::uniformity::UniformityAnalysis;
use sycl_mlir_repro::benchsuite::all_workloads;
use sycl_mlir_repro::core::FlowKind;
use sycl_mlir_repro::dialects::{arith, scf};
use sycl_mlir_repro::frontend::{full_context, KernelModuleBuilder, KernelSig};
use sycl_mlir_repro::ir::{Module, OpId, WalkControl};
use sycl_mlir_repro::runtime::compile_program;
use sycl_mlir_repro::sycl::device as sdev;
use sycl_mlir_repro::sycl::types::AccessMode;
use sycl_mlir_repro::sycl::DEVICE_MODULE_SYM;

/// All `sycl.group.barrier` ops inside `func`, in walk order.
fn barriers_in(m: &Module, func: OpId) -> Vec<OpId> {
    let mut out = Vec::new();
    m.walk(func, &mut |op| {
        if m.op_is(op, "sycl.group.barrier") {
            out.push(op);
        }
        WalkControl::Advance
    });
    out
}

/// Every barrier of every reduction-family kernel — tree reduction,
/// segmented scan, the work-group-local dot product — sits in uniform
/// control flow: their ladders branch on *loop counters and constants*,
/// never on work-item ids.
#[test]
fn reduction_family_barrier_ladders_are_uniform() {
    let names = [
        "TreeReduce (float32)",
        "SegScan (float32)",
        "DotProd (WG-local)",
        "TreeReduce (dyn nd-range)",
    ];
    let mut barriers_seen = 0_usize;
    for name in names {
        let w = all_workloads()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap_or_else(|| panic!("{name} registered"));
        let app = (w.build)(4096);
        let program =
            compile_program(FlowKind::SyclMlir, app.module).unwrap_or_else(|e| panic!("{e}"));
        let m = &program.module;
        let device_mod = m
            .lookup_symbol(m.top(), DEVICE_MODULE_SYM)
            .expect("device module");
        for f in m.funcs_in(device_mod) {
            if !sdev::is_kernel(m, f) {
                continue;
            }
            let ua = UniformityAnalysis::compute(m, f);
            for b in barriers_in(m, f) {
                barriers_seen += 1;
                assert!(
                    !ua.is_divergent_at(m, b, f),
                    "{name}: a reduction-ladder barrier was flagged divergent"
                );
            }
        }
    }
    assert!(
        barriers_seen >= 4,
        "expected the reduction family to contain barrier ladders, saw {barriers_seen}"
    );
}

/// A barrier guarded by `scf.if (global_id == 0)` is the §V-C deadlock
/// shape: only one work-item reaches it. The analysis must flag the
/// barrier's position divergent — this is exactly what keeps the device
/// layer from counting it statically uniform.
#[test]
fn id_guarded_barrier_is_divergent() {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let sig = KernelSig::new("guarded", 1, true).accessor(ctx.f32_type(), 1, AccessMode::ReadWrite);
    kb.add_kernel(&sig, |b, args, item| {
        let i = sdev::global_id(b, item, 0);
        let zero = arith::constant_index(b, 0);
        let cond = arith::cmpi(b, "eq", i, zero);
        scf::build_if(
            b,
            cond,
            &[],
            |inner| {
                let g = sdev::get_group(inner, item);
                sdev::group_barrier(inner, g);
                vec![]
            },
            |_| vec![],
        );
        let v = sdev::load_via_id(b, args[0], &[i]);
        sdev::store_via_id(b, v, args[0], &[i]);
    });
    let device = kb.device_module();
    let m = kb.module();
    let kernel = m
        .funcs_in(device)
        .into_iter()
        .find(|&f| sdev::is_kernel(m, f))
        .expect("kernel built");
    let ua = UniformityAnalysis::compute(m, kernel);
    let barriers = barriers_in(m, kernel);
    assert_eq!(barriers.len(), 1);
    assert!(
        ua.is_divergent_at(m, barriers[0], kernel),
        "an id-guarded barrier must be flagged divergent"
    );

    // The unguarded twin of the same kernel stays uniform — the flag is
    // the guard's doing, not a blanket answer.
    let mut kb = KernelModuleBuilder::new(&ctx);
    let sig =
        KernelSig::new("unguarded", 1, true).accessor(ctx.f32_type(), 1, AccessMode::ReadWrite);
    kb.add_kernel(&sig, |b, args, item| {
        let i = sdev::global_id(b, item, 0);
        let g = sdev::get_group(b, item);
        sdev::group_barrier(b, g);
        let v = sdev::load_via_id(b, args[0], &[i]);
        sdev::store_via_id(b, v, args[0], &[i]);
    });
    let device = kb.device_module();
    let m = kb.module();
    let kernel = m
        .funcs_in(device)
        .into_iter()
        .find(|&f| sdev::is_kernel(m, f))
        .expect("kernel built");
    let ua = UniformityAnalysis::compute(m, kernel);
    let barriers = barriers_in(m, kernel);
    assert_eq!(barriers.len(), 1);
    assert!(
        !ua.is_divergent_at(m, barriers[0], kernel),
        "a top-level barrier must not be flagged divergent"
    );
}
