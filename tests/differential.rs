//! Property-based differential testing: for randomly generated inputs, the
//! optimized (SYCL-MLIR) and baseline (DPC++) compilations of a kernel must
//! produce identical results — optimizations may never change semantics.

use proptest::prelude::*;
use sycl_mlir_repro::core::FlowKind;
use sycl_mlir_repro::dialects::{affine, arith};
use sycl_mlir_repro::frontend::{full_context, KernelModuleBuilder, KernelSig};
use sycl_mlir_repro::runtime::{compile_program, hostgen::generate_host_ir, Queue, SyclRuntime};
use sycl_mlir_repro::sim::Device;
use sycl_mlir_repro::sycl::device as sdev;
use sycl_mlir_repro::sycl::types::AccessMode;

/// Run a tiny matmul-with-accumulation app and return the output buffer.
fn run_matmul(kind: FlowKind, n: i64, a_data: &[f32], b_data: &[f32]) -> Vec<f32> {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let sig = KernelSig::new("mm", 2, true)
        .accessor(ctx.f32_type(), 2, AccessMode::Read)
        .accessor(ctx.f32_type(), 2, AccessMode::Read)
        .accessor(ctx.f32_type(), 2, AccessMode::ReadWrite);
    kb.add_kernel(&sig, |b, args, item| {
        let i = sdev::global_id(b, item, 0);
        let j = sdev::global_id(b, item, 1);
        let zero = arith::constant_index(b, 0);
        let nn = arith::constant_index(b, n);
        let one = arith::constant_index(b, 1);
        affine::build_affine_for(b, zero, nn, one, &[], |inner, k, _| {
            let av = sdev::load_via_id(inner, args[0], &[i, k]);
            let bv = sdev::load_via_id(inner, args[1], &[k, j]);
            let prod = arith::mulf(inner, av, bv);
            let c = sdev::load_via_id(inner, args[2], &[i, j]);
            let sum = arith::addf(inner, c, prod);
            sdev::store_via_id(inner, sum, args[2], &[i, j]);
            vec![]
        });
    });

    let mut rt = SyclRuntime::new();
    let a = rt.buffer_f32(a_data.to_vec(), &[n, n]);
    let b = rt.buffer_f32(b_data.to_vec(), &[n, n]);
    let c = rt.buffer_f32(vec![0.0; (n * n) as usize], &[n, n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(a, AccessMode::Read)
            .accessor(b, AccessMode::Read)
            .accessor(c, AccessMode::ReadWrite);
        h.parallel_for_nd("mm", &[n, n], &[4, 4]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let mut program = compile_program(kind, module).expect("compiles");
    let device = Device::new();
    sycl_mlir_repro::runtime::exec::run(&mut program, &mut rt, &q, &device).expect("runs");
    rt.read_f32(c).to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The reduction + internalization pipeline preserves matmul results
    /// bit-for-bit (same accumulation order) on random inputs.
    #[test]
    fn optimized_matmul_matches_baseline(
        a in proptest::collection::vec(-8i16..8, 64),
        b in proptest::collection::vec(-8i16..8, 64),
    ) {
        let n = 8;
        let a: Vec<f32> = a.into_iter().map(f32::from).collect();
        let b: Vec<f32> = b.into_iter().map(f32::from).collect();
        let base = run_matmul(FlowKind::Dpcpp, n, &a, &b);
        let opt = run_matmul(FlowKind::SyclMlir, n, &a, &b);
        prop_assert_eq!(base, opt);
    }
}

// ----------------------------------------------------------------------
// Engine differential: the pre-decoded plan executor vs the tree-walk
// reference interpreter, over every benchsuite workload.
// ----------------------------------------------------------------------

mod engine_differential {
    use sycl_mlir_bench::quick_size;
    use sycl_mlir_repro::benchsuite::{all_workloads, run_workload_on};
    use sycl_mlir_repro::core::FlowKind;
    use sycl_mlir_repro::sim::{decode_kernel, Device, Engine};

    /// Bitwise-comparable view of an `f64` that may be the NaN "missing
    /// bar" marker.
    fn cycles_eq(a: f64, b: f64) -> bool {
        a == b || (a.is_nan() && b.is_nan())
    }

    /// Every workload, under every compilation flow, must produce identical
    /// outputs (all buffers and USM allocations), identical dynamic stats
    /// (arith ops, memory transactions, barriers, cycles) and identical
    /// validation verdicts on both engines.
    #[test]
    fn plan_engine_matches_tree_walk_on_all_workloads() {
        let tree_dev = Device::with_engine(Engine::TreeWalk);
        let plan_dev = Device::with_engine(Engine::Plan);
        for w in all_workloads() {
            let size = quick_size(&w);
            for kind in FlowKind::all() {
                let label = format!("{} [{}] at size {size}", w.name, kind.name());
                let tree = run_workload_on(&w, size, kind, &tree_dev);
                let plan = run_workload_on(&w, size, kind, &plan_dev);
                match (tree, plan) {
                    (Ok((tres, trt)), Ok((pres, prt))) => {
                        assert_eq!(tres.valid, pres.valid, "validation differs: {label}");
                        assert_eq!(tres.stats, pres.stats, "stats differ: {label}");
                        assert!(
                            cycles_eq(tres.cycles, pres.cycles),
                            "cycles differ: {label}: {} vs {}",
                            tres.cycles,
                            pres.cycles
                        );
                        assert_eq!(
                            trt.buffers.len(),
                            prt.buffers.len(),
                            "buffer count differs: {label}"
                        );
                        for (i, (tb, pb)) in trt.buffers.iter().zip(&prt.buffers).enumerate() {
                            assert_eq!(tb.data, pb.data, "buffer {i} contents differ: {label}");
                        }
                        assert_eq!(trt.usm, prt.usm, "usm contents differ: {label}");
                    }
                    (Err(te), Err(pe)) => {
                        assert_eq!(te, pe, "engines fail differently: {label}")
                    }
                    (t, p) => panic!(
                        "one engine failed, the other did not: {label}: tree={t:?} plan={p:?}",
                        t = t.is_ok(),
                        p = p.is_ok()
                    ),
                }
            }
        }
    }

    /// Every workload, under every compilation flow, must produce
    /// identical outputs, statistics and cycles when its work-groups run
    /// on 4 worker threads instead of sequentially — the determinism
    /// contract of the work-group thread pool, held over the whole suite.
    #[test]
    fn four_worker_threads_match_sequential_on_all_workloads() {
        let seq_dev = Device::with_engine(Engine::Plan).threads(1);
        let par_dev = Device::with_engine(Engine::Plan).threads(4);
        for w in all_workloads() {
            let size = quick_size(&w);
            for kind in FlowKind::all() {
                let label = format!("{} [{}] at size {size}", w.name, kind.name());
                let seq = run_workload_on(&w, size, kind, &seq_dev);
                let par = run_workload_on(&w, size, kind, &par_dev);
                match (seq, par) {
                    (Ok((sres, srt)), Ok((pres, prt))) => {
                        assert_eq!(sres.valid, pres.valid, "validation differs: {label}");
                        assert_eq!(sres.stats, pres.stats, "stats differ: {label}");
                        assert!(
                            cycles_eq(sres.cycles, pres.cycles),
                            "cycles differ: {label}: {} vs {}",
                            sres.cycles,
                            pres.cycles
                        );
                        for (i, (sb, pb)) in srt.buffers.iter().zip(&prt.buffers).enumerate() {
                            assert_eq!(sb.data, pb.data, "buffer {i} contents differ: {label}");
                        }
                        assert_eq!(srt.usm, prt.usm, "usm contents differ: {label}");
                    }
                    // Both failing is equivalence enough: the pool only
                    // guarantees the sequential engine's exact error when a
                    // single work-group is at fault (with several failing
                    // groups, which group's error gets observed first is
                    // scheduling-dependent — see crates/sim/src/pool.rs).
                    (Err(_), Err(_)) => {}
                    (s, p) => panic!(
                        "one thread count failed, the other did not: {label}: seq={s:?} par={p:?}",
                        s = s.is_ok(),
                        p = p.is_ok()
                    ),
                }
            }
        }
    }

    /// Every workload, under every compilation flow, must produce
    /// identical outputs, statistics and cycles with *all* executor
    /// upgrades engaged at once — plan engine, peephole fusion, 4 worker
    /// threads and launch batching — as under the tree-walk reference
    /// with every knob off. This is the "everything on" column of the
    /// differential sweep: any fusion pattern or batch schedule that
    /// changes semantics anywhere in the suite fails here.
    #[test]
    fn fused_batched_parallel_matches_tree_walk_on_all_workloads() {
        let ref_dev = Device::with_engine(Engine::TreeWalk)
            .threads(1)
            .fuse(false)
            .batch(false);
        let opt_dev = Device::with_engine(Engine::Plan)
            .threads(4)
            .fuse(true)
            .batch(true);
        for w in all_workloads() {
            let size = quick_size(&w);
            for kind in FlowKind::all() {
                let label = format!("{} [{}] at size {size}", w.name, kind.name());
                let reference = run_workload_on(&w, size, kind, &ref_dev);
                let optimized = run_workload_on(&w, size, kind, &opt_dev);
                match (reference, optimized) {
                    (Ok((rres, rrt)), Ok((ores, ort))) => {
                        assert_eq!(rres.valid, ores.valid, "validation differs: {label}");
                        assert_eq!(rres.stats, ores.stats, "stats differ: {label}");
                        assert!(
                            cycles_eq(rres.cycles, ores.cycles),
                            "cycles differ: {label}: {} vs {}",
                            rres.cycles,
                            ores.cycles
                        );
                        for (i, (rb, ob)) in rrt.buffers.iter().zip(&ort.buffers).enumerate() {
                            assert_eq!(rb.data, ob.data, "buffer {i} contents differ: {label}");
                        }
                        assert_eq!(rrt.usm, ort.usm, "usm contents differ: {label}");
                    }
                    // Both failing is equivalence enough (see the threads
                    // sweep above for why exact error identity is only
                    // guaranteed with a single failing group).
                    (Err(_), Err(_)) => {}
                    (r, o) => panic!(
                        "one configuration failed, the other did not: {label}: ref={r:?} opt={o:?}",
                        r = r.is_ok(),
                        o = o.is_ok()
                    ),
                }
            }
        }
    }

    /// The closure-JIT tier is the third execution-engine column of the
    /// differential sweep: every workload, under every compilation flow,
    /// must produce identical outputs, statistics, cycles and *error
    /// texts* with every plan compiled to closures (`--jit=always`) as
    /// with the bytecode loop (`--jit=off`) and as under the tree-walk
    /// reference — sequentially and on 4 worker threads.
    #[test]
    fn closure_jit_matches_plan_and_tree_walk_on_all_workloads() {
        use sycl_mlir_repro::sim::JitMode;
        for threads in [1, 4] {
            let tree_dev = Device::with_engine(Engine::TreeWalk);
            let plan_dev = Device::with_engine(Engine::Plan)
                .threads(threads)
                .jit(JitMode::Off);
            let jit_dev = Device::with_engine(Engine::Plan)
                .threads(threads)
                .jit(JitMode::Always);
            for w in all_workloads() {
                let size = quick_size(&w);
                for kind in FlowKind::all() {
                    let label = format!(
                        "{} [{}] at size {size}, threads {threads}",
                        w.name,
                        kind.name()
                    );
                    let tree = run_workload_on(&w, size, kind, &tree_dev);
                    let plan = run_workload_on(&w, size, kind, &plan_dev);
                    let jit = run_workload_on(&w, size, kind, &jit_dev);
                    match (plan, jit) {
                        (Ok((pres, prt)), Ok((jres, jrt))) => {
                            assert_eq!(pres.valid, jres.valid, "validation differs: {label}");
                            assert_eq!(pres.stats, jres.stats, "stats differ: {label}");
                            assert!(
                                cycles_eq(pres.cycles, jres.cycles),
                                "cycles differ: {label}: {} vs {}",
                                pres.cycles,
                                jres.cycles
                            );
                            for (i, (pb, jb)) in prt.buffers.iter().zip(&jrt.buffers).enumerate() {
                                assert_eq!(pb.data, jb.data, "buffer {i} contents differ: {label}");
                            }
                            assert_eq!(prt.usm, jrt.usm, "usm contents differ: {label}");
                            // The tree walk is the behavioural anchor of
                            // all three tiers.
                            let (tres, trt) = tree.expect("tree walk succeeds when plan does");
                            assert_eq!(tres.stats, jres.stats, "jit vs tree stats differ: {label}");
                            assert!(
                                cycles_eq(tres.cycles, jres.cycles),
                                "jit vs tree cycles differ: {label}"
                            );
                            assert_eq!(trt.usm, jrt.usm, "jit vs tree usm differs: {label}");
                        }
                        (Err(pe), Err(je)) => {
                            // Error *texts* must match byte-for-byte at
                            // threads=1 (with several failing groups at
                            // threads=4, which group's error is observed
                            // first is scheduling-dependent).
                            if threads == 1 {
                                assert_eq!(pe, je, "tiers fail differently: {label}");
                                if let Err(te) = tree {
                                    assert_eq!(te, je, "jit vs tree errors differ: {label}");
                                }
                            }
                        }
                        (p, j) => panic!(
                            "one tier failed, the other did not: {label}: plan={p:?} jit={j:?}",
                            p = p.is_ok(),
                            j = j.is_ok()
                        ),
                    }
                }
            }
        }
    }

    /// Fusion alone (sequential, unbatched) must also hold bit-identical
    /// against the unfused plan engine — isolates the fusion pass from
    /// the scheduling upgrades.
    #[test]
    fn fusion_matches_unfused_plan_on_all_workloads() {
        let unfused = Device::with_engine(Engine::Plan)
            .threads(1)
            .fuse(false)
            .batch(false);
        let fused = Device::with_engine(Engine::Plan)
            .threads(1)
            .fuse(true)
            .batch(false);
        for w in all_workloads() {
            let size = quick_size(&w);
            for kind in FlowKind::all() {
                let label = format!("{} [{}] at size {size}", w.name, kind.name());
                let u = run_workload_on(&w, size, kind, &unfused);
                let f = run_workload_on(&w, size, kind, &fused);
                match (u, f) {
                    (Ok((ures, urt)), Ok((fres, frt))) => {
                        assert_eq!(ures.valid, fres.valid, "validation differs: {label}");
                        assert_eq!(ures.stats, fres.stats, "stats differ: {label}");
                        assert!(
                            cycles_eq(ures.cycles, fres.cycles),
                            "cycles differ: {label}: {} vs {}",
                            ures.cycles,
                            fres.cycles
                        );
                        for (i, (ub, fb)) in urt.buffers.iter().zip(&frt.buffers).enumerate() {
                            assert_eq!(ub.data, fb.data, "buffer {i} contents differ: {label}");
                        }
                        assert_eq!(urt.usm, frt.usm, "usm contents differ: {label}");
                    }
                    (Err(ue), Err(fe)) => {
                        assert_eq!(ue, fe, "configurations fail differently: {label}")
                    }
                    (u, f) => panic!(
                        "one configuration failed, the other did not: {label}: unfused={u:?} fused={f:?}",
                        u = u.is_ok(),
                        f = f.is_ok()
                    ),
                }
            }
        }
    }

    /// The benchsuite's kernels must actually exercise the fusion pass —
    /// otherwise the superinstructions are dead code and the measured
    /// speedup is noise. Pairs and three-instruction chains are asserted
    /// separately, and the indexed-access superinstructions (the
    /// `--profile` mode's top-ranked candidate, the accessor addressing
    /// chain) must appear specifically.
    #[test]
    fn fusion_fires_on_benchsuite_kernels() {
        use sycl_mlir_repro::sim::fuse_plan;
        use sycl_mlir_repro::sim::plan::Instr;
        #[derive(Default)]
        struct Counts {
            pairs: u32,
            chains: u32,
            quads: u32,
            wt: u32,
            indexed_access: u32,
            fma: u32,
        }
        let mut per_flow = Vec::new();
        for kind in [FlowKind::Dpcpp, FlowKind::AdaptiveCpp, FlowKind::SyclMlir] {
            let mut c = Counts::default();
            for w in all_workloads() {
                if kind == FlowKind::AdaptiveCpp && w.acpp_fails {
                    continue;
                }
                let app = (w.build)(quick_size(&w));
                let program = sycl_mlir_repro::runtime::compile_program(kind, app.module)
                    .unwrap_or_else(|e| panic!("{} [{}]: {e}", w.name, kind.name()));
                let m = &program.module;
                let device_mod = m
                    .lookup_symbol(m.top(), sycl_mlir_repro::sycl::DEVICE_MODULE_SYM)
                    .expect("device module");
                for f in m.funcs_in(device_mod) {
                    if sycl_mlir_repro::sycl::device::is_kernel(m, f) {
                        if let Ok(mut plan) = decode_kernel(m, f) {
                            fuse_plan(&mut plan);
                            c.pairs += plan.fused_pairs;
                            c.chains += plan.fused_chains;
                            c.quads += plan.fused_quads;
                            c.wt += plan.fused_wt;
                            for func in &plan.funcs {
                                for instr in &func.code {
                                    match instr {
                                        Instr::AccLoadIndexed { .. }
                                        | Instr::AccStoreIndexed { .. } => c.indexed_access += 1,
                                        Instr::LoadMulAddF { .. } => c.fma += 1,
                                        _ => {}
                                    }
                                }
                            }
                        }
                    }
                }
            }
            println!(
                "benchsuite fusion [{}]: {} pairs, {} chains, {} quads, {} write-through \
                 ({} indexed-access, {} load-fma)",
                kind.name(),
                c.pairs,
                c.chains,
                c.quads,
                c.wt,
                c.indexed_access,
                c.fma
            );
            per_flow.push((kind, c));
        }
        for (kind, c) in &per_flow {
            assert!(
                c.pairs > 20,
                "[{}] expected the pair patterns to fire broadly, got {}",
                kind.name(),
                c.pairs
            );
            assert!(
                c.chains > 20,
                "[{}] expected chain fusion to fire broadly, got {}",
                kind.name(),
                c.chains
            );
            assert!(
                c.indexed_access > 10,
                "[{}] expected indexed accessor loads/stores, got {}",
                kind.name(),
                c.indexed_access
            );
        }
        // The un-CSE'd DPC++-flow shape (`vec.ctor + subscript + const 0
        // + load/store`) must fuse through the 4-instruction window —
        // this was the silent coverage gap.
        let dpcpp = &per_flow[0].1;
        assert!(
            dpcpp.quads > 0,
            "expected the un-CSE'd DPC++-flow quad chain to fire, got {}",
            dpcpp.quads
        );
        // Multiply-read subscript views (GEMM's `c[i,j]` read+write) must
        // take the write-through chains instead of blocking.
        let total_wt: u32 = per_flow.iter().map(|(_, c)| c.wt).sum();
        assert!(
            total_wt > 0,
            "expected write-through chains to fire somewhere in the suite"
        );
    }

    /// Re-running a workload on the same device must serve the repeat
    /// launches of unmutated kernels from the cross-launch plan cache.
    #[test]
    fn repeat_runs_hit_the_plan_cache() {
        let device = Device::with_engine(Engine::Plan);
        let w = all_workloads()
            .into_iter()
            .find(|w| w.name == "GEMM")
            .expect("GEMM registered");
        let size = quick_size(&w);
        run_workload_on(&w, size, FlowKind::SyclMlir, &device).expect("first run");
        let (_, misses_before) = device.plan_cache_counters();
        assert!(
            misses_before > 0,
            "first run must decode at least one kernel"
        );
        // A fresh build of the same workload produces a *new* module (new
        // module id), so this exercises miss-then-hit bookkeeping rather
        // than cross-module collisions.
        run_workload_on(&w, size, FlowKind::SyclMlir, &device).expect("second run");
        let (_, misses_after) = device.plan_cache_counters();
        assert!(misses_after > misses_before, "a new module re-decodes");

        // Within one run, iterative workloads relaunch unmutated kernels:
        // the heat-transfer stencil launches its kernel 50 times and must
        // decode it exactly once per module.
        let device = Device::with_engine(Engine::Plan);
        let w = all_workloads()
            .into_iter()
            .find(|w| w.name == "1D HeatTransfer (buffer)")
            .expect("heat transfer registered");
        run_workload_on(&w, quick_size(&w), FlowKind::SyclMlir, &device).expect("runs");
        let (hits, misses) = device.plan_cache_counters();
        assert!(
            hits >= 49,
            "iterative launches must reuse the decoded plan (hits={hits}, misses={misses})"
        );
    }

    /// The decoder must understand every kernel the benchsuite compiles —
    /// otherwise the plan engine silently falls back to the tree walk and
    /// the speedup quietly evaporates.
    #[test]
    fn all_workload_kernels_are_plan_decodable() {
        for w in all_workloads() {
            // Every flow's pipeline output must decode, or that flow's
            // figures silently fall back to the slow engine.
            for kind in FlowKind::all() {
                let app = (w.build)(quick_size(&w));
                let program = sycl_mlir_repro::runtime::compile_program(kind, app.module)
                    .unwrap_or_else(|e| panic!("{} [{}]: {e}", w.name, kind.name()));
                let m = &program.module;
                let device_mod = m
                    .lookup_symbol(m.top(), sycl_mlir_repro::sycl::DEVICE_MODULE_SYM)
                    .expect("device module");
                let mut kernels = 0;
                for f in m.funcs_in(device_mod) {
                    if sycl_mlir_repro::sycl::device::is_kernel(m, f) {
                        kernels += 1;
                        if let Err(e) = decode_kernel(m, f) {
                            panic!("{} [{}]: kernel not decodable: {e}", w.name, kind.name());
                        }
                    }
                }
                assert!(
                    kernels > 0,
                    "{} [{}]: no kernels found",
                    w.name,
                    kind.name()
                );
            }
        }
    }
}

/// PR 10: the decode-time plan verifier and the check elision it licenses
/// must be **bit-invisible**. `--verify=strict|lint|off` may change which
/// plans are rejected up front, but for every plan that runs, outputs,
/// statistics, cycle counts and error texts must be identical whether the
/// runtime bounds checks were elided (proven sites) or not.
mod verify_differential {
    use sycl_mlir_bench::quick_size;
    use sycl_mlir_repro::benchsuite::{all_workloads, run_workload_on};
    use sycl_mlir_repro::core::FlowKind;
    use sycl_mlir_repro::dialects::{arith, scf};
    use sycl_mlir_repro::frontend::{full_context, KernelModuleBuilder, KernelSig};
    use sycl_mlir_repro::runtime::exec::run;
    use sycl_mlir_repro::runtime::hostgen::generate_host_ir;
    use sycl_mlir_repro::runtime::{compile_program, Queue, SyclRuntime};
    use sycl_mlir_repro::sim::{Device, Engine, JitMode, SimError, VerifyMode};
    use sycl_mlir_repro::sycl::device as sdev;
    use sycl_mlir_repro::sycl::types::AccessMode;

    /// Simulated cycles are deterministic; NaN marks flows the paper
    /// reports as failing validation.
    fn cycles_eq(a: f64, b: f64) -> bool {
        (a.is_nan() && b.is_nan()) || a == b
    }

    /// Every workload × flow must produce bit-identical results across
    /// `--verify` modes, engines tiers and worker counts. The reference is
    /// the plan interpreter with verification **off** (every runtime check
    /// in place); each comparison config has verification on and therefore
    /// runs with proven-site bounds checks elided and statically-uniform
    /// barriers on the divergence-free group driver.
    #[test]
    fn verify_modes_are_bit_identical_on_all_workloads() {
        let reference = Device::with_engine(Engine::Plan)
            .threads(1)
            .jit(JitMode::Off)
            .verify(VerifyMode::Off);
        let configs = [
            (
                "strict/interp/1",
                Device::with_engine(Engine::Plan)
                    .threads(1)
                    .jit(JitMode::Off)
                    .verify(VerifyMode::Strict),
            ),
            (
                "lint/interp/1",
                Device::with_engine(Engine::Plan)
                    .threads(1)
                    .jit(JitMode::Off)
                    .verify(VerifyMode::Lint),
            ),
            (
                "strict/interp/4",
                Device::with_engine(Engine::Plan)
                    .threads(4)
                    .jit(JitMode::Off)
                    .verify(VerifyMode::Strict),
            ),
            (
                "strict/jit/1",
                Device::with_engine(Engine::Plan)
                    .threads(1)
                    .jit(JitMode::Always)
                    .verify(VerifyMode::Strict),
            ),
            (
                "strict/jit/4",
                Device::with_engine(Engine::Plan)
                    .threads(4)
                    .jit(JitMode::Always)
                    .verify(VerifyMode::Strict),
            ),
            (
                "strict/unfused/1",
                Device::with_engine(Engine::Plan)
                    .threads(1)
                    .jit(JitMode::Off)
                    .fuse(false)
                    .verify(VerifyMode::Strict),
            ),
        ];
        for w in all_workloads() {
            let size = quick_size(&w);
            for kind in FlowKind::all() {
                let r = run_workload_on(&w, size, kind, &reference);
                for (cname, dev) in &configs {
                    let label = format!(
                        "{} [{}] at size {size}, config {cname}",
                        w.name,
                        kind.name()
                    );
                    let c = run_workload_on(&w, size, kind, dev);
                    match (&r, &c) {
                        (Ok((rres, rrt)), Ok((cres, crt))) => {
                            assert_eq!(rres.valid, cres.valid, "validation differs: {label}");
                            assert_eq!(rres.stats, cres.stats, "stats differ: {label}");
                            assert!(
                                cycles_eq(rres.cycles, cres.cycles),
                                "cycles differ: {label}: {} vs {}",
                                rres.cycles,
                                cres.cycles
                            );
                            for (i, (rb, cb)) in rrt.buffers.iter().zip(&crt.buffers).enumerate() {
                                assert_eq!(rb.data, cb.data, "buffer {i} contents differ: {label}");
                            }
                            assert_eq!(rrt.usm, crt.usm, "usm contents differ: {label}");
                        }
                        (Err(re), Err(ce)) => {
                            // At threads=1 the error text must match
                            // byte-for-byte — elision may not change which
                            // site fails first nor how the failure reads.
                            // At threads=4 which failing group is observed
                            // first is scheduling-dependent.
                            if !cname.ends_with("/4") {
                                assert_eq!(re, ce, "errors differ: {label}");
                            }
                        }
                        (r, c) => panic!(
                            "verification changed the outcome: {label}: off={r:?} on={c:?}",
                            r = r.is_ok(),
                            c = c.is_ok()
                        ),
                    }
                }
            }
        }
    }

    /// The interval pass must prove the majority of accessor access sites
    /// of the compiled paper-figure suite in-bounds — otherwise the
    /// elision fast path is dead code — and the benchsuite's barrier
    /// ladders must come out statically uniform.
    #[test]
    fn verifier_proves_majority_of_accessor_sites_on_benchsuite() {
        let dev = Device::with_engine(Engine::Plan).verify(VerifyMode::Strict);
        for w in all_workloads() {
            let size = quick_size(&w);
            run_workload_on(&w, size, FlowKind::SyclMlir, &dev)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
        let vc = dev.verify_counters();
        assert_eq!(vc.rejected, 0, "benchsuite kernels must verify clean");
        assert!(vc.plans > 0, "no plans were verified");
        assert!(vc.sites_total > 0, "no accessor sites seen");
        assert!(
            vc.sites_proven * 2 >= vc.sites_total,
            "expected >= 50% of accessor sites proven in-bounds, got {}/{}",
            vc.sites_proven,
            vc.sites_total
        );
        assert!(
            vc.barriers_total > 0 && vc.barriers_uniform > 0,
            "expected statically-uniform barriers in the suite, got {}/{}",
            vc.barriers_uniform,
            vc.barriers_total
        );
    }

    /// Build and run a kernel whose loop trip count is **loaded from
    /// memory** with a barrier inside the loop — decodable and (for
    /// uniform data) perfectly runnable, but exactly what the static
    /// verifier must flag: it cannot prove the barrier uniform.
    fn run_data_dependent_barrier_loop(device: &Device) -> Result<Vec<i32>, SimError> {
        let ctx = full_context();
        let idx_ty = ctx.index_type();
        let mut kb = KernelModuleBuilder::new(&ctx);
        let sig = KernelSig::new("ddbar", 1, true)
            .accessor(ctx.i32_type(), 1, AccessMode::Read)
            .accessor(ctx.i32_type(), 1, AccessMode::ReadWrite);
        kb.add_kernel(&sig, |b, args, item| {
            let i = sdev::global_id(b, item, 0);
            let zero = arith::constant_index(b, 0);
            let one = arith::constant_index(b, 1);
            // Trip count read from the input buffer: data-dependent.
            let trip = sdev::load_via_id(b, args[0], &[zero]);
            let ub = arith::index_cast(b, trip, idx_ty.clone());
            scf::build_for(b, zero, ub, one, &[], |inner, _k, _| {
                let g = sdev::get_group(inner, item);
                sdev::group_barrier(inner, g);
                vec![]
            });
            let v = sdev::load_via_id(b, args[0], &[i]);
            sdev::store_via_id(b, v, args[1], &[i]);
        });

        let mut rt = SyclRuntime::new();
        let a = rt.buffer_i32(vec![3; 8], &[8]);
        let out = rt.buffer_i32(vec![0; 8], &[8]);
        let mut q = Queue::new();
        q.submit(|h| {
            h.accessor(a, AccessMode::Read)
                .accessor(out, AccessMode::ReadWrite);
            h.parallel_for_nd("ddbar", &[8], &[4]);
        });
        generate_host_ir(kb.module(), &rt, &q);
        let module = kb.finish();
        let mut program = compile_program(FlowKind::Dpcpp, module).expect("compiles");
        run(&mut program, &mut rt, &q, device)?;
        Ok(rt.read_i32(out).to_vec())
    }

    /// Strict mode rejects the unprovable-barrier kernel with a
    /// deterministic, structured error — and the device stays fully
    /// usable afterwards. Lint mode runs it (unverified) bit-identically
    /// to verification off.
    #[test]
    fn strict_rejects_unprovable_barrier_and_device_survives() {
        let strict = Device::with_engine(Engine::Plan).verify(VerifyMode::Strict);
        let e1 = run_data_dependent_barrier_loop(&strict)
            .expect_err("strict must reject the data-dependent barrier loop");
        let msg = e1.message();
        assert!(
            msg.contains("plan verification failed"),
            "expected a structured verification error, got: {msg}"
        );
        assert!(
            msg.contains("barrier inside a loop with a data-dependent trip count"),
            "expected the barrier-loop finding, got: {msg}"
        );
        assert!(
            msg.contains("(launch 0, work-group 0)"),
            "rejection must carry the launch position, got: {msg}"
        );
        // Deterministic: an identical second attempt (fresh module, same
        // kernel) produces byte-for-byte the same error.
        let e2 = run_data_dependent_barrier_loop(&strict).expect_err("still rejected");
        assert_eq!(e1, e2, "strict rejection must be deterministic");

        // The rejection must not poison the device: a clean workload on
        // the *same* device still runs and validates.
        let w = all_workloads()
            .into_iter()
            .find(|w| w.name == "GEMM")
            .expect("GEMM registered");
        let (res, _) = run_workload_on(&w, quick_size(&w), FlowKind::SyclMlir, &strict)
            .expect("device must stay usable after a strict rejection");
        assert!(res.valid, "post-rejection run must still validate");

        // Lint reports but runs the kernel unverified — bit-identical to
        // verification off, divergence bookkeeping fully in place.
        let lint = Device::with_engine(Engine::Plan).verify(VerifyMode::Lint);
        let off = Device::with_engine(Engine::Plan).verify(VerifyMode::Off);
        let l = run_data_dependent_barrier_loop(&lint).expect("lint runs the kernel");
        let o = run_data_dependent_barrier_loop(&off).expect("off runs the kernel");
        assert_eq!(l, o, "lint-flagged kernel must run bit-identically to off");
        assert_eq!(l, vec![3; 8], "kernel output wrong");
    }

    /// Build and run a kernel containing an op no engine understands. The
    /// plan decoder refuses it; under `lint`/`off` the launch falls back
    /// to the tree walk (which then reports the op at run time), while
    /// `strict` surfaces the **decode failure itself** as a structured,
    /// position-stamped error instead of the silent fallback.
    fn run_undecodable_kernel(device: &Device) -> Result<Vec<i32>, SimError> {
        let ctx = full_context();
        let mut kb = KernelModuleBuilder::new(&ctx);
        let sig =
            KernelSig::new("opaque", 1, true).accessor(ctx.i32_type(), 1, AccessMode::ReadWrite);
        kb.add_kernel(&sig, |b, args, item| {
            let i = sdev::global_id(b, item, 0);
            // `llvm.alloca` is registered (host-side lowering uses it) but
            // deliberately foreign to both device engines.
            sycl_mlir_repro::dialects::llvm::alloca(b, "opaque");
            let v = sdev::load_via_id(b, args[0], &[i]);
            sdev::store_via_id(b, v, args[0], &[i]);
        });

        let mut rt = SyclRuntime::new();
        let a = rt.buffer_i32(vec![7; 8], &[8]);
        let mut q = Queue::new();
        q.submit(|h| {
            h.accessor(a, AccessMode::ReadWrite);
            h.parallel_for_nd("opaque", &[8], &[4]);
        });
        generate_host_ir(kb.module(), &rt, &q);
        let module = kb.finish();
        let mut program = compile_program(FlowKind::Dpcpp, module).expect("compiles");
        run(&mut program, &mut rt, &q, device)?;
        Ok(rt.read_i32(a).to_vec())
    }

    /// The `DecodeError` path: strict mode turns an undecodable kernel
    /// into a structured `plan decode error` carrying the submission
    /// position — not a panic, not a silent tree-walk fallback — and the
    /// device survives. Lint and off keep the fallback and report the
    /// offending op identically at run time.
    #[test]
    fn strict_surfaces_decode_failures_with_position() {
        let strict = Device::with_engine(Engine::Plan).verify(VerifyMode::Strict);
        let e1 = run_undecodable_kernel(&strict).expect_err("strict must reject");
        let msg = e1.message();
        assert!(
            msg.contains("plan decode error"),
            "expected a structured decode error, got: {msg}"
        );
        assert!(
            msg.contains("op `llvm.alloca` is not plan-decodable"),
            "expected the offending op to be named, got: {msg}"
        );
        assert!(
            msg.contains("(launch 0, work-group 0)"),
            "decode failure must carry the launch position, got: {msg}"
        );
        let e2 = run_undecodable_kernel(&strict).expect_err("still rejected");
        assert_eq!(e1, e2, "strict decode rejection must be deterministic");

        // Device stays usable.
        let w = all_workloads()
            .into_iter()
            .find(|w| w.name == "GEMM")
            .expect("GEMM registered");
        let (res, _) = run_workload_on(&w, quick_size(&w), FlowKind::SyclMlir, &strict)
            .expect("device must stay usable after a strict decode rejection");
        assert!(res.valid, "post-rejection run must still validate");

        // Lint/off: tree-walk fallback reaches the op and reports it the
        // same way under both modes.
        let lint = Device::with_engine(Engine::Plan).verify(VerifyMode::Lint);
        let off = Device::with_engine(Engine::Plan).verify(VerifyMode::Off);
        let le = run_undecodable_kernel(&lint).expect_err("tree walk rejects the op");
        let oe = run_undecodable_kernel(&off).expect_err("tree walk rejects the op");
        assert_eq!(le, oe, "fallback error must not depend on verify mode");
        assert!(
            le.message()
                .contains("op `llvm.alloca` is not executable on the device"),
            "expected the tree-walk op error, got: {}",
            le.message()
        );
    }
}
