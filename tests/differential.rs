//! Property-based differential testing: for randomly generated inputs, the
//! optimized (SYCL-MLIR) and baseline (DPC++) compilations of a kernel must
//! produce identical results — optimizations may never change semantics.

use proptest::prelude::*;
use sycl_mlir_repro::core::FlowKind;
use sycl_mlir_repro::dialects::{affine, arith};
use sycl_mlir_repro::frontend::{full_context, KernelModuleBuilder, KernelSig};
use sycl_mlir_repro::runtime::{compile_program, hostgen::generate_host_ir, Queue, SyclRuntime};
use sycl_mlir_repro::sim::Device;
use sycl_mlir_repro::sycl::device as sdev;
use sycl_mlir_repro::sycl::types::AccessMode;

/// Run a tiny matmul-with-accumulation app and return the output buffer.
fn run_matmul(kind: FlowKind, n: i64, a_data: &[f32], b_data: &[f32]) -> Vec<f32> {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let sig = KernelSig::new("mm", 2, true)
        .accessor(ctx.f32_type(), 2, AccessMode::Read)
        .accessor(ctx.f32_type(), 2, AccessMode::Read)
        .accessor(ctx.f32_type(), 2, AccessMode::ReadWrite);
    kb.add_kernel(&sig, |b, args, item| {
        let i = sdev::global_id(b, item, 0);
        let j = sdev::global_id(b, item, 1);
        let zero = arith::constant_index(b, 0);
        let nn = arith::constant_index(b, n);
        let one = arith::constant_index(b, 1);
        affine::build_affine_for(b, zero, nn, one, &[], |inner, k, _| {
            let av = sdev::load_via_id(inner, args[0], &[i, k]);
            let bv = sdev::load_via_id(inner, args[1], &[k, j]);
            let prod = arith::mulf(inner, av, bv);
            let c = sdev::load_via_id(inner, args[2], &[i, j]);
            let sum = arith::addf(inner, c, prod);
            sdev::store_via_id(inner, sum, args[2], &[i, j]);
            vec![]
        });
    });

    let mut rt = SyclRuntime::new();
    let a = rt.buffer_f32(a_data.to_vec(), &[n, n]);
    let b = rt.buffer_f32(b_data.to_vec(), &[n, n]);
    let c = rt.buffer_f32(vec![0.0; (n * n) as usize], &[n, n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(a, AccessMode::Read)
            .accessor(b, AccessMode::Read)
            .accessor(c, AccessMode::ReadWrite);
        h.parallel_for_nd("mm", &[n, n], &[4, 4]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let mut program = compile_program(kind, module).expect("compiles");
    let device = Device::new();
    sycl_mlir_repro::runtime::exec::run(&mut program, &mut rt, &q, &device).expect("runs");
    rt.read_f32(c).to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The reduction + internalization pipeline preserves matmul results
    /// bit-for-bit (same accumulation order) on random inputs.
    #[test]
    fn optimized_matmul_matches_baseline(
        a in proptest::collection::vec(-8i16..8, 64),
        b in proptest::collection::vec(-8i16..8, 64),
    ) {
        let n = 8;
        let a: Vec<f32> = a.into_iter().map(f32::from).collect();
        let b: Vec<f32> = b.into_iter().map(f32::from).collect();
        let base = run_matmul(FlowKind::Dpcpp, n, &a, &b);
        let opt = run_matmul(FlowKind::SyclMlir, n, &a, &b);
        prop_assert_eq!(base, opt);
    }
}
