//! Compilation flows (Fig. 1 of the paper).

use sycl_mlir_ir::{Attribute, Module, OpId, PassManager, PassStats};
use sycl_mlir_transform::{
    CanonicalizePass, CsePass, DeadArgumentEliminationPass, DetectReductionPass,
    HostDeviceConstantPropagationPass, LicmPass, LoopInternalizationPass, RaiseHostPass,
};

/// Which SYCL implementation's compiler to model.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum FlowKind {
    /// Intel's LLVM-based DPC++ (SMCP, device compiled in isolation).
    Dpcpp,
    /// AdaptiveCpp (SSCP: generic AOT + JIT specialization at launch).
    AdaptiveCpp,
    /// The paper's MLIR-based compiler (joint host/device compilation).
    SyclMlir,
}

impl FlowKind {
    pub fn name(self) -> &'static str {
        match self {
            FlowKind::Dpcpp => "DPC++",
            FlowKind::AdaptiveCpp => "AdaptiveCpp",
            FlowKind::SyclMlir => "SYCL-MLIR",
        }
    }

    /// All three, in the paper's presentation order.
    pub fn all() -> [FlowKind; 3] {
        [FlowKind::Dpcpp, FlowKind::AdaptiveCpp, FlowKind::SyclMlir]
    }
}

/// Summary of a compilation.
#[derive(Debug, Default, Clone)]
pub struct CompileOutcome {
    pub pass_stats: PassStats,
    /// Human-readable notes per optimization (counts of reductions
    /// rewritten, refs prefetched, …).
    pub notes: Vec<String>,
    /// IR dumps per pipeline stage, when requested (Fig. 1 reproduction).
    pub dumps: Vec<(String, String)>,
}

/// A compiler for one [`FlowKind`].
#[derive(Clone, Copy, Debug)]
pub struct Flow {
    pub kind: FlowKind,
    /// Capture IR after every pass (used by the Fig. 1 harness).
    pub dump_stages: bool,
}

impl Flow {
    pub fn new(kind: FlowKind) -> Flow {
        Flow {
            kind,
            dump_stages: false,
        }
    }

    /// Names of the passes this flow runs at compile time.
    pub fn pipeline_description(&self) -> Vec<&'static str> {
        match self.kind {
            FlowKind::Dpcpp => vec!["canonicalize", "cse", "licm (conservative)"],
            FlowKind::AdaptiveCpp => {
                vec![
                    "canonicalize",
                    "cse",
                    "(JIT at launch: nd-range constants, detect-reduction)",
                ]
            }
            FlowKind::SyclMlir => vec![
                "raise-host",
                "host-device-constprop",
                "canonicalize",
                "cse",
                "licm (with versioning)",
                "detect-reduction",
                "loop-internalization",
                "canonicalize",
                "cse",
                "sycl-dead-argument-elimination",
            ],
        }
    }

    /// Run the compile-time pipeline on the joint module.
    ///
    /// # Errors
    ///
    /// Propagates pass failures and verifier reports.
    pub fn compile(&self, module: &mut Module) -> Result<CompileOutcome, String> {
        let mut outcome = CompileOutcome::default();
        match self.kind {
            FlowKind::Dpcpp => {
                let mut pm = PassManager::new();
                pm.dump_after_each = self.dump_stages;
                pm.add_pass(CanonicalizePass);
                pm.add_pass(CsePass);
                // No SYCL semantics: only memory-effect-free hoisting.
                pm.add_pass(LicmPass::new(false));
                outcome.pass_stats = pm.run(module)?;
                outcome.dumps = std::mem::take(&mut pm.dumps);
            }
            FlowKind::AdaptiveCpp => {
                let mut pm = PassManager::new();
                pm.dump_after_each = self.dump_stages;
                pm.add_pass(CanonicalizePass);
                pm.add_pass(CsePass);
                // Generic LICM (no SYCL semantics), like any LLVM pipeline.
                pm.add_pass(LicmPass::new(false));
                outcome.pass_stats = pm.run(module)?;
                outcome.dumps = std::mem::take(&mut pm.dumps);
                outcome
                    .notes
                    .push("device IR embedded for JIT specialization at launch".into());
            }
            FlowKind::SyclMlir => {
                let mut raise = RaiseHostPass::default();
                let mut constprop = HostDeviceConstantPropagationPass::default();
                let mut licm = LicmPass::new(true);
                let mut reduction = DetectReductionPass::default();
                let mut internalize = LoopInternalizationPass::default();
                let mut dae = DeadArgumentEliminationPass::default();

                {
                    let mut canon1 = CanonicalizePass;
                    let mut cse1 = CsePass;
                    let mut canon2 = CanonicalizePass;
                    let mut cse2 = CsePass;
                    let stages: Vec<(&str, &mut dyn sycl_mlir_ir::Pass)> = vec![
                        ("raise-host", &mut raise),
                        ("host-device-constprop", &mut constprop),
                        ("canonicalize", &mut canon1),
                        ("cse", &mut cse1),
                        ("licm", &mut licm),
                        ("detect-reduction", &mut reduction),
                        ("loop-internalization", &mut internalize),
                        ("canonicalize", &mut canon2),
                        ("cse", &mut cse2),
                        ("sycl-dae", &mut dae),
                    ];
                    run_stages(module, stages, self.dump_stages, &mut outcome)?;
                }

                outcome.notes.push(format!(
                    "raised {} constructors, {} kernel schedules ({} unmatched runtime calls)",
                    raise.stats.constructors_raised,
                    raise.stats.kernels_raised,
                    raise.stats.unmatched_sycl_calls
                ));
                outcome.notes.push(format!(
                    "propagated {} nd-ranges, {} scalars, {} const arrays; folded {} getters",
                    constprop.stats.nd_ranges_propagated,
                    constprop.stats.scalars_propagated,
                    constprop.stats.const_array_args,
                    constprop.stats.getters_folded
                ));
                outcome.notes.push(format!(
                    "licm: {} pure, {} loads hoisted, {} loops guarded, {} runtime-versioned",
                    licm.stats.pure_hoisted,
                    licm.stats.loads_hoisted,
                    licm.stats.guarded_loops,
                    licm.stats.versioned_loops
                ));
                outcome
                    .notes
                    .push(format!("reductions rewritten: {}", reduction.rewritten));
                outcome.notes.push(format!(
                    "internalized {} loops ({} refs prefetched, {} skipped divergent, {} stores skipped)",
                    internalize.stats.internalized_loops,
                    internalize.stats.prefetched_refs,
                    internalize.stats.skipped_divergent,
                    internalize.stats.skipped_stores
                ));
                outcome
                    .notes
                    .push(format!("dead kernel arguments: {}", dae.dead_args_found));
            }
        }
        Ok(outcome)
    }

    /// AdaptiveCpp's launch-time JIT specialization (§IX): the runtime
    /// knows the concrete ND-range and argument buffer identities, injects
    /// them, and re-optimizes the kernel. Returns whether anything changed.
    ///
    /// # Errors
    ///
    /// Propagates pass failures.
    pub fn jit_specialize(
        &self,
        module: &mut Module,
        kernel: OpId,
        global: &[i64],
        local: &[i64],
        arg_buffer_ids: &[i64],
    ) -> Result<bool, String> {
        debug_assert_eq!(self.kind, FlowKind::AdaptiveCpp);
        module.set_attr(
            kernel,
            sycl_mlir_sycl::KERNEL_GLOBAL_RANGE_ATTR,
            Attribute::DenseI64(global.to_vec()),
        );
        module.set_attr(
            kernel,
            sycl_mlir_sycl::KERNEL_LOCAL_RANGE_ATTR,
            Attribute::DenseI64(local.to_vec()),
        );
        module.set_attr(
            kernel,
            sycl_mlir_analysis::alias::ARG_BUFFER_IDS_ATTR,
            Attribute::DenseI64(arg_buffer_ids.to_vec()),
        );
        // Fold the now-known queries, then run the JIT-level optimizations.
        fold_range_queries(module, kernel);
        let mut pm = PassManager::new();
        pm.add_pass(CanonicalizePass);
        pm.add_pass(CsePass);
        // LLVM-level LICM + load/store promotion: with run-time pointer
        // identities, the JIT can prove the accumulator disjoint and
        // promote it to a register (what gives AdaptiveCpp its polybench
        // wins, e.g. ~3x on SYR2K, §VIII).
        pm.add_pass(LicmPass::new(false));
        pm.add_pass(DetectReductionPass::default());
        pm.add_pass(CanonicalizePass);
        let stats = pm.run(module)?;
        Ok(stats.any_changed())
    }
}

/// Fold `get_global_range`/`get_local_range`/`get_group_range` against the
/// kernel's (JIT-known) range attributes.
fn fold_range_queries(m: &mut Module, kernel: OpId) {
    let global = m
        .attr(kernel, sycl_mlir_sycl::KERNEL_GLOBAL_RANGE_ATTR)
        .and_then(|a| a.as_dense_i64())
        .map(|v| v.to_vec());
    let local = m
        .attr(kernel, sycl_mlir_sycl::KERNEL_LOCAL_RANGE_ATTR)
        .and_then(|a| a.as_dense_i64())
        .map(|v| v.to_vec());
    let mut targets = Vec::new();
    m.walk(kernel, &mut |op| {
        let name = m.op_name_str(op);
        let dim = m
            .op_operands(op)
            .get(1)
            .and_then(|&d| sycl_mlir_dialects::arith::const_int_of(m, d))
            .unwrap_or(-1) as usize;
        let value = match &*name {
            "sycl.nd_item.get_global_range" | "sycl.item.get_range" => {
                global.as_ref().and_then(|g| g.get(dim).copied())
            }
            "sycl.nd_item.get_local_range" => local.as_ref().and_then(|l| l.get(dim).copied()),
            "sycl.nd_item.get_group_range" => match (&global, &local) {
                (Some(g), Some(l)) => g.get(dim).zip(l.get(dim)).map(|(&g, &l)| g / l),
                _ => None,
            },
            _ => None,
        };
        if let Some(v) = value {
            targets.push((op, v));
        }
        sycl_mlir_ir::WalkControl::Advance
    });
    for (op, value) in targets {
        let block = m.op_parent_block(op).expect("attached");
        let index = m.op_index_in_block(op);
        let name = m.ctx().op("arith.constant");
        let ty = m.value_type(m.op_result(op, 0));
        let cst = m.create_op(
            name,
            &[],
            &[ty],
            vec![("value".into(), Attribute::Int(value))],
        );
        m.insert_op(block, index, cst);
        let new_v = m.op_result(cst, 0);
        m.replace_all_uses(m.op_result(op, 0), new_v);
        m.erase_op(op);
    }
}

/// Run borrowed passes in order, with verification, timing, and optional
/// stage dumps — a [`PassManager`] equivalent that leaves the passes (and
/// their statistics) accessible to the caller afterwards.
fn run_stages(
    module: &mut Module,
    stages: Vec<(&str, &mut dyn sycl_mlir_ir::Pass)>,
    dump: bool,
    outcome: &mut CompileOutcome,
) -> Result<(), String> {
    for (name, pass) in stages {
        let start = std::time::Instant::now();
        let changed = pass
            .run(module)
            .map_err(|e| format!("pass `{name}` failed: {e}"))?;
        outcome
            .pass_stats
            .per_pass
            .push((name.to_string(), start.elapsed(), changed));
        sycl_mlir_ir::verify(module)
            .map_err(|e| format!("IR invalid after pass `{name}`:\n{e}"))?;
        if dump {
            outcome
                .dumps
                .push((name.to_string(), sycl_mlir_ir::print_module(module)));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_ir::Context;

    fn ctx() -> Context {
        let c = Context::new();
        sycl_mlir_dialects::register_all(&c);
        sycl_mlir_sycl::register(&c);
        c
    }

    #[test]
    fn pipelines_run_on_empty_module() {
        let c = ctx();
        for kind in FlowKind::all() {
            let mut m = Module::new(&c);
            let flow = Flow::new(kind);
            let out = flow.compile(&mut m).unwrap();
            assert!(!flow.pipeline_description().is_empty());
            let _ = out;
        }
    }

    #[test]
    fn flow_names() {
        assert_eq!(FlowKind::Dpcpp.name(), "DPC++");
        assert_eq!(FlowKind::AdaptiveCpp.name(), "AdaptiveCpp");
        assert_eq!(FlowKind::SyclMlir.name(), "SYCL-MLIR");
    }
}
