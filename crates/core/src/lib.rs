//! # sycl-mlir-core — compiler drivers for the three SYCL implementations
//!
//! The paper's evaluation (§VIII) compares three compilers over the same
//! SYCL runtime. This crate models each as a [`Flow`] over the *joint*
//! host/device module of Fig. 1:
//!
//! * [`FlowKind::Dpcpp`] — the LLVM-based SMCP baseline: device code is
//!   compiled **in isolation** (dotted path of Fig. 1). No host raising, no
//!   SYCL-semantic alias information, conservative LICM only.
//! * [`FlowKind::AdaptiveCpp`] — the SSCP JIT (§IX): ahead-of-time the
//!   device code only gets generic clean-ups; at *kernel launch* the
//!   runtime calls [`Flow::jit_specialize`], which injects the run-time
//!   invocation context (ND-range constants, buffer identities) and then
//!   optimizes — paying a one-time JIT cost.
//! * [`FlowKind::SyclMlir`] — the paper's compiler (dashed path): host
//!   raising (§VII-A), host-device constant propagation + accessor member
//!   propagation (§VII-B), SYCL-aware LICM with versioning (§VI-A),
//!   reduction detection (§VI-B), loop internalization (§VI-C) and SYCL
//!   dead-argument elimination, all at *compile time*.

pub mod flow;

pub use flow::{CompileOutcome, Flow, FlowKind};
