//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace ships a
//! minimal, API-compatible subset of `rand` 0.8: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`] and [`Rng::gen_range`] over the primitive
//! ranges the benchsuite uses. The generator is splitmix64 — deterministic
//! across platforms, which the benchmark suite relies on for seeded,
//! reproducible input data. It is **not** the real StdRng stream and is not
//! cryptographically secure.

pub mod rngs {
    /// Deterministic splitmix64 generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Seedable generators (subset of rand's trait).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        StdRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Random number generation (subset of rand's `Rng`).
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample(self, range)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

/// Types uniformly samplable from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    fn sample<R: Rng>(rng: &mut R, range: std::ops::Range<Self>) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng>(rng: &mut R, range: std::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                (range.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: Rng>(rng: &mut R, range: std::ops::Range<$t>) -> $t {
                assert!(range.start < range.end, "gen_range: empty range");
                // 53 high bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                range.start + (range.end - range.start) * unit as $t
            }
        }
    )*};
}

impl_sample_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(-1.0_f32..1.0);
            assert_eq!(x, b.gen_range(-1.0_f32..1.0));
            assert!((-1.0..1.0).contains(&x));
            let i = a.gen_range(-100_i32..100);
            assert_eq!(i, b.gen_range(-100_i32..100));
            assert!((-100..100).contains(&i));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }
}
