//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace ships an
//! API-compatible subset of criterion: `criterion_group!`/`criterion_main!`,
//! benchmark groups, `Bencher::iter`/`iter_batched`, and `black_box`. The
//! measurement protocol is simplified — one warm-up iteration, then
//! `sample_size` timed iterations reported as min/mean/max — with no plots,
//! no state directory, and no statistical analysis.
//!
//! Running with `--test` (what `cargo test` passes to `harness = false`
//! targets) executes every benchmark exactly once without timing, so benches
//! double as smoke tests.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup; accepted for API compatibility and
/// ignored (every iteration is set up individually).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 30,
            test_mode,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            _parent: self,
        }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let (sample_size, test_mode) = (self.sample_size, self.test_mode);
        run_one(&id.into(), sample_size, test_mode, f);
        self
    }

    pub fn final_summary(&self) {}
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.sample_size, self.test_mode, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one(id: &str, sample_size: usize, test_mode: bool, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: if test_mode { 1 } else { sample_size },
        timings: Vec::new(),
        timed: !test_mode,
    };
    f(&mut b);
    if test_mode {
        println!("test {id} ... ok");
        return;
    }
    let n = b.timings.len().max(1);
    let total: Duration = b.timings.iter().sum();
    let mean = total / n as u32;
    let min = b.timings.iter().min().copied().unwrap_or_default();
    let max = b.timings.iter().max().copied().unwrap_or_default();
    println!("{id:<48} time: [{min:>10.2?} {mean:>10.2?} {max:>10.2?}]  ({n} samples)");
}

pub struct Bencher {
    samples: usize,
    timings: Vec<Duration>,
    timed: bool,
}

impl Bencher {
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if self.timed {
            black_box(routine()); // warm-up
        }
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.timings.push(t0.elapsed());
        }
    }

    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        if self.timed {
            black_box(routine(setup())); // warm-up
        }
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.timings.push(t0.elapsed());
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_apis_run() {
        let mut c = Criterion::default().sample_size(2);
        c.test_mode = true;
        let mut calls = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2)
                .bench_function("f", |b| b.iter(|| calls += 1));
            g.bench_function("batched", |b| {
                b.iter_batched(|| 1, |x| x + 1, BatchSize::LargeInput)
            });
            g.finish();
        }
        assert!(calls >= 1);
    }
}
