//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace ships a
//! small, API-compatible subset of proptest: the [`Strategy`](strategy::Strategy) trait with
//! `prop_map`/`prop_recursive`, range and regex-lite string strategies,
//! `collection::vec`, `prop_oneof!`, and the `proptest!`/`prop_assert*`
//! macros. Cases are generated from a deterministic splitmix64 stream; there
//! is **no shrinking** — a failing case panics with the generated values in
//! the assertion message instead.

use std::ops::Range;
use std::rc::Rc;

pub mod test_runner {
    /// Per-test configuration (subset: case count only).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic splitmix64 source driving all strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: usize) -> usize {
            (self.next_u64() % bound as u64) as usize
        }

        /// Uniform in `[lo, hi)` over i128 to avoid overflow.
        pub fn in_range(&mut self, lo: i128, hi: i128) -> i128 {
            let span = (hi - lo) as u128;
            lo + (self.next_u64() as u128 % span) as i128
        }
    }
}

use test_runner::TestRng;

pub mod strategy {
    use super::*;

    /// A generator of values (subset of proptest's `Strategy`; no shrinking).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Recursive strategies: `depth` rounds of wrapping `self` (the leaf)
        /// with `recurse`. The size hints of real proptest are accepted and
        /// ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = BoxedStrategy(Rc::new(self) as Rc<dyn Strategy<Value = Self::Value>>);
            let mut cur = base.clone();
            for _ in 0..depth {
                let wrapped = recurse(cur).boxed();
                cur = Union::new(vec![base.clone(), wrapped]).boxed();
            }
            cur
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(pub(crate) Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<V> BoxedStrategy<V> {
        pub fn new<S: Strategy<Value = V> + 'static>(s: S) -> BoxedStrategy<V> {
            BoxedStrategy(Rc::new(s))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternatives (backs `prop_oneof!`).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.in_range(self.start as i128, self.end as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + (self.end - self.start) * unit
        }
    }

    /// String strategies from a regex-lite pattern: a sequence of literal
    /// characters and `[...]` character classes, each optionally followed by
    /// a `{min,max}` repetition (the subset this repo's tests use, e.g.
    /// `"[a-z][a-z0-9_]{0,8}"`).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let atoms = parse_pattern(self);
            let mut out = String::new();
            for atom in &atoms {
                let n = atom.min + rng.below(atom.max - atom.min + 1);
                for _ in 0..n {
                    out.push(atom.chars[rng.below(atom.chars.len())]);
                }
            }
            out
        }
    }

    struct Atom {
        chars: Vec<char>,
        min: usize,
        max: usize,
    }

    fn parse_pattern(pat: &str) -> Vec<Atom> {
        let chars: Vec<char> = pat.chars().collect();
        let mut atoms = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let set = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unterminated [ in pattern {pat}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        set.extend((lo..=hi).filter(|c| c.is_ascii()));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unterminated {{ in pattern {pat}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                let (lo, hi) = body
                    .split_once(',')
                    .unwrap_or_else(|| panic!("expected {{min,max}} in pattern {pat}"));
                i = close + 1;
                (lo.parse().unwrap(), hi.parse().unwrap())
            } else {
                (1, 1)
            };
            assert!(!set.is_empty() && min <= max, "bad pattern {pat}");
            atoms.push(Atom {
                chars: set,
                min,
                max,
            });
        }
        atoms
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical [`any`] strategy.
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }

    pub struct AnyPrim<T>(std::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Strategy for AnyPrim<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
            impl Arbitrary for $t {
                type Strategy = AnyPrim<$t>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrim(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

    impl Strategy for AnyPrim<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrim<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrim(std::marker::PhantomData)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec()`]: a fixed count or a half-open
    /// range of counts.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with sizes drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice among strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::BoxedStrategy::new($strat)),+
        ])
    };
}

/// Assertion macros: without shrinking these are plain assertions, so a
/// failing case panics with the case's values in the message.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// The test-definition macro. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                // Stable per-test seed: derived from the test name so adding
                // tests does not perturb existing streams.
                let mut seed = 0xcbf2_9ce4_8422_2325_u64;
                for b in stringify!($name).bytes() {
                    seed = (seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                }
                for case in 0..cfg.cases as u64 {
                    let mut rng = $crate::test_runner::TestRng::new(seed ^ (case << 32));
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($rest)*
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::test_runner::TestRng::new(7);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -50..50i64, v in crate::collection::vec(0..10i32, 0..4)) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!(v.len() < 4);
            prop_assert!(v.iter().all(|e| (0..10).contains(e)));
        }

        #[test]
        fn oneof_and_map_compose(s in prop_oneof![Just(1i64), 10..20i64].prop_map(|v| v * 2)) {
            prop_assert!(s == 2 || (20..40).contains(&s));
        }
    }
}
