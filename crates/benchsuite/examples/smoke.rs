use sycl_mlir_benchsuite::{all_workloads, run_workload};
use sycl_mlir_core::FlowKind;

fn main() {
    let names: Vec<String> = std::env::args().skip(1).collect();
    for w in all_workloads() {
        if !names.is_empty() && !names.iter().any(|n| w.name.contains(n.as_str())) {
            continue;
        }
        for kind in FlowKind::all() {
            let t = std::time::Instant::now();
            match run_workload(&w, w.scaled_size, kind) {
                Ok(r) => {
                    println!(
                        "{:-28} {:-12} cycles={:>14.0} valid={} wall={:?}",
                        w.name,
                        kind.name(),
                        r.cycles,
                        r.valid,
                        t.elapsed()
                    );
                    if std::env::var("NOTES").is_ok() {
                        for n in &r.compile_notes {
                            println!("    note: {n}");
                        }
                        println!("    stats: {:?}", r.stats);
                    }
                }
                Err(e) => println!("{:-28} {:-12} ERROR: {e}", w.name, kind.name()),
            }
        }
    }
}
