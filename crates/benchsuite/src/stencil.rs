//! The stencil workloads from the oneAPI samples repository (§VIII):
//! 1D heat transfer (buffer and USM variants), iso2dfd and jacobi.
//! None of the paper's device optimizations apply here; the paper reports
//! 0.86x–1.0x for SYCL-MLIR, and AdaptiveCpp fails validation on all but
//! iso2dfd.

use crate::util::*;
use crate::{App, Category, ValidateFn, WorkloadSpec};
use sycl_mlir_dialects::{arith, scf};
use sycl_mlir_frontend::{full_context, KernelModuleBuilder, KernelSig};
use sycl_mlir_runtime::{hostgen::generate_host_ir, Queue, SyclRuntime};
use sycl_mlir_sycl::device as sdev;
use sycl_mlir_sycl::types::AccessMode;

/// The four stencil workloads. Sizes: the paper recommends 100 points ×
/// 1,000 steps for heat transfer, 1,000² × 2,000 for iso2dfd; we keep the
/// spatial sizes and scale the step counts.
pub fn workloads() -> Vec<WorkloadSpec> {
    vec![
        WorkloadSpec {
            name: "1D HeatTransfer (buffer)",
            category: Category::Stencil,
            paper_size: 100,
            scaled_size: 100,
            acpp_fails: true, // §VIII: ACpp fails all stencils except iso2dfd
            in_figure: true,
            build: |n| heat_transfer(n, false),
        },
        WorkloadSpec {
            name: "1D HeatTransfer (USM)",
            category: Category::Stencil,
            paper_size: 100,
            scaled_size: 100,
            acpp_fails: true,
            in_figure: true,
            build: |n| heat_transfer(n, true),
        },
        WorkloadSpec {
            name: "iso2dfd",
            category: Category::Stencil,
            paper_size: 1000,
            scaled_size: 64,
            acpp_fails: false, // ACpp runs it (1.5x in the paper)
            in_figure: true,
            build: iso2dfd,
        },
        WorkloadSpec {
            name: "jacobi",
            category: Category::Stencil,
            paper_size: 256,
            scaled_size: 64,
            acpp_fails: true,
            in_figure: true,
            build: jacobi,
        },
    ]
}

/// One explicit Euler step of 1-d heat diffusion:
/// `out[i] = in[i] + k*(in[i-1] - 2 in[i] + in[i+1])` with clamped borders.
fn heat_transfer(n: i64, usm: bool) -> App {
    const STEPS: i64 = 50;
    const K: f64 = 0.25;
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    let sig = KernelSig::new("heat_step", 1, false)
        .accessor(f.clone(), 1, AccessMode::Read)
        .accessor(f, 1, AccessMode::Write);
    kb.add_kernel(&sig, |b, args, item| {
        let i = sdev::item_get_id(b, item, 0);
        let nn = sdev::item_get_range(b, item, 0);
        let one = arith::constant_index(b, 1);
        let zero = arith::constant_index(b, 0);
        let hi = arith::subi(b, nn, one);
        let ge = arith::cmpi(b, "sgt", i, zero);
        let lt = arith::cmpi(b, "slt", i, hi);
        let interior = b.build_value("arith.andi", &[ge, lt], b.ctx().i1_type(), vec![]);
        let cur = sdev::load_via_id(b, args[0], &[i]);
        scf::build_if(
            b,
            interior,
            &[],
            |inner| {
                let one2 = arith::constant_index(inner, 1);
                let im1 = arith::subi(inner, i, one2);
                let ip1 = arith::addi(inner, i, one2);
                let left = sdev::load_via_id(inner, args[0], &[im1]);
                let right = sdev::load_via_id(inner, args[0], &[ip1]);
                let f32t = inner.ctx().f32_type();
                let two = arith::constant_float(inner, 2.0, f32t.clone());
                let twice = arith::mulf(inner, two, cur);
                let lap0 = arith::addf(inner, left, right);
                let lap = arith::subf(inner, lap0, twice);
                let kc = arith::constant_float(inner, K, f32t);
                let dk = arith::mulf(inner, kc, lap);
                let next = arith::addf(inner, cur, dk);
                sdev::store_via_id(inner, next, args[1], &[i]);
                vec![]
            },
            |inner| {
                sdev::store_via_id(inner, cur, args[1], &[i]);
                vec![]
            },
        );
    });

    let mut rng_ = rng(51);
    let mut rt = SyclRuntime::new();
    let init = rand_f32(&mut rng_, n as usize);
    let mut q = Queue::new();
    if usm {
        // USM: user-managed pointers, opaque to host analysis (§II-A).
        let a = rt.usm_alloc_f32(init.clone());
        let b = rt.usm_alloc_f32(vec![0.0; n as usize]);
        for step in 0..STEPS {
            let (src, dst) = if step % 2 == 0 { (a, b) } else { (b, a) };
            q.submit(|h| {
                h.usm(src, n).usm(dst, n);
                h.parallel_for("heat_step", &[n]);
            });
        }
    } else {
        let a = rt.buffer_f32(init.clone(), &[n]);
        let b = rt.buffer_f32(vec![0.0; n as usize], &[n]);
        for step in 0..STEPS {
            let (src, dst) = if step % 2 == 0 { (a, b) } else { (b, a) };
            q.submit(|h| {
                h.accessor(src, AccessMode::Read)
                    .accessor(dst, AccessMode::Write);
                h.parallel_for("heat_step", &[n]);
            });
        }
    }
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    // Host reference.
    let mut cur = init;
    for _ in 0..STEPS {
        let mut next = cur.clone();
        for i in 1..(n - 1) as usize {
            next[i] = cur[i] + K as f32 * (cur[i - 1] - 2.0 * cur[i] + cur[i + 1]);
        }
        cur = next;
    }
    let want = cur;
    // After an even number of steps the result lives in buffer/usm 0.
    let final_in_first = STEPS % 2 == 0;
    let validate: ValidateFn = if usm {
        Box::new(move |rt| {
            let got = if final_in_first {
                rt.usm_read_f32(crate::stencil::usm_id(0))
            } else {
                rt.usm_read_f32(crate::stencil::usm_id(1))
            };
            check_f32("heat-usm", got, &want, 1e-3)
        })
    } else {
        Box::new(move |rt| {
            let got = if final_in_first {
                rt.read_f32(buf_id(0))
            } else {
                rt.read_f32(buf_id(1))
            };
            check_f32("heat-buffer", got, &want, 1e-3)
        })
    };
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

pub(crate) fn usm_id(i: usize) -> sycl_mlir_runtime::UsmId {
    sycl_mlir_runtime::UsmId(i)
}

fn buf_id(i: usize) -> sycl_mlir_runtime::BufferId {
    sycl_mlir_runtime::BufferId(i)
}

/// iso2dfd: second-order wave propagation in an isotropic medium.
/// `next = 2*cur - prev + vel*(laplacian(cur))`.
fn iso2dfd(n: i64) -> App {
    const ITERS: i64 = 20;
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    let sig = KernelSig::new("iso2dfd", 2, true)
        .accessor(f.clone(), 2, AccessMode::Read) // cur
        .accessor(f.clone(), 2, AccessMode::ReadWrite) // prev/next
        .accessor(f, 2, AccessMode::Read); // velocity
    kb.add_kernel(&sig, |b, args, item| {
        let i = sdev::global_id(b, item, 0);
        let j = sdev::global_id(b, item, 1);
        let one = arith::constant_index(b, 1);
        let nn = sdev::global_range(b, item, 0);
        let hi = arith::subi(b, nn, one);
        let zero = arith::constant_index(b, 0);
        let c0 = arith::cmpi(b, "sgt", i, zero);
        let c1 = arith::cmpi(b, "slt", i, hi);
        let c2 = arith::cmpi(b, "sgt", j, zero);
        let c3 = arith::cmpi(b, "slt", j, hi);
        let c01 = b.build_value("arith.andi", &[c0, c1], b.ctx().i1_type(), vec![]);
        let c23 = b.build_value("arith.andi", &[c2, c3], b.ctx().i1_type(), vec![]);
        let interior = b.build_value("arith.andi", &[c01, c23], b.ctx().i1_type(), vec![]);
        scf::build_if(
            b,
            interior,
            &[],
            |inner| {
                let one2 = arith::constant_index(inner, 1);
                let im1 = arith::subi(inner, i, one2);
                let ip1 = arith::addi(inner, i, one2);
                let jm1 = arith::subi(inner, j, one2);
                let jp1 = arith::addi(inner, j, one2);
                let c = sdev::load_via_id(inner, args[0], &[i, j]);
                let up = sdev::load_via_id(inner, args[0], &[im1, j]);
                let down = sdev::load_via_id(inner, args[0], &[ip1, j]);
                let left = sdev::load_via_id(inner, args[0], &[i, jm1]);
                let right = sdev::load_via_id(inner, args[0], &[i, jp1]);
                let f32t = inner.ctx().f32_type();
                let four = arith::constant_float(inner, 4.0, f32t);
                let sum0 = arith::addf(inner, up, down);
                let sum1 = arith::addf(inner, left, right);
                let sum = arith::addf(inner, sum0, sum1);
                let cc = arith::mulf(inner, four, c);
                let lap = arith::subf(inner, sum, cc);
                let vel = sdev::load_via_id(inner, args[2], &[i, j]);
                let vlap = arith::mulf(inner, vel, lap);
                let prev = sdev::load_via_id(inner, args[1], &[i, j]);
                let two = arith::constant_float(inner, 2.0, inner.ctx().f32_type());
                let twoc = arith::mulf(inner, two, c);
                let t0 = arith::subf(inner, twoc, prev);
                let next = arith::addf(inner, t0, vlap);
                sdev::store_via_id(inner, next, args[1], &[i, j]);
                vec![]
            },
            |_| vec![],
        );
    });

    let mut rng_ = rng(52);
    let mut rt = SyclRuntime::new();
    let len = (n * n) as usize;
    let a = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let b = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let vel = rt.buffer_f32(
        rand_f32(&mut rng_, len)
            .iter()
            .map(|v| v.abs() * 0.1)
            .collect(),
        &[n, n],
    );
    let mut q = Queue::new();
    for step in 0..ITERS {
        let (cur, prev) = if step % 2 == 0 { (a, b) } else { (b, a) };
        q.submit(|h| {
            h.accessor(cur, AccessMode::Read)
                .accessor(prev, AccessMode::ReadWrite)
                .accessor(vel, AccessMode::Read);
            h.parallel_for_nd("iso2dfd", &[n, n], &[16, 16]);
        });
    }
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    // Host reference.
    let nn = n as usize;
    let mut cur = rt.read_f32(a).to_vec();
    let mut prev = rt.read_f32(b).to_vec();
    let velv = rt.read_f32(vel).to_vec();
    for _ in 0..ITERS {
        let mut next = prev.clone();
        for i in 1..nn - 1 {
            for j in 1..nn - 1 {
                let lap = cur[(i - 1) * nn + j]
                    + cur[(i + 1) * nn + j]
                    + cur[i * nn + j - 1]
                    + cur[i * nn + j + 1]
                    - 4.0 * cur[i * nn + j];
                next[i * nn + j] =
                    2.0 * cur[i * nn + j] - prev[i * nn + j] + velv[i * nn + j] * lap;
            }
        }
        prev = cur;
        cur = next;
    }
    // After the loop `cur` is the last-written wavefield. It lives in `b`
    // when ITERS is odd, in `a`'s role otherwise; with the swap scheme the
    // final write went into the buffer playing `prev` on the last step.
    let want = cur;
    let final_buf = if ITERS % 2 == 0 { a } else { b };
    let _ = final_buf;
    let last_written = if (ITERS - 1) % 2 == 0 { b } else { a };
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("iso2dfd", rt.read_f32(last_written), &want, 5e-2));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

/// Jacobi iteration for a diagonally dominant system; the *prepare for next
/// iteration* step (L1 norm) runs on the host, as the paper adapted it
/// because SYCL reductions are unsupported (§VIII).
fn jacobi(n: i64) -> App {
    const ITERS: i64 = 10;
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    let sig = KernelSig::new("jacobi_step", 1, true)
        .accessor(f.clone(), 2, AccessMode::Read) // A
        .accessor(f.clone(), 1, AccessMode::Read) // b
        .accessor(f.clone(), 1, AccessMode::Read) // x
        .accessor(f, 1, AccessMode::Write); // x_next
    kb.add_kernel(&sig, |b, args, item| {
        let i = sdev::global_id(b, item, 0);
        let zero = arith::constant_index(b, 0);
        let nn = arith::constant_index(b, n);
        let one = arith::constant_index(b, 1);
        let f32t = b.ctx().f32_type();
        let zf = arith::constant_float(b, 0.0, f32t);
        let sum_loop = scf::build_for(b, zero, nn, one, &[zf], |inner, jv, iters| {
            let not_diag = arith::cmpi(inner, "ne", jv, i);
            let a = sdev::load_via_id(inner, args[0], &[i, jv]);
            let x = sdev::load_via_id(inner, args[2], &[jv]);
            let prod = arith::mulf(inner, a, x);
            let zero_f = arith::constant_float(inner, 0.0, inner.ctx().f32_type());
            let contrib = arith::select(inner, not_diag, prod, zero_f);
            let acc = arith::addf(inner, iters[0], contrib);
            vec![acc]
        });
        let sum = b.module().op_result(sum_loop, 0);
        let bv = sdev::load_via_id(b, args[1], &[i]);
        let diag = sdev::load_via_id(b, args[0], &[i, i]);
        let num = arith::subf(b, bv, sum);
        let xn = arith::divf(b, num, diag);
        sdev::store_via_id(b, xn, args[3], &[i]);
    });

    let mut rng_ = rng(53);
    let mut rt = SyclRuntime::new();
    let nn = n as usize;
    // Diagonally dominant A.
    let mut a_data = rand_f32(&mut rng_, nn * nn);
    for i in 0..nn {
        a_data[i * nn + i] = n as f32 + 1.0;
    }
    let b_data = rand_f32(&mut rng_, nn);
    let a = rt.buffer_f32(a_data.clone(), &[n, n]);
    let bb = rt.buffer_f32(b_data.clone(), &[n]);
    let x0 = rt.buffer_f32(vec![0.0; nn], &[n]);
    let x1 = rt.buffer_f32(vec![0.0; nn], &[n]);
    let mut q = Queue::new();
    for step in 0..ITERS {
        let (xin, xout) = if step % 2 == 0 { (x0, x1) } else { (x1, x0) };
        q.submit(|h| {
            h.accessor(a, AccessMode::Read)
                .accessor(bb, AccessMode::Read)
                .accessor(xin, AccessMode::Read)
                .accessor(xout, AccessMode::Write);
            h.parallel_for_nd("jacobi_step", &[n], &[16]);
        });
        // The "prepare for next iteration" L1-norm/error step runs on the
        // host in the paper's adapted version; our host does it during
        // validation instead of on-device.
    }
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    // Host reference.
    let mut x = vec![0.0_f32; nn];
    for _ in 0..ITERS {
        let mut xn = vec![0.0_f32; nn];
        for i in 0..nn {
            let mut sum = 0.0_f32;
            for j in 0..nn {
                if j != i {
                    sum += a_data[i * nn + j] * x[j];
                }
            }
            xn[i] = (b_data[i] - sum) / a_data[i * nn + i];
        }
        x = xn;
    }
    let want = x;
    let final_buf = if ITERS % 2 == 0 { x0 } else { x1 };
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("jacobi", rt.read_f32(final_buf), &want, 1e-3));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}
