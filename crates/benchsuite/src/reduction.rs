//! The `reduction` category: tree reduction, segmented scan and a
//! work-group-local dot product — the collective-style access patterns of
//! §VIII that the original three categories leave uncovered. All four
//! workloads drive work-group local memory and barriers through the
//! frontend; the dynamic-nd-range variant derives its launch extents from
//! the data size at submission time, so a tail launch with zero
//! work-groups sits in the middle of the dependency chain (the empty
//! nd-range path).

use crate::util::*;
use crate::{App, Category, ValidateFn, WorkloadSpec};
use sycl_mlir_dialects::{arith, memref, scf};
use sycl_mlir_frontend::{full_context, KernelModuleBuilder, KernelSig};
use sycl_mlir_runtime::{hostgen::generate_host_ir, Queue, SyclRuntime};
use sycl_mlir_sycl::device as sdev;
use sycl_mlir_sycl::types::AccessMode;

/// Work-group size shared by the whole family (powers of two so the tree
/// strides stay exact).
const WG: i64 = 16;

/// All reduction/scan workloads.
pub fn workloads() -> Vec<WorkloadSpec> {
    fn spec(name: &'static str, paper: i64, scaled: i64, build: fn(i64) -> App) -> WorkloadSpec {
        WorkloadSpec {
            name,
            category: Category::Reduction,
            paper_size: paper,
            scaled_size: scaled,
            acpp_fails: false,
            in_figure: true,
            build,
        }
    }
    vec![
        spec("TreeReduce (float32)", 1 << 20, 4096, tree_reduce),
        spec("SegScan (float32)", 1 << 20, 4096, seg_scan),
        spec("DotProd (WG-local)", 1 << 20, 4096, dot_wg),
        spec("TreeReduce (dyn nd-range)", 1 << 20, 4096, tree_reduce_dyn),
    ]
}

/// Round `n` up to a whole number of work-groups (≥ one group).
fn whole_groups(n: i64) -> i64 {
    ((n.max(1) + WG - 1) / WG) * WG
}

/// Emit the in-tile tree-reduction ladder: `log2(WG)` halving strides,
/// each a guarded accumulate followed by a *uniform* work-group barrier.
fn build_tree_ladder(
    b: &mut sycl_mlir_ir::Builder<'_>,
    tile: sycl_mlir_ir::ValueId,
    lid: sycl_mlir_ir::ValueId,
    group: sycl_mlir_ir::ValueId,
) {
    let mut stride = WG / 2;
    while stride >= 1 {
        let s = arith::constant_index(b, stride);
        let active = arith::cmpi(b, "slt", lid, s);
        scf::build_if(
            b,
            active,
            &[],
            |inner| {
                let lo = memref::load(inner, tile, &[lid]);
                let partner = arith::addi(inner, lid, s);
                let hi = memref::load(inner, tile, &[partner]);
                let sum = arith::addf(inner, lo, hi);
                memref::store(inner, sum, tile, &[lid]);
                vec![]
            },
            |_| vec![],
        );
        sdev::group_barrier(b, group);
        stride /= 2;
    }
}

// ----------------------------------------------------------------------
// TreeReduce: partial[g] = sum of input[g*WG .. (g+1)*WG) via a local
// tile and halving-stride barrier ladder.
// ----------------------------------------------------------------------

fn tree_reduce(n: i64) -> App {
    let n = whole_groups(n);
    let groups = n / WG;
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    let sig = KernelSig::new("tree_reduce", 1, true)
        .accessor(f.clone(), 1, AccessMode::Read)
        .accessor(f, 1, AccessMode::Write);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::global_id(b, item, 0);
        let lid = sdev::local_id(b, item, 0);
        let grp = sdev::group_id(b, item, 0);
        let f32t = b.ctx().f32_type();
        let tile = sdev::local_alloca(b, f32t, &[WG]);
        let v = sdev::load_via_id(b, args[0], &[gid]);
        memref::store(b, v, tile, &[lid]);
        let g = sdev::get_group(b, item);
        sdev::group_barrier(b, g);
        build_tree_ladder(b, tile, lid, g);
        let zero = arith::constant_index(b, 0);
        let leader = arith::cmpi(b, "eq", lid, zero);
        scf::build_if(
            b,
            leader,
            &[],
            |inner| {
                let z = arith::constant_index(inner, 0);
                let total = memref::load(inner, tile, &[z]);
                sdev::store_via_id(inner, total, args[1], &[grp]);
                vec![]
            },
            |_| vec![],
        );
    });

    let mut rng_ = rng(61);
    let mut rt = SyclRuntime::new();
    let input = rt.buffer_f32(rand_f32(&mut rng_, n as usize), &[n]);
    let partial = rt.buffer_f32(vec![0.0; groups as usize], &[groups]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(input, AccessMode::Read)
            .accessor(partial, AccessMode::Write);
        h.parallel_for_nd("tree_reduce", &[n], &[WG]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let data = rt.read_f32(input).to_vec();
    let want: Vec<f32> = (0..groups as usize)
        .map(|g| data[g * WG as usize..(g + 1) * WG as usize].iter().sum())
        .collect();
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("tree_reduce", rt.read_f32(partial), &want, 1e-4));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// SegScan: inclusive prefix sum within each WG-sized segment — every item
// publishes to the tile, barriers, then folds tile[0..=lid].
// ----------------------------------------------------------------------

fn seg_scan(n: i64) -> App {
    let n = whole_groups(n);
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    let sig = KernelSig::new("seg_scan", 1, true)
        .accessor(f.clone(), 1, AccessMode::Read)
        .accessor(f, 1, AccessMode::Write);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::global_id(b, item, 0);
        let lid = sdev::local_id(b, item, 0);
        let f32t = b.ctx().f32_type();
        let tile = sdev::local_alloca(b, f32t.clone(), &[WG]);
        let v = sdev::load_via_id(b, args[0], &[gid]);
        memref::store(b, v, tile, &[lid]);
        let g = sdev::get_group(b, item);
        sdev::group_barrier(b, g);
        let zero = arith::constant_index(b, 0);
        let one = arith::constant_index(b, 1);
        let end = arith::addi(b, lid, one);
        let zf = arith::constant_float(b, 0.0, f32t);
        let fold = scf::build_for(b, zero, end, one, &[zf], |inner, j, iters| {
            let e = memref::load(inner, tile, &[j]);
            let s = arith::addf(inner, iters[0], e);
            vec![s]
        });
        let prefix = b.module().op_result(fold, 0);
        sdev::store_via_id(b, prefix, args[1], &[gid]);
    });

    let mut rng_ = rng(62);
    let mut rt = SyclRuntime::new();
    let input = rt.buffer_f32(rand_f32(&mut rng_, n as usize), &[n]);
    let out = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(input, AccessMode::Read)
            .accessor(out, AccessMode::Write);
        h.parallel_for_nd("seg_scan", &[n], &[WG]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let data = rt.read_f32(input).to_vec();
    let mut want = vec![0.0_f32; n as usize];
    for seg in 0..(n / WG) as usize {
        let mut acc = 0.0_f32;
        for k in 0..WG as usize {
            acc += data[seg * WG as usize + k];
            want[seg * WG as usize + k] = acc;
        }
    }
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("seg_scan", rt.read_f32(out), &want, 1e-4));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// DotProd: per-group dot-product partials — the multiply feeds the tile,
// the leader folds after the barrier.
// ----------------------------------------------------------------------

fn dot_wg(n: i64) -> App {
    let n = whole_groups(n);
    let groups = n / WG;
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    let sig = KernelSig::new("dot_wg", 1, true)
        .accessor(f.clone(), 1, AccessMode::Read)
        .accessor(f.clone(), 1, AccessMode::Read)
        .accessor(f, 1, AccessMode::Write);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::global_id(b, item, 0);
        let lid = sdev::local_id(b, item, 0);
        let grp = sdev::group_id(b, item, 0);
        let f32t = b.ctx().f32_type();
        let tile = sdev::local_alloca(b, f32t.clone(), &[WG]);
        let a = sdev::load_via_id(b, args[0], &[gid]);
        let x = sdev::load_via_id(b, args[1], &[gid]);
        let p = arith::mulf(b, a, x);
        memref::store(b, p, tile, &[lid]);
        let g = sdev::get_group(b, item);
        sdev::group_barrier(b, g);
        let zero = arith::constant_index(b, 0);
        let leader = arith::cmpi(b, "eq", lid, zero);
        scf::build_if(
            b,
            leader,
            &[],
            |inner| {
                let z = arith::constant_index(inner, 0);
                let wg = arith::constant_index(inner, WG);
                let one = arith::constant_index(inner, 1);
                let zf = arith::constant_float(inner, 0.0, inner.ctx().f32_type());
                let fold = scf::build_for(inner, z, wg, one, &[zf], |l, j, iters| {
                    let e = memref::load(l, tile, &[j]);
                    let s = arith::addf(l, iters[0], e);
                    vec![s]
                });
                let total = inner.module().op_result(fold, 0);
                sdev::store_via_id(inner, total, args[2], &[grp]);
                vec![]
            },
            |_| vec![],
        );
    });

    let mut rng_ = rng(63);
    let mut rt = SyclRuntime::new();
    let a = rt.buffer_f32(rand_f32(&mut rng_, n as usize), &[n]);
    let x = rt.buffer_f32(rand_f32(&mut rng_, n as usize), &[n]);
    let partial = rt.buffer_f32(vec![0.0; groups as usize], &[groups]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(a, AccessMode::Read)
            .accessor(x, AccessMode::Read)
            .accessor(partial, AccessMode::Write);
        h.parallel_for_nd("dot_wg", &[n], &[WG]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let av = rt.read_f32(a).to_vec();
    let xv = rt.read_f32(x).to_vec();
    let want: Vec<f32> = (0..groups as usize)
        .map(|g| {
            (0..WG as usize)
                .map(|k| av[g * WG as usize + k] * xv[g * WG as usize + k])
                .sum()
        })
        .collect();
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("dot_wg", rt.read_f32(partial), &want, 1e-4));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// TreeReduce (dyn nd-range): launch extents computed from the data size
// at submission time — a bulk nd-launch over the whole-group prefix and a
// tail launch over the remainder. For group-aligned sizes the tail has
// zero work-groups, so an empty launch sits inside the dependency chain.
// ----------------------------------------------------------------------

fn tree_reduce_dyn(n: i64) -> App {
    let n = n.max(1);
    let bulk = n - n % WG;
    let tail = n % WG;
    let groups = bulk / WG;
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    let bulk_sig = KernelSig::new("dyn_bulk", 1, true)
        .accessor(f.clone(), 1, AccessMode::Read)
        .accessor(f.clone(), 1, AccessMode::Write);
    kb.add_kernel(&bulk_sig, |b, args, item| {
        let gid = sdev::global_id(b, item, 0);
        let lid = sdev::local_id(b, item, 0);
        let grp = sdev::group_id(b, item, 0);
        let f32t = b.ctx().f32_type();
        let tile = sdev::local_alloca(b, f32t, &[WG]);
        let v = sdev::load_via_id(b, args[0], &[gid]);
        memref::store(b, v, tile, &[lid]);
        let g = sdev::get_group(b, item);
        sdev::group_barrier(b, g);
        build_tree_ladder(b, tile, lid, g);
        let zero = arith::constant_index(b, 0);
        let leader = arith::cmpi(b, "eq", lid, zero);
        scf::build_if(
            b,
            leader,
            &[],
            |inner| {
                let z = arith::constant_index(inner, 0);
                let total = memref::load(inner, tile, &[z]);
                sdev::store_via_id(inner, total, args[1], &[grp]);
                vec![]
            },
            |_| vec![],
        );
    });
    // Tail pass-through: one partial per leftover element, placed after
    // the bulk groups' partials.
    let tail_sig = KernelSig::new("dyn_tail", 1, false)
        .accessor(f.clone(), 1, AccessMode::Read)
        .accessor(f, 1, AccessMode::Write)
        .scalar(ctx.i64_type())
        .scalar(ctx.i64_type());
    kb.add_kernel(&tail_sig, |b, args, item| {
        let gid = sdev::item_get_id(b, item, 0);
        let index_ty = b.ctx().index_type();
        let off = arith::index_cast(b, args[2], index_ty.clone());
        let base = arith::index_cast(b, args[3], index_ty);
        let src = arith::addi(b, off, gid);
        let dst = arith::addi(b, base, gid);
        let v = sdev::load_via_id(b, args[0], &[src]);
        sdev::store_via_id(b, v, args[1], &[dst]);
    });

    let mut rng_ = rng(64);
    let mut rt = SyclRuntime::new();
    let input = rt.buffer_f32(rand_f32(&mut rng_, n as usize), &[n]);
    let plen = groups + tail;
    let partial = rt.buffer_f32(vec![0.0; plen as usize], &[plen]);
    let mut q = Queue::new();
    if bulk > 0 {
        q.submit(|h| {
            h.accessor(input, AccessMode::Read)
                .accessor(partial, AccessMode::Write);
            h.parallel_for_nd("dyn_bulk", &[bulk], &[WG]);
        });
    }
    // Submitted unconditionally: for aligned sizes this is the zero-group
    // launch the scheduler must retire eagerly.
    q.submit(|h| {
        h.accessor(input, AccessMode::Read)
            .accessor(partial, AccessMode::Write)
            .scalar_i64(bulk)
            .scalar_i64(groups);
        h.parallel_for("dyn_tail", &[tail]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let data = rt.read_f32(input).to_vec();
    let mut want: Vec<f32> = (0..groups as usize)
        .map(|g| data[g * WG as usize..(g + 1) * WG as usize].iter().sum())
        .collect();
    want.extend_from_slice(&data[bulk as usize..]);
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("tree_reduce_dyn", rt.read_f32(partial), &want, 1e-4));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}
