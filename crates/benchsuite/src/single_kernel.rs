//! The `single-kernel` category of SYCL-Bench (Fig. 2 of the paper):
//! real-world kernels from image processing, molecular dynamics, machine
//! learning and linear algebra, in the data-type variants the figure plots.

use crate::util::*;
use crate::{App, Category, ValidateFn, WorkloadSpec};
use sycl_mlir_dialects::{arith, math, scf};
use sycl_mlir_frontend::{full_context, KernelModuleBuilder, KernelSig};
use sycl_mlir_ir::{Builder, Type, ValueId};
use sycl_mlir_runtime::{hostgen::generate_host_ir, Queue, SyclRuntime};
use sycl_mlir_sycl::device as sdev;
use sycl_mlir_sycl::types::AccessMode;

/// Scalar data type of a workload variant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Dtype {
    F32,
    F64,
    I32,
    I64,
}

impl Dtype {
    fn ty(self, ctx: &sycl_mlir_ir::Context) -> Type {
        match self {
            Dtype::F32 => ctx.f32_type(),
            Dtype::F64 => ctx.f64_type(),
            Dtype::I32 => ctx.i32_type(),
            Dtype::I64 => ctx.i64_type(),
        }
    }

    fn is_float(self) -> bool {
        matches!(self, Dtype::F32 | Dtype::F64)
    }
}

/// All Fig. 2 workloads in figure order.
pub fn workloads() -> Vec<WorkloadSpec> {
    fn spec(name: &'static str, paper: i64, scaled: i64, build: fn(i64) -> App) -> WorkloadSpec {
        WorkloadSpec {
            name,
            category: Category::SingleKernel,
            paper_size: paper,
            scaled_size: scaled,
            acpp_fails: false,
            in_figure: true,
            build,
        }
    }
    vec![
        spec("KMeans (float32)", 1 << 20, 8192, |n| kmeans(Dtype::F32, n)),
        spec("KMeans (float64)", 1 << 20, 8192, |n| kmeans(Dtype::F64, n)),
        spec("LinReg (float32)", 65_536, 8192, |n| linreg(Dtype::F32, n)),
        spec("LinReg (float64)", 65_536, 8192, |n| linreg(Dtype::F64, n)),
        spec("LinReg Coeff. (float32)", 1 << 20, 8192, |n| {
            linreg_coeff(Dtype::F32, n)
        }),
        spec("LinReg Coeff. (float64)", 1 << 20, 8192, |n| {
            linreg_coeff(Dtype::F64, n)
        }),
        spec("MolDyn", 1 << 20, 2048, moldyn),
        spec("NBody (float32)", 1024, 256, |n| nbody(Dtype::F32, n)),
        spec("NBody (float64)", 1024, 256, |n| nbody(Dtype::F64, n)),
        spec("ScalProd (float32)", 1 << 20, 16_384, |n| {
            scalprod(Dtype::F32, n)
        }),
        spec("ScalProd (float64)", 1 << 20, 16_384, |n| {
            scalprod(Dtype::F64, n)
        }),
        spec("ScalProd (int32)", 1 << 20, 16_384, |n| {
            scalprod(Dtype::I32, n)
        }),
        spec("ScalProd (int64)", 1 << 20, 16_384, |n| {
            scalprod(Dtype::I64, n)
        }),
        spec("Sobel3", 512, 64, |n| sobel(3, n)),
        spec("Sobel5", 512, 64, |n| sobel(5, n)),
        spec("Sobel7", 512, 64, |n| sobel(7, n)),
        spec("VecAdd (float32)", 1 << 20, 16_384, |n| {
            vecadd(Dtype::F32, n)
        }),
        spec("VecAdd (float64)", 1 << 20, 16_384, |n| {
            vecadd(Dtype::F64, n)
        }),
        spec("VecAdd (int32)", 1 << 20, 16_384, |n| vecadd(Dtype::I32, n)),
        spec("VecAdd (int64)", 1 << 20, 16_384, |n| vecadd(Dtype::I64, n)),
    ]
}

fn add(b: &mut Builder<'_>, dt: Dtype, l: ValueId, r: ValueId) -> ValueId {
    if dt.is_float() {
        arith::addf(b, l, r)
    } else {
        arith::addi(b, l, r)
    }
}

fn mul(b: &mut Builder<'_>, dt: Dtype, l: ValueId, r: ValueId) -> ValueId {
    if dt.is_float() {
        arith::mulf(b, l, r)
    } else {
        arith::muli(b, l, r)
    }
}

/// Allocate runtime buffers of the right dtype; returns the buffer plus a
/// retrieval closure handled per-workload.
fn buffer_rand(
    rt: &mut SyclRuntime,
    dt: Dtype,
    rng: &mut rand::rngs::StdRng,
    n: i64,
) -> sycl_mlir_runtime::BufferId {
    match dt {
        Dtype::F32 => rt.buffer_f32(rand_f32(rng, n as usize), &[n]),
        Dtype::F64 => rt.buffer_f64(rand_f64(rng, n as usize), &[n]),
        Dtype::I32 => rt.buffer_i32(rand_i32(rng, n as usize), &[n]),
        Dtype::I64 => rt.buffer_i64(rand_i64(rng, n as usize), &[n]),
    }
}

fn buffer_zero(rt: &mut SyclRuntime, dt: Dtype, n: i64) -> sycl_mlir_runtime::BufferId {
    match dt {
        Dtype::F32 => rt.buffer_f32(vec![0.0; n as usize], &[n]),
        Dtype::F64 => rt.buffer_f64(vec![0.0; n as usize], &[n]),
        Dtype::I32 => rt.buffer_i32(vec![0; n as usize], &[n]),
        Dtype::I64 => rt.buffer_i64(vec![0; n as usize], &[n]),
    }
}

// ----------------------------------------------------------------------
// VecAdd: c[i] = a[i] + b[i]
// ----------------------------------------------------------------------

fn vecadd(dt: Dtype, n: i64) -> App {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let elem = dt.ty(&ctx);
    let sig = KernelSig::new("vecadd", 1, false)
        .accessor(elem.clone(), 1, AccessMode::Read)
        .accessor(elem.clone(), 1, AccessMode::Read)
        .accessor(elem, 1, AccessMode::Write);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::item_get_id(b, item, 0);
        let va = sdev::load_via_id(b, args[0], &[gid]);
        let vb = sdev::load_via_id(b, args[1], &[gid]);
        let sum = add(b, dt, va, vb);
        sdev::store_via_id(b, sum, args[2], &[gid]);
    });

    let mut rng = rng(11);
    let mut rt = SyclRuntime::new();
    let a = buffer_rand(&mut rt, dt, &mut rng, n);
    let b_ = buffer_rand(&mut rt, dt, &mut rng, n);
    let c = buffer_zero(&mut rt, dt, n);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(a, AccessMode::Read)
            .accessor(b_, AccessMode::Read)
            .accessor(c, AccessMode::Write);
        h.parallel_for("vecadd", &[n]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let validate: ValidateFn = match dt {
        Dtype::F32 => {
            let want: Vec<f32> = rt
                .read_f32(a)
                .iter()
                .zip(rt.read_f32(b_))
                .map(|(x, y)| x + y)
                .collect();
            Box::new(move |rt| check_f32("vecadd", rt.read_f32(c), &want, 1e-5))
        }
        Dtype::F64 => {
            let want: Vec<f64> = rt
                .read_f64(a)
                .iter()
                .zip(rt.read_f64(b_))
                .map(|(x, y)| x + y)
                .collect();
            Box::new(move |rt| check_f64("vecadd", rt.read_f64(c), &want, 1e-12))
        }
        Dtype::I32 => {
            let want: Vec<i32> = rt
                .read_i32(a)
                .iter()
                .zip(rt.read_i32(b_))
                .map(|(x, y)| x + y)
                .collect();
            Box::new(move |rt| check_exact("vecadd", rt.read_i32(c), &want))
        }
        Dtype::I64 => {
            let want: Vec<i64> = rt
                .read_i64(a)
                .iter()
                .zip(rt.read_i64(b_))
                .map(|(x, y)| x + y)
                .collect();
            Box::new(move |rt| check_exact("vecadd", rt.read_i64(c), &want))
        }
    };
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// ScalProd: partial products out[i] = a[i]*b[i]; host reduces.
// ----------------------------------------------------------------------

fn scalprod(dt: Dtype, n: i64) -> App {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let elem = dt.ty(&ctx);
    let sig = KernelSig::new("scalprod", 1, false)
        .accessor(elem.clone(), 1, AccessMode::Read)
        .accessor(elem.clone(), 1, AccessMode::Read)
        .accessor(elem, 1, AccessMode::Write);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::item_get_id(b, item, 0);
        let va = sdev::load_via_id(b, args[0], &[gid]);
        let vb = sdev::load_via_id(b, args[1], &[gid]);
        let p = mul(b, dt, va, vb);
        sdev::store_via_id(b, p, args[2], &[gid]);
    });

    let mut rng = rng(12);
    let mut rt = SyclRuntime::new();
    let a = buffer_rand(&mut rt, dt, &mut rng, n);
    let b_ = buffer_rand(&mut rt, dt, &mut rng, n);
    let c = buffer_zero(&mut rt, dt, n);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(a, AccessMode::Read)
            .accessor(b_, AccessMode::Read)
            .accessor(c, AccessMode::Write);
        h.parallel_for("scalprod", &[n]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let validate: ValidateFn = match dt {
        Dtype::F32 => {
            let want: f64 = rt
                .read_f32(a)
                .iter()
                .zip(rt.read_f32(b_))
                .map(|(x, y)| (x * y) as f64)
                .sum();
            Box::new(move |rt| {
                let got: f64 = rt.read_f32(c).iter().map(|&v| v as f64).sum();
                if (got - want).abs() > 1e-2 * want.abs().max(1.0) {
                    return Err(format!("scalprod: got {got}, want {want}"));
                }
                Ok(())
            })
        }
        Dtype::F64 => {
            let want: f64 = rt
                .read_f64(a)
                .iter()
                .zip(rt.read_f64(b_))
                .map(|(x, y)| x * y)
                .sum();
            Box::new(move |rt| {
                let got: f64 = rt.read_f64(c).iter().sum();
                if (got - want).abs() > 1e-9 * want.abs().max(1.0) {
                    return Err(format!("scalprod: got {got}, want {want}"));
                }
                Ok(())
            })
        }
        Dtype::I32 => {
            let want: i64 = rt
                .read_i32(a)
                .iter()
                .zip(rt.read_i32(b_))
                .map(|(x, y)| (*x as i64) * (*y as i64))
                .sum();
            Box::new(move |rt| {
                // The device multiplies in i32 (wrapping), like the C++.
                let got: i64 = rt.read_i32(c).iter().map(|&v| v as i64).sum();
                let expect: i64 = want;
                if got != expect {
                    return Err(format!("scalprod: got {got}, want {expect}"));
                }
                Ok(())
            })
        }
        Dtype::I64 => {
            let want: i64 = rt
                .read_i64(a)
                .iter()
                .zip(rt.read_i64(b_))
                .map(|(x, y)| x * y)
                .sum();
            Box::new(move |rt| {
                let got: i64 = rt.read_i64(c).iter().sum();
                if got != want {
                    return Err(format!("scalprod: got {got}, want {want}"));
                }
                Ok(())
            })
        }
    };
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// LinReg: error[i] = (alpha*x[i] + beta - y[i])^2
// ----------------------------------------------------------------------

fn linreg(dt: Dtype, n: i64) -> App {
    let (alpha, beta) = (1.5_f64, -0.5_f64);
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let elem = dt.ty(&ctx);
    let sig = KernelSig::new("linreg", 1, false)
        .accessor(elem.clone(), 1, AccessMode::Read)
        .accessor(elem.clone(), 1, AccessMode::Read)
        .accessor(elem.clone(), 1, AccessMode::Write)
        .scalar(elem.clone())
        .scalar(elem);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::item_get_id(b, item, 0);
        let x = sdev::load_via_id(b, args[0], &[gid]);
        let y = sdev::load_via_id(b, args[1], &[gid]);
        let ax = arith::mulf(b, args[3], x);
        let pred = arith::addf(b, ax, args[4]);
        let e = arith::subf(b, pred, y);
        let e2 = arith::mulf(b, e, e);
        sdev::store_via_id(b, e2, args[2], &[gid]);
    });

    let mut rng = rng(13);
    let mut rt = SyclRuntime::new();
    let x = buffer_rand(&mut rt, dt, &mut rng, n);
    let y = buffer_rand(&mut rt, dt, &mut rng, n);
    let e = buffer_zero(&mut rt, dt, n);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(x, AccessMode::Read)
            .accessor(y, AccessMode::Read)
            .accessor(e, AccessMode::Write);
        match dt {
            Dtype::F32 => {
                h.scalar_f32(alpha as f32).scalar_f32(beta as f32);
            }
            _ => {
                h.scalar_f64(alpha).scalar_f64(beta);
            }
        }
        h.parallel_for("linreg", &[n]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let validate: ValidateFn = match dt {
        Dtype::F32 => {
            let want: Vec<f32> = rt
                .read_f32(x)
                .iter()
                .zip(rt.read_f32(y))
                .map(|(x, y)| {
                    let e = alpha as f32 * x + beta as f32 - y;
                    e * e
                })
                .collect();
            Box::new(move |rt| check_f32("linreg", rt.read_f32(e), &want, 1e-4))
        }
        _ => {
            let want: Vec<f64> = rt
                .read_f64(x)
                .iter()
                .zip(rt.read_f64(y))
                .map(|(x, y)| {
                    let err = alpha * x + beta - y;
                    err * err
                })
                .collect();
            Box::new(move |rt| check_f64("linreg", rt.read_f64(e), &want, 1e-10))
        }
    };
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// LinReg Coeff.: partial sums for the regression coefficients.
// ----------------------------------------------------------------------

fn linreg_coeff(dt: Dtype, n: i64) -> App {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let elem = dt.ty(&ctx);
    let sig = KernelSig::new("linreg_coeff", 1, false)
        .accessor(elem.clone(), 1, AccessMode::Read)
        .accessor(elem.clone(), 1, AccessMode::Read)
        .accessor(elem.clone(), 1, AccessMode::Write)
        .accessor(elem, 1, AccessMode::Write);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::item_get_id(b, item, 0);
        let x = sdev::load_via_id(b, args[0], &[gid]);
        let y = sdev::load_via_id(b, args[1], &[gid]);
        let xy = arith::mulf(b, x, y);
        let xx = arith::mulf(b, x, x);
        sdev::store_via_id(b, xy, args[2], &[gid]);
        sdev::store_via_id(b, xx, args[3], &[gid]);
    });

    let mut rng = rng(14);
    let mut rt = SyclRuntime::new();
    let x = buffer_rand(&mut rt, dt, &mut rng, n);
    let y = buffer_rand(&mut rt, dt, &mut rng, n);
    let xy = buffer_zero(&mut rt, dt, n);
    let xx = buffer_zero(&mut rt, dt, n);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(x, AccessMode::Read)
            .accessor(y, AccessMode::Read)
            .accessor(xy, AccessMode::Write)
            .accessor(xx, AccessMode::Write);
        h.parallel_for("linreg_coeff", &[n]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let validate: ValidateFn = match dt {
        Dtype::F32 => {
            let wxy: Vec<f32> = rt
                .read_f32(x)
                .iter()
                .zip(rt.read_f32(y))
                .map(|(a, b)| a * b)
                .collect();
            let wxx: Vec<f32> = rt.read_f32(x).iter().map(|a| a * a).collect();
            Box::new(move |rt| {
                check_f32("xy", rt.read_f32(xy), &wxy, 1e-5)?;
                check_f32("xx", rt.read_f32(xx), &wxx, 1e-5)
            })
        }
        _ => {
            let wxy: Vec<f64> = rt
                .read_f64(x)
                .iter()
                .zip(rt.read_f64(y))
                .map(|(a, b)| a * b)
                .collect();
            let wxx: Vec<f64> = rt.read_f64(x).iter().map(|a| a * a).collect();
            Box::new(move |rt| {
                check_f64("xy", rt.read_f64(xy), &wxy, 1e-12)?;
                check_f64("xx", rt.read_f64(xx), &wxx, 1e-12)
            })
        }
    };
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// KMeans assignment step: nearest of K centroids (2-d points).
// ----------------------------------------------------------------------

fn kmeans(dt: Dtype, n: i64) -> App {
    const K: i64 = 4;
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let elem = dt.ty(&ctx);
    let sig = KernelSig::new("kmeans", 1, false)
        .accessor(elem.clone(), 1, AccessMode::Read) // px
        .accessor(elem.clone(), 1, AccessMode::Read) // py
        .accessor(elem.clone(), 1, AccessMode::Read) // cx
        .accessor(elem.clone(), 1, AccessMode::Read) // cy
        .accessor(elem, 1, AccessMode::Write); // best distance
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::item_get_id(b, item, 0);
        let px = sdev::load_via_id(b, args[0], &[gid]);
        let py = sdev::load_via_id(b, args[1], &[gid]);
        let zero = arith::constant_index(b, 0);
        let k = arith::constant_index(b, K);
        let one = arith::constant_index(b, 1);
        let elem_ty = b.module().value_type(px);
        let big = arith::constant_float(b, 1e30, elem_ty);
        let loop_op = scf::build_for(b, zero, k, one, &[big], |inner, kv, iters| {
            let cx = sdev::load_via_id(inner, args[2], &[kv]);
            let cy = sdev::load_via_id(inner, args[3], &[kv]);
            let dx = arith::subf(inner, px, cx);
            let dy = arith::subf(inner, py, cy);
            let dx2 = arith::mulf(inner, dx, dx);
            let dy2 = arith::mulf(inner, dy, dy);
            let d = arith::addf(inner, dx2, dy2);
            let best = arith::minf(inner, iters[0], d);
            vec![best]
        });
        let best = b.module().op_result(loop_op, 0);
        sdev::store_via_id(b, best, args[4], &[gid]);
    });

    let mut rng = rng(15);
    let mut rt = SyclRuntime::new();
    let (px, py, cx, cy, out) = match dt {
        Dtype::F32 => (
            rt.buffer_f32(rand_f32(&mut rng, n as usize), &[n]),
            rt.buffer_f32(rand_f32(&mut rng, n as usize), &[n]),
            rt.buffer_f32(rand_f32(&mut rng, K as usize), &[K]),
            rt.buffer_f32(rand_f32(&mut rng, K as usize), &[K]),
            rt.buffer_f32(vec![0.0; n as usize], &[n]),
        ),
        _ => (
            rt.buffer_f64(rand_f64(&mut rng, n as usize), &[n]),
            rt.buffer_f64(rand_f64(&mut rng, n as usize), &[n]),
            rt.buffer_f64(rand_f64(&mut rng, K as usize), &[K]),
            rt.buffer_f64(rand_f64(&mut rng, K as usize), &[K]),
            rt.buffer_f64(vec![0.0; n as usize], &[n]),
        ),
    };
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(px, AccessMode::Read)
            .accessor(py, AccessMode::Read)
            .accessor(cx, AccessMode::Read)
            .accessor(cy, AccessMode::Read)
            .accessor(out, AccessMode::Write);
        h.parallel_for("kmeans", &[n]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let validate: ValidateFn = match dt {
        Dtype::F32 => {
            let pxv = rt.read_f32(px).to_vec();
            let pyv = rt.read_f32(py).to_vec();
            let cxv = rt.read_f32(cx).to_vec();
            let cyv = rt.read_f32(cy).to_vec();
            let want: Vec<f32> = (0..n as usize)
                .map(|i| {
                    (0..K as usize)
                        .map(|k| {
                            let dx = pxv[i] - cxv[k];
                            let dy = pyv[i] - cyv[k];
                            dx * dx + dy * dy
                        })
                        .fold(1e30_f32, f32::min)
                })
                .collect();
            Box::new(move |rt| check_f32("kmeans", rt.read_f32(out), &want, 1e-4))
        }
        _ => {
            let pxv = rt.read_f64(px).to_vec();
            let pyv = rt.read_f64(py).to_vec();
            let cxv = rt.read_f64(cx).to_vec();
            let cyv = rt.read_f64(cy).to_vec();
            let want: Vec<f64> = (0..n as usize)
                .map(|i| {
                    (0..K as usize)
                        .map(|k| {
                            let dx = pxv[i] - cxv[k];
                            let dy = pyv[i] - cyv[k];
                            dx * dx + dy * dy
                        })
                        .fold(1e30_f64, f64::min)
                })
                .collect();
            Box::new(move |rt| check_f64("kmeans", rt.read_f64(out), &want, 1e-10))
        }
    };
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// MolDyn: Lennard-Jones-flavoured force over a fixed neighbour list.
// ----------------------------------------------------------------------

fn moldyn(n: i64) -> App {
    const NEIGHBORS: i64 = 16;
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    let sig = KernelSig::new("moldyn", 1, false)
        .accessor(f.clone(), 1, AccessMode::Read) // positions
        .accessor(ctx.i32_type(), 1, AccessMode::Read) // neighbour list
        .accessor(f, 1, AccessMode::Write); // forces
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::item_get_id(b, item, 0);
        let xi = sdev::load_via_id(b, args[0], &[gid]);
        let zero = arith::constant_index(b, 0);
        let nn = arith::constant_index(b, NEIGHBORS);
        let one = arith::constant_index(b, 1);
        let f32t = b.ctx().f32_type();
        let zero_f = arith::constant_float(b, 0.0, f32t);
        let nl = arith::constant_index(b, NEIGHBORS);
        let base = arith::muli(b, gid, nl);
        let loop_op = scf::build_for(b, zero, nn, one, &[zero_f], |inner, kv, iters| {
            let slot = arith::addi(inner, base, kv);
            let j32 = sdev::load_via_id(inner, args[1], &[slot]);
            let index_ty = inner.ctx().index_type();
            let j = arith::index_cast(inner, j32, index_ty);
            let xj = sdev::load_via_id(inner, args[0], &[j]);
            let dx = arith::subf(inner, xj, xi);
            let dx2 = inner_dx2(inner, dx);
            let r = math::sqrt(inner, dx2);
            let force = arith::addf(inner, iters[0], r);
            vec![force]
        });
        let total = b.module().op_result(loop_op, 0);
        sdev::store_via_id(b, total, args[2], &[gid]);
    });

    fn inner_dx2(b: &mut Builder<'_>, dx: ValueId) -> ValueId {
        let f32t = b.ctx().f32_type();
        let eps = arith::constant_float(b, 0.01, f32t);
        let sq = arith::mulf(b, dx, dx);
        arith::addf(b, sq, eps)
    }

    let mut rng_ = rng(16);
    let mut rt = SyclRuntime::new();
    let pos = rt.buffer_f32(rand_f32(&mut rng_, n as usize), &[n]);
    let neigh_data: Vec<i32> = {
        use rand::Rng;
        (0..(n * NEIGHBORS) as usize)
            .map(|_| rng_.gen_range(0..n as i32))
            .collect()
    };
    let neigh = rt.buffer_i32(neigh_data.clone(), &[n * NEIGHBORS]);
    let force = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(pos, AccessMode::Read)
            .accessor(neigh, AccessMode::Read)
            .accessor(force, AccessMode::Write);
        h.parallel_for("moldyn", &[n]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let posv = rt.read_f32(pos).to_vec();
    let want: Vec<f32> = (0..n as usize)
        .map(|i| {
            (0..NEIGHBORS as usize)
                .map(|k| {
                    let j = neigh_data[i * NEIGHBORS as usize + k] as usize;
                    let dx = posv[j] - posv[i];
                    (dx * dx + 0.01).sqrt()
                })
                .sum()
        })
        .collect();
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("moldyn", rt.read_f32(force), &want, 1e-3));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// NBody: all-pairs gravity-flavoured acceleration.
// ----------------------------------------------------------------------

fn nbody(dt: Dtype, n: i64) -> App {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let elem = dt.ty(&ctx);
    let sig = KernelSig::new("nbody", 1, false)
        .accessor(elem.clone(), 1, AccessMode::Read) // x
        .accessor(elem.clone(), 1, AccessMode::Read) // mass
        .accessor(elem, 1, AccessMode::Write); // acceleration
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::item_get_id(b, item, 0);
        let xi = sdev::load_via_id(b, args[0], &[gid]);
        let zero = arith::constant_index(b, 0);
        let count = sdev::item_get_range(b, item, 0);
        let one = arith::constant_index(b, 1);
        let elem_ty = b.module().value_type(xi);
        let zero_f = arith::constant_float(b, 0.0, elem_ty.clone());
        let soft = arith::constant_float(b, 0.001, elem_ty);
        let loop_op = scf::build_for(b, zero, count, one, &[zero_f], |inner, j, iters| {
            let xj = sdev::load_via_id(inner, args[0], &[j]);
            let mj = sdev::load_via_id(inner, args[1], &[j]);
            let dx = arith::subf(inner, xj, xi);
            let d2 = arith::mulf(inner, dx, dx);
            let d2s = arith::addf(inner, d2, soft);
            let r = math::sqrt(inner, d2s);
            let r3 = arith::mulf(inner, d2s, r);
            let contrib0 = arith::mulf(inner, mj, dx);
            let contrib = arith::divf(inner, contrib0, r3);
            let acc = arith::addf(inner, iters[0], contrib);
            vec![acc]
        });
        let acc = b.module().op_result(loop_op, 0);
        sdev::store_via_id(b, acc, args[2], &[gid]);
    });

    let mut rng_ = rng(17);
    let mut rt = SyclRuntime::new();
    let (x, mass, acc) = match dt {
        Dtype::F32 => (
            rt.buffer_f32(rand_f32(&mut rng_, n as usize), &[n]),
            rt.buffer_f32(
                rand_f32(&mut rng_, n as usize)
                    .iter()
                    .map(|v| v.abs() + 0.1)
                    .collect(),
                &[n],
            ),
            rt.buffer_f32(vec![0.0; n as usize], &[n]),
        ),
        _ => (
            rt.buffer_f64(rand_f64(&mut rng_, n as usize), &[n]),
            rt.buffer_f64(
                rand_f64(&mut rng_, n as usize)
                    .iter()
                    .map(|v| v.abs() + 0.1)
                    .collect(),
                &[n],
            ),
            rt.buffer_f64(vec![0.0; n as usize], &[n]),
        ),
    };
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(x, AccessMode::Read)
            .accessor(mass, AccessMode::Read)
            .accessor(acc, AccessMode::Write);
        h.parallel_for("nbody", &[n]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let validate: ValidateFn = match dt {
        Dtype::F32 => {
            let xv = rt.read_f32(x).to_vec();
            let mv = rt.read_f32(mass).to_vec();
            let want: Vec<f32> = (0..n as usize)
                .map(|i| {
                    (0..n as usize)
                        .map(|j| {
                            let dx = xv[j] - xv[i];
                            let d2s = dx * dx + 0.001;
                            let r = d2s.sqrt();
                            mv[j] * dx / (d2s * r)
                        })
                        .sum()
                })
                .collect();
            Box::new(move |rt| check_f32("nbody", rt.read_f32(acc), &want, 1e-2))
        }
        _ => {
            let xv = rt.read_f64(x).to_vec();
            let mv = rt.read_f64(mass).to_vec();
            let want: Vec<f64> = (0..n as usize)
                .map(|i| {
                    (0..n as usize)
                        .map(|j| {
                            let dx = xv[j] - xv[i];
                            let d2s = dx * dx + 0.001;
                            let r = d2s.sqrt();
                            mv[j] * dx / (d2s * r)
                        })
                        .sum()
                })
                .collect();
            Box::new(move |rt| check_f64("nbody", rt.read_f64(acc), &want, 1e-9))
        }
    };
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// Sobel3/5/7: image convolution with a `const` filter — the Sobel7
// host→device constant-propagation showcase of §VIII.
// ----------------------------------------------------------------------

fn sobel(taps: i64, n: i64) -> App {
    let r = taps / 2;
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    let kernel_name = match taps {
        3 => "sobel3",
        5 => "sobel5",
        _ => "sobel7",
    };
    let sig = KernelSig::new(kernel_name, 2, false)
        .accessor(f.clone(), 2, AccessMode::Read) // image
        .accessor(f.clone(), 2, AccessMode::Read) // filter (const data)
        .accessor(f, 2, AccessMode::Write); // output
    kb.add_kernel(&sig, |b, args, item| {
        let i = sdev::item_get_id(b, item, 0);
        let j = sdev::item_get_id(b, item, 1);
        let n625 = sdev::item_get_range(b, item, 0);
        let rr = arith::constant_index(b, r);
        let hi = arith::subi(b, n625, rr);
        let ge0 = arith::cmpi(b, "sge", i, rr);
        let lt0 = arith::cmpi(b, "slt", i, hi);
        let ge1 = arith::cmpi(b, "sge", j, rr);
        let lt1 = arith::cmpi(b, "slt", j, hi);
        let c01 = b.build_value("arith.andi", &[ge0, lt0], b.ctx().i1_type(), vec![]);
        let c23 = b.build_value("arith.andi", &[ge1, lt1], b.ctx().i1_type(), vec![]);
        let interior = b.build_value("arith.andi", &[c01, c23], b.ctx().i1_type(), vec![]);
        let f32t = b.ctx().f32_type();
        scf::build_if(
            b,
            interior,
            &[],
            |inner| {
                let zero = arith::constant_index(inner, 0);
                let t = arith::constant_index(inner, taps);
                let one = arith::constant_index(inner, 1);
                let zf = arith::constant_float(inner, 0.0, inner.ctx().f32_type());
                let outer = scf::build_for(inner, zero, t, one, &[zf], |l1, fi, it1| {
                    let acc_loop = scf::build_for(l1, zero, t, one, &[it1[0]], |l2, fj, it2| {
                        let rr2 = arith::constant_index(l2, r);
                        let oi0 = arith::addi(l2, i, fi);
                        let oi = arith::subi(l2, oi0, rr2);
                        let oj0 = arith::addi(l2, j, fj);
                        let oj = arith::subi(l2, oj0, rr2);
                        let pix = sdev::load_via_id(l2, args[0], &[oi, oj]);
                        let w = sdev::load_via_id(l2, args[1], &[fi, fj]);
                        let prod = arith::mulf(l2, pix, w);
                        let acc = arith::addf(l2, it2[0], prod);
                        vec![acc]
                    });
                    let acc = l1.module().op_result(acc_loop, 0);
                    vec![acc]
                });
                let total = inner.module().op_result(outer, 0);
                sdev::store_via_id(inner, total, args[2], &[i, j]);
                vec![]
            },
            |inner| {
                let zf = arith::constant_float(inner, 0.0, f32t.clone());
                sdev::store_via_id(inner, zf, args[2], &[i, j]);
                vec![]
            },
        );
    });

    let mut rng_ = rng(18 + taps as u64);
    let mut rt = SyclRuntime::new();
    let image = rt.buffer_f32(rand_f32(&mut rng_, (n * n) as usize), &[n, n]);
    // The filter is a `const float[]` in the host source: candidate for
    // constant propagation (§VII-B / §VIII "Sobel filter declared as a
    // constant array").
    let filter_data: Vec<f32> = (0..(taps * taps))
        .map(|k| ((k % 3) as f32 - 1.0) * 0.25)
        .collect();
    let filter = rt.buffer_const_f32(filter_data.clone(), &[taps, taps]);
    let out = rt.buffer_f32(vec![0.0; (n * n) as usize], &[n, n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(image, AccessMode::Read)
            .accessor(filter, AccessMode::Read)
            .accessor(out, AccessMode::Write);
        h.parallel_for(kernel_name, &[n, n]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let img = rt.read_f32(image).to_vec();
    let want: Vec<f32> = (0..n as usize)
        .flat_map(|i| {
            let img = &img;
            let filter_data = &filter_data;
            (0..n as usize).map(move |j| {
                let interior = i >= r as usize
                    && i < (n - r) as usize
                    && j >= r as usize
                    && j < (n - r) as usize;
                if !interior {
                    return 0.0;
                }
                let mut acc = 0.0_f32;
                for fi in 0..taps as usize {
                    for fj in 0..taps as usize {
                        let oi = i + fi - r as usize;
                        let oj = j + fj - r as usize;
                        acc += img[oi * n as usize + oj] * filter_data[fi * taps as usize + fj];
                    }
                }
                acc
            })
        })
        .collect();
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("sobel", rt.read_f32(out), &want, 1e-3));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}
