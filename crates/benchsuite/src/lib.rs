//! # sycl-mlir-benchsuite — the paper's evaluation workloads (§VIII)
//!
//! Reimplementations of every benchmark in the paper's evaluation:
//!
//! * [`polybench`] — the 14 Fig. 3 workloads (plus 3D Convolution, which
//!   §VIII sizes but does not plot);
//! * [`single_kernel`] — the 20 Fig. 2 workload variants;
//! * [`stencil`] — the four oneAPI-samples stencil workloads;
//! * [`reduction`] — tree reduction, segmented scan and a work-group-local
//!   dot product (collective access patterns, §VIII);
//! * [`sparse`] — CSR SpMV, gather/scatter and a segmented histogram
//!   (indirect-index access patterns).
//!
//! Each workload builds a complete application: device kernels through the
//! frontend, recorded command groups, generated host IR, input data
//! (seeded), and a host-side reference validation. Problem sizes are scaled
//! from the paper's (the simulator interprets IR; EXPERIMENTS.md documents
//! the scaling) — the *shape* of each kernel is preserved exactly.

pub mod polybench;
pub mod reduction;
pub mod single_kernel;
pub mod sparse;
pub mod stencil;

use sycl_mlir_core::FlowKind;
use sycl_mlir_ir::Module;
use sycl_mlir_runtime::{Queue, SyclRuntime};
use sycl_mlir_sim::{Device, ExecStats};

pub use sycl_mlir_sim::Engine;

/// Evaluation category (§VIII, plus this reproduction's extension
/// families: reduction/scan and sparse indirect-index).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Category {
    Polybench,
    SingleKernel,
    Stencil,
    Reduction,
    Sparse,
}

/// Host-side validation callback of a workload: checks the runtime's
/// final buffer/USM contents against a reference computation.
pub type ValidateFn = Box<dyn Fn(&SyclRuntime) -> Result<(), String>>;

/// A complete runnable application.
pub struct App {
    pub module: Module,
    pub runtime: SyclRuntime,
    pub queue: Queue,
    /// Host-side validation against a reference computation.
    pub validate: ValidateFn,
}

/// One benchmark of the evaluation.
pub struct WorkloadSpec {
    /// Label as it appears in the paper's figures.
    pub name: &'static str,
    pub category: Category,
    /// Problem size used in §VIII.
    pub paper_size: i64,
    /// Scaled size used by this reproduction's simulator.
    pub scaled_size: i64,
    /// AdaptiveCpp "failed validation" in the paper (missing bar /
    /// stencil prose). Only the stencil failures are identifiable.
    pub acpp_fails: bool,
    /// Plotted in Fig. 2 / Fig. 3 (3D Convolution is sized but not shown).
    pub in_figure: bool,
    pub build: fn(i64) -> App,
}

/// Every workload, in figure order (the extension families follow the
/// paper's three categories).
pub fn all_workloads() -> Vec<WorkloadSpec> {
    let mut v = single_kernel::workloads();
    v.extend(polybench::workloads());
    v.extend(stencil::workloads());
    v.extend(reduction::workloads());
    v.extend(sparse::workloads());
    v
}

/// Result of running one workload under one flow.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Simulated cycles (device + launch overhead, post-warm-up).
    pub cycles: f64,
    /// Cycles including one-time JIT costs (the warm-up run).
    pub cold_cycles: f64,
    pub valid: bool,
    pub stats: ExecStats,
    pub compile_notes: Vec<String>,
}

/// Compile and execute a workload under `kind` at `size`, validating the
/// results. Runs on the default [`Device`] (the plan engine, unless
/// overridden via `SYCL_MLIR_SIM_ENGINE`).
///
/// # Errors
///
/// Returns compilation or simulation errors; a *validation* failure is
/// reported through [`RunResult::valid`] (that is data, not an error — the
/// paper plots it as a missing bar).
pub fn run_workload(spec: &WorkloadSpec, size: i64, kind: FlowKind) -> Result<RunResult, String> {
    run_workload_on(spec, size, kind, &Device::new()).map(|(result, _)| result)
}

/// [`run_workload`] with an explicit device (engine selection), returning
/// the final runtime state alongside the result so callers — the
/// differential suite in particular — can compare every output buffer
/// across engines.
pub fn run_workload_on(
    spec: &WorkloadSpec,
    size: i64,
    kind: FlowKind,
    device: &Device,
) -> Result<(RunResult, SyclRuntime), String> {
    if kind == FlowKind::AdaptiveCpp && spec.acpp_fails {
        // Mirrors §VIII: "The validation of results failed for a number of
        // benchmarks with AdaptiveCpp".
        return Ok((
            RunResult {
                cycles: f64::NAN,
                cold_cycles: f64::NAN,
                valid: false,
                stats: ExecStats::default(),
                compile_notes: vec!["validation failed (per §VIII)".into()],
            },
            SyclRuntime::new(),
        ));
    }
    let mut app = (spec.build)(size);
    let mut program = sycl_mlir_runtime::compile_program(kind, app.module)
        .map_err(|e| format!("{} [{}]: {e}", spec.name, kind.name()))?;
    let report = sycl_mlir_runtime::exec::run(&mut program, &mut app.runtime, &app.queue, device)
        .map_err(|e| format!("{} [{}]: {e}", spec.name, kind.name()))?;
    let valid = (app.validate)(&app.runtime).is_ok();
    let result = RunResult {
        cycles: report.measured_cycles(),
        cold_cycles: report.cold_cycles(),
        valid,
        stats: report.total_stats(),
        compile_notes: program.outcome.notes.clone(),
    };
    Ok((result, app.runtime))
}

/// Geometric mean over positive values.
pub fn geo_mean(values: &[f64]) -> f64 {
    let vals: Vec<f64> = values
        .iter()
        .copied()
        .filter(|v| v.is_finite() && *v > 0.0)
        .collect();
    if vals.is_empty() {
        return f64::NAN;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

// ----------------------------------------------------------------------
// Shared helpers for workload construction
// ----------------------------------------------------------------------

pub(crate) mod util {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    pub fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    pub fn rand_f32(rng: &mut StdRng, n: usize) -> Vec<f32> {
        (0..n).map(|_| rng.gen_range(-1.0_f32..1.0)).collect()
    }

    pub fn rand_f64(rng: &mut StdRng, n: usize) -> Vec<f64> {
        (0..n).map(|_| rng.gen_range(-1.0_f64..1.0)).collect()
    }

    pub fn rand_i32(rng: &mut StdRng, n: usize) -> Vec<i32> {
        (0..n).map(|_| rng.gen_range(-100_i32..100)).collect()
    }

    pub fn rand_i64(rng: &mut StdRng, n: usize) -> Vec<i64> {
        (0..n).map(|_| rng.gen_range(-100_i64..100)).collect()
    }

    pub fn check_f32(name: &str, got: &[f32], want: &[f32], tol: f32) -> Result<(), String> {
        if got.len() != want.len() {
            return Err(format!("{name}: length mismatch"));
        }
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let scale = w.abs().max(1.0);
            if (g - w).abs() > tol * scale {
                return Err(format!("{name}[{i}]: got {g}, want {w}"));
            }
        }
        Ok(())
    }

    pub fn check_f64(name: &str, got: &[f64], want: &[f64], tol: f64) -> Result<(), String> {
        if got.len() != want.len() {
            return Err(format!("{name}: length mismatch"));
        }
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            let scale = w.abs().max(1.0);
            if (g - w).abs() > tol * scale {
                return Err(format!("{name}[{i}]: got {g}, want {w}"));
            }
        }
        Ok(())
    }

    pub fn check_exact<T: PartialEq + std::fmt::Debug>(
        name: &str,
        got: &[T],
        want: &[T],
    ) -> Result<(), String> {
        if got != want {
            for (i, (g, w)) in got.iter().zip(want).enumerate() {
                if g != w {
                    return Err(format!("{name}[{i}]: got {g:?}, want {w:?}"));
                }
            }
            return Err(format!("{name}: length mismatch"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_figures() {
        let all = all_workloads();
        let fig2 = all
            .iter()
            .filter(|w| w.category == Category::SingleKernel && w.in_figure)
            .count();
        let fig3 = all
            .iter()
            .filter(|w| w.category == Category::Polybench && w.in_figure)
            .count();
        let stencils = all
            .iter()
            .filter(|w| w.category == Category::Stencil)
            .count();
        let reductions = all
            .iter()
            .filter(|w| w.category == Category::Reduction)
            .count();
        let sparse = all
            .iter()
            .filter(|w| w.category == Category::Sparse)
            .count();
        assert_eq!(fig2, 20, "Fig. 2 has 20 bars");
        assert_eq!(fig3, 14, "Fig. 3 has 14 benchmarks");
        assert_eq!(stencils, 4, "four stencil workloads");
        assert_eq!(reductions, 4, "four reduction/scan workloads");
        assert_eq!(sparse, 5, "five sparse indirect-index workloads");
        // AdaptiveCpp stencil failures per §VIII prose.
        let acpp_fail: Vec<&str> = all
            .iter()
            .filter(|w| w.acpp_fails)
            .map(|w| w.name)
            .collect();
        assert_eq!(
            acpp_fail,
            vec![
                "1D HeatTransfer (buffer)",
                "1D HeatTransfer (USM)",
                "jacobi"
            ]
        );
    }

    #[test]
    fn geo_mean_basics() {
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geo_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!(geo_mean(&[f64::NAN, 4.0]).is_finite());
        assert!(geo_mean(&[]).is_nan());
    }
}
