//! The `sparse` category: indirect-index workloads — CSR SpMV, gather,
//! scatter and a segmented histogram. Every kernel computes at least one
//! subscript from *loaded* data (`load i32` → `index_cast` → subscript),
//! the access shape the fusion matcher's indexed-chain rules must not
//! break and the OOB machinery must attribute deterministically. The
//! dynamic-nd-range gather splits its launch at a runtime-computed
//! boundary, leaving a zero-extent tail launch for aligned sizes.

use crate::util::*;
use crate::{App, Category, ValidateFn, WorkloadSpec};
use rand::Rng;
use sycl_mlir_dialects::{arith, scf};
use sycl_mlir_frontend::{full_context, KernelModuleBuilder, KernelSig};
use sycl_mlir_runtime::{hostgen::generate_host_ir, Queue, SyclRuntime};
use sycl_mlir_sycl::device as sdev;
use sycl_mlir_sycl::types::AccessMode;

/// Work-group size of the dynamic-launch variant.
const WG: i64 = 16;
/// Histogram bins and per-item segment length.
const BINS: i64 = 16;
const SEG: i64 = 16;

/// All sparse indirect-index workloads.
pub fn workloads() -> Vec<WorkloadSpec> {
    fn spec(name: &'static str, paper: i64, scaled: i64, build: fn(i64) -> App) -> WorkloadSpec {
        WorkloadSpec {
            name,
            category: Category::Sparse,
            paper_size: paper,
            scaled_size: scaled,
            acpp_fails: false,
            in_figure: true,
            build,
        }
    }
    vec![
        spec("SpMV (CSR)", 1 << 18, 2048, spmv_csr),
        spec("Gather", 1 << 20, 8192, gather),
        spec("Scatter", 1 << 20, 8192, scatter),
        spec("Histogram (segmented)", 1 << 20, 4096, histogram),
        spec("Gather (dyn nd-range)", 1 << 20, 8192, gather_dyn),
    ]
}

/// Load an i32 element and widen it to an index for use as a subscript.
fn load_index(
    b: &mut sycl_mlir_ir::Builder<'_>,
    acc: sycl_mlir_ir::ValueId,
    at: sycl_mlir_ir::ValueId,
) -> sycl_mlir_ir::ValueId {
    let raw = sdev::load_via_id(b, acc, &[at]);
    let index_ty = b.ctx().index_type();
    arith::index_cast(b, raw, index_ty)
}

// ----------------------------------------------------------------------
// SpMV over CSR: y[row] = Σ vals[j] * x[col[j]] for j in
// row_ptr[row]..row_ptr[row+1]. Two levels of indirection: the loop
// bounds and the x subscript both come from loaded integers.
// ----------------------------------------------------------------------

fn spmv_csr(n: i64) -> App {
    const NNZ_PER_ROW: i64 = 4;
    let n = n.max(1);
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    let i32t = ctx.i32_type();
    let sig = KernelSig::new("spmv", 1, false)
        .accessor(i32t.clone(), 1, AccessMode::Read) // row_ptr
        .accessor(i32t, 1, AccessMode::Read) // col
        .accessor(f.clone(), 1, AccessMode::Read) // vals
        .accessor(f.clone(), 1, AccessMode::Read) // x
        .accessor(f, 1, AccessMode::Write); // y
    kb.add_kernel(&sig, |b, args, item| {
        let row = sdev::item_get_id(b, item, 0);
        let one = arith::constant_index(b, 1);
        let next = arith::addi(b, row, one);
        let start = load_index(b, args[0], row);
        let end = load_index(b, args[0], next);
        let f32t = b.ctx().f32_type();
        let zf = arith::constant_float(b, 0.0, f32t);
        let fold = scf::build_for(b, start, end, one, &[zf], |inner, j, iters| {
            let c = load_index(inner, args[1], j);
            let v = sdev::load_via_id(inner, args[2], &[j]);
            let xv = sdev::load_via_id(inner, args[3], &[c]);
            let prod = arith::mulf(inner, v, xv);
            let acc = arith::addf(inner, iters[0], prod);
            vec![acc]
        });
        let y = b.module().op_result(fold, 0);
        sdev::store_via_id(b, y, args[4], &[row]);
    });

    let mut rng_ = rng(71);
    let nnz = n * NNZ_PER_ROW;
    let row_ptr_data: Vec<i32> = (0..=n).map(|r| (r * NNZ_PER_ROW) as i32).collect();
    let col_data: Vec<i32> = (0..nnz).map(|_| rng_.gen_range(0..n as i32)).collect();
    let mut rt = SyclRuntime::new();
    let row_ptr = rt.buffer_i32(row_ptr_data.clone(), &[n + 1]);
    let col = rt.buffer_i32(col_data.clone(), &[nnz]);
    let vals = rt.buffer_f32(rand_f32(&mut rng_, nnz as usize), &[nnz]);
    let x = rt.buffer_f32(rand_f32(&mut rng_, n as usize), &[n]);
    let y = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(row_ptr, AccessMode::Read)
            .accessor(col, AccessMode::Read)
            .accessor(vals, AccessMode::Read)
            .accessor(x, AccessMode::Read)
            .accessor(y, AccessMode::Write);
        h.parallel_for("spmv", &[n]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let vv = rt.read_f32(vals).to_vec();
    let xv = rt.read_f32(x).to_vec();
    let want: Vec<f32> = (0..n as usize)
        .map(|r| {
            (row_ptr_data[r] as usize..row_ptr_data[r + 1] as usize)
                .map(|j| vv[j] * xv[col_data[j] as usize])
                .sum()
        })
        .collect();
    let validate: ValidateFn = Box::new(move |rt| check_f32("spmv", rt.read_f32(y), &want, 1e-4));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// Gather: out[i] = src[idx[i]] — a register-computed subscript on the
// load side.
// ----------------------------------------------------------------------

fn gather(n: i64) -> App {
    let n = n.max(1);
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    let sig = KernelSig::new("gather", 1, false)
        .accessor(ctx.i32_type(), 1, AccessMode::Read)
        .accessor(f.clone(), 1, AccessMode::Read)
        .accessor(f, 1, AccessMode::Write);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::item_get_id(b, item, 0);
        let j = load_index(b, args[0], gid);
        let v = sdev::load_via_id(b, args[1], &[j]);
        sdev::store_via_id(b, v, args[2], &[gid]);
    });

    let mut rng_ = rng(72);
    let idx_data: Vec<i32> = (0..n).map(|_| rng_.gen_range(0..n as i32)).collect();
    let mut rt = SyclRuntime::new();
    let idx = rt.buffer_i32(idx_data.clone(), &[n]);
    let src = rt.buffer_f32(rand_f32(&mut rng_, n as usize), &[n]);
    let out = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(idx, AccessMode::Read)
            .accessor(src, AccessMode::Read)
            .accessor(out, AccessMode::Write);
        h.parallel_for("gather", &[n]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let sv = rt.read_f32(src).to_vec();
    let want: Vec<f32> = idx_data.iter().map(|&j| sv[j as usize]).collect();
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("gather", rt.read_f32(out), &want, 0.0));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// Scatter: out[perm[i]] = src[i] over a seeded *permutation*, so writes
// never collide and the result is engine- and thread-count-independent.
// ----------------------------------------------------------------------

fn scatter(n: i64) -> App {
    let n = n.max(1);
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    let sig = KernelSig::new("scatter", 1, false)
        .accessor(ctx.i32_type(), 1, AccessMode::Read)
        .accessor(f.clone(), 1, AccessMode::Read)
        .accessor(f, 1, AccessMode::Write);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::item_get_id(b, item, 0);
        let j = load_index(b, args[0], gid);
        let v = sdev::load_via_id(b, args[1], &[gid]);
        sdev::store_via_id(b, v, args[2], &[j]);
    });

    let mut rng_ = rng(73);
    let mut perm_data: Vec<i32> = (0..n as i32).collect();
    // Fisher-Yates with the seeded rng (the rand build here has no `seq`).
    for i in (1..perm_data.len()).rev() {
        let j = rng_.gen_range(0..i + 1);
        perm_data.swap(i, j);
    }
    let mut rt = SyclRuntime::new();
    let perm = rt.buffer_i32(perm_data.clone(), &[n]);
    let src = rt.buffer_f32(rand_f32(&mut rng_, n as usize), &[n]);
    let out = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(perm, AccessMode::Read)
            .accessor(src, AccessMode::Read)
            .accessor(out, AccessMode::Write);
        h.parallel_for("scatter", &[n]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let sv = rt.read_f32(src).to_vec();
    let mut want = vec![0.0_f32; n as usize];
    for (i, &p) in perm_data.iter().enumerate() {
        want[p as usize] = sv[i];
    }
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("scatter", rt.read_f32(out), &want, 0.0));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// Histogram (segmented): each work-item bins its own SEG-element slice
// into its own BINS-wide output region — a data-dependent *store*
// subscript with read-modify-write, deterministic because regions are
// disjoint.
// ----------------------------------------------------------------------

fn histogram(n: i64) -> App {
    let items = (n.max(SEG)) / SEG;
    let len = items * SEG;
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let i32t = ctx.i32_type();
    let sig = KernelSig::new("histogram", 1, false)
        .accessor(i32t.clone(), 1, AccessMode::Read)
        .accessor(i32t, 1, AccessMode::ReadWrite);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::item_get_id(b, item, 0);
        let seg = arith::constant_index(b, SEG);
        let bins = arith::constant_index(b, BINS);
        let base = arith::muli(b, gid, seg);
        let obase = arith::muli(b, gid, bins);
        let zero = arith::constant_index(b, 0);
        let one = arith::constant_index(b, 1);
        let one_i32 = arith::constant_int(b, 1, b.ctx().i32_type());
        scf::build_for(b, zero, seg, one, &[], |inner, k, _| {
            let at = arith::addi(inner, base, k);
            let v = load_index(inner, args[0], at);
            let bins2 = arith::constant_index(inner, BINS);
            let bin = arith::remsi(inner, v, bins2);
            let slot = arith::addi(inner, obase, bin);
            let cur = sdev::load_via_id(inner, args[1], &[slot]);
            let next = arith::addi(inner, cur, one_i32);
            sdev::store_via_id(inner, next, args[1], &[slot]);
            vec![]
        });
    });

    let mut rng_ = rng(74);
    let input_data: Vec<i32> = (0..len).map(|_| rng_.gen_range(0..64)).collect();
    let mut rt = SyclRuntime::new();
    let input = rt.buffer_i32(input_data.clone(), &[len]);
    let hist = rt.buffer_i32(vec![0; (items * BINS) as usize], &[items * BINS]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(input, AccessMode::Read)
            .accessor(hist, AccessMode::ReadWrite);
        h.parallel_for("histogram", &[items]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let mut want = vec![0_i32; (items * BINS) as usize];
    for (i, &v) in input_data.iter().enumerate() {
        let item = i / SEG as usize;
        want[item * BINS as usize + (v % BINS as i32) as usize] += 1;
    }
    let validate: ValidateFn =
        Box::new(move |rt| check_exact("histogram", rt.read_i32(hist), &want));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// Gather (dyn nd-range): the gather split at a runtime-computed group
// boundary — an nd bulk launch plus a basic-range tail that is empty for
// aligned sizes (the zero-group path).
// ----------------------------------------------------------------------

fn gather_dyn(n: i64) -> App {
    let n = n.max(1);
    let bulk = n - n % WG;
    let tail = n % WG;
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    let bulk_sig = KernelSig::new("gather_bulk", 1, true)
        .accessor(ctx.i32_type(), 1, AccessMode::Read)
        .accessor(f.clone(), 1, AccessMode::Read)
        .accessor(f.clone(), 1, AccessMode::Write);
    kb.add_kernel(&bulk_sig, |b, args, item| {
        let gid = sdev::global_id(b, item, 0);
        let j = load_index(b, args[0], gid);
        let v = sdev::load_via_id(b, args[1], &[j]);
        sdev::store_via_id(b, v, args[2], &[gid]);
    });
    let tail_sig = KernelSig::new("gather_tail", 1, false)
        .accessor(ctx.i32_type(), 1, AccessMode::Read)
        .accessor(f.clone(), 1, AccessMode::Read)
        .accessor(f, 1, AccessMode::Write)
        .scalar(ctx.i64_type());
    kb.add_kernel(&tail_sig, |b, args, item| {
        let gid = sdev::item_get_id(b, item, 0);
        let index_ty = b.ctx().index_type();
        let off = arith::index_cast(b, args[3], index_ty);
        let at = arith::addi(b, off, gid);
        let j = load_index(b, args[0], at);
        let v = sdev::load_via_id(b, args[1], &[j]);
        sdev::store_via_id(b, v, args[2], &[at]);
    });

    let mut rng_ = rng(75);
    let idx_data: Vec<i32> = (0..n).map(|_| rng_.gen_range(0..n as i32)).collect();
    let mut rt = SyclRuntime::new();
    let idx = rt.buffer_i32(idx_data.clone(), &[n]);
    let src = rt.buffer_f32(rand_f32(&mut rng_, n as usize), &[n]);
    let out = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let mut q = Queue::new();
    if bulk > 0 {
        q.submit(|h| {
            h.accessor(idx, AccessMode::Read)
                .accessor(src, AccessMode::Read)
                .accessor(out, AccessMode::Write);
            h.parallel_for_nd("gather_bulk", &[bulk], &[WG]);
        });
    }
    q.submit(|h| {
        h.accessor(idx, AccessMode::Read)
            .accessor(src, AccessMode::Read)
            .accessor(out, AccessMode::Write)
            .scalar_i64(bulk);
        h.parallel_for("gather_tail", &[tail]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let sv = rt.read_f32(src).to_vec();
    let want: Vec<f32> = idx_data.iter().map(|&j| sv[j as usize]).collect();
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("gather_dyn", rt.read_f32(out), &want, 0.0));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}
