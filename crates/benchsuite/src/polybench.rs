//! The `polybench` category of SYCL-Bench (Fig. 3 of the paper): linear
//! algebra and stencil cores. These are the workloads where the paper's
//! device optimizations fire: array reduction in Correlation/Covariance
//! (5 and 4 opportunities), loop internalization in 2mm/3mm/GEMM/SYR2K/SYRK
//! (2 refs in GEMM, 4 in SYR2K), and the divergent-region skip in
//! Gramschmidt (§VIII).

use crate::util::*;
use crate::{App, Category, ValidateFn, WorkloadSpec};
use sycl_mlir_dialects::{affine, arith, scf};
use sycl_mlir_frontend::{full_context, KernelModuleBuilder, KernelSig};
use sycl_mlir_runtime::{hostgen::generate_host_ir, BufferId, Queue, SyclRuntime};
use sycl_mlir_sycl::device as sdev;
use sycl_mlir_sycl::types::AccessMode;

/// All Fig. 3 workloads in figure order, plus 3D Convolution (sized in
/// §VIII's text but not plotted).
pub fn workloads() -> Vec<WorkloadSpec> {
    fn spec(name: &'static str, paper: i64, scaled: i64, build: fn(i64) -> App) -> WorkloadSpec {
        WorkloadSpec {
            name,
            category: Category::Polybench,
            paper_size: paper,
            scaled_size: scaled,
            acpp_fails: false,
            in_figure: true,
            build,
        }
    }
    let mut v = vec![
        spec("2D Convolution", 4096, 128, conv2d),
        spec("2mm", 1024, 48, mm2),
        spec("3mm", 1024, 48, mm3),
        spec("Atax", 4096, 128, atax),
        spec("Bicg", 16_384, 128, bicg),
        spec("Correlation", 1024, 48, correlation),
        spec("Covariance", 1024, 48, covariance),
        spec("FDTD2D", 1024, 48, fdtd2d),
        spec("GEMM", 1024, 48, gemm),
        spec("GESUMMV", 16_384, 128, gesummv),
        spec("Gramschmidt", 1024, 48, gramschmidt),
        spec("MVT", 16_384, 128, mvt),
        spec("SYR2K", 1024, 48, syr2k),
        spec("SYRK", 1024, 48, syrk),
    ];
    v.push(WorkloadSpec {
        name: "3D Convolution",
        category: Category::Polybench,
        paper_size: 1024,
        scaled_size: 32,
        acpp_fails: false,
        in_figure: false, // sized in §VIII's text, absent from Fig. 3
        build: conv3d,
    });
    v
}

const WG: i64 = 16;

/// Sequential (k-ordered) matmul accumulation matching the device order,
/// for f32 tolerance-free comparison.
fn host_matmul_seq(a: &[f32], b: &[f32], n: usize) -> Vec<f32> {
    let mut c = vec![0.0_f32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0.0_f32;
            for k in 0..n {
                acc += a[i * n + k] * b[k * n + j];
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Build a GEMM-style kernel `C[i][j] += A[i][k] * B[k][j]` (accessor
/// accumulation, Listing 6) under `name`.
fn add_matmul_kernel(kb: &mut KernelModuleBuilder, name: &str, n: i64) {
    let ctx = kb.module().ctx().clone();
    let f = ctx.f32_type();
    let sig = KernelSig::new(name, 2, true)
        .accessor(f.clone(), 2, AccessMode::Read)
        .accessor(f.clone(), 2, AccessMode::Read)
        .accessor(f, 2, AccessMode::ReadWrite);
    kb.add_kernel(&sig, |b, args, item| {
        let i = sdev::global_id(b, item, 0);
        let j = sdev::global_id(b, item, 1);
        let zero = arith::constant_index(b, 0);
        let nn = arith::constant_index(b, n);
        let one = arith::constant_index(b, 1);
        affine::build_affine_for(b, zero, nn, one, &[], |inner, k, _| {
            let a = sdev::load_via_id(inner, args[0], &[i, k]);
            let bb = sdev::load_via_id(inner, args[1], &[k, j]);
            let prod = arith::mulf(inner, a, bb);
            let c = sdev::load_via_id(inner, args[2], &[i, j]);
            let sum = arith::addf(inner, c, prod);
            sdev::store_via_id(inner, sum, args[2], &[i, j]);
            vec![]
        });
    });
}

// ----------------------------------------------------------------------
// GEMM
// ----------------------------------------------------------------------

fn gemm(n: i64) -> App {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    add_matmul_kernel(&mut kb, "gemm", n);

    let mut rng_ = rng(31);
    let mut rt = SyclRuntime::new();
    let a = rt.buffer_f32(rand_f32(&mut rng_, (n * n) as usize), &[n, n]);
    let b = rt.buffer_f32(rand_f32(&mut rng_, (n * n) as usize), &[n, n]);
    let c = rt.buffer_f32(vec![0.0; (n * n) as usize], &[n, n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(a, AccessMode::Read)
            .accessor(b, AccessMode::Read)
            .accessor(c, AccessMode::ReadWrite);
        h.parallel_for_nd("gemm", &[n, n], &[WG, WG]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let want = host_matmul_seq(rt.read_f32(a), rt.read_f32(b), n as usize);
    let validate: ValidateFn = Box::new(move |rt| check_f32("gemm", rt.read_f32(c), &want, 1e-3));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// 2mm / 3mm: chains of matmuls.
// ----------------------------------------------------------------------

fn mm_chain(n: i64, chains: usize) -> App {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    add_matmul_kernel(&mut kb, "mm", n);

    let mut rng_ = rng(32 + chains as u64);
    let mut rt = SyclRuntime::new();
    let len = (n * n) as usize;
    let a = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let b = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let mut inputs: Vec<BufferId> = Vec::new();
    let mut outs: Vec<BufferId> = Vec::new();
    let mut q = Queue::new();
    let mut lhs = a;
    let mut rhs = b;
    for step in 0..chains {
        let out = rt.buffer_f32(vec![0.0; len], &[n, n]);
        q.submit(|h| {
            h.accessor(lhs, AccessMode::Read)
                .accessor(rhs, AccessMode::Read)
                .accessor(out, AccessMode::ReadWrite);
            h.parallel_for_nd("mm", &[n, n], &[WG, WG]);
        });
        outs.push(out);
        inputs.push(rhs);
        // Next multiplication: previous result times a fresh matrix.
        lhs = out;
        if step + 1 < chains {
            rhs = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
        }
    }
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    // Host reference for the whole chain.
    let mut cur = rt.read_f32(a).to_vec();
    let mut refs: Vec<Vec<f32>> = Vec::new();
    for &inp in &inputs {
        cur = host_matmul_seq(&cur, rt.read_f32(inp), n as usize);
        refs.push(cur.clone());
    }
    let last = *outs.last().unwrap();
    let want = refs.last().unwrap().clone();
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("mm-chain", rt.read_f32(last), &want, 5e-2));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

fn mm2(n: i64) -> App {
    mm_chain(n, 2)
}

fn mm3(n: i64) -> App {
    mm_chain(n, 3)
}

// ----------------------------------------------------------------------
// SYRK / SYR2K: symmetric rank-k updates (the 2- and 4-ref
// internalization cases of §VIII).
// ----------------------------------------------------------------------

fn syrk_like(n: i64, two: bool) -> App {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    let name = if two { "syr2k" } else { "syrk" };
    let mut sig = KernelSig::new(name, 2, true).accessor(f.clone(), 2, AccessMode::Read);
    if two {
        sig = sig.accessor(f.clone(), 2, AccessMode::Read);
    }
    sig = sig.accessor(f, 2, AccessMode::ReadWrite);
    kb.add_kernel(&sig, |b, args, item| {
        let i = sdev::global_id(b, item, 0);
        let j = sdev::global_id(b, item, 1);
        let zero = arith::constant_index(b, 0);
        let nn = arith::constant_index(b, n);
        let one = arith::constant_index(b, 1);
        let c_acc = if two { args[2] } else { args[1] };
        affine::build_affine_for(b, zero, nn, one, &[], |inner, k, _| {
            // A[i][k] * A[j][k] (+ B[i][k]*A[j][k] + A[i][k]*B[j][k] for
            // syr2k — 4 distinct loads, all temporally reused).
            let a_ik = sdev::load_via_id(inner, args[0], &[i, k]);
            let a_jk = sdev::load_via_id(inner, args[0], &[j, k]);
            let update = if two {
                let b_ik = sdev::load_via_id(inner, args[1], &[i, k]);
                let b_jk = sdev::load_via_id(inner, args[1], &[j, k]);
                let t1 = arith::mulf(inner, a_ik, b_jk);
                let t2 = arith::mulf(inner, b_ik, a_jk);
                arith::addf(inner, t1, t2)
            } else {
                arith::mulf(inner, a_ik, a_jk)
            };
            let c = sdev::load_via_id(inner, c_acc, &[i, j]);
            let sum = arith::addf(inner, c, update);
            sdev::store_via_id(inner, sum, c_acc, &[i, j]);
            vec![]
        });
    });

    let mut rng_ = rng(if two { 34 } else { 33 });
    let mut rt = SyclRuntime::new();
    let len = (n * n) as usize;
    let a = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let b = if two {
        Some(rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]))
    } else {
        None
    };
    let c = rt.buffer_f32(vec![0.0; len], &[n, n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(a, AccessMode::Read);
        if let Some(b) = b {
            h.accessor(b, AccessMode::Read);
        }
        h.accessor(c, AccessMode::ReadWrite);
        h.parallel_for_nd(name, &[n, n], &[WG, WG]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let av = rt.read_f32(a).to_vec();
    let bv = b.map(|b| rt.read_f32(b).to_vec());
    let nn = n as usize;
    let want: Vec<f32> = (0..nn)
        .flat_map(|i| {
            let av = &av;
            let bv = &bv;
            (0..nn).map(move |j| {
                let mut acc = 0.0_f32;
                for k in 0..nn {
                    acc += match bv {
                        Some(bv) => {
                            av[i * nn + k] * bv[j * nn + k] + bv[i * nn + k] * av[j * nn + k]
                        }
                        None => av[i * nn + k] * av[j * nn + k],
                    };
                }
                acc
            })
        })
        .collect();
    let validate: ValidateFn = Box::new(move |rt| check_f32("syrk", rt.read_f32(c), &want, 1e-3));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

fn syrk(n: i64) -> App {
    syrk_like(n, false)
}

fn syr2k(n: i64) -> App {
    syrk_like(n, true)
}

// ----------------------------------------------------------------------
// Atax / Bicg / MVT / GESUMMV: matrix-vector kernels with scalar
// accumulation (no array-reduction opportunity, like the SYCL-Bench code).
// ----------------------------------------------------------------------

/// Adds a kernel `out[i] = Σ_j A[i or j][j or i] * x[j] (+ variants)`.
fn add_matvec_kernel(kb: &mut KernelModuleBuilder, name: &str, n: i64, transposed: bool) {
    let ctx = kb.module().ctx().clone();
    let f = ctx.f32_type();
    let sig = KernelSig::new(name, 1, true)
        .accessor(f.clone(), 2, AccessMode::Read)
        .accessor(f.clone(), 1, AccessMode::Read)
        .accessor(f, 1, AccessMode::Write);
    kb.add_kernel(&sig, |b, args, item| {
        let i = sdev::global_id(b, item, 0);
        let zero = arith::constant_index(b, 0);
        let nn = arith::constant_index(b, n);
        let one = arith::constant_index(b, 1);
        let f32t = b.ctx().f32_type();
        let init = arith::constant_float(b, 0.0, f32t);
        let loop_op = scf::build_for(b, zero, nn, one, &[init], |inner, jv, iters| {
            let a = if transposed {
                sdev::load_via_id(inner, args[0], &[jv, i])
            } else {
                sdev::load_via_id(inner, args[0], &[i, jv])
            };
            let x = sdev::load_via_id(inner, args[1], &[jv]);
            let prod = arith::mulf(inner, a, x);
            let acc = arith::addf(inner, iters[0], prod);
            vec![acc]
        });
        let total = b.module().op_result(loop_op, 0);
        sdev::store_via_id(b, total, args[2], &[i]);
    });
}

fn host_matvec(a: &[f32], x: &[f32], n: usize, transposed: bool) -> Vec<f32> {
    (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    if transposed {
                        a[j * n + i] * x[j]
                    } else {
                        a[i * n + j] * x[j]
                    }
                })
                .sum()
        })
        .collect()
}

fn atax(n: i64) -> App {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    add_matvec_kernel(&mut kb, "atax_a", n, false);
    add_matvec_kernel(&mut kb, "atax_at", n, true);

    let mut rng_ = rng(35);
    let mut rt = SyclRuntime::new();
    let len = (n * n) as usize;
    let a = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let x = rt.buffer_f32(rand_f32(&mut rng_, n as usize), &[n]);
    let tmp = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let y = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(a, AccessMode::Read)
            .accessor(x, AccessMode::Read)
            .accessor(tmp, AccessMode::Write);
        h.parallel_for_nd("atax_a", &[n], &[64.min(n)]);
    });
    q.submit(|h| {
        h.accessor(a, AccessMode::Read)
            .accessor(tmp, AccessMode::Read)
            .accessor(y, AccessMode::Write);
        h.parallel_for_nd("atax_at", &[n], &[64.min(n)]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let tmp_ref = host_matvec(rt.read_f32(a), rt.read_f32(x), n as usize, false);
    let want = host_matvec(rt.read_f32(a), &tmp_ref, n as usize, true);
    let validate: ValidateFn = Box::new(move |rt| check_f32("atax", rt.read_f32(y), &want, 1e-2));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

fn bicg(n: i64) -> App {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    add_matvec_kernel(&mut kb, "bicg_q", n, false);
    add_matvec_kernel(&mut kb, "bicg_s", n, true);

    let mut rng_ = rng(36);
    let mut rt = SyclRuntime::new();
    let len = (n * n) as usize;
    let a = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let p = rt.buffer_f32(rand_f32(&mut rng_, n as usize), &[n]);
    let r = rt.buffer_f32(rand_f32(&mut rng_, n as usize), &[n]);
    let qv = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let s = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(a, AccessMode::Read)
            .accessor(p, AccessMode::Read)
            .accessor(qv, AccessMode::Write);
        h.parallel_for_nd("bicg_q", &[n], &[64.min(n)]);
    });
    q.submit(|h| {
        h.accessor(a, AccessMode::Read)
            .accessor(r, AccessMode::Read)
            .accessor(s, AccessMode::Write);
        h.parallel_for_nd("bicg_s", &[n], &[64.min(n)]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let want_q = host_matvec(rt.read_f32(a), rt.read_f32(p), n as usize, false);
    let want_s = host_matvec(rt.read_f32(a), rt.read_f32(r), n as usize, true);
    let validate: ValidateFn = Box::new(move |rt| {
        check_f32("bicg.q", rt.read_f32(qv), &want_q, 1e-2)?;
        check_f32("bicg.s", rt.read_f32(s), &want_s, 1e-2)
    });
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

fn mvt(n: i64) -> App {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    add_matvec_kernel(&mut kb, "mvt_x1", n, false);
    add_matvec_kernel(&mut kb, "mvt_x2", n, true);

    let mut rng_ = rng(37);
    let mut rt = SyclRuntime::new();
    let len = (n * n) as usize;
    let a = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let y1 = rt.buffer_f32(rand_f32(&mut rng_, n as usize), &[n]);
    let y2 = rt.buffer_f32(rand_f32(&mut rng_, n as usize), &[n]);
    let x1 = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let x2 = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(a, AccessMode::Read)
            .accessor(y1, AccessMode::Read)
            .accessor(x1, AccessMode::Write);
        h.parallel_for_nd("mvt_x1", &[n], &[64.min(n)]);
    });
    q.submit(|h| {
        h.accessor(a, AccessMode::Read)
            .accessor(y2, AccessMode::Read)
            .accessor(x2, AccessMode::Write);
        h.parallel_for_nd("mvt_x2", &[n], &[64.min(n)]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let want1 = host_matvec(rt.read_f32(a), rt.read_f32(y1), n as usize, false);
    let want2 = host_matvec(rt.read_f32(a), rt.read_f32(y2), n as usize, true);
    let validate: ValidateFn = Box::new(move |rt| {
        check_f32("mvt.x1", rt.read_f32(x1), &want1, 1e-2)?;
        check_f32("mvt.x2", rt.read_f32(x2), &want2, 1e-2)
    });
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

fn gesummv(n: i64) -> App {
    let (alpha, beta) = (1.25_f32, 0.75_f32);
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    let sig = KernelSig::new("gesummv", 1, true)
        .accessor(f.clone(), 2, AccessMode::Read)
        .accessor(f.clone(), 2, AccessMode::Read)
        .accessor(f.clone(), 1, AccessMode::Read)
        .accessor(f.clone(), 1, AccessMode::Write)
        .scalar(f.clone())
        .scalar(f);
    kb.add_kernel(&sig, |b, args, item| {
        let i = sdev::global_id(b, item, 0);
        let zero = arith::constant_index(b, 0);
        let nn = arith::constant_index(b, n);
        let one = arith::constant_index(b, 1);
        let f32t = b.ctx().f32_type();
        let zf = arith::constant_float(b, 0.0, f32t);
        let loop_op = scf::build_for(b, zero, nn, one, &[zf, zf], |inner, jv, iters| {
            let a = sdev::load_via_id(inner, args[0], &[i, jv]);
            let bb = sdev::load_via_id(inner, args[1], &[i, jv]);
            let x = sdev::load_via_id(inner, args[2], &[jv]);
            let ax = arith::mulf(inner, a, x);
            let bx = arith::mulf(inner, bb, x);
            let s1 = arith::addf(inner, iters[0], ax);
            let s2 = arith::addf(inner, iters[1], bx);
            vec![s1, s2]
        });
        let s1 = b.module().op_result(loop_op, 0);
        let s2 = b.module().op_result(loop_op, 1);
        let t1 = arith::mulf(b, args[4], s1);
        let t2 = arith::mulf(b, args[5], s2);
        let y = arith::addf(b, t1, t2);
        sdev::store_via_id(b, y, args[3], &[i]);
    });

    let mut rng_ = rng(38);
    let mut rt = SyclRuntime::new();
    let len = (n * n) as usize;
    let a = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let b = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let x = rt.buffer_f32(rand_f32(&mut rng_, n as usize), &[n]);
    let y = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(a, AccessMode::Read)
            .accessor(b, AccessMode::Read)
            .accessor(x, AccessMode::Read)
            .accessor(y, AccessMode::Write)
            .scalar_f32(alpha)
            .scalar_f32(beta);
        h.parallel_for_nd("gesummv", &[n], &[64.min(n)]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let av = rt.read_f32(a).to_vec();
    let bv = rt.read_f32(b).to_vec();
    let xv = rt.read_f32(x).to_vec();
    let nn = n as usize;
    let want: Vec<f32> = (0..nn)
        .map(|i| {
            let s1: f32 = (0..nn).map(|j| av[i * nn + j] * xv[j]).sum();
            let s2: f32 = (0..nn).map(|j| bv[i * nn + j] * xv[j]).sum();
            alpha * s1 + beta * s2
        })
        .collect();
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("gesummv", rt.read_f32(y), &want, 1e-2));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// Correlation / Covariance: the array-reduction showcases (5 and 4
// opportunities, §VIII).
// ----------------------------------------------------------------------

/// `mean[j] += data[i][j]` (array reduction) then `mean[j] /= n`.
fn add_mean_kernel(kb: &mut KernelModuleBuilder, name: &str, n: i64, also_sumsq: bool) {
    let ctx = kb.module().ctx().clone();
    let f = ctx.f32_type();
    let mut sig = KernelSig::new(name, 1, true)
        .accessor(f.clone(), 2, AccessMode::Read)
        .accessor(f.clone(), 1, AccessMode::ReadWrite);
    if also_sumsq {
        sig = sig.accessor(f, 1, AccessMode::ReadWrite);
    }
    kb.add_kernel(&sig, move |b, args, item| {
        let j = sdev::global_id(b, item, 0);
        let zero = arith::constant_index(b, 0);
        let nn = arith::constant_index(b, n);
        let one = arith::constant_index(b, 1);
        affine::build_affine_for(b, zero, nn, one, &[], |inner, iv, _| {
            let d = sdev::load_via_id(inner, args[0], &[iv, j]);
            // mean[j] += data[i][j]  — array reduction opportunity.
            let m = sdev::load_via_id(inner, args[1], &[j]);
            let m2 = arith::addf(inner, m, d);
            sdev::store_via_id(inner, m2, args[1], &[j]);
            if also_sumsq {
                // sumsq[j] += data[i][j]^2 — a second opportunity.
                let sq = arith::mulf(inner, d, d);
                let s = sdev::load_via_id(inner, args[2], &[j]);
                let s2 = arith::addf(inner, s, sq);
                sdev::store_via_id(inner, s2, args[2], &[j]);
            }
            vec![]
        });
        let m = sdev::load_via_id(b, args[1], &[j]);
        let f32t = b.ctx().f32_type();
        let nf = arith::constant_float(b, n as f64, f32t);
        let mean = arith::divf(b, m, nf);
        sdev::store_via_id(b, mean, args[1], &[j]);
    });
}

/// `out[i][j] += data[k][i]*data[k][j]` under the polybench upper-triangle
/// guard `j >= i` — one array reduction per loop. The divergent guard also
/// keeps loop internalization away (only the reduction fires, matching the
/// paper's attribution for Correlation/Covariance).
fn add_pairwise_kernel(kb: &mut KernelModuleBuilder, name: &str, n: i64) {
    let ctx = kb.module().ctx().clone();
    let f = ctx.f32_type();
    let sig = KernelSig::new(name, 2, true)
        .accessor(f.clone(), 2, AccessMode::Read)
        .accessor(f, 2, AccessMode::ReadWrite);
    kb.add_kernel(&sig, move |b, args, item| {
        let i = sdev::global_id(b, item, 0);
        let j = sdev::global_id(b, item, 1);
        let upper = arith::cmpi(b, "sge", j, i);
        scf::build_if(
            b,
            upper,
            &[],
            |outer| {
                let zero = arith::constant_index(outer, 0);
                let nn = arith::constant_index(outer, n);
                let one = arith::constant_index(outer, 1);
                affine::build_affine_for(outer, zero, nn, one, &[], |body, kv, _| {
                    let di = sdev::load_via_id(body, args[0], &[kv, i]);
                    let dj = sdev::load_via_id(body, args[0], &[kv, j]);
                    let prod = arith::mulf(body, di, dj);
                    // Column-major accumulation (out[j][i]): the polybench
                    // convention of writing symmat by columns.
                    let cji = sdev::load_via_id(body, args[1], &[j, i]);
                    let cji2 = arith::addf(body, cji, prod);
                    sdev::store_via_id(body, cji2, args[1], &[j, i]);
                    vec![]
                });
                vec![]
            },
            |_| vec![],
        );
    });
}

/// `var[j] += data[i][j]^2` — one more array reduction (normalization
/// check of the statistics kernels).
fn add_var_kernel(kb: &mut KernelModuleBuilder, name: &str, n: i64) {
    let ctx = kb.module().ctx().clone();
    let f = ctx.f32_type();
    let sig = KernelSig::new(name, 1, true)
        .accessor(f.clone(), 2, AccessMode::Read)
        .accessor(f, 1, AccessMode::ReadWrite);
    kb.add_kernel(&sig, move |b, args, item| {
        let j = sdev::global_id(b, item, 0);
        let zero = arith::constant_index(b, 0);
        let nn = arith::constant_index(b, n);
        let one = arith::constant_index(b, 1);
        affine::build_affine_for(b, zero, nn, one, &[], |body, iv, _| {
            let d = sdev::load_via_id(body, args[0], &[iv, j]);
            let sq = arith::mulf(body, d, d);
            let v = sdev::load_via_id(body, args[1], &[j]);
            let v2 = arith::addf(body, v, sq);
            sdev::store_via_id(body, v2, args[1], &[j]);
            vec![]
        });
    });
}

fn correlation(n: i64) -> App {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    // Kernel 1: mean (1 reduction). Kernel 2: sum+sumsq for the stddev
    // (2 reductions). Kernel 3: normalize (elementwise). Kernel 4:
    // correlation accumulation (1 reduction). Kernel 5: variance check
    // (1 reduction). Total: 5 (§VIII).
    add_mean_kernel(&mut kb, "corr_mean", n, false);
    add_mean_kernel(&mut kb, "corr_std", n, true);
    {
        let f = ctx.f32_type();
        let sig = KernelSig::new("corr_center", 2, true)
            .accessor(f.clone(), 2, AccessMode::ReadWrite)
            .accessor(f, 1, AccessMode::Read);
        kb.add_kernel(&sig, |b, args, item| {
            let i = sdev::global_id(b, item, 0);
            let j = sdev::global_id(b, item, 1);
            let d = sdev::load_via_id(b, args[0], &[i, j]);
            let m = sdev::load_via_id(b, args[1], &[j]);
            let c = arith::subf(b, d, m);
            sdev::store_via_id(b, c, args[0], &[i, j]);
        });
    }
    add_pairwise_kernel(&mut kb, "corr_corr", n);
    add_var_kernel(&mut kb, "corr_var", n);

    let mut rng_ = rng(39);
    let mut rt = SyclRuntime::new();
    let len = (n * n) as usize;
    let data = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let mean = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let sum = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let sumsq = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let corr = rt.buffer_f32(vec![0.0; len], &[n, n]);
    let var = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(data, AccessMode::Read)
            .accessor(mean, AccessMode::ReadWrite);
        h.parallel_for_nd("corr_mean", &[n], &[WG]);
    });
    q.submit(|h| {
        h.accessor(data, AccessMode::Read)
            .accessor(sum, AccessMode::ReadWrite)
            .accessor(sumsq, AccessMode::ReadWrite);
        h.parallel_for_nd("corr_std", &[n], &[WG]);
    });
    q.submit(|h| {
        h.accessor(data, AccessMode::ReadWrite)
            .accessor(mean, AccessMode::Read);
        h.parallel_for_nd("corr_center", &[n, n], &[WG, WG]);
    });
    q.submit(|h| {
        h.accessor(data, AccessMode::Read)
            .accessor(corr, AccessMode::ReadWrite);
        h.parallel_for_nd("corr_corr", &[n, n], &[WG, WG]);
    });
    q.submit(|h| {
        h.accessor(data, AccessMode::Read)
            .accessor(var, AccessMode::ReadWrite);
        h.parallel_for_nd("corr_var", &[n], &[WG]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    // Host reference of the same pipeline.
    let nn = n as usize;
    let d0 = rt.read_f32(data).to_vec();
    let mut mean_ref = vec![0.0_f32; nn];
    for j in 0..nn {
        for i in 0..nn {
            mean_ref[j] += d0[i * nn + j];
        }
        mean_ref[j] /= nn as f32;
    }
    let mut centered = d0.clone();
    for i in 0..nn {
        for j in 0..nn {
            centered[i * nn + j] -= mean_ref[j];
        }
    }
    let mut corr_ref = vec![0.0_f32; nn * nn];
    for i in 0..nn {
        for j in i..nn {
            let mut acc = 0.0_f32;
            for k in 0..nn {
                acc += centered[k * nn + i] * centered[k * nn + j];
            }
            corr_ref[j * nn + i] = acc;
        }
    }
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("correlation", rt.read_f32(corr), &corr_ref, 5e-2));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

fn covariance(n: i64) -> App {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    // mean+sumsq (2 reductions), covariance accumulation (1) and the
    // variance check (1): total 4 (§VIII).
    add_mean_kernel(&mut kb, "cov_mean", n, true);
    add_pairwise_kernel(&mut kb, "cov_cov", n);
    add_var_kernel(&mut kb, "cov_var", n);

    let mut rng_ = rng(40);
    let mut rt = SyclRuntime::new();
    let len = (n * n) as usize;
    let data = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let mean = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let sumsq = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let cov = rt.buffer_f32(vec![0.0; len], &[n, n]);
    let var = rt.buffer_f32(vec![0.0; n as usize], &[n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(data, AccessMode::Read)
            .accessor(mean, AccessMode::ReadWrite)
            .accessor(sumsq, AccessMode::ReadWrite);
        h.parallel_for_nd("cov_mean", &[n], &[WG]);
    });
    q.submit(|h| {
        h.accessor(data, AccessMode::Read)
            .accessor(cov, AccessMode::ReadWrite);
        h.parallel_for_nd("cov_cov", &[n, n], &[WG, WG]);
    });
    q.submit(|h| {
        h.accessor(data, AccessMode::Read)
            .accessor(var, AccessMode::ReadWrite);
        h.parallel_for_nd("cov_var", &[n], &[WG]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let nn = n as usize;
    let d0 = rt.read_f32(data).to_vec();
    let mut cov_ref = vec![0.0_f32; nn * nn];
    for i in 0..nn {
        for j in i..nn {
            let mut acc = 0.0_f32;
            for k in 0..nn {
                acc += d0[k * nn + i] * d0[k * nn + j];
            }
            cov_ref[j * nn + i] = acc;
        }
    }
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("covariance", rt.read_f32(cov), &cov_ref, 5e-2));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// Gramschmidt: candidate loop inside a divergent region (§VIII).
// ----------------------------------------------------------------------

fn gramschmidt(n: i64) -> App {
    const STEPS: i64 = 4;
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    // Projection-removal step: for columns j > k,
    // A[i][j] -= Σ_l Q[i][l] * R[l][j]; the `j > k` guard is divergent, so
    // loop internalization must skip the loop (the Gramschmidt observation
    // of §VIII).
    let sig = KernelSig::new("gram_update", 2, true)
        .accessor(f.clone(), 2, AccessMode::Read) // Q
        .accessor(f.clone(), 2, AccessMode::Read) // R
        .accessor(f, 2, AccessMode::ReadWrite) // A
        .scalar(ctx.i64_type()); // k
    kb.add_kernel(&sig, |b, args, item| {
        let i = sdev::global_id(b, item, 0);
        let j = sdev::global_id(b, item, 1);
        let index_ty = b.ctx().index_type();
        let k = arith::index_cast(b, args[3], index_ty);
        let active = arith::cmpi(b, "sgt", j, k);
        scf::build_if(
            b,
            active,
            &[],
            |inner| {
                let zero = arith::constant_index(inner, 0);
                let nn = arith::constant_index(inner, n);
                let one = arith::constant_index(inner, 1);
                let f32t = inner.ctx().f32_type();
                let zf = arith::constant_float(inner, 0.0, f32t);
                let proj_loop =
                    affine::build_affine_for(inner, zero, nn, one, &[zf], |body, l, iters| {
                        let qv = sdev::load_via_id(body, args[0], &[i, l]);
                        let rv = sdev::load_via_id(body, args[1], &[l, j]);
                        let prod = arith::mulf(body, qv, rv);
                        let acc = arith::addf(body, iters[0], prod);
                        vec![acc]
                    });
                let proj = inner.module().op_result(proj_loop, 0);
                let a = sdev::load_via_id(inner, args[2], &[i, j]);
                let a2 = arith::subf(inner, a, proj);
                sdev::store_via_id(inner, a2, args[2], &[i, j]);
                vec![]
            },
            |_| vec![],
        );
    });

    let mut rng_ = rng(41);
    let mut rt = SyclRuntime::new();
    let len = (n * n) as usize;
    let qbuf = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let rbuf = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let abuf = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let mut q = Queue::new();
    for k in 0..STEPS {
        q.submit(|h| {
            h.accessor(qbuf, AccessMode::Read)
                .accessor(rbuf, AccessMode::Read)
                .accessor(abuf, AccessMode::ReadWrite)
                .scalar_i64(k);
            h.parallel_for_nd("gram_update", &[n, n], &[WG, WG]);
        });
    }
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let nn = n as usize;
    let qv = rt.read_f32(qbuf).to_vec();
    let rv = rt.read_f32(rbuf).to_vec();
    let mut want = rt.read_f32(abuf).to_vec();
    for k in 0..STEPS as usize {
        let prev = want.clone();
        for i in 0..nn {
            for j in 0..nn {
                if j > k {
                    let mut proj = 0.0_f32;
                    for l in 0..nn {
                        proj += qv[i * nn + l] * rv[l * nn + j];
                    }
                    want[i * nn + j] = prev[i * nn + j] - proj;
                }
            }
        }
    }
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("gramschmidt", rt.read_f32(abuf), &want, 5e-2));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

// ----------------------------------------------------------------------
// 2D Convolution / FDTD2D / 3D Convolution: stencil-style polybench.
// ----------------------------------------------------------------------

fn conv2d(n: i64) -> App {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    let sig = KernelSig::new("conv2d", 2, true)
        .accessor(f.clone(), 2, AccessMode::Read)
        .accessor(f, 2, AccessMode::Write);
    // 3x3 taps as constants (the polybench c11..c33 coefficients).
    const C: [f64; 9] = [0.2, 0.5, -0.8, -0.3, 0.6, -0.9, 0.4, 0.7, 0.1];
    kb.add_kernel(&sig, |b, args, item| {
        let i = sdev::global_id(b, item, 0);
        let j = sdev::global_id(b, item, 1);
        let one = arith::constant_index(b, 1);
        let nn = arith::constant_index(b, n);
        let hi = arith::subi(b, nn, one);
        let ge0 = arith::cmpi(b, "sge", i, one);
        let lt0 = arith::cmpi(b, "slt", i, hi);
        let ge1 = arith::cmpi(b, "sge", j, one);
        let lt1 = arith::cmpi(b, "slt", j, hi);
        let c01 = b.build_value("arith.andi", &[ge0, lt0], b.ctx().i1_type(), vec![]);
        let c23 = b.build_value("arith.andi", &[ge1, lt1], b.ctx().i1_type(), vec![]);
        let interior = b.build_value("arith.andi", &[c01, c23], b.ctx().i1_type(), vec![]);
        scf::build_if(
            b,
            interior,
            &[],
            |inner| {
                let f32t = inner.ctx().f32_type();
                let mut acc = arith::constant_float(inner, 0.0, f32t.clone());
                for (t, &w) in C.iter().enumerate() {
                    let di = (t as i64) / 3 - 1;
                    let dj = (t as i64) % 3 - 1;
                    let od = arith::constant_index(inner, di);
                    let oi = arith::addi(inner, i, od);
                    let od2 = arith::constant_index(inner, dj);
                    let oj = arith::addi(inner, j, od2);
                    let v = sdev::load_via_id(inner, args[0], &[oi, oj]);
                    let wc = arith::constant_float(inner, w, f32t.clone());
                    let prod = arith::mulf(inner, v, wc);
                    acc = arith::addf(inner, acc, prod);
                }
                sdev::store_via_id(inner, acc, args[1], &[i, j]);
                vec![]
            },
            |_| vec![],
        );
    });

    let mut rng_ = rng(42);
    let mut rt = SyclRuntime::new();
    let len = (n * n) as usize;
    let input = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let output = rt.buffer_f32(vec![0.0; len], &[n, n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(input, AccessMode::Read)
            .accessor(output, AccessMode::Write);
        h.parallel_for_nd("conv2d", &[n, n], &[WG, WG]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let nn = n as usize;
    let inp = rt.read_f32(input).to_vec();
    let mut want = vec![0.0_f32; len];
    for i in 1..nn - 1 {
        for j in 1..nn - 1 {
            let mut acc = 0.0_f32;
            for (t, &w) in C.iter().enumerate() {
                let di = t / 3;
                let dj = t % 3;
                acc += inp[(i + di - 1) * nn + (j + dj - 1)] * w as f32;
            }
            want[i * nn + j] = acc;
        }
    }
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("conv2d", rt.read_f32(output), &want, 1e-3));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

fn fdtd2d(n: i64) -> App {
    const TMAX: i64 = 8;
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    // ey[i][j] -= 0.5*(hz[i][j] - hz[i-1][j]) for i>0
    {
        let sig = KernelSig::new("fdtd_ey", 2, true)
            .accessor(f.clone(), 2, AccessMode::ReadWrite)
            .accessor(f.clone(), 2, AccessMode::Read);
        kb.add_kernel(&sig, |b, args, item| {
            let i = sdev::global_id(b, item, 0);
            let j = sdev::global_id(b, item, 1);
            let zero = arith::constant_index(b, 0);
            let inner_cond = arith::cmpi(b, "sgt", i, zero);
            scf::build_if(
                b,
                inner_cond,
                &[],
                |inner| {
                    let one = arith::constant_index(inner, 1);
                    let im1 = arith::subi(inner, i, one);
                    let hz0 = sdev::load_via_id(inner, args[1], &[i, j]);
                    let hz1 = sdev::load_via_id(inner, args[1], &[im1, j]);
                    let d = arith::subf(inner, hz0, hz1);
                    let f32t = inner.ctx().f32_type();
                    let half = arith::constant_float(inner, 0.5, f32t);
                    let hd = arith::mulf(inner, half, d);
                    let ey = sdev::load_via_id(inner, args[0], &[i, j]);
                    let ey2 = arith::subf(inner, ey, hd);
                    sdev::store_via_id(inner, ey2, args[0], &[i, j]);
                    vec![]
                },
                |_| vec![],
            );
        });
    }
    // hz[i][j] -= 0.7*(ey[i+1][j] - ey[i][j]) for interior
    {
        let sig = KernelSig::new("fdtd_hz", 2, true)
            .accessor(f.clone(), 2, AccessMode::ReadWrite)
            .accessor(f.clone(), 2, AccessMode::Read);
        kb.add_kernel(&sig, |b, args, item| {
            let i = sdev::global_id(b, item, 0);
            let j = sdev::global_id(b, item, 1);
            let one = arith::constant_index(b, 1);
            let nn = arith::constant_index(b, n);
            let hi = arith::subi(b, nn, one);
            let c = arith::cmpi(b, "slt", i, hi);
            scf::build_if(
                b,
                c,
                &[],
                |inner| {
                    let one2 = arith::constant_index(inner, 1);
                    let ip1 = arith::addi(inner, i, one2);
                    let e0 = sdev::load_via_id(inner, args[1], &[ip1, j]);
                    let e1 = sdev::load_via_id(inner, args[1], &[i, j]);
                    let d = arith::subf(inner, e0, e1);
                    let f32t = inner.ctx().f32_type();
                    let c7 = arith::constant_float(inner, 0.7, f32t);
                    let hd = arith::mulf(inner, c7, d);
                    let hz = sdev::load_via_id(inner, args[0], &[i, j]);
                    let hz2 = arith::subf(inner, hz, hd);
                    sdev::store_via_id(inner, hz2, args[0], &[i, j]);
                    vec![]
                },
                |_| vec![],
            );
        });
    }

    let mut rng_ = rng(43);
    let mut rt = SyclRuntime::new();
    let len = (n * n) as usize;
    let ey = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let hz = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n]);
    let mut q = Queue::new();
    for _t in 0..TMAX {
        q.submit(|h| {
            h.accessor(ey, AccessMode::ReadWrite)
                .accessor(hz, AccessMode::Read);
            h.parallel_for_nd("fdtd_ey", &[n, n], &[WG, WG]);
        });
        q.submit(|h| {
            h.accessor(hz, AccessMode::ReadWrite)
                .accessor(ey, AccessMode::Read);
            h.parallel_for_nd("fdtd_hz", &[n, n], &[WG, WG]);
        });
    }
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let nn = n as usize;
    let mut ey_ref = rt.read_f32(ey).to_vec();
    let mut hz_ref = rt.read_f32(hz).to_vec();
    for _t in 0..TMAX {
        for i in 1..nn {
            for j in 0..nn {
                ey_ref[i * nn + j] -= 0.5 * (hz_ref[i * nn + j] - hz_ref[(i - 1) * nn + j]);
            }
        }
        for i in 0..nn - 1 {
            for j in 0..nn {
                hz_ref[i * nn + j] -= 0.7 * (ey_ref[(i + 1) * nn + j] - ey_ref[i * nn + j]);
            }
        }
    }
    let validate: ValidateFn = Box::new(move |rt| {
        check_f32("fdtd.ey", rt.read_f32(ey), &ey_ref, 1e-2)?;
        check_f32("fdtd.hz", rt.read_f32(hz), &hz_ref, 1e-2)
    });
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}

fn conv3d(n: i64) -> App {
    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f = ctx.f32_type();
    let sig = KernelSig::new("conv3d", 3, true)
        .accessor(f.clone(), 3, AccessMode::Read)
        .accessor(f, 3, AccessMode::Write);
    kb.add_kernel(&sig, |b, args, item| {
        let i = sdev::global_id(b, item, 0);
        let j = sdev::global_id(b, item, 1);
        let k = sdev::global_id(b, item, 2);
        let one = arith::constant_index(b, 1);
        let nn = arith::constant_index(b, n);
        let hi = arith::subi(b, nn, one);
        let mut conds = Vec::new();
        for v in [i, j, k] {
            conds.push(arith::cmpi(b, "sge", v, one));
            conds.push(arith::cmpi(b, "slt", v, hi));
        }
        let mut interior = conds[0];
        for &c in &conds[1..] {
            interior = b.build_value("arith.andi", &[interior, c], b.ctx().i1_type(), vec![]);
        }
        scf::build_if(
            b,
            interior,
            &[],
            |inner| {
                let f32t = inner.ctx().f32_type();
                let one2 = arith::constant_index(inner, 1);
                let im1 = arith::subi(inner, i, one2);
                let ip1 = arith::addi(inner, i, one2);
                let c2 = arith::constant_float(inner, 2.0, f32t.clone());
                let center = sdev::load_via_id(inner, args[0], &[i, j, k]);
                let down = sdev::load_via_id(inner, args[0], &[im1, j, k]);
                let up = sdev::load_via_id(inner, args[0], &[ip1, j, k]);
                let s = arith::addf(inner, down, up);
                let cc = arith::mulf(inner, c2, center);
                let out = arith::subf(inner, s, cc);
                sdev::store_via_id(inner, out, args[1], &[i, j, k]);
                vec![]
            },
            |_| vec![],
        );
    });

    let mut rng_ = rng(44);
    let mut rt = SyclRuntime::new();
    let len = (n * n * n) as usize;
    let input = rt.buffer_f32(rand_f32(&mut rng_, len), &[n, n, n]);
    let output = rt.buffer_f32(vec![0.0; len], &[n, n, n]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(input, AccessMode::Read)
            .accessor(output, AccessMode::Write);
        h.parallel_for_nd("conv3d", &[n, n, n], &[4, 4, 4]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();

    let nn = n as usize;
    let inp = rt.read_f32(input).to_vec();
    let mut want = vec![0.0_f32; len];
    for i in 1..nn - 1 {
        for j in 1..nn - 1 {
            for k in 1..nn - 1 {
                let at = |a: usize, b2: usize, c: usize| inp[(a * nn + b2) * nn + c];
                want[(i * nn + j) * nn + k] = at(i - 1, j, k) + at(i + 1, j, k) - 2.0 * at(i, j, k);
            }
        }
    }
    let validate: ValidateFn =
        Box::new(move |rt| check_f32("conv3d", rt.read_f32(output), &want, 1e-3));
    App {
        module,
        runtime: rt,
        queue: q,
        validate,
    }
}
