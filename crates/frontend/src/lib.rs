//! # sycl-mlir-frontend — the device-code frontend (Polygeist stand-in)
//!
//! The paper compiles SYCL device code through a Polygeist fork (§IV).
//! This crate is the corresponding substrate: a builder API producing the
//! *same device MLIR a C++ frontend would emit*, so every downstream pass
//! operates on genuine IR. It provides:
//!
//! * [`KernelModuleBuilder`] — assembles the joint host/device module of
//!   Fig. 1: a top-level module for host functions plus a nested
//!   `builtin.module @device` for kernels;
//! * [`KernelSig`] — declarative kernel signatures (accessors, scalars,
//!   trailing `item`/`nd_item`).

use sycl_mlir_ir::{Attribute, Builder, Context, Module, OpId, Type, ValueId};
use sycl_mlir_sycl::types::{self, AccessMode, Target};

/// One kernel parameter in a [`KernelSig`].
#[derive(Clone, Debug)]
pub enum KernelParam {
    /// A global accessor of the given element type, rank and mode.
    Accessor {
        elem: Type,
        rank: u32,
        mode: AccessMode,
    },
    /// A scalar passed by value.
    Scalar(Type),
}

/// Declarative kernel signature: parameters plus the index-space rank and
/// form (`item` for `parallel_for(range)`, `nd_item` for nd-range kernels).
#[derive(Clone, Debug)]
pub struct KernelSig {
    pub name: String,
    pub params: Vec<KernelParam>,
    pub rank: u32,
    pub nd: bool,
}

impl KernelSig {
    pub fn new(name: &str, rank: u32, nd: bool) -> KernelSig {
        KernelSig {
            name: name.into(),
            params: Vec::new(),
            rank,
            nd,
        }
    }

    pub fn accessor(mut self, elem: Type, rank: u32, mode: AccessMode) -> KernelSig {
        self.params.push(KernelParam::Accessor { elem, rank, mode });
        self
    }

    pub fn scalar(mut self, ty: Type) -> KernelSig {
        self.params.push(KernelParam::Scalar(ty));
        self
    }
}

/// Builds the joint host/device module.
pub struct KernelModuleBuilder {
    module: Module,
    device: OpId,
}

impl KernelModuleBuilder {
    /// Create an empty joint module (host top-level + nested `@device`).
    pub fn new(ctx: &Context) -> KernelModuleBuilder {
        let mut module = Module::new(ctx);
        let name = ctx.op("builtin.module");
        let device = module.create_op(
            name,
            &[],
            &[],
            vec![(
                "sym_name".into(),
                Attribute::Str(sycl_mlir_sycl::DEVICE_MODULE_SYM.into()),
            )],
        );
        let region = module.add_region(device);
        module.add_block(region, &[]);
        let top_block = module.top_block();
        module.append_op(top_block, device);
        KernelModuleBuilder { module, device }
    }

    /// The nested device module op.
    pub fn device_module(&self) -> OpId {
        self.device
    }

    pub fn module(&mut self) -> &mut Module {
        &mut self.module
    }

    /// Add a kernel with the given signature; `body` receives a builder at
    /// the entry block, the parameter values (accessors/scalars) and the
    /// trailing item value.
    pub fn add_kernel(
        &mut self,
        sig: &KernelSig,
        body: impl FnOnce(&mut Builder<'_>, &[ValueId], ValueId),
    ) -> OpId {
        let ctx = self.module.ctx().clone();
        let mut param_types: Vec<Type> = sig
            .params
            .iter()
            .map(|p| match p {
                KernelParam::Accessor { elem, rank, mode } => {
                    types::accessor_type(&ctx, elem.clone(), *rank, *mode, Target::Global)
                }
                KernelParam::Scalar(ty) => ty.clone(),
            })
            .collect();
        let item_ty = if sig.nd {
            types::nd_item_type(&ctx, sig.rank)
        } else {
            types::item_type(&ctx, sig.rank)
        };
        param_types.push(item_ty);
        let (func, entry) = sycl_mlir_dialects::func::build_func(
            &mut self.module,
            self.device,
            &sig.name,
            &param_types,
            &[],
        );
        sycl_mlir_sycl::device::mark_kernel(&mut self.module, func);
        let args: Vec<ValueId> = self.module.block_args(entry)[..sig.params.len()].to_vec();
        let item = self.module.block_arg(entry, sig.params.len());
        {
            let mut b = Builder::at_end(&mut self.module, entry);
            body(&mut b, &args, item);
            sycl_mlir_dialects::func::build_return(&mut b, &[]);
        }
        func
    }

    /// Finish and return the joint module.
    pub fn finish(self) -> Module {
        self.module
    }
}

/// Standard context with every dialect of this project registered.
pub fn full_context() -> Context {
    let ctx = Context::new();
    sycl_mlir_dialects::register_all(&ctx);
    sycl_mlir_sycl::register(&ctx);
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_ir::verify;

    #[test]
    fn joint_module_shape() {
        let ctx = full_context();
        let mut kb = KernelModuleBuilder::new(&ctx);
        let sig = KernelSig::new("vadd", 1, true)
            .accessor(ctx.f32_type(), 1, AccessMode::ReadWrite)
            .accessor(ctx.f32_type(), 1, AccessMode::Read)
            .scalar(ctx.i64_type());
        let func = kb.add_kernel(&sig, |b, args, item| {
            let gid = sycl_mlir_sycl::device::global_id(b, item, 0);
            let va = sycl_mlir_sycl::device::load_via_id(b, args[0], &[gid]);
            let vb = sycl_mlir_sycl::device::load_via_id(b, args[1], &[gid]);
            let sum = sycl_mlir_dialects::arith::addf(b, va, vb);
            sycl_mlir_sycl::device::store_via_id(b, sum, args[0], &[gid]);
        });
        let m = kb.finish();
        verify(&m).unwrap();
        // The kernel lives under @device and is resolvable by path.
        let found = m
            .lookup_symbol_path(m.top(), &["device".into(), "vadd".into()])
            .unwrap();
        assert_eq!(found, func);
        assert!(sycl_mlir_sycl::device::is_kernel(&m, func));
    }
}
