//! Symbolic interval arithmetic over launch-time parameters.
//!
//! The decode-time plan verifier (sim's `verify` module) proves accessor
//! subscripts in-bounds *before* the launch geometry is known: an index
//! like `gid0 * N + i` is bounded not by numbers but by **symbols**
//! (global extent per dimension, accessor ranges, integer kernel
//! arguments). This module provides the lattice that makes that work:
//!
//! * [`Expr`] — a small side-effect-free expression tree over `i64`
//!   constants and opaque `u32` symbols (`+`, `-`, `*`, `min`, `max`),
//!   shared per node via `Arc` (thread-safe: proofs live in cross-thread plan caches) and size-tracked so pathological
//!   programs cannot build unbounded terms;
//! * [`Interval`] — a pair of bound expressions `[lo, hi]` (both
//!   inclusive) with the usual interval transfer functions. `Top`
//!   (unknown) is represented by `Option<Interval>::None`: every
//!   operation returns `None` when a bound would exceed the node
//!   budget, so the abstract interpreter degrades to "unproven", never
//!   to "wrong".
//!
//! At launch time the consumer resolves every symbol to a concrete
//! value and evaluates the bounds in `i128` ([`Expr::eval`]) — checked
//! arithmetic, so overflow evaluates to "unknown" rather than wrapping.
//! The meaning of a symbol id is entirely the caller's contract; this
//! module never interprets them.

use std::sync::Arc;

/// Cap on the node count of any single bound expression. Interval
/// operations whose result would exceed it return `None` (Top): the
/// abstract interpreter loses precision but stays linear in program
/// size.
pub const MAX_EXPR_NODES: u32 = 256;

/// Binary operators of a bound expression.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping-free addition (evaluation is checked).
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Two-operand minimum.
    Min,
    /// Two-operand maximum.
    Max,
}

#[derive(Debug)]
enum Kind {
    Const(i64),
    Sym(u32),
    Bin(BinOp, Expr, Expr),
}

#[derive(Debug)]
struct Node {
    kind: Kind,
    size: u32,
}

/// A symbolic bound: a shared, immutable expression tree over constants
/// and opaque symbols. Cloning is an `Arc` bump.
#[derive(Clone, Debug)]
pub struct Expr(Arc<Node>);

impl Expr {
    /// A constant bound.
    pub fn konst(v: i64) -> Expr {
        Expr(Arc::new(Node {
            kind: Kind::Const(v),
            size: 1,
        }))
    }

    /// An opaque symbol; its meaning is the caller's contract.
    pub fn sym(id: u32) -> Expr {
        Expr(Arc::new(Node {
            kind: Kind::Sym(id),
            size: 1,
        }))
    }

    /// Number of nodes in this expression.
    pub fn size(&self) -> u32 {
        self.0.size
    }

    /// The constant payload, when the expression is a literal constant.
    pub fn as_const(&self) -> Option<i64> {
        match self.0.kind {
            Kind::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Build `op(a, b)`, folding constant operands (with checked
    /// arithmetic — an overflowing fold stays symbolic and is caught at
    /// evaluation time). Returns `None` when the result would exceed
    /// [`MAX_EXPR_NODES`].
    pub fn bin(op: BinOp, a: &Expr, b: &Expr) -> Option<Expr> {
        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            let folded = match op {
                BinOp::Add => x.checked_add(y),
                BinOp::Sub => x.checked_sub(y),
                BinOp::Mul => x.checked_mul(y),
                BinOp::Min => Some(x.min(y)),
                BinOp::Max => Some(x.max(y)),
            };
            if let Some(v) = folded {
                return Some(Expr::konst(v));
            }
        }
        // Algebraic identities keep common affine terms small.
        match (op, a.as_const(), b.as_const()) {
            (BinOp::Add, Some(0), _) => return Some(b.clone()),
            (BinOp::Add | BinOp::Sub, _, Some(0)) => return Some(a.clone()),
            (BinOp::Mul, Some(1), _) => return Some(b.clone()),
            (BinOp::Mul, _, Some(1)) => return Some(a.clone()),
            (BinOp::Mul, Some(0), _) | (BinOp::Mul, _, Some(0)) => return Some(Expr::konst(0)),
            _ => {}
        }
        let size = a.size().checked_add(b.size())?.checked_add(1)?;
        if size > MAX_EXPR_NODES {
            return None;
        }
        Some(Expr(Arc::new(Node {
            kind: Kind::Bin(op, a.clone(), b.clone()),
            size,
        })))
    }

    /// Evaluate under `resolve` (symbol id → concrete value) in `i128`
    /// with checked arithmetic. `None` when a symbol is unresolvable or
    /// an intermediate overflows `i128`.
    pub fn eval(&self, resolve: &dyn Fn(u32) -> Option<i64>) -> Option<i128> {
        match &self.0.kind {
            Kind::Const(v) => Some(*v as i128),
            Kind::Sym(s) => resolve(*s).map(|v| v as i128),
            Kind::Bin(op, a, b) => {
                let (x, y) = (a.eval(resolve)?, b.eval(resolve)?);
                match op {
                    BinOp::Add => x.checked_add(y),
                    BinOp::Sub => x.checked_sub(y),
                    BinOp::Mul => x.checked_mul(y),
                    BinOp::Min => Some(x.min(y)),
                    BinOp::Max => Some(x.max(y)),
                }
            }
        }
    }
}

/// A closed symbolic interval `[lo, hi]`, both bounds inclusive.
/// `Option<Interval>::None` is Top (completely unknown).
#[derive(Clone, Debug)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: Expr,
    /// Inclusive upper bound.
    pub hi: Expr,
}

impl Interval {
    /// The singleton interval `[e, e]`.
    pub fn point(e: Expr) -> Interval {
        Interval {
            lo: e.clone(),
            hi: e,
        }
    }

    /// The constant singleton `[v, v]`.
    pub fn konst(v: i64) -> Interval {
        Interval::point(Expr::konst(v))
    }

    /// The interval `[lo, hi]` of two constants.
    pub fn of_consts(lo: i64, hi: i64) -> Interval {
        Interval {
            lo: Expr::konst(lo),
            hi: Expr::konst(hi),
        }
    }

    /// The constant payload when both bounds are the same literal.
    pub fn as_const(&self) -> Option<i64> {
        match (self.lo.as_const(), self.hi.as_const()) {
            (Some(a), Some(b)) if a == b => Some(a),
            _ => None,
        }
    }

    /// `[a.lo + b.lo, a.hi + b.hi]`.
    pub fn add(a: &Interval, b: &Interval) -> Option<Interval> {
        Some(Interval {
            lo: Expr::bin(BinOp::Add, &a.lo, &b.lo)?,
            hi: Expr::bin(BinOp::Add, &a.hi, &b.hi)?,
        })
    }

    /// `[a.lo - b.hi, a.hi - b.lo]`.
    pub fn sub(a: &Interval, b: &Interval) -> Option<Interval> {
        Some(Interval {
            lo: Expr::bin(BinOp::Sub, &a.lo, &b.hi)?,
            hi: Expr::bin(BinOp::Sub, &a.hi, &b.lo)?,
        })
    }

    /// Interval product: min/max over the four corner products. When
    /// one operand is a single non-negative constant the two-corner
    /// short form keeps the term linear.
    pub fn mul(a: &Interval, b: &Interval) -> Option<Interval> {
        // Fast path: scaling by a known non-negative constant — the
        // shape every row-major linearization produces.
        for (k, iv) in [(a, b), (b, a)] {
            if let Some(c) = k.as_const() {
                if c >= 0 {
                    let c = Expr::konst(c);
                    return Some(Interval {
                        lo: Expr::bin(BinOp::Mul, &iv.lo, &c)?,
                        hi: Expr::bin(BinOp::Mul, &iv.hi, &c)?,
                    });
                }
            }
        }
        let ll = Expr::bin(BinOp::Mul, &a.lo, &b.lo)?;
        let lh = Expr::bin(BinOp::Mul, &a.lo, &b.hi)?;
        let hl = Expr::bin(BinOp::Mul, &a.hi, &b.lo)?;
        let hh = Expr::bin(BinOp::Mul, &a.hi, &b.hi)?;
        let lo = Expr::bin(
            BinOp::Min,
            &Expr::bin(BinOp::Min, &ll, &lh)?,
            &Expr::bin(BinOp::Min, &hl, &hh)?,
        )?;
        let hi = Expr::bin(
            BinOp::Max,
            &Expr::bin(BinOp::Max, &ll, &lh)?,
            &Expr::bin(BinOp::Max, &hl, &hh)?,
        )?;
        Some(Interval { lo, hi })
    }

    /// Pointwise two-operand minimum.
    pub fn min_(a: &Interval, b: &Interval) -> Option<Interval> {
        Some(Interval {
            lo: Expr::bin(BinOp::Min, &a.lo, &b.lo)?,
            hi: Expr::bin(BinOp::Min, &a.hi, &b.hi)?,
        })
    }

    /// Pointwise two-operand maximum.
    pub fn max_(a: &Interval, b: &Interval) -> Option<Interval> {
        Some(Interval {
            lo: Expr::bin(BinOp::Max, &a.lo, &b.lo)?,
            hi: Expr::bin(BinOp::Max, &a.hi, &b.hi)?,
        })
    }

    /// Least upper bound (join): the hull `[min(lo), max(hi)]`.
    pub fn hull(a: &Interval, b: &Interval) -> Option<Interval> {
        Some(Interval {
            lo: Expr::bin(BinOp::Min, &a.lo, &b.lo)?,
            hi: Expr::bin(BinOp::Max, &a.hi, &b.hi)?,
        })
    }

    /// Evaluate both bounds under `resolve`; `None` when either bound
    /// cannot be evaluated.
    pub fn eval(&self, resolve: &dyn Fn(u32) -> Option<i64>) -> Option<(i128, i128)> {
        Some((self.lo.eval(resolve)?, self.hi.eval(resolve)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(vals: &'static [(u32, i64)]) -> impl Fn(u32) -> Option<i64> {
        move |s| vals.iter().find(|(k, _)| *k == s).map(|(_, v)| *v)
    }

    #[test]
    fn constant_folding_and_identities() {
        let a = Expr::konst(6);
        let b = Expr::konst(7);
        assert_eq!(Expr::bin(BinOp::Mul, &a, &b).unwrap().as_const(), Some(42));
        let s = Expr::sym(0);
        let zero = Expr::konst(0);
        assert_eq!(Expr::bin(BinOp::Add, &zero, &s).unwrap().size(), 1);
        assert_eq!(
            Expr::bin(BinOp::Mul, &s, &zero).unwrap().as_const(),
            Some(0)
        );
    }

    #[test]
    fn affine_interval_evaluates() {
        // gid in [0, N-1]; addr = gid * 4 + 2 → [2, 4N - 2].
        let n = Expr::sym(0);
        let gid = Interval {
            lo: Expr::konst(0),
            hi: Expr::bin(BinOp::Sub, &n, &Expr::konst(1)).unwrap(),
        };
        let addr = Interval::add(
            &Interval::mul(&gid, &Interval::konst(4)).unwrap(),
            &Interval::konst(2),
        )
        .unwrap();
        let (lo, hi) = addr.eval(&env(&[(0, 10)])).unwrap();
        assert_eq!((lo, hi), (2, 38));
    }

    #[test]
    fn mul_corner_cases_cover_negatives() {
        let a = Interval::of_consts(-3, 2);
        let b = Interval::of_consts(-5, 4);
        let m = Interval::mul(&a, &b).unwrap();
        let (lo, hi) = m.eval(&env(&[])).unwrap();
        assert_eq!((lo, hi), (-12, 15));
    }

    #[test]
    fn node_budget_degrades_to_top() {
        let mut e = Expr::sym(0);
        let mut hit_cap = false;
        for i in 1..MAX_EXPR_NODES {
            match Expr::bin(BinOp::Add, &e, &Expr::sym(i)) {
                Some(next) => e = next,
                None => {
                    hit_cap = true;
                    break;
                }
            }
        }
        assert!(hit_cap, "budget never tripped");
    }

    #[test]
    fn overflow_evaluates_to_none() {
        let big = Expr::konst(i64::MAX);
        let sq = Expr::bin(BinOp::Mul, &big, &Expr::sym(0)).unwrap();
        let sq2 = Expr::bin(BinOp::Mul, &sq, &sq).unwrap();
        let quad = Expr::bin(BinOp::Mul, &sq2, &sq2).unwrap();
        assert_eq!(quad.eval(&|_| Some(i64::MAX)), None);
    }

    #[test]
    fn unresolved_symbol_is_unknown() {
        let e = Expr::bin(BinOp::Add, &Expr::sym(7), &Expr::konst(1)).unwrap();
        assert_eq!(e.eval(&|_| None), None);
    }
}
