//! Uniformity analysis (§V-C of the paper, Listing 2).
//!
//! A value is *uniform* when every work-item in a work-group computes the
//! same value, *non-uniform* when they provably may differ, and *unknown*
//! otherwise. Non-uniformity enters through operations carrying the
//! `NON_UNIFORM_SOURCE` trait (the SYCL id queries) and propagates through
//! data flow, memory (via the reaching-definition analysis and the branch
//! conditions dominating each reaching store — "data divergence"), and
//! function calls (via the call graph).
//!
//! Loop internalization (§VI-C) queries [`UniformityAnalysis::is_divergent_at`]
//! before injecting group barriers, which would deadlock in divergent
//! control flow.

use crate::callgraph::CallGraph;
use crate::reaching::{read_target, ReachingDefinitions};
use crate::structure::enclosing_branch_conditions;
use std::collections::HashMap;
use sycl_mlir_ir::dialect::{memory_effects, traits, EffectKind};
use sycl_mlir_ir::{Module, OpId, ValueId, WalkControl};

/// The three-point uniformity lattice.
#[derive(Clone, Copy, PartialEq, Eq, Debug, PartialOrd, Ord)]
pub enum Uniformity {
    /// All work-items in a work-group hold the same value.
    Uniform,
    /// Not provable either way.
    Unknown,
    /// Work-items may hold different values.
    NonUniform,
}

impl Uniformity {
    /// Lattice join: `NonUniform` absorbs, then `Unknown`, then `Uniform`.
    pub fn join(self, other: Uniformity) -> Uniformity {
        self.max(other)
    }
}

/// Computed uniformity for every SSA value in scope.
pub struct UniformityAnalysis {
    map: HashMap<ValueId, Uniformity>,
}

const MAX_ROUNDS: usize = 8;

impl UniformityAnalysis {
    /// Analyze a single function. Kernel entry points get uniform
    /// parameters ("uniform by definition", §V-C); other functions get
    /// unknown parameters.
    pub fn compute(m: &Module, func: OpId) -> UniformityAnalysis {
        let params = default_params(m, func);
        Self::compute_with_params(m, func, &params)
    }

    /// Analyze a function with explicit parameter uniformities.
    pub fn compute_with_params(
        m: &Module,
        func: OpId,
        params: &[Uniformity],
    ) -> UniformityAnalysis {
        let mut a = UniformityAnalysis {
            map: HashMap::new(),
        };
        a.run_function(m, func, params);
        a
    }

    /// Inter-procedural analysis over every function under `scope`:
    /// parameter uniformity is the join of actual arguments across all call
    /// sites (kernels stay uniform-by-definition), iterated to a fixpoint.
    pub fn compute_module(m: &Module, scope: OpId) -> UniformityAnalysis {
        let cg = CallGraph::build(m, scope);
        let mut a = UniformityAnalysis {
            map: HashMap::new(),
        };
        let mut params: HashMap<OpId, Vec<Uniformity>> = HashMap::new();
        for &f in &cg.funcs {
            params.insert(f, default_params(m, f));
        }
        for _ in 0..4 {
            let mut changed = false;
            for &f in &cg.funcs {
                a.run_function(m, f, &params[&f]);
            }
            // Propagate actual-argument uniformity to callee parameters.
            for (&callee, callers) in &cg.callers_of {
                let num = params.get(&callee).map(|p| p.len()).unwrap_or(0);
                let mut new_params = vec![Uniformity::Uniform; num];
                for &(_caller, call) in callers {
                    for (i, &arg) in m.op_operands(call).iter().enumerate() {
                        if i < num {
                            new_params[i] = new_params[i].join(a.value(arg));
                        }
                    }
                }
                if sycl_mlir_sycl::device::is_kernel(m, callee) {
                    continue; // kernels stay uniform-by-definition
                }
                if params.get(&callee) != Some(&new_params) {
                    params.insert(callee, new_params);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        a
    }

    fn run_function(&mut self, m: &Module, func: OpId, params: &[Uniformity]) {
        let entry = m.op_region_block(func, 0);
        for (i, &arg) in m.block_args(entry).iter().enumerate() {
            let u = params.get(i).copied().unwrap_or(Uniformity::Unknown);
            self.map.insert(arg, u);
        }
        let rd = ReachingDefinitions::compute(m, func);
        for _ in 0..MAX_ROUNDS {
            let mut changed = false;
            m.walk(func, &mut |op| {
                if op != func {
                    changed |= self.transfer(m, func, &rd, op);
                }
                WalkControl::Advance
            });
            if !changed {
                break;
            }
        }
    }

    fn get(&self, v: ValueId) -> Uniformity {
        self.map.get(&v).copied().unwrap_or(Uniformity::Uniform)
    }

    /// The uniformity of a value (defaults to `Unknown` for values never
    /// visited).
    pub fn value(&self, v: ValueId) -> Uniformity {
        self.map.get(&v).copied().unwrap_or(Uniformity::Unknown)
    }

    fn set(&mut self, v: ValueId, u: Uniformity) -> bool {
        let joined = self.get(v).join(u);
        let old = self.map.insert(v, joined);
        old != Some(joined)
    }

    fn join_operands(&self, m: &Module, op: OpId) -> Uniformity {
        m.op_operands(op)
            .iter()
            .fold(Uniformity::Uniform, |acc, &v| acc.join(self.get(v)))
    }

    fn transfer(&mut self, m: &Module, func: OpId, rd: &ReachingDefinitions, op: OpId) -> bool {
        let info = m.op_info(op);
        let mut changed = false;

        if info.has_trait(traits::NON_UNIFORM_SOURCE) {
            for &r in m.op_results(op) {
                changed |= self.set(r, Uniformity::NonUniform);
            }
            return changed;
        }
        if info.has_trait(traits::CONSTANT_LIKE) {
            for &r in m.op_results(op) {
                changed |= self.set(r, Uniformity::Uniform);
            }
            return changed;
        }
        if info.has_trait(traits::LOOP_LIKE) && m.op_regions(op).len() == 1 {
            let block = m.op_region_block(op, 0);
            let bounds = m.op_operands(op)[..3]
                .iter()
                .fold(Uniformity::Uniform, |acc, &v| acc.join(self.get(v)));
            changed |= self.set(m.block_arg(block, 0), bounds);
            let yields: Vec<ValueId> = m
                .block_terminator(block)
                .map(|t| m.op_operands(t).to_vec())
                .unwrap_or_default();
            let inits = &m.op_operands(op)[3..];
            for (i, &init) in inits.iter().enumerate().take(m.op_results(op).len()) {
                let mut u = self.get(init);
                if let Some(&y) = yields.get(i) {
                    u = u.join(self.get(y));
                }
                changed |= self.set(m.block_arg(block, 1 + i), u);
                changed |= self.set(m.op_result(op, i), u);
            }
            return changed;
        }
        if info.has_trait(traits::BRANCH_LIKE) && m.op_regions(op).len() == 2 {
            let cond = self.get(m.op_operand(op, 0));
            for i in 0..m.op_results(op).len() {
                let mut u = cond;
                for ri in 0..2 {
                    if let Some(t) = m.block_terminator(m.op_region_block(op, ri)) {
                        if let Some(&y) = m.op_operands(t).get(i) {
                            u = u.join(self.get(y));
                        }
                    }
                }
                changed |= self.set(m.op_result(op, i), u);
            }
            return changed;
        }
        if m.op_is(op, "func.call") {
            // Handled structurally by compute_module; standalone: unknown
            // blended with argument uniformity.
            let u = self.join_operands(m, op).join(Uniformity::Unknown);
            for &r in m.op_results(op) {
                changed |= self.set(r, u);
            }
            return changed;
        }

        match memory_effects(m, op) {
            Some(effects) if effects.is_empty() => {
                // Pure: join of operands.
                let u = self.join_operands(m, op);
                for &r in m.op_results(op) {
                    changed |= self.set(r, u);
                }
            }
            Some(effects) => {
                let has_read = effects.iter().any(|e| e.kind == EffectKind::Read);
                if has_read && m.op_results(op).len() == 1 {
                    let u = self.load_uniformity(m, func, rd, op);
                    changed |= self.set(m.op_result(op, 0), u);
                } else {
                    for &r in m.op_results(op) {
                        changed |= self.set(r, self.join_operands(m, op));
                    }
                }
            }
            None => {
                for &r in m.op_results(op) {
                    changed |= self.set(r, Uniformity::Unknown);
                }
            }
        }
        changed
    }

    /// §V-C: for a read, propagate unknown/non-uniform from the (potential)
    /// modifiers *and their dominating branch conditions*. Memory never
    /// stored to in this kernel holds host-initialized data, identical for
    /// every work-item, hence uniform.
    fn load_uniformity(
        &self,
        m: &Module,
        func: OpId,
        rd: &ReachingDefinitions,
        load: OpId,
    ) -> Uniformity {
        let Some((mem, indices)) = read_target(m, load) else {
            return Uniformity::Unknown;
        };
        // A load at a non-uniform address yields per-work-item data even
        // from uniform (host-initialized) memory: join address uniformity.
        let mut u = self.get(mem);
        for &i in &indices {
            u = u.join(self.get(i));
        }
        let defs = rd.defs_for_read(m, load, mem, &indices);
        if defs.unknown {
            u = u.join(Uniformity::Unknown);
        }
        for (w, _) in &defs.defs {
            if let Some(stored) = stored_value(m, *w) {
                u = u.join(self.get(stored));
            } else {
                u = u.join(Uniformity::Unknown);
            }
            for cond in enclosing_branch_conditions(m, *w, func) {
                u = u.join(self.get(cond));
            }
        }
        u
    }

    /// `true` if `op` sits in divergent control flow within `func`: some
    /// enclosing branch condition or loop bound is not provably uniform.
    /// This is the legality gate for injecting group barriers (§V-C/§VI-C).
    pub fn is_divergent_at(&self, m: &Module, op: OpId, func: OpId) -> bool {
        for cond in enclosing_branch_conditions(m, op, func) {
            if self.get(cond) != Uniformity::Uniform {
                return true;
            }
        }
        for l in crate::structure::enclosing_loops(m, op, func) {
            for &bound in &m.op_operands(l)[..3.min(m.op_operands(l).len())] {
                if self.get(bound) != Uniformity::Uniform {
                    return true;
                }
            }
        }
        false
    }
}

fn default_params(m: &Module, func: OpId) -> Vec<Uniformity> {
    let entry = m.op_region_block(func, 0);
    let n = m.block_args(entry).len();
    if sycl_mlir_sycl::device::is_kernel(m, func) {
        vec![Uniformity::Uniform; n]
    } else {
        vec![Uniformity::Unknown; n]
    }
}

/// The value written by a store-like op, if identifiable.
fn stored_value(m: &Module, op: OpId) -> Option<ValueId> {
    let name = m.op_name_str(op);
    match &*name {
        "memref.store" | "affine.store" | "llvm.store" => Some(m.op_operand(op, 0)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_dialects::arith::{self, constant_index};
    use sycl_mlir_dialects::func::{build_func, build_return};
    use sycl_mlir_dialects::memref;
    use sycl_mlir_dialects::scf::build_if;
    use sycl_mlir_ir::{Builder, Context, Module};
    use sycl_mlir_sycl::device::{global_id, mark_kernel};
    use sycl_mlir_sycl::types::nd_item_type;

    fn ctx() -> Context {
        let c = Context::new();
        sycl_mlir_dialects::register_all(&c);
        sycl_mlir_sycl::register(&c);
        c
    }

    /// The paper's Listing 2: the global-id query is non-uniform, the first
    /// branch condition uses it (non-uniform), the stores under the
    /// divergent branch make the following load data-divergent, and the
    /// second condition is therefore non-uniform too.
    #[test]
    fn paper_listing2_divergent_branch() {
        let c = ctx();
        let mut m = Module::new(&c);
        let nd2 = nd_item_type(&c, 2);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "non_uniform", &[nd2, c.index_type()], &[]);
        mark_kernel(&mut m, func);
        let item = m.block_arg(entry, 0);
        let idx = m.block_arg(entry, 1);
        let (cond, load, cond1) = {
            let mut b = Builder::at_end(&mut m, entry);
            let i64t = b.ctx().i64_type();
            let alloca = memref::alloca(&mut b, i64t.clone(), &[10]);
            let gid = global_id(&mut b, item, 0);
            let zero = constant_index(&mut b, 0);
            let cond = arith::cmpi(&mut b, "sgt", gid, zero);
            let c1 = arith::constant_int(&mut b, 1, i64t.clone());
            let c2 = arith::constant_int(&mut b, 2, i64t.clone());
            build_if(
                &mut b,
                cond,
                &[],
                |inner| {
                    memref::store(inner, c1, alloca, &[idx]);
                    vec![]
                },
                |inner| {
                    memref::store(inner, c2, alloca, &[idx]);
                    vec![]
                },
            );
            let load = memref::load(&mut b, alloca, &[idx]);
            let zero64 = arith::constant_int(&mut b, 0, i64t);
            let cond1 = arith::cmpi(&mut b, "sgt", load, zero64);
            build_return(&mut b, &[]);
            (cond, load, cond1)
        };
        let ua = UniformityAnalysis::compute(&m, func);
        assert_eq!(ua.value(cond), Uniformity::NonUniform);
        assert_eq!(ua.value(load), Uniformity::NonUniform);
        assert_eq!(ua.value(cond1), Uniformity::NonUniform);
        // The kernel parameter itself is uniform by definition.
        assert_eq!(ua.value(idx), Uniformity::Uniform);
    }

    #[test]
    fn uniform_data_flow_stays_uniform() {
        let c = ctx();
        let mut m = Module::new(&c);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "k", &[nd1], &[]);
        mark_kernel(&mut m, func);
        let (sum, stored_load) = {
            let mut b = Builder::at_end(&mut m, entry);
            let i64t = b.ctx().i64_type();
            let a = arith::constant_int(&mut b, 1, i64t.clone());
            let b2 = arith::constant_int(&mut b, 2, i64t.clone());
            let sum = arith::addi(&mut b, a, b2);
            // Store a uniform value, load it back: still uniform.
            let mem = memref::alloca(&mut b, i64t, &[1]);
            let zero = constant_index(&mut b, 0);
            memref::store(&mut b, sum, mem, &[zero]);
            let l = memref::load(&mut b, mem, &[zero]);
            build_return(&mut b, &[]);
            (sum, l)
        };
        let ua = UniformityAnalysis::compute(&m, func);
        assert_eq!(ua.value(sum), Uniformity::Uniform);
        assert_eq!(ua.value(stored_load), Uniformity::Uniform);
    }

    #[test]
    fn divergent_region_detection() {
        let c = ctx();
        let mut m = Module::new(&c);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "k", &[nd1], &[]);
        mark_kernel(&mut m, func);
        let item = m.block_arg(entry, 0);
        let (in_div, in_unif) = {
            let mut b = Builder::at_end(&mut m, entry);
            let gid = global_id(&mut b, item, 0);
            let zero = constant_index(&mut b, 0);
            let div_cond = arith::cmpi(&mut b, "sgt", gid, zero);
            let mut in_div = None;
            build_if(
                &mut b,
                div_cond,
                &[],
                |inner| {
                    in_div = Some(constant_index(inner, 7));
                    vec![]
                },
                |_| vec![],
            );
            let i1t = b.ctx().i1_type();
            let t = arith::constant_int(&mut b, 1, i1t);
            let mut in_unif = None;
            build_if(
                &mut b,
                t,
                &[],
                |inner| {
                    in_unif = Some(constant_index(inner, 8));
                    vec![]
                },
                |_| vec![],
            );
            build_return(&mut b, &[]);
            (in_div.unwrap(), in_unif.unwrap())
        };
        let ua = UniformityAnalysis::compute(&m, func);
        let div_op = m.def_op(in_div).unwrap();
        let unif_op = m.def_op(in_unif).unwrap();
        assert!(ua.is_divergent_at(&m, div_op, func));
        assert!(!ua.is_divergent_at(&m, unif_op, func));
    }

    #[test]
    fn interprocedural_param_join() {
        let c = ctx();
        let mut m = Module::new(&c);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        // helper(x) returns x.
        let (helper, helper_entry) =
            build_func(&mut m, top, "helper", &[c.index_type()], &[c.index_type()]);
        let hx = m.block_arg(helper_entry, 0);
        {
            let mut b = Builder::at_end(&mut m, helper_entry);
            build_return(&mut b, &[hx]);
        }
        // kernel calls helper with a non-uniform argument.
        let (kernel, entry) = build_func(&mut m, top, "k", &[nd1], &[]);
        mark_kernel(&mut m, kernel);
        let item = m.block_arg(entry, 0);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let gid = global_id(&mut b, item, 0);
            let index_ty = b.ctx().index_type();
            sycl_mlir_dialects::func::build_call(&mut b, "helper", &[gid], &[index_ty]);
            build_return(&mut b, &[]);
        }
        let _ = helper;
        let ua = UniformityAnalysis::compute_module(&m, m.top());
        // The helper's parameter joined non-uniform from its one call site.
        assert_eq!(ua.value(hx), Uniformity::NonUniform);
    }
}
