//! SYCL-aware alias analysis (§V-A of the paper).
//!
//! The base analysis reasons about allocation roots (`memref.alloca`,
//! `sycl.local.alloca`) and function arguments; the SYCL extension encodes
//! dialect semantics:
//!
//! * two `sycl.accessor.subscript` views of the *same* accessor alias iff
//!   their ids may be equal (structural equivalence / constant separation);
//! * views of *different* accessors may alias by default — the SYCL spec
//!   allows two accessors over the same or overlapping buffers (§VII-B) —
//!   unless host analysis has annotated the kernel with distinct buffer
//!   identities (`sycl.arg_buffer_ids`), the joint host/device refinement
//!   the paper describes;
//! * private allocations never alias accessor memory.

use crate::equivalence::{values_equivalent, values_provably_different};
use sycl_mlir_ir::{Module, OpId, ValueDef, ValueId};

/// Three-valued alias verdict.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AliasResult {
    NoAlias,
    MayAlias,
    MustAlias,
}

impl AliasResult {
    pub fn may(self) -> bool {
        !matches!(self, AliasResult::NoAlias)
    }
}

/// Attribute on kernel `func.func`s: per-argument buffer identity
/// (`DenseI64`, `-1` for non-accessor args / unknown). Written by the
/// host-device analysis (§VII-B), consumed here.
pub const ARG_BUFFER_IDS_ATTR: &str = "sycl.arg_buffer_ids";

/// The memory root of a memref-like value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Root {
    /// A private allocation (op id of the alloca).
    Alloca(OpId),
    /// Work-group local memory.
    LocalAlloca(OpId),
    /// A view into an accessor: `(accessor value, id value)`.
    Subscript(ValueId, ValueId),
    /// A function argument (accessor or raw memref).
    Arg(ValueId),
    /// Untraceable.
    Unknown(ValueId),
}

/// SYCL-aware alias analysis. Stateless; all queries read the module.
#[derive(Default, Clone, Copy, Debug)]
pub struct AliasAnalysis;

impl AliasAnalysis {
    pub fn new() -> AliasAnalysis {
        AliasAnalysis
    }

    /// Alias relation between two memref-like values.
    pub fn alias(&self, m: &Module, a: ValueId, b: ValueId) -> AliasResult {
        if a == b {
            return AliasResult::MustAlias;
        }
        let ra = root(m, a);
        let rb = root(m, b);
        use AliasResult::*;
        use Root::*;
        match (ra, rb) {
            (Alloca(x), Alloca(y)) | (LocalAlloca(x), LocalAlloca(y)) => {
                if x == y {
                    MustAlias
                } else {
                    NoAlias
                }
            }
            // Private/local allocations are fresh memory: disjoint from
            // accessors, arguments, and each other's class.
            (Alloca(_), _) | (_, Alloca(_)) => NoAlias,
            (LocalAlloca(_), _) | (_, LocalAlloca(_)) => NoAlias,
            (Subscript(acc_a, id_a), Subscript(acc_b, id_b)) => {
                match self.accessor_alias(m, acc_a, acc_b) {
                    MustAlias => {
                        if values_equivalent(m, id_a, id_b) {
                            MustAlias
                        } else if ids_provably_different(m, id_a, id_b) {
                            NoAlias
                        } else {
                            MayAlias
                        }
                    }
                    NoAlias => NoAlias,
                    MayAlias => MayAlias,
                }
            }
            (Subscript(acc, _), Arg(other)) | (Arg(other), Subscript(acc, _)) => {
                self.accessor_alias(m, acc, other)
            }
            (Arg(x), Arg(y)) => self.accessor_alias(m, x, y),
            (Unknown(_), _) | (_, Unknown(_)) => MayAlias,
        }
    }

    /// May the two values overlap in memory?
    pub fn may_alias(&self, m: &Module, a: ValueId, b: ValueId) -> bool {
        self.alias(m, a, b).may()
    }

    /// Alias relation between two whole accessors / memref arguments.
    ///
    /// Uses the host-propagated [`ARG_BUFFER_IDS_ATTR`] when both values are
    /// kernel arguments: distinct buffers cannot alias; without host
    /// information two accessors must be assumed to possibly overlap
    /// (§VII-B's motivating example).
    pub fn accessor_alias(&self, m: &Module, a: ValueId, b: ValueId) -> AliasResult {
        if a == b || values_equivalent(m, a, b) {
            return AliasResult::MustAlias;
        }
        if let (Some((fa, ia)), Some((fb, ib))) = (arg_position(m, a), arg_position(m, b)) {
            if fa == fb {
                if let Some(ids) = m
                    .attr(fa, ARG_BUFFER_IDS_ATTR)
                    .and_then(|x| x.as_dense_i64())
                {
                    let ba = ids.get(ia).copied().unwrap_or(-1);
                    let bb = ids.get(ib).copied().unwrap_or(-1);
                    if ba >= 0 && bb >= 0 && ba != bb {
                        return AliasResult::NoAlias;
                    }
                }
            }
        }
        AliasResult::MayAlias
    }

    /// Convenience: alias relation between two *accesses*
    /// `(memref, indices)`; refines a must-aliased base by comparing the
    /// index vectors.
    pub fn access_alias(
        &self,
        m: &Module,
        a: (ValueId, &[ValueId]),
        b: (ValueId, &[ValueId]),
    ) -> AliasResult {
        match self.alias(m, a.0, b.0) {
            AliasResult::NoAlias => AliasResult::NoAlias,
            AliasResult::MayAlias => AliasResult::MayAlias,
            AliasResult::MustAlias => {
                if a.1.len() != b.1.len() {
                    return AliasResult::MayAlias;
                }
                if a.1
                    .iter()
                    .zip(b.1)
                    .all(|(&x, &y)| values_equivalent(m, x, y))
                {
                    AliasResult::MustAlias
                } else if a
                    .1
                    .iter()
                    .zip(b.1)
                    .any(|(&x, &y)| values_provably_different(m, x, y))
                {
                    AliasResult::NoAlias
                } else {
                    AliasResult::MayAlias
                }
            }
        }
    }
}

/// Two `!sycl.id` values provably address different points: some component
/// pair is provably different.
fn ids_provably_different(m: &Module, a: ValueId, b: ValueId) -> bool {
    let (Some(oa), Some(ob)) = (m.def_op(a), m.def_op(b)) else {
        return false;
    };
    if !m.op_is(oa, "sycl.id.constructor") || !m.op_is(ob, "sycl.id.constructor") {
        return false;
    }
    let ca = m.op_operands(oa);
    let cb = m.op_operands(ob);
    ca.len() == cb.len()
        && ca
            .iter()
            .zip(cb.iter())
            .any(|(&x, &y)| values_provably_different(m, x, y))
}

/// If `v` is a function entry argument, return `(func op, arg index)`.
fn arg_position(m: &Module, v: ValueId) -> Option<(OpId, usize)> {
    match m.value_def(v) {
        ValueDef::BlockArg { block, index } => {
            let owner = m.region_parent_op(m.block_region(block));
            if m.op_is(owner, "func.func") {
                Some((owner, index as usize))
            } else {
                None
            }
        }
        ValueDef::OpResult { .. } => None,
    }
}

fn root(m: &Module, v: ValueId) -> Root {
    let mut cur = v;
    for _ in 0..32 {
        match m.value_def(cur) {
            ValueDef::BlockArg { .. } => {
                return if arg_position(m, cur).is_some() {
                    Root::Arg(cur)
                } else {
                    Root::Unknown(cur)
                };
            }
            ValueDef::OpResult { op, .. } => {
                if m.op_is(op, "memref.alloca") {
                    return Root::Alloca(op);
                }
                if m.op_is(op, "sycl.local.alloca") {
                    return Root::LocalAlloca(op);
                }
                if m.op_is(op, "memref.cast") {
                    cur = m.op_operand(op, 0);
                    continue;
                }
                if m.op_is(op, "sycl.accessor.subscript") {
                    return Root::Subscript(m.op_operand(op, 0), m.op_operand(op, 1));
                }
                return Root::Unknown(cur);
            }
        }
    }
    Root::Unknown(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_dialects::arith::constant_index;
    use sycl_mlir_dialects::func::build_func;
    use sycl_mlir_dialects::memref;
    use sycl_mlir_ir::{Attribute, Builder, Context, Module};
    use sycl_mlir_sycl::device::{make_id, subscript};
    use sycl_mlir_sycl::types::{accessor_type, AccessMode, Target};

    fn ctx() -> Context {
        let c = Context::new();
        sycl_mlir_dialects::register_all(&c);
        sycl_mlir_sycl::register(&c);
        c
    }

    #[test]
    fn distinct_allocas_do_not_alias() {
        let c = ctx();
        let mut m = Module::new(&c);
        let block = m.top_block();
        let (a, b_) = {
            let mut b = Builder::at_end(&mut m, block);
            let f32t = b.ctx().f32_type();
            let a = memref::alloca(&mut b, f32t.clone(), &[4]);
            let b2 = memref::alloca(&mut b, f32t, &[4]);
            (a, b2)
        };
        let aa = AliasAnalysis::new();
        assert_eq!(aa.alias(&m, a, b_), AliasResult::NoAlias);
        assert_eq!(aa.alias(&m, a, a), AliasResult::MustAlias);
    }

    #[test]
    fn subscript_views_of_one_accessor() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc_ty = accessor_type(&c, c.f32_type(), 1, AccessMode::ReadWrite, Target::Global);
        let top = m.top();
        let (_f, entry) = build_func(&mut m, top, "k", &[acc_ty], &[]);
        let acc = m.block_arg(entry, 0);
        let (v_same1, v_same2, v_zero, v_one, v_dyn) = {
            let mut b = Builder::at_end(&mut m, entry);
            let zero1 = constant_index(&mut b, 0);
            let zero2 = constant_index(&mut b, 0);
            let one = constant_index(&mut b, 1);
            let dynv = b.build_value("llvm.undef", &[], b.ctx().index_type(), vec![]);
            let id_a = make_id(&mut b, &[zero1]);
            let id_b = make_id(&mut b, &[zero2]);
            let id_c = make_id(&mut b, &[one]);
            let id_d = make_id(&mut b, &[dynv]);
            (
                subscript(&mut b, acc, id_a),
                subscript(&mut b, acc, id_b),
                subscript(&mut b, acc, id_a),
                subscript(&mut b, acc, id_c),
                subscript(&mut b, acc, id_d),
            )
        };
        let aa = AliasAnalysis::new();
        // Same accessor, structurally equal ids -> must alias.
        assert_eq!(aa.alias(&m, v_same1, v_same2), AliasResult::MustAlias);
        assert_eq!(aa.alias(&m, v_same1, v_zero), AliasResult::MustAlias);
        // Constant 0 vs constant 1 -> provably disjoint.
        assert_eq!(aa.alias(&m, v_same1, v_one), AliasResult::NoAlias);
        // Unknown dynamic id -> may alias.
        assert_eq!(aa.alias(&m, v_same1, v_dyn), AliasResult::MayAlias);
    }

    #[test]
    fn two_accessors_may_alias_without_host_info() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc_ty = accessor_type(&c, c.f32_type(), 1, AccessMode::ReadWrite, Target::Global);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "k", &[acc_ty.clone(), acc_ty], &[]);
        let a = m.block_arg(entry, 0);
        let b_ = m.block_arg(entry, 1);
        let aa = AliasAnalysis::new();
        assert_eq!(aa.alias(&m, a, b_), AliasResult::MayAlias);

        // With host-propagated distinct buffer identities: no alias.
        m.set_attr(func, ARG_BUFFER_IDS_ATTR, Attribute::DenseI64(vec![0, 1]));
        assert_eq!(aa.alias(&m, a, b_), AliasResult::NoAlias);

        // Same buffer id: still may alias (ranged accessors could overlap).
        m.set_attr(func, ARG_BUFFER_IDS_ATTR, Attribute::DenseI64(vec![3, 3]));
        assert_eq!(aa.alias(&m, a, b_), AliasResult::MayAlias);
    }

    #[test]
    fn alloca_never_aliases_accessor_memory() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc_ty = accessor_type(&c, c.f32_type(), 1, AccessMode::Read, Target::Global);
        let top = m.top();
        let (_f, entry) = build_func(&mut m, top, "k", &[acc_ty], &[]);
        let acc = m.block_arg(entry, 0);
        let (priv_mem, view) = {
            let mut b = Builder::at_end(&mut m, entry);
            let f32t = b.ctx().f32_type();
            let priv_mem = memref::alloca(&mut b, f32t, &[8]);
            let zero = constant_index(&mut b, 0);
            let id = make_id(&mut b, &[zero]);
            let view = subscript(&mut b, acc, id);
            (priv_mem, view)
        };
        let aa = AliasAnalysis::new();
        assert_eq!(aa.alias(&m, priv_mem, view), AliasResult::NoAlias);
        assert_eq!(aa.alias(&m, priv_mem, acc), AliasResult::NoAlias);
    }

    #[test]
    fn access_alias_refines_by_indices() {
        let c = ctx();
        let mut m = Module::new(&c);
        let block = m.top_block();
        let (mem, i0, i1, unk) = {
            let mut b = Builder::at_end(&mut m, block);
            let f32t = b.ctx().f32_type();
            let mem = memref::alloca(&mut b, f32t, &[8]);
            let i0 = constant_index(&mut b, 0);
            let i1 = constant_index(&mut b, 1);
            let unk = b.build_value("llvm.undef", &[], b.ctx().index_type(), vec![]);
            (mem, i0, i1, unk)
        };
        let aa = AliasAnalysis::new();
        assert_eq!(
            aa.access_alias(&m, (mem, &[i0]), (mem, &[i0])),
            AliasResult::MustAlias
        );
        assert_eq!(
            aa.access_alias(&m, (mem, &[i0]), (mem, &[i1])),
            AliasResult::NoAlias
        );
        assert_eq!(
            aa.access_alias(&m, (mem, &[i0]), (mem, &[unk])),
            AliasResult::MayAlias
        );
    }
}
