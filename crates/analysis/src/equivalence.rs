//! Structural SSA value equivalence.
//!
//! Two values are *structurally equivalent* when they are the same SSA value
//! or results of identical pure operations over structurally equivalent
//! operands. The alias analysis uses this to prove that two
//! `sycl.accessor.subscript` views address the same element (must-alias) or
//! provably different constant elements (no-alias).

use sycl_mlir_ir::dialect::traits;
use sycl_mlir_ir::{Module, ValueDef, ValueId};

const MAX_DEPTH: usize = 16;

/// `true` if `a` and `b` are structurally equivalent (conservative: `false`
/// means "unknown", not "different").
pub fn values_equivalent(m: &Module, a: ValueId, b: ValueId) -> bool {
    values_equivalent_rec(m, a, b, MAX_DEPTH)
}

fn values_equivalent_rec(m: &Module, a: ValueId, b: ValueId, depth: usize) -> bool {
    if a == b {
        return true;
    }
    if depth == 0 {
        return false;
    }
    let (ValueDef::OpResult { op: oa, index: ia }, ValueDef::OpResult { op: ob, index: ib }) =
        (m.value_def(a), m.value_def(b))
    else {
        return false;
    };
    if ia != ib || m.op_name(oa) != m.op_name(ob) {
        return false;
    }
    let info = m.op_info(oa);
    if !(info.has_trait(traits::PURE) || info.has_trait(traits::CONSTANT_LIKE)) {
        return false;
    }
    if m.op_attrs(oa) != m.op_attrs(ob) {
        return false;
    }
    let opa = m.op_operands(oa);
    let opb = m.op_operands(ob);
    if opa.len() != opb.len() {
        return false;
    }
    opa.iter()
        .zip(opb.iter())
        .all(|(&x, &y)| values_equivalent_rec(m, x, y, depth - 1))
}

/// `true` if `a` and `b` are *provably different* integer values (both
/// constants with different values). `false` means "unknown".
pub fn values_provably_different(m: &Module, a: ValueId, b: ValueId) -> bool {
    let ca = sycl_mlir_dialects::arith::const_int_of(m, a);
    let cb = sycl_mlir_dialects::arith::const_int_of(m, b);
    matches!((ca, cb), (Some(x), Some(y)) if x != y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_dialects::arith::{addi, constant_index};
    use sycl_mlir_ir::{Builder, Context, Module};

    #[test]
    fn identical_expression_trees_are_equivalent() {
        let ctx = Context::new();
        sycl_mlir_dialects::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let block = m.top_block();
        let (s1, s2, s3) = {
            let mut b = Builder::at_end(&mut m, block);
            let x = constant_index(&mut b, 4);
            let y = constant_index(&mut b, 4);
            let z = constant_index(&mut b, 5);
            let one_a = constant_index(&mut b, 1);
            let one_b = constant_index(&mut b, 1);
            let s1 = addi(&mut b, x, one_a);
            let s2 = addi(&mut b, y, one_b);
            let s3 = addi(&mut b, z, one_b);
            (s1, s2, s3)
        };
        assert!(values_equivalent(&m, s1, s2));
        assert!(!values_equivalent(&m, s1, s3));
    }

    #[test]
    fn constants_provably_different() {
        let ctx = Context::new();
        sycl_mlir_dialects::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let block = m.top_block();
        let (a, b_, c) = {
            let mut b = Builder::at_end(&mut m, block);
            let a = constant_index(&mut b, 1);
            let b_ = constant_index(&mut b, 2);
            let c = addi(&mut b, a, b_);
            (a, b_, c)
        };
        assert!(values_provably_different(&m, a, b_));
        assert!(!values_provably_different(&m, a, c)); // non-constant
    }
}
