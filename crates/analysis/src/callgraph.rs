//! Call graph over `func.call` edges, used by the inter-procedural
//! uniformity analysis (§V-C: "the analysis works inter-procedurally by
//! using the call graph").

use std::collections::HashMap;
use sycl_mlir_ir::{Module, OpId, WalkControl};

/// Call graph for the functions directly inside one module op.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// caller func -> call ops within it
    pub calls_in: HashMap<OpId, Vec<OpId>>,
    /// callee func -> (caller func, call op)
    pub callers_of: HashMap<OpId, Vec<(OpId, OpId)>>,
    /// All functions in the scope, in program order.
    pub funcs: Vec<OpId>,
}

impl CallGraph {
    /// Build the call graph for all functions under `scope` (a module op).
    pub fn build(m: &Module, scope: OpId) -> CallGraph {
        let mut cg = CallGraph {
            funcs: m.funcs_in(scope),
            ..CallGraph::default()
        };
        for &func in &cg.funcs {
            let mut calls = Vec::new();
            m.walk(func, &mut |op| {
                if m.op_is(op, "func.call") {
                    calls.push(op);
                }
                WalkControl::Advance
            });
            for &call in &calls {
                if let Some(callee) = sycl_mlir_dialects::func::resolve_callee(m, call, scope) {
                    cg.callers_of.entry(callee).or_default().push((func, call));
                }
            }
            cg.calls_in.insert(func, calls);
        }
        cg
    }

    /// Functions ordered callees-before-callers (reverse topological,
    /// cycles broken arbitrarily).
    pub fn bottom_up(&self) -> Vec<OpId> {
        let mut order = Vec::new();
        let mut visited = std::collections::HashSet::new();
        // Count outgoing edges via callers_of inversion.
        let mut callees: HashMap<OpId, Vec<OpId>> = HashMap::new();
        for (&callee, callers) in &self.callers_of {
            for &(caller, _) in callers {
                callees.entry(caller).or_default().push(callee);
            }
        }
        fn visit(
            f: OpId,
            callees: &HashMap<OpId, Vec<OpId>>,
            visited: &mut std::collections::HashSet<OpId>,
            order: &mut Vec<OpId>,
        ) {
            if !visited.insert(f) {
                return;
            }
            if let Some(cs) = callees.get(&f) {
                for &c in cs {
                    visit(c, callees, visited, order);
                }
            }
            order.push(f);
        }
        for &f in &self.funcs {
            visit(f, &callees, &mut visited, &mut order);
        }
        order
    }

    /// `true` if the function has no known callers inside the scope.
    pub fn is_root(&self, func: OpId) -> bool {
        self.callers_of.get(&func).is_none_or(|v| v.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_dialects::func::{build_call, build_func, build_return};
    use sycl_mlir_ir::{Builder, Context, Module};

    #[test]
    fn builds_edges_and_bottom_up_order() {
        let ctx = Context::new();
        sycl_mlir_dialects::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let top = m.top();
        let (leaf, leaf_entry) = build_func(&mut m, top, "leaf", &[], &[]);
        {
            let mut b = Builder::at_end(&mut m, leaf_entry);
            build_return(&mut b, &[]);
        }
        let (root, root_entry) = build_func(&mut m, top, "root", &[], &[]);
        {
            let mut b = Builder::at_end(&mut m, root_entry);
            build_call(&mut b, "leaf", &[], &[]);
            build_return(&mut b, &[]);
        }
        let cg = CallGraph::build(&m, m.top());
        assert_eq!(cg.funcs.len(), 2);
        assert_eq!(cg.callers_of.get(&leaf).map(|v| v.len()), Some(1));
        assert!(cg.is_root(root));
        assert!(!cg.is_root(leaf));
        let order = cg.bottom_up();
        let leaf_pos = order.iter().position(|&f| f == leaf).unwrap();
        let root_pos = order.iter().position(|&f| f == root).unwrap();
        assert!(leaf_pos < root_pos);
    }
}
