//! Memory access analysis (§V-D of the paper, after Kaeli et al. \[14\]).
//!
//! For every SYCL memory access inside an affine loop the analysis recovers
//! an *access matrix* `M` and *offset vector* `o` such that the accessed
//! index vector equals `M · d + o`, where `d` stacks the work-item ids and
//! loop induction variables. Listing 3's access `[gid_x+1, 2*i, 2*i+2+gid_y]`
//! yields
//!
//! ```text
//! | 1 0 0 |   | gid_x |   | 1 |
//! | 0 0 2 | x | gid_y | + | 0 |
//! | 0 1 2 |   |   i   |   | 2 |
//! ```
//!
//! Loop internalization (§VI-C) consumes two derived facts:
//!
//! * the **inter-work-item** sub-matrix (loop-iv columns removed) decides
//!   whether the access coalesces (`Linear` / `ReverseLinear` per \[14\]);
//! * the **intra-work-item** sub-matrix (thread columns removed) being
//!   non-zero signals temporal locality worth staging in local memory.

use std::ops::{Add, Mul};
use sycl_mlir_ir::affine::{AffineExpr, AffineMap};
use sycl_mlir_ir::{Module, OpId, ValueDef, ValueId, WalkControl};

/// What a dimension of the access space stands for.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum DimKind {
    /// `get_global_id(d)` / `item.get_id(d)`.
    GlobalId(u32),
    /// `get_local_id(d)`.
    LocalId(u32),
    /// A loop induction variable (op id of the loop, nesting depth order).
    LoopIv(OpId),
}

impl DimKind {
    /// `true` for work-item (thread) dimensions.
    pub fn is_thread(self) -> bool {
        matches!(self, DimKind::GlobalId(_) | DimKind::LocalId(_))
    }
}

/// Load or store.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    Load,
    Store,
}

/// Coalescing classification of \[14\].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CoalescingClass {
    /// Consecutive work-items touch consecutive addresses.
    Linear,
    /// Consecutive work-items touch consecutive addresses in reverse.
    ReverseLinear,
    /// The fastest thread dimension does not appear: all work-items in a row
    /// read the same element (a broadcast — serviced by one transaction).
    Broadcast,
    /// Strided / scattered: transactions do not coalesce.
    NonCoalesced,
}

impl CoalescingClass {
    /// `true` if the hardware can service the access with (close to) one
    /// transaction per sub-group.
    pub fn is_coalesced(self) -> bool {
        !matches!(self, CoalescingClass::NonCoalesced)
    }
}

/// One analyzed memory access.
#[derive(Clone, Debug)]
pub struct AccessInfo {
    /// The `affine.load` / `affine.store` op.
    pub op: OpId,
    pub kind: AccessKind,
    /// The accessor (or raw memref) being indexed.
    pub base: ValueId,
    /// Dimension meanings, column order of [`AccessInfo::matrix`].
    pub dims: Vec<DimKind>,
    /// Representative SSA value for each dimension (the id query result or
    /// the loop induction variable), aligned with [`AccessInfo::dims`].
    pub dim_values: Vec<ValueId>,
    /// Access matrix: one row per subscript.
    pub matrix: Vec<Vec<i64>>,
    /// Offset vector: one entry per subscript.
    pub offsets: Vec<i64>,
    /// The affine map the matrix was derived from.
    pub map: AffineMap,
    /// The kernel's fastest-varying thread dimension index (SYCL linearizes
    /// row-major, so this is `kernel_rank - 1`). `None` when the enclosing
    /// kernel's rank could not be determined.
    pub fastest_dim_index: Option<u32>,
}

impl AccessInfo {
    /// Column indices of thread dimensions.
    pub fn thread_columns(&self) -> Vec<usize> {
        self.dims
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_thread())
            .map(|(i, _)| i)
            .collect()
    }

    /// Column indices of loop induction variables.
    pub fn loop_columns(&self) -> Vec<usize> {
        self.dims
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_thread())
            .map(|(i, _)| i)
            .collect()
    }

    fn submatrix(&self, keep: &[usize]) -> Vec<Vec<i64>> {
        self.matrix
            .iter()
            .map(|row| keep.iter().map(|&c| row[c]).collect())
            .collect()
    }

    /// Inter-work-item access matrix: loop-iv columns removed (§VI-C).
    pub fn inter_workitem_matrix(&self) -> Vec<Vec<i64>> {
        self.submatrix(&self.thread_columns())
    }

    /// Intra-work-item access matrix: thread columns removed (§VI-C).
    pub fn intra_workitem_matrix(&self) -> Vec<Vec<i64>> {
        self.submatrix(&self.loop_columns())
    }

    /// Temporal reuse: the intra-work-item matrix is not the zero matrix
    /// (the element sequence revisits/marches under the loop while the
    /// work-group shares tiles — the §VI-C criterion).
    pub fn has_temporal_reuse(&self) -> bool {
        self.intra_workitem_matrix()
            .iter()
            .any(|row| row.iter().any(|&x| x != 0))
    }

    /// The kernel's fastest-varying thread dimension index: the recorded
    /// kernel rank's last dimension, falling back to the largest thread
    /// dimension index present in this access.
    pub fn fastest_dim(&self) -> Option<u32> {
        self.fastest_dim_index.or_else(|| {
            self.dims
                .iter()
                .filter_map(|d| match d {
                    DimKind::GlobalId(i) | DimKind::LocalId(i) => Some(*i),
                    DimKind::LoopIv(_) => None,
                })
                .max()
        })
    }

    /// Classify coalescing following \[14\]. Consecutive work-items differ in
    /// the kernel's *fastest* thread dimension; the access is `Linear` when
    /// that dimension appears with coefficient 1 in the last (fastest)
    /// subscript and nowhere else, `ReverseLinear` for -1, and `Broadcast`
    /// when it appears nowhere (every work-item in a row touches the same
    /// element — one transaction).
    pub fn coalescing_class(&self) -> CoalescingClass {
        let Some(fastest) = self.fastest_dim() else {
            return CoalescingClass::Broadcast;
        };
        let cols: Vec<usize> = self
            .dims
            .iter()
            .enumerate()
            .filter(
                |(_, d)| matches!(d, DimKind::GlobalId(i) | DimKind::LocalId(i) if *i == fastest),
            )
            .map(|(i, _)| i)
            .collect();
        if cols.is_empty() {
            return CoalescingClass::Broadcast;
        }
        let last_row = self.matrix.len() - 1;
        let mut class = CoalescingClass::Broadcast;
        for col in cols {
            for (r, row) in self.matrix.iter().enumerate() {
                let c = row[col];
                if r == last_row {
                    class = match (c, class) {
                        (0, cls) => cls,
                        (1, CoalescingClass::Broadcast | CoalescingClass::Linear) => {
                            CoalescingClass::Linear
                        }
                        (-1, CoalescingClass::Broadcast | CoalescingClass::ReverseLinear) => {
                            CoalescingClass::ReverseLinear
                        }
                        _ => return CoalescingClass::NonCoalesced,
                    };
                } else if c != 0 {
                    return CoalescingClass::NonCoalesced;
                }
            }
        }
        class
    }
}

/// Memory access analysis over a loop nest (or any op subtree).
#[derive(Debug, Default)]
pub struct MemoryAccessAnalysis {
    pub accesses: Vec<AccessInfo>,
}

impl MemoryAccessAnalysis {
    /// Analyze every `affine.load` / `affine.store` under `root`.
    /// Accesses whose subscripts are not affine in work-item ids and loop
    /// ivs are skipped (they are simply not candidates, §VI-C).
    pub fn analyze(m: &Module, root: OpId) -> MemoryAccessAnalysis {
        let kernel_rank = kernel_rank_of(m, root);
        let fastest = kernel_rank.map(|r| r.saturating_sub(1));
        let mut accesses = Vec::new();
        m.walk(root, &mut |op| {
            if m.op_is(op, "affine.load") {
                if let Some(mut info) = analyze_access(m, op, AccessKind::Load) {
                    info.fastest_dim_index = fastest;
                    accesses.push(info);
                }
            } else if m.op_is(op, "affine.store") {
                if let Some(mut info) = analyze_access(m, op, AccessKind::Store) {
                    info.fastest_dim_index = fastest;
                    accesses.push(info);
                }
            }
            WalkControl::Advance
        });
        MemoryAccessAnalysis { accesses }
    }

    /// Accesses on a specific base value.
    pub fn for_base(&self, base: ValueId) -> Vec<&AccessInfo> {
        self.accesses.iter().filter(|a| a.base == base).collect()
    }
}

fn analyze_access(m: &Module, op: OpId, kind: AccessKind) -> Option<AccessInfo> {
    let (mem, indices) = match kind {
        AccessKind::Load => {
            let ops = m.op_operands(op);
            (ops[0], ops[1..].to_vec())
        }
        AccessKind::Store => {
            let ops = m.op_operands(op);
            (ops[1], ops[2..].to_vec())
        }
    };
    // Peel a subscript: base becomes the accessor, subscripts the id
    // components (the paper's Listing 3 pattern).
    let (base, subscripts) = match m.def_op(mem) {
        Some(d) if m.op_is(d, "sycl.accessor.subscript") => {
            let acc = m.op_operand(d, 0);
            let id = m.op_operand(d, 1);
            let id_def = m.def_op(id)?;
            if !m.op_is(id_def, "sycl.id.constructor") {
                return None;
            }
            // The residual indices on the view must be the constant 0.
            for &i in &indices {
                if sycl_mlir_dialects::arith::const_int_of(m, i) != Some(0) {
                    return None;
                }
            }
            (acc, m.op_operands(id_def).to_vec())
        }
        _ => (mem, indices),
    };

    // Pass 1: discover the dimensions used.
    let mut dims: Vec<(DimKind, ValueId)> = Vec::new();
    for &s in &subscripts {
        discover_dims(m, s, &mut dims, 0)?;
    }
    // Canonical column order: global ids, local ids, then loop ivs
    // outermost-first (matches the paper's (gid_x, gid_y, i) ordering).
    dims.sort_by_key(|(k, _)| match *k {
        DimKind::GlobalId(d) => (0, d as i64),
        DimKind::LocalId(d) => (1, d as i64),
        DimKind::LoopIv(l) => (2, loop_depth(m, l)),
    });
    dims.dedup_by_key(|(k, _)| *k);

    // Pass 2: build the affine expressions against the fixed order.
    let mut exprs = Vec::with_capacity(subscripts.len());
    for &s in &subscripts {
        exprs.push(expr_of(m, s, &dims, 0)?);
    }
    let map = AffineMap::new(dims.len(), exprs);
    let (matrix, offsets) = map.as_matrix()?;
    let (kinds, values): (Vec<DimKind>, Vec<ValueId>) = dims.into_iter().unzip();
    Some(AccessInfo {
        op,
        kind,
        base,
        dims: kinds,
        dim_values: values,
        matrix,
        offsets,
        map,
        fastest_dim_index: None,
    })
}

/// The rank of the kernel's index space, read from the item-like parameter
/// of the enclosing function.
fn kernel_rank_of(m: &Module, root: OpId) -> Option<u32> {
    let func = if m.op_is(root, "func.func") {
        root
    } else {
        crate::structure::enclosing_func(m, root)?
    };
    let entry = m.op_region_block(func, 0);
    m.block_args(entry).iter().rev().find_map(|&a| {
        let ty = m.value_type(a);
        if sycl_mlir_sycl::types::is_item_like(&ty) {
            sycl_mlir_sycl::types::sycl_dim(&ty)
        } else {
            None
        }
    })
}

fn loop_depth(m: &Module, loop_op: OpId) -> i64 {
    let mut depth = 0;
    let mut cur = m.op_parent_op(loop_op);
    while let Some(c) = cur {
        depth += 1;
        cur = m.op_parent_op(c);
    }
    depth
}

const MAX_DEPTH: usize = 24;

fn dim_source(m: &Module, v: ValueId) -> Option<DimKind> {
    match m.value_def(v) {
        ValueDef::BlockArg { block, index: 0 } => {
            let owner = m.region_parent_op(m.block_region(block));
            if m.op_info(owner).has_trait(sycl_mlir_ir::traits::LOOP_LIKE) {
                return Some(DimKind::LoopIv(owner));
            }
            None
        }
        ValueDef::BlockArg { .. } => None,
        ValueDef::OpResult { op, .. } => {
            let name = m.op_name_str(op);
            let dim_of = || {
                m.op_operands(op)
                    .get(1)
                    .and_then(|&d| sycl_mlir_dialects::arith::const_int_of(m, d))
                    .map(|d| d as u32)
            };
            match &*name {
                "sycl.nd_item.get_global_id" | "sycl.item.get_id" => {
                    Some(DimKind::GlobalId(dim_of()?))
                }
                "sycl.nd_item.get_local_id" => Some(DimKind::LocalId(dim_of()?)),
                _ => None,
            }
        }
    }
}

fn discover_dims(
    m: &Module,
    v: ValueId,
    dims: &mut Vec<(DimKind, ValueId)>,
    depth: usize,
) -> Option<()> {
    if depth > MAX_DEPTH {
        return None;
    }
    if let Some(kind) = dim_source(m, v) {
        if !dims.iter().any(|(k, _)| *k == kind) {
            dims.push((kind, v));
        }
        return Some(());
    }
    if sycl_mlir_dialects::arith::const_int_of(m, v).is_some() {
        return Some(());
    }
    let op = m.def_op(v)?;
    let name = m.op_name_str(op);
    match &*name {
        "arith.addi" | "arith.subi" | "arith.muli" => {
            discover_dims(m, m.op_operand(op, 0), dims, depth + 1)?;
            discover_dims(m, m.op_operand(op, 1), dims, depth + 1)
        }
        "arith.index_cast" | "arith.extsi" | "arith.trunci" => {
            discover_dims(m, m.op_operand(op, 0), dims, depth + 1)
        }
        _ => None,
    }
}

fn expr_of(
    m: &Module,
    v: ValueId,
    dims: &[(DimKind, ValueId)],
    depth: usize,
) -> Option<AffineExpr> {
    if depth > MAX_DEPTH {
        return None;
    }
    if let Some(kind) = dim_source(m, v) {
        let idx = dims.iter().position(|(k, _)| *k == kind)?;
        return Some(AffineExpr::Dim(idx));
    }
    if let Some(c) = sycl_mlir_dialects::arith::const_int_of(m, v) {
        return Some(AffineExpr::Const(c));
    }
    let op = m.def_op(v)?;
    let name = m.op_name_str(op);
    match &*name {
        "arith.addi" => Some(
            expr_of(m, m.op_operand(op, 0), dims, depth + 1)?.add(expr_of(
                m,
                m.op_operand(op, 1),
                dims,
                depth + 1,
            )?),
        ),
        "arith.subi" => Some(
            expr_of(m, m.op_operand(op, 0), dims, depth + 1)?
                .add(expr_of(m, m.op_operand(op, 1), dims, depth + 1)?.mul(AffineExpr::Const(-1))),
        ),
        "arith.muli" => Some(
            expr_of(m, m.op_operand(op, 0), dims, depth + 1)?.mul(expr_of(
                m,
                m.op_operand(op, 1),
                dims,
                depth + 1,
            )?),
        ),
        "arith.index_cast" | "arith.extsi" | "arith.trunci" => {
            expr_of(m, m.op_operand(op, 0), dims, depth + 1)
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_dialects::affine::build_affine_for;
    use sycl_mlir_dialects::arith::{addi, constant_index, muli};
    use sycl_mlir_dialects::func::{build_func, build_return};
    use sycl_mlir_ir::{Builder, Context, Module};
    use sycl_mlir_sycl::device::{global_id, make_id, mark_kernel, subscript};
    use sycl_mlir_sycl::types::{accessor_type, nd_item_type, AccessMode, Target};

    fn ctx() -> Context {
        let c = Context::new();
        sycl_mlir_dialects::register_all(&c);
        sycl_mlir_sycl::register(&c);
        c
    }

    /// The paper's Listing 3: access `[gid_x+1, 2*i, 2*i+2+gid_y]` inside a
    /// 64-iteration loop; the analysis must recover exactly the matrix and
    /// offsets printed in §V-D.
    #[test]
    fn paper_listing3_matrix_recovered() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc3 = accessor_type(&c, c.f32_type(), 3, AccessMode::Read, Target::Global);
        let item2 = sycl_mlir_sycl::types::item_type(&c, 2);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "mem_acc", &[acc3, item2], &[]);
        mark_kernel(&mut m, func);
        let acc = m.block_arg(entry, 0);
        let item = m.block_arg(entry, 1);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let gid_x = sycl_mlir_sycl::device::item_get_id(&mut b, item, 0);
            let gid_y = sycl_mlir_sycl::device::item_get_id(&mut b, item, 1);
            let zero = constant_index(&mut b, 0);
            let n = constant_index(&mut b, 64);
            let one = constant_index(&mut b, 1);
            build_affine_for(&mut b, zero, n, one, &[], |inner, i, _| {
                let c1 = constant_index(inner, 1);
                let c2 = constant_index(inner, 2);
                let add1 = addi(inner, gid_x, c1);
                let mul1 = muli(inner, i, c2);
                let add1a = addi(inner, mul1, c2);
                let add1b = addi(inner, add1a, gid_y);
                let id = make_id(inner, &[add1, mul1, add1b]);
                let view = subscript(inner, acc, id);
                let z = constant_index(inner, 0);
                sycl_mlir_dialects::affine::load(inner, view, &[z]);
                vec![]
            });
            build_return(&mut b, &[]);
        }
        let maa = MemoryAccessAnalysis::analyze(&m, func);
        assert_eq!(maa.accesses.len(), 1);
        let a = &maa.accesses[0];
        assert_eq!(a.base, acc);
        assert_eq!(a.dims.len(), 3);
        assert_eq!(a.dims[0], DimKind::GlobalId(0));
        assert_eq!(a.dims[1], DimKind::GlobalId(1));
        assert!(matches!(a.dims[2], DimKind::LoopIv(_)));
        assert_eq!(a.matrix, vec![vec![1, 0, 0], vec![0, 0, 2], vec![0, 1, 2]]);
        assert_eq!(a.offsets, vec![1, 0, 2]);
        // §VI-C: the inter-work-item submatrix is the first two columns.
        assert_eq!(
            a.inter_workitem_matrix(),
            vec![vec![1, 0], vec![0, 0], vec![0, 1]]
        );
        assert!(a.has_temporal_reuse());
    }

    /// GEMM-shaped accesses (Listing 6): `A[i][k]` has temporal reuse and is
    /// a broadcast; `B[k][j]` has temporal reuse and coalesces; `C[i][j]`
    /// has no temporal reuse (not a prefetch candidate).
    #[test]
    fn gemm_classification() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc2 = accessor_type(&c, c.f32_type(), 2, AccessMode::Read, Target::Global);
        let nd2 = nd_item_type(&c, 2);
        let top = m.top();
        let (func, entry) = build_func(
            &mut m,
            top,
            "gemm",
            &[acc2.clone(), acc2.clone(), acc2, nd2],
            &[],
        );
        mark_kernel(&mut m, func);
        let a_acc = m.block_arg(entry, 0);
        let b_acc = m.block_arg(entry, 1);
        let c_acc = m.block_arg(entry, 2);
        let item = m.block_arg(entry, 3);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let i = global_id(&mut b, item, 0);
            let j = global_id(&mut b, item, 1);
            let zero = constant_index(&mut b, 0);
            let n = constant_index(&mut b, 1024);
            let one = constant_index(&mut b, 1);
            build_affine_for(&mut b, zero, n, one, &[], |inner, k, _| {
                let id_a = make_id(inner, &[i, k]);
                let va = subscript(inner, a_acc, id_a);
                let z = constant_index(inner, 0);
                let la = sycl_mlir_dialects::affine::load(inner, va, &[z]);
                let id_b = make_id(inner, &[k, j]);
                let vb = subscript(inner, b_acc, id_b);
                let lb = sycl_mlir_dialects::affine::load(inner, vb, &[z]);
                let prod = sycl_mlir_dialects::arith::mulf(inner, la, lb);
                let id_c = make_id(inner, &[i, j]);
                let vc = subscript(inner, c_acc, id_c);
                let lc = sycl_mlir_dialects::affine::load(inner, vc, &[z]);
                let sum = sycl_mlir_dialects::arith::addf(inner, lc, prod);
                sycl_mlir_dialects::affine::store(inner, sum, vc, &[z]);
                vec![]
            });
            build_return(&mut b, &[]);
        }
        let maa = MemoryAccessAnalysis::analyze(&m, func);
        let a_info = &maa.for_base(a_acc)[0];
        let b_info = &maa.for_base(b_acc)[0];
        let c_loads: Vec<_> = maa
            .for_base(c_acc)
            .into_iter()
            .filter(|x| x.kind == AccessKind::Load)
            .cloned()
            .collect();
        let c_info = &c_loads[0];

        // A[i][k]: j (the fastest thread dim) absent -> broadcast; k moves
        // under the loop -> temporal reuse. Prefetch candidate.
        assert_eq!(a_info.coalescing_class(), CoalescingClass::Broadcast);
        assert!(a_info.has_temporal_reuse());
        // B[k][j]: coalesced over j, temporal reuse over k. Candidate.
        assert_eq!(b_info.coalescing_class(), CoalescingClass::Linear);
        assert!(b_info.has_temporal_reuse());
        // C[i][j]: coalesced but no loop-iv involvement -> no reuse.
        assert_eq!(c_info.coalescing_class(), CoalescingClass::Linear);
        assert!(!c_info.has_temporal_reuse());
    }

    #[test]
    fn non_affine_access_skipped() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc1 = accessor_type(&c, c.f32_type(), 1, AccessMode::Read, Target::Global);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "k", &[acc1, nd1], &[]);
        mark_kernel(&mut m, func);
        let acc = m.block_arg(entry, 0);
        let item = m.block_arg(entry, 1);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let i = global_id(&mut b, item, 0);
            // i*i is not affine.
            let sq = muli(&mut b, i, i);
            let id = make_id(&mut b, &[sq]);
            let view = subscript(&mut b, acc, id);
            let z = constant_index(&mut b, 0);
            sycl_mlir_dialects::affine::load(&mut b, view, &[z]);
            build_return(&mut b, &[]);
        }
        let maa = MemoryAccessAnalysis::analyze(&m, func);
        assert!(maa.accesses.is_empty());
    }
}
