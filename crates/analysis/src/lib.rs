//! # sycl-mlir-analysis — the compiler analyses of §V
//!
//! * [`alias`] — SYCL-aware alias analysis (§V-A): extends a base
//!   allocation-rooted analysis with SYCL dialect semantics (accessor
//!   subscripts, host-propagated buffer identities).
//! * [`reaching`] — reaching-definition analysis with the paper's
//!   MODS/PMODS split (§V-B, Listing 1).
//! * [`uniformity`] — inter-procedural uniformity analysis driven by the
//!   `NON_UNIFORM_SOURCE` trait and the memory-effect interface
//!   (§V-C, Listing 2).
//! * [`memaccess`] — memory access analysis producing the access matrix +
//!   offset vector of Kaeli et al. \[14\] (§V-D, Listing 3), with the
//!   Linear/ReverseLinear coalescing and temporal-reuse classification
//!   loop internalization needs (§VI-C).
//! * [`structure`] — dominance/region utilities for the structured IR.
//! * [`callgraph`] — call graph used by the inter-procedural analyses.
//! * [`equivalence`] — structural SSA value equivalence (shared by alias
//!   and reaching-definition queries).
//! * [`interval`] — symbolic interval arithmetic over launch-time
//!   parameters, the lattice of the simulator's decode-time bounds
//!   verifier.

pub mod alias;
pub mod callgraph;
pub mod equivalence;
pub mod interval;
pub mod memaccess;
pub mod reaching;
pub mod structure;
pub mod uniformity;

pub use alias::{AliasAnalysis, AliasResult};
pub use interval::{BinOp, Expr, Interval};
pub use memaccess::{AccessInfo, AccessKind, CoalescingClass, DimKind, MemoryAccessAnalysis};
pub use reaching::{DefClass, ReachingDefinitions};
pub use uniformity::{Uniformity, UniformityAnalysis};
