//! Structural utilities over the single-block-region IR: dominance,
//! enclosing-loop/branch queries.

use sycl_mlir_ir::dialect::traits;
use sycl_mlir_ir::{Module, OpId, ValueId};

/// `true` if `a` strictly dominates `b` (executes before it on every path).
/// In the structured regime this reduces to "an ancestor-or-self of `b`
/// appears after `a` in `a`'s block".
pub fn dominates(m: &Module, a: OpId, b: OpId) -> bool {
    let Some(a_block) = m.op_parent_block(a) else {
        return false;
    };
    let mut cur = Some(b);
    while let Some(c) = cur {
        if c == a {
            return false;
        }
        if m.op_parent_block(c) == Some(a_block) {
            return m.op_index_in_block(a) < m.op_index_in_block(c);
        }
        cur = m.op_parent_op(c);
    }
    false
}

/// All `LOOP_LIKE` ancestors of `op`, innermost first, stopping at `scope`.
pub fn enclosing_loops(m: &Module, op: OpId, scope: OpId) -> Vec<OpId> {
    let mut out = Vec::new();
    let mut cur = m.op_parent_op(op);
    while let Some(c) = cur {
        if c == scope {
            break;
        }
        if m.op_info(c).has_trait(traits::LOOP_LIKE) {
            out.push(c);
        }
        cur = m.op_parent_op(c);
    }
    out
}

/// The innermost enclosing loop of `op` within `scope`, if any.
pub fn enclosing_loop(m: &Module, op: OpId, scope: OpId) -> Option<OpId> {
    enclosing_loops(m, op, scope).first().copied()
}

/// Conditions of all `BRANCH_LIKE` ancestors of `op` up to (exclusive)
/// `scope` — the "dominating branch conditions" of §V-C.
pub fn enclosing_branch_conditions(m: &Module, op: OpId, scope: OpId) -> Vec<ValueId> {
    let mut out = Vec::new();
    let mut cur = m.op_parent_op(op);
    while let Some(c) = cur {
        if c == scope {
            break;
        }
        if m.op_info(c).has_trait(traits::BRANCH_LIKE) {
            out.push(m.op_operand(c, 0));
        }
        cur = m.op_parent_op(c);
    }
    out
}

/// The enclosing `func.func` of an op, if any.
pub fn enclosing_func(m: &Module, op: OpId) -> Option<OpId> {
    let mut cur = Some(op);
    while let Some(c) = cur {
        if m.op_is(c, "func.func") {
            return Some(c);
        }
        cur = m.op_parent_op(c);
    }
    None
}

/// `true` if a loop nest rooted at `outer` is *perfectly nested* down to
/// `inner`: every level contains only the next loop (plus index arithmetic
/// that is memory-effect free) and its terminator.
pub fn perfectly_nested(m: &Module, outer: OpId, inner: OpId) -> bool {
    if outer == inner {
        return true;
    }
    let block = m.op_region_block(outer, 0);
    let mut next_loop = None;
    for &op in m.block_ops(block) {
        if m.op_info(op).has_trait(traits::LOOP_LIKE) {
            if next_loop.is_some() {
                return false; // two sibling loops
            }
            next_loop = Some(op);
        } else if m.op_info(op).has_trait(traits::TERMINATOR) {
            continue;
        } else if !sycl_mlir_ir::dialect::is_memory_effect_free(m, op) {
            return false;
        }
    }
    match next_loop {
        Some(l) => perfectly_nested(m, l, inner),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_dialects::arith::constant_index;
    use sycl_mlir_dialects::func::{build_func, build_return};
    use sycl_mlir_dialects::scf::{build_for, build_if};
    use sycl_mlir_ir::{Builder, Context, Module};

    fn ctx() -> Context {
        let c = Context::new();
        sycl_mlir_dialects::register_all(&c);
        c
    }

    #[test]
    fn dominance_in_nested_regions() {
        let c = ctx();
        let mut m = Module::new(&c);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "f", &[], &[]);
        let (first, loop_op) = {
            let mut b = Builder::at_end(&mut m, entry);
            let zero = constant_index(&mut b, 0);
            let ten = constant_index(&mut b, 10);
            let one = constant_index(&mut b, 1);
            let first = b.module().def_op(zero).unwrap();
            let loop_op = build_for(&mut b, zero, ten, one, &[], |inner, _iv, _| {
                constant_index(inner, 5);
                vec![]
            });
            build_return(&mut b, &[]);
            (first, loop_op)
        };
        let body = sycl_mlir_dialects::scf::loop_info::body_block(&m, loop_op);
        let inner_op = m.block_ops(body)[0];
        assert!(dominates(&m, first, inner_op));
        assert!(!dominates(&m, inner_op, first));
        assert!(dominates(&m, first, loop_op));
        assert_eq!(enclosing_loops(&m, inner_op, func), vec![loop_op]);
        assert!(enclosing_loops(&m, loop_op, func).is_empty());
    }

    #[test]
    fn branch_conditions_collected() {
        let c = ctx();
        let mut m = Module::new(&c);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "f", &[c.i1_type()], &[]);
        let cond = m.block_arg(entry, 0);
        let if_op = {
            let mut b = Builder::at_end(&mut m, entry);
            let op = build_if(
                &mut b,
                cond,
                &[],
                |inner| {
                    constant_index(inner, 1);
                    vec![]
                },
                |_| vec![],
            );
            build_return(&mut b, &[]);
            op
        };
        let then_block = m.op_region_block(if_op, 0);
        let inner_op = m.block_ops(then_block)[0];
        assert_eq!(enclosing_branch_conditions(&m, inner_op, func), vec![cond]);
        assert_eq!(enclosing_func(&m, inner_op), Some(func));
    }

    #[test]
    fn perfect_nesting_detection() {
        let c = ctx();
        let mut m = Module::new(&c);
        let top = m.top();
        let (_f, entry) = build_func(&mut m, top, "f", &[], &[]);
        let outer = {
            let mut b = Builder::at_end(&mut m, entry);
            let zero = constant_index(&mut b, 0);
            let n = constant_index(&mut b, 8);
            let one = constant_index(&mut b, 1);
            let outer = build_for(&mut b, zero, n, one, &[], |inner, _iv, _| {
                let z = constant_index(inner, 0);
                let k = constant_index(inner, 8);
                let s = constant_index(inner, 1);
                build_for(inner, z, k, s, &[], |_i2, _iv, _| vec![]);
                vec![]
            });
            build_return(&mut b, &[]);
            outer
        };
        let body = sycl_mlir_dialects::scf::loop_info::body_block(&m, outer);
        let inner = *m
            .block_ops(body)
            .iter()
            .find(|&&o| m.op_is(o, "scf.for"))
            .unwrap();
        assert!(perfectly_nested(&m, outer, inner));
        assert!(perfectly_nested(&m, outer, outer));
        assert!(!perfectly_nested(&m, inner, outer));
    }
}
