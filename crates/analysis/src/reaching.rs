//! Reaching-definition analysis (§V-B of the paper).
//!
//! For every program point the analysis tracks the set of *write* operations
//! that may have modified memory. A query for a specific read access
//! classifies each reaching write as
//!
//! * **MODS** — definitely modifies the read location (must-alias), or
//! * **PMODS** — possibly modifies it (may-alias),
//!
//! exactly the split of Listing 1: the store tagged `a` writing `%ptr1`
//! directly is a MOD, the store tagged `b` through the maybe-aliased
//! `%ptr2` is a PMOD.
//!
//! The analysis consumes the memory-effect interface, so operations from any
//! dialect (including `sycl.host.*`) participate; ops with *unknown* effects
//! (e.g. un-raised `llvm.call`s) poison the state with an `unknown` marker.

use crate::alias::{AliasAnalysis, AliasResult};
use std::collections::HashMap;
use sycl_mlir_ir::dialect::{memory_effects, traits, EffectKind};
use sycl_mlir_ir::{Module, OpId, ValueId};

/// Classification of a reaching definition relative to a specific read.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DefClass {
    /// Definitely modifies the read location.
    Mods,
    /// Possibly modifies the read location.
    Pmods,
}

/// The set of writes reaching a program point.
#[derive(Clone, PartialEq, Default, Debug)]
pub struct ReachState {
    /// Write ops that may reach this point, in program order of discovery.
    pub writes: Vec<OpId>,
    /// Some op with unknown memory effects executed before this point.
    pub unknown: bool,
}

impl ReachState {
    fn join(&mut self, other: &ReachState) -> bool {
        let mut changed = false;
        for &w in &other.writes {
            if !self.writes.contains(&w) {
                self.writes.push(w);
                changed = true;
            }
        }
        if other.unknown && !self.unknown {
            self.unknown = true;
            changed = true;
        }
        changed
    }
}

/// Result of a reaching-definition query for one read access.
#[derive(Clone, Debug, Default)]
pub struct ReachingDefs {
    /// `(write op, classification)` for every reaching write that may touch
    /// the location.
    pub defs: Vec<(OpId, DefClass)>,
    /// An unknown-effect operation may also have modified the location.
    pub unknown: bool,
}

impl ReachingDefs {
    pub fn mods(&self) -> Vec<OpId> {
        self.defs
            .iter()
            .filter(|(_, c)| *c == DefClass::Mods)
            .map(|(o, _)| *o)
            .collect()
    }

    pub fn pmods(&self) -> Vec<OpId> {
        self.defs
            .iter()
            .filter(|(_, c)| *c == DefClass::Pmods)
            .map(|(o, _)| *o)
            .collect()
    }
}

/// Reaching definitions for one function body.
pub struct ReachingDefinitions {
    before: HashMap<OpId, ReachState>,
    aa: AliasAnalysis,
}

impl ReachingDefinitions {
    /// Run the analysis over a function (or any single-region op).
    pub fn compute(m: &Module, func: OpId) -> ReachingDefinitions {
        let mut analysis = ReachingDefinitions {
            before: HashMap::new(),
            aa: AliasAnalysis::new(),
        };
        let mut state = ReachState::default();
        let block = m.op_region_block(func, 0);
        analysis.exec_block(m, block, &mut state);
        analysis
    }

    fn exec_block(&mut self, m: &Module, block: sycl_mlir_ir::BlockId, state: &mut ReachState) {
        for &op in m.block_ops(block) {
            self.before.insert(op, state.clone());
            self.exec_op(m, op, state);
        }
    }

    fn exec_op(&mut self, m: &Module, op: OpId, state: &mut ReachState) {
        let info = m.op_info(op);
        if info.has_trait(traits::BRANCH_LIKE) && m.op_regions(op).len() == 2 {
            let mut then_state = state.clone();
            self.exec_block(m, m.op_region_block(op, 0), &mut then_state);
            let mut else_state = state.clone();
            self.exec_block(m, m.op_region_block(op, 1), &mut else_state);
            *state = then_state;
            state.join(&else_state);
            return;
        }
        if info.has_trait(traits::LOOP_LIKE) && m.op_regions(op).len() == 1 {
            // Fixpoint over the loop body; the loop may execute zero times,
            // so the result joins the entry state.
            let entry = state.clone();
            for _ in 0..8 {
                let mut body_state = state.clone();
                self.exec_block(m, m.op_region_block(op, 0), &mut body_state);
                if !state.join(&body_state) {
                    break;
                }
            }
            state.join(&entry);
            return;
        }
        match memory_effects(m, op) {
            Some(effects) => {
                for e in effects {
                    if e.kind == EffectKind::Write {
                        match e.value {
                            Some(_) => self.record_write(m, op, state),
                            None => state.unknown = true,
                        }
                    }
                }
                // Recursive-effect ops other than loops/ifs (none today)
                // would need region walks; the traits above cover scf/affine.
            }
            None => {
                // Unknown effects (e.g. an un-raised llvm.call).
                state.unknown = true;
            }
        }
    }

    fn record_write(&self, m: &Module, op: OpId, state: &mut ReachState) {
        // A new write kills every previous write to provably the same
        // location (must-alias with identical indices).
        if let Some(target) = access_target(m, op) {
            state.writes.retain(|&w| match access_target(m, w) {
                Some(prev) => {
                    self.aa
                        .access_alias(m, (target.0, &target.1), (prev.0, &prev.1))
                        != AliasResult::MustAlias
                }
                None => true,
            });
        }
        if !state.writes.contains(&op) {
            state.writes.push(op);
        }
    }

    /// The raw state before `op`.
    pub fn state_before(&self, op: OpId) -> Option<&ReachState> {
        self.before.get(&op)
    }

    /// Classify the reaching definitions for a read of `(memref, indices)`
    /// performed by `at`.
    pub fn defs_for_read(
        &self,
        m: &Module,
        at: OpId,
        memref: ValueId,
        indices: &[ValueId],
    ) -> ReachingDefs {
        let Some(state) = self.before.get(&at) else {
            return ReachingDefs {
                defs: Vec::new(),
                unknown: true,
            };
        };
        let mut out = ReachingDefs {
            defs: Vec::new(),
            unknown: state.unknown,
        };
        for &w in &state.writes {
            let Some((wmem, widx)) = access_target(m, w) else {
                out.defs.push((w, DefClass::Pmods));
                continue;
            };
            match self.aa.access_alias(m, (memref, indices), (wmem, &widx)) {
                AliasResult::MustAlias => out.defs.push((w, DefClass::Mods)),
                AliasResult::MayAlias => out.defs.push((w, DefClass::Pmods)),
                AliasResult::NoAlias => {}
            }
        }
        out
    }

    /// Convenience: classify the reaching definitions for a load op
    /// (`memref.load` / `affine.load`).
    pub fn defs_for_load(&self, m: &Module, load: OpId) -> ReachingDefs {
        match read_target(m, load) {
            Some((mem, idx)) => self.defs_for_read(m, load, mem, &idx),
            None => ReachingDefs {
                defs: Vec::new(),
                unknown: true,
            },
        }
    }
}

/// `(memref, indices)` written by a store-like op.
pub fn access_target(m: &Module, op: OpId) -> Option<(ValueId, Vec<ValueId>)> {
    let name = m.op_name_str(op);
    match &*name {
        "memref.store" | "affine.store" => {
            let ops = m.op_operands(op);
            Some((ops[1], ops[2..].to_vec()))
        }
        "llvm.store" => Some((m.op_operand(op, 1), vec![])),
        "sycl.host.constructor" => Some((m.op_operand(op, 0), vec![])),
        _ => None,
    }
}

/// `(memref, indices)` read by a load-like op.
pub fn read_target(m: &Module, op: OpId) -> Option<(ValueId, Vec<ValueId>)> {
    let name = m.op_name_str(op);
    match &*name {
        "memref.load" | "affine.load" => {
            let ops = m.op_operands(op);
            Some((ops[0], ops[1..].to_vec()))
        }
        "llvm.load" => Some((m.op_operand(op, 0), vec![])),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_dialects::arith::constant_index;
    use sycl_mlir_dialects::func::{build_func, build_return};
    use sycl_mlir_dialects::memref;
    use sycl_mlir_dialects::scf::{build_for, build_if};
    use sycl_mlir_ir::{Attribute, Builder, Context, Module};

    fn ctx() -> Context {
        let c = Context::new();
        sycl_mlir_dialects::register_all(&c);
        sycl_mlir_sycl::register(&c);
        c
    }

    /// The paper's Listing 1: `scf.if` storing to `%ptr1` (tag "a") in one
    /// branch and to the maybe-aliased `%ptr2` (tag "b") in the other; a
    /// following load of `%ptr1` must see `{MODS: a, PMODS: b}`.
    #[test]
    fn paper_listing1_mods_pmods() {
        let c = ctx();
        let mut m = Module::new(&c);
        let memt = c.memref_type(c.i32_type(), &[]);
        let top = m.top();
        let (func, entry) = build_func(
            &mut m,
            top,
            "foo",
            &[c.i1_type(), c.i32_type(), c.i32_type(), memt.clone(), memt],
            &[],
        );
        let cond = m.block_arg(entry, 0);
        let v1 = m.block_arg(entry, 1);
        let v2 = m.block_arg(entry, 2);
        let ptr1 = m.block_arg(entry, 3);
        let ptr2 = m.block_arg(entry, 4);
        let load = {
            let mut b = Builder::at_end(&mut m, entry);
            build_if(
                &mut b,
                cond,
                &[],
                |inner| {
                    let s = memref::store(inner, v1, ptr1, &[]);
                    inner
                        .module()
                        .set_attr(s, "tag", Attribute::Str("a".into()));
                    vec![]
                },
                |inner| {
                    let s = memref::store(inner, v2, ptr2, &[]);
                    inner
                        .module()
                        .set_attr(s, "tag", Attribute::Str("b".into()));
                    vec![]
                },
            );
            let loaded = memref::load(&mut b, ptr1, &[]);
            build_return(&mut b, &[]);
            b.module().def_op(loaded).unwrap()
        };
        let rd = ReachingDefinitions::compute(&m, func);
        let defs = rd.defs_for_load(&m, load);
        assert!(!defs.unknown);
        let tag = |op: OpId| {
            m.attr(op, "tag")
                .and_then(|a| a.as_str())
                .unwrap()
                .to_string()
        };
        let mods: Vec<String> = defs.mods().into_iter().map(tag).collect();
        let pmods: Vec<String> = defs.pmods().into_iter().map(tag).collect();
        assert_eq!(mods, vec!["a"]);
        assert_eq!(pmods, vec!["b"]);
    }

    #[test]
    fn later_store_kills_earlier_same_location() {
        let c = ctx();
        let mut m = Module::new(&c);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "f", &[c.f32_type(), c.f32_type()], &[]);
        let x = m.block_arg(entry, 0);
        let y = m.block_arg(entry, 1);
        let load = {
            let mut b = Builder::at_end(&mut m, entry);
            let f32t = b.ctx().f32_type();
            let mem = memref::alloca(&mut b, f32t, &[1]);
            let zero = constant_index(&mut b, 0);
            memref::store(&mut b, x, mem, &[zero]);
            memref::store(&mut b, y, mem, &[zero]); // kills the first
            let l = memref::load(&mut b, mem, &[zero]);
            build_return(&mut b, &[]);
            b.module().def_op(l).unwrap()
        };
        let rd = ReachingDefinitions::compute(&m, func);
        let defs = rd.defs_for_load(&m, load);
        assert_eq!(defs.defs.len(), 1);
        assert_eq!(defs.defs[0].1, DefClass::Mods);
    }

    #[test]
    fn loop_writes_reach_after_loop() {
        let c = ctx();
        let mut m = Module::new(&c);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "f", &[c.f32_type()], &[]);
        let x = m.block_arg(entry, 0);
        let (load, store_in_loop) = {
            let mut b = Builder::at_end(&mut m, entry);
            let f32t = b.ctx().f32_type();
            let mem = memref::alloca(&mut b, f32t, &[8]);
            let zero = constant_index(&mut b, 0);
            let n = constant_index(&mut b, 8);
            let one = constant_index(&mut b, 1);
            let mut store_op = None;
            build_for(&mut b, zero, n, one, &[], |inner, iv, _| {
                store_op = Some(memref::store(inner, x, mem, &[iv]));
                vec![]
            });
            let z2 = constant_index(&mut b, 0);
            let l = memref::load(&mut b, mem, &[z2]);
            build_return(&mut b, &[]);
            (b.module().def_op(l).unwrap(), store_op.unwrap())
        };
        let rd = ReachingDefinitions::compute(&m, func);
        let defs = rd.defs_for_load(&m, load);
        // The store's index is the loop iv: may equal 0 -> PMOD.
        assert_eq!(defs.pmods(), vec![store_in_loop]);
        assert!(!defs.unknown);
    }

    #[test]
    fn unknown_call_poisons_state() {
        let c = ctx();
        let mut m = Module::new(&c);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "f", &[], &[]);
        let load = {
            let mut b = Builder::at_end(&mut m, entry);
            let f32t = b.ctx().f32_type();
            let mem = memref::alloca(&mut b, f32t, &[1]);
            let zero = constant_index(&mut b, 0);
            sycl_mlir_dialects::llvm::call(&mut b, "opaque", &[], &[]);
            let l = memref::load(&mut b, mem, &[zero]);
            build_return(&mut b, &[]);
            b.module().def_op(l).unwrap()
        };
        let rd = ReachingDefinitions::compute(&m, func);
        let defs = rd.defs_for_load(&m, load);
        assert!(defs.unknown);
    }
}
