//! Loop-invariant code motion (§VI-A of the paper).
//!
//! Beyond the upstream-MLIR utility (which only hoists memory-effect-free
//! ops), this pass moves *memory* operations:
//!
//! * loop-invariant loads are hoisted when no write in the loop may alias
//!   the read location — proven by the SYCL-aware alias analysis (§V-A);
//! * loop-invariant stores are sunk after the loop when nothing else in the
//!   loop may touch their location;
//! * because a hoisted/sunk memory op must not execute for a zero-trip
//!   loop, the transformed loop is wrapped in a versioning guard
//!   `lb < ub`;
//! * loads blocked **only** by may-alias (not must-alias) writes are
//!   rescued by *runtime alias versioning*: the guard additionally checks
//!   `sycl.accessor.base(a) != sycl.accessor.base(b)` and the unoptimized
//!   loop is kept in the else branch.

use std::collections::{HashMap, HashSet};
use sycl_mlir_analysis::alias::{AliasAnalysis, AliasResult};
use sycl_mlir_analysis::reaching::access_target;
use sycl_mlir_ir::dialect::{is_memory_effect_free, memory_effects, traits, EffectKind};
use sycl_mlir_ir::{Builder, Module, OpId, Pass, ValueId, WalkControl};

/// Statistics of one LICM run.
#[derive(Debug, Default, Clone)]
pub struct LicmStats {
    pub pure_hoisted: usize,
    pub loads_hoisted: usize,
    pub stores_sunk: usize,
    pub guarded_loops: usize,
    pub versioned_loops: usize,
}

/// The LICM pass. `enable_versioning` controls both the zero-trip guard
/// for memory hoists and runtime alias versioning; without it only pure
/// ops move (the conservative behaviour of a SYCL-unaware compiler).
pub struct LicmPass {
    pub enable_versioning: bool,
    pub stats: LicmStats,
}

impl LicmPass {
    pub fn new(enable_versioning: bool) -> LicmPass {
        LicmPass {
            enable_versioning,
            stats: LicmStats::default(),
        }
    }
}

impl Pass for LicmPass {
    fn name(&self) -> &'static str {
        "licm"
    }

    fn run(&mut self, m: &mut Module) -> Result<bool, String> {
        let mut loops = Vec::new();
        m.walk(m.top(), &mut |op| {
            if m.op_info(op).has_trait(traits::LOOP_LIKE) {
                loops.push(op);
            }
            WalkControl::Advance
        });
        let mut changed = false;
        // Innermost-first so invariants bubble outward.
        for &l in loops.iter().rev() {
            if m.op_is_erased(l) {
                continue;
            }
            changed |= licm_on_loop(m, l, self.enable_versioning, &mut self.stats);
        }
        Ok(changed)
    }
}

/// A memory access inside the loop: `(op, memref, indices)`.
struct LoopAccess {
    op: OpId,
    mem: ValueId,
    indices: Vec<ValueId>,
}

fn licm_on_loop(m: &mut Module, loop_op: OpId, versioning: bool, stats: &mut LicmStats) -> bool {
    let body = m.op_region_block(loop_op, 0);
    let body_ops = m.block_ops(body).to_vec();
    let aa = AliasAnalysis::new();

    // Gather all writes/reads anywhere in the loop and whether anything has
    // unknown effects.
    let mut writes: Vec<LoopAccess> = Vec::new();
    let mut reads: Vec<LoopAccess> = Vec::new();
    let mut unknown_write = false;
    let mut unknown_read = false;
    m.walk(loop_op, &mut |op| {
        if op == loop_op {
            return WalkControl::Advance;
        }
        match memory_effects(m, op) {
            Some(effects) => {
                for e in effects {
                    match (e.kind, e.value) {
                        (EffectKind::Write, Some(_)) => {
                            if let Some((mem, indices)) = access_target(m, op) {
                                writes.push(LoopAccess { op, mem, indices });
                            } else {
                                unknown_write = true;
                            }
                        }
                        (EffectKind::Write, None) => unknown_write = true,
                        (EffectKind::Read, Some(_)) => {
                            if let Some((mem, indices)) =
                                sycl_mlir_analysis::reaching::read_target(m, op)
                            {
                                reads.push(LoopAccess { op, mem, indices });
                            } else {
                                unknown_read = true;
                            }
                        }
                        (EffectKind::Read, None) => unknown_read = true,
                        _ => {}
                    }
                }
            }
            None => {
                unknown_write = true;
                unknown_read = true;
            }
        }
        // Effects of nested loops/ifs were already collected recursively by
        // `memory_effects`; don't descend into them again.
        if m.op_info(op).has_trait(traits::RECURSIVE_EFFECTS) {
            return WalkControl::Skip;
        }
        WalkControl::Advance
    });

    let mut hoisted: HashSet<OpId> = HashSet::new();
    let mut pure_hoists: Vec<OpId> = Vec::new();
    let mut load_hoists: Vec<OpId> = Vec::new();
    let mut store_sinks: Vec<OpId> = Vec::new();
    // Accessor pairs that need a runtime disjointness check.
    let mut version_pairs: Vec<(ValueId, ValueId)> = Vec::new();

    let operand_ok = |m: &Module, hoisted: &HashSet<OpId>, v: ValueId| {
        m.value_defined_outside(v, loop_op)
            || m.def_op(v).map(|d| hoisted.contains(&d)).unwrap_or(false)
    };

    for &op in &body_ops {
        let info = m.op_info(op);
        if info.has_trait(traits::TERMINATOR) || info.has_trait(traits::BARRIER) {
            continue;
        }
        if !m.op_regions(op).is_empty() {
            continue; // nested control flow is not hoisted wholesale
        }
        let ops_ok = m
            .op_operands(op)
            .iter()
            .all(|&v| operand_ok(m, &hoisted, v));
        if !ops_ok {
            continue;
        }
        if is_memory_effect_free(m, op) {
            hoisted.insert(op);
            pure_hoists.push(op);
            continue;
        }
        if !versioning {
            continue;
        }
        // Loads: hoistable when no write in the loop may alias.
        if let Some((mem, indices)) = sycl_mlir_analysis::reaching::read_target(m, op) {
            if unknown_write {
                continue;
            }
            let mut blocked = false;
            let mut pairs = Vec::new();
            for w in &writes {
                match aa.access_alias(m, (mem, &indices), (w.mem, &w.indices)) {
                    AliasResult::NoAlias => {}
                    AliasResult::MustAlias => {
                        blocked = true;
                        break;
                    }
                    AliasResult::MayAlias => match versionable_pair(m, mem, w.mem) {
                        Some(pair) => pairs.push(pair),
                        None => {
                            blocked = true;
                            break;
                        }
                    },
                }
            }
            if blocked {
                continue;
            }
            hoisted.insert(op);
            load_hoists.push(op);
            for p in pairs {
                if !version_pairs.contains(&p) {
                    version_pairs.push(p);
                }
            }
            continue;
        }
        // Stores: sinkable when nothing else in the loop touches the
        // location.
        if let Some((mem, indices)) = access_target(m, op) {
            if unknown_write || unknown_read {
                continue;
            }
            let mut blocked = false;
            for other in writes.iter().chain(reads.iter()) {
                if other.op == op {
                    continue;
                }
                if aa
                    .access_alias(m, (mem, &indices), (other.mem, &other.indices))
                    .may()
                {
                    blocked = true;
                    break;
                }
            }
            if !blocked {
                store_sinks.push(op);
            }
        }
    }

    if pure_hoists.is_empty() && load_hoists.is_empty() && store_sinks.is_empty() {
        return false;
    }

    // Phase 1: pure ops move unconditionally before the loop.
    for &op in &pure_hoists {
        m.detach_op(op);
        m.move_op_before(op, loop_op);
    }
    stats.pure_hoisted += pure_hoists.len();

    if load_hoists.is_empty() && store_sinks.is_empty() {
        return true;
    }

    // Phase 2: memory motion under a versioning guard.
    stats.loads_hoisted += load_hoists.len();
    stats.stores_sunk += store_sinks.len();
    stats.guarded_loops += 1;
    if !version_pairs.is_empty() {
        stats.versioned_loops += 1;
    }

    let lb = m.op_operand(loop_op, 0);
    let ub = m.op_operand(loop_op, 1);
    let inits = m.op_operands(loop_op)[3..].to_vec();
    let result_types: Vec<_> = m
        .op_results(loop_op)
        .iter()
        .map(|&r| m.value_type(r))
        .collect();

    // Clone the unoptimized loop for the else branch when runtime alias
    // checks are involved (the aliasing case must still run the original).
    let else_clone = if version_pairs.is_empty() {
        None
    } else {
        let mut mapping = HashMap::new();
        Some(m.clone_op(loop_op, &mut mapping))
    };

    // Record the loop's external uses before we build the then-yield.
    let loop_results = m.op_results(loop_op).to_vec();
    let external_uses: Vec<(usize, sycl_mlir_ir::Use)> = loop_results
        .iter()
        .enumerate()
        .flat_map(|(i, &r)| m.value_uses(r).into_iter().map(move |u| (i, u)))
        .collect();

    // Build the guard condition before the loop.
    let (if_op, then_block, else_block) = {
        let mut b = Builder::before(m, loop_op);
        let mut cond = sycl_mlir_dialects::arith::cmpi(&mut b, "slt", lb, ub);
        for (acc_a, acc_b) in &version_pairs {
            let base_a = sycl_mlir_sycl::device::accessor_base(&mut b, *acc_a);
            let base_b = sycl_mlir_sycl::device::accessor_base(&mut b, *acc_b);
            let ne = sycl_mlir_dialects::arith::cmpi(&mut b, "ne", base_a, base_b);
            cond = b.build_value("arith.andi", &[cond, ne], b.ctx().i1_type(), vec![]);
        }
        let if_op = b.build("scf.if", &[cond], &result_types, vec![]);
        let m = b.module();
        let then_region = m.add_region(if_op);
        let then_block = m.add_block(then_region, &[]);
        let else_region = m.add_region(if_op);
        let else_block = m.add_block(else_region, &[]);
        (if_op, then_block, else_block)
    };

    // Then branch: hoisted loads, the (now optimized) loop, sunk stores.
    for &op in &load_hoists {
        m.detach_op(op);
        m.append_op(then_block, op);
    }
    m.detach_op(loop_op);
    m.append_op(then_block, loop_op);
    for &op in &store_sinks {
        m.detach_op(op);
        m.append_op(then_block, op);
    }
    {
        let yield_name = m.ctx().op("scf.yield");
        let y = m.create_op(yield_name, &loop_results, &[], vec![]);
        m.append_op(then_block, y);
    }

    // Else branch: original clone (aliasing case) or just the inits
    // (zero-trip case).
    {
        let else_values = match else_clone {
            Some(clone) => {
                m.append_op(else_block, clone);
                m.op_results(clone).to_vec()
            }
            None => inits,
        };
        let yield_name = m.ctx().op("scf.yield");
        let y = m.create_op(yield_name, &else_values, &[], vec![]);
        m.append_op(else_block, y);
    }

    // Redirect the recorded external uses to the scf.if results.
    for (i, u) in external_uses {
        let new_v = m.op_result(if_op, i);
        m.set_operand(u.op, u.index as usize, new_v);
    }
    true
}

/// A may-alias blocker is versionable when both bases are accessor values:
/// `sycl.accessor.base` can compare their memory identities at run time.
fn versionable_pair(m: &Module, a: ValueId, b: ValueId) -> Option<(ValueId, ValueId)> {
    let acc_a = accessor_of(m, a)?;
    let acc_b = accessor_of(m, b)?;
    Some((acc_a, acc_b))
}

fn accessor_of(m: &Module, v: ValueId) -> Option<ValueId> {
    if sycl_mlir_sycl::types::accessor_info(&m.value_type(v)).is_some() {
        return Some(v);
    }
    let d = m.def_op(v)?;
    if m.op_is(d, "sycl.accessor.subscript") {
        return Some(m.op_operand(d, 0));
    }
    if m.op_is(d, "memref.cast") {
        return accessor_of(m, m.op_operand(d, 0));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_dialects::affine::build_affine_for;
    use sycl_mlir_dialects::arith::{self, constant_index};
    use sycl_mlir_dialects::func::{build_func, build_return};
    use sycl_mlir_dialects::memref;
    use sycl_mlir_ir::{print_module, verify, Context, Module, PassManager};
    use sycl_mlir_sycl::device::{
        global_id, load_via_id, make_id, mark_kernel, store_via_id, subscript,
    };
    use sycl_mlir_sycl::types::{accessor_type, nd_item_type, AccessMode, Target};

    fn ctx() -> Context {
        let c = Context::new();
        sycl_mlir_dialects::register_all(&c);
        sycl_mlir_sycl::register(&c);
        c
    }

    fn run_licm(m: &mut Module, versioning: bool) -> LicmStats {
        let mut pass = LicmPass::new(versioning);
        let mut pm = PassManager::new();
        let changed = pass.run(m).unwrap();
        let _ = changed;
        verify(m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(m)));
        let _ = &mut pm;
        pass.stats
    }

    #[test]
    fn pure_invariant_hoisted_without_guard() {
        let c = ctx();
        let mut m = Module::new(&c);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "f", &[c.index_type()], &[]);
        let x = m.block_arg(entry, 0);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let zero = constant_index(&mut b, 0);
            let n = constant_index(&mut b, 16);
            let one = constant_index(&mut b, 1);
            build_affine_for(&mut b, zero, n, one, &[], |inner, iv, _| {
                let inv = arith::addi(inner, x, x); // invariant
                let var = arith::addi(inner, inv, iv); // variant
                inner.build("llvm.store", &[var, var], &[], vec![]);
                vec![]
            });
            build_return(&mut b, &[]);
        }
        let stats = run_licm(&mut m, true);
        assert_eq!(stats.pure_hoisted, 1);
        assert_eq!(stats.guarded_loops, 0);
        // The invariant add now sits directly in the function body.
        let body_ops: Vec<String> = m
            .block_ops(m.op_region_block(func, 0))
            .iter()
            .map(|&o| m.op_name_str(o).to_string())
            .collect();
        assert!(body_ops.contains(&"arith.addi".to_string()), "{body_ops:?}");
    }

    #[test]
    fn invariant_load_hoisted_with_guard() {
        let c = ctx();
        let mut m = Module::new(&c);
        let top = m.top();
        let (func, entry) = build_func(
            &mut m,
            top,
            "f",
            &[c.f32_type(), c.index_type(), c.index_type()],
            &[],
        );
        let x = m.block_arg(entry, 0);
        let lb = m.block_arg(entry, 1);
        let ub = m.block_arg(entry, 2);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let f32t = b.ctx().f32_type();
            let a = memref::alloca(&mut b, f32t.clone(), &[1]);
            let out = memref::alloca(&mut b, f32t, &[64]);
            let zero = constant_index(&mut b, 0);
            memref::store(&mut b, x, a, &[zero]);
            let one = constant_index(&mut b, 1);
            build_affine_for(&mut b, lb, ub, one, &[], |inner, iv, _| {
                let z = constant_index(inner, 0);
                // Loop-invariant load from `a`; the loop writes only `out`.
                let v = memref::load(inner, a, &[z]);
                memref::store(inner, v, out, &[iv]);
                vec![]
            });
            build_return(&mut b, &[]);
        }
        let stats = run_licm(&mut m, true);
        assert_eq!(stats.loads_hoisted, 1);
        assert_eq!(stats.guarded_loops, 1);
        assert_eq!(stats.versioned_loops, 0);
        // An scf.if guard now wraps the loop.
        let text = print_module(&m);
        assert!(text.contains("scf.if"), "{text}");
        assert!(text.contains("arith.cmpi"), "{text}");
        let _ = func;
    }

    #[test]
    fn must_aliased_load_not_hoisted() {
        let c = ctx();
        let mut m = Module::new(&c);
        let top = m.top();
        let (_func, entry) = build_func(&mut m, top, "f", &[c.f32_type()], &[]);
        let x = m.block_arg(entry, 0);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let f32t = b.ctx().f32_type();
            let a = memref::alloca(&mut b, f32t, &[1]);
            let zero = constant_index(&mut b, 0);
            memref::store(&mut b, x, a, &[zero]);
            let n = constant_index(&mut b, 8);
            let one = constant_index(&mut b, 1);
            build_affine_for(&mut b, zero, n, one, &[], |inner, _iv, _| {
                let z = constant_index(inner, 0);
                let v = memref::load(inner, a, &[z]);
                let doubled = arith::addf(inner, v, v);
                memref::store(inner, doubled, a, &[z]); // must-alias write
                vec![]
            });
            build_return(&mut b, &[]);
        }
        let stats = run_licm(&mut m, true);
        assert_eq!(stats.loads_hoisted, 0);
        assert_eq!(stats.guarded_loops, 0);
    }

    /// Two accessors without host aliasing info: the load from `a` may
    /// alias the store to `b`, so LICM versions the loop with a runtime
    /// `sycl.accessor.base` disjointness check.
    #[test]
    fn may_aliased_accessors_use_runtime_versioning() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc = accessor_type(&c, c.f32_type(), 1, AccessMode::ReadWrite, Target::Global);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "k", &[acc.clone(), acc, nd1], &[]);
        mark_kernel(&mut m, func);
        let a = m.block_arg(entry, 0);
        let b_acc = m.block_arg(entry, 1);
        let item = m.block_arg(entry, 2);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let gid = global_id(&mut b, item, 0);
            let zero = constant_index(&mut b, 0);
            let n = constant_index(&mut b, 8);
            let one = constant_index(&mut b, 1);
            // Hoist candidate: a[0] is invariant; the loop stores b[gid+iv].
            let zero_id = make_id(&mut b, &[zero]);
            let view_a = subscript(&mut b, a, zero_id);
            build_affine_for(&mut b, zero, n, one, &[], |inner, iv, _| {
                let z = constant_index(inner, 0);
                let v = sycl_mlir_dialects::affine::load(inner, view_a, &[z]);
                let idx = arith::addi(inner, gid, iv);
                store_via_id(inner, v, b_acc, &[idx]);
                vec![]
            });
            build_return(&mut b, &[]);
        }
        let stats = run_licm(&mut m, true);
        assert_eq!(stats.loads_hoisted, 1);
        assert_eq!(stats.versioned_loops, 1);
        let text = print_module(&m);
        assert!(text.contains("sycl.accessor.base"), "{text}");
        // Both the optimized and the fallback loop exist.
        assert_eq!(text.matches("affine.for").count(), 2, "{text}");
    }

    /// Without versioning (the DPC++-like conservative mode) the same loop
    /// is left untouched.
    #[test]
    fn versioning_disabled_keeps_loop() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc = accessor_type(&c, c.f32_type(), 1, AccessMode::ReadWrite, Target::Global);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "k", &[acc.clone(), acc, nd1], &[]);
        mark_kernel(&mut m, func);
        let a = m.block_arg(entry, 0);
        let b_acc = m.block_arg(entry, 1);
        let item = m.block_arg(entry, 2);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let gid = global_id(&mut b, item, 0);
            let zero = constant_index(&mut b, 0);
            let n = constant_index(&mut b, 8);
            let one = constant_index(&mut b, 1);
            build_affine_for(&mut b, zero, n, one, &[], |inner, iv, _| {
                let v = load_via_id(inner, a, &[zero]);
                let idx = arith::addi(inner, gid, iv);
                store_via_id(inner, v, b_acc, &[idx]);
                vec![]
            });
            build_return(&mut b, &[]);
        }
        let stats = run_licm(&mut m, false);
        assert_eq!(stats.loads_hoisted, 0);
        assert_eq!(stats.versioned_loops, 0);
    }
}
