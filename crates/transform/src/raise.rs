//! Host raising (§VII-A of the paper, Listings 8→9).
//!
//! Host code arrives as `func.func`s full of `llvm.call`s into the SYCL
//! runtime — "too low-level for analysis". This pass pattern-matches the
//! runtime entry points and rewrites them into `sycl.host.*` operations
//! carrying the semantics:
//!
//! | runtime symbol (simplified mangling)        | raised form |
//! |---------------------------------------------|-------------|
//! | `sycl_range_ctor` / `sycl_id_ctor`          | `sycl.host.constructor {type = !sycl.range<n>}` |
//! | `sycl_buffer_ctor_<elem>_<rank>`            | `sycl.host.constructor {type = !sycl.buffer<…>}` |
//! | `sycl_accessor_ctor_<elem>_<rank>_<mode>`   | `sycl.host.constructor {type = !sycl.accessor<…>}` |
//! | `sycl_local_accessor_ctor_<elem>_<rank>`    | `sycl.host.constructor {type = !sycl.accessor<…, local>}` |
//! | `sycl_parallel_for_nd_<kernel>`             | `sycl.host.schedule_kernel {form = "nd_range"}` |
//! | `sycl_parallel_for_range_<kernel>`          | `sycl.host.schedule_kernel {form = "range"}` |
//!
//! As the paper notes, this matching is inherently *fragile*: a runtime
//! symbol the pass does not recognize is left as an opaque call (counted in
//! [`RaiseStats::unmatched_sycl_calls`]) and keeps poisoning host analyses,
//! which is exactly the failure mode described at the end of §IV.

use sycl_mlir_ir::{Attribute, Module, OpId, Pass, Type, WalkControl};
use sycl_mlir_sycl::types::{self, AccessMode, Target};

/// Statistics of one raising run.
#[derive(Debug, Default, Clone)]
pub struct RaiseStats {
    pub constructors_raised: usize,
    pub kernels_raised: usize,
    /// `sycl_`-prefixed calls the patterns did not recognize (fragility
    /// indicator, §IV).
    pub unmatched_sycl_calls: usize,
}

/// The host raising pass.
#[derive(Default)]
pub struct RaiseHostPass {
    pub stats: RaiseStats,
}

impl Pass for RaiseHostPass {
    fn name(&self) -> &'static str {
        "raise-host"
    }

    fn run(&mut self, m: &mut Module) -> Result<bool, String> {
        // Host functions: everything directly under the top module (the
        // device module is nested and untouched).
        let mut calls = Vec::new();
        for func in m.funcs_in(m.top()) {
            m.walk(func, &mut |op| {
                if m.op_is(op, "llvm.call") {
                    calls.push(op);
                }
                WalkControl::Advance
            });
        }
        let mut changed = false;
        for call in calls {
            if m.op_is_erased(call) {
                continue;
            }
            let Some(callee) = sycl_mlir_dialects::llvm::callee_name(m, call) else {
                continue;
            };
            match self.raise_call(m, call, &callee) {
                Some(()) => changed = true,
                None => {
                    if callee.starts_with("sycl_") {
                        self.stats.unmatched_sycl_calls += 1;
                    }
                }
            }
        }
        Ok(changed)
    }
}

impl RaiseHostPass {
    fn raise_call(&mut self, m: &mut Module, call: OpId, callee: &str) -> Option<()> {
        if callee == "sycl_range_ctor" || callee == "sycl_id_ctor" {
            let rank = (m.op_operands(call).len() - 1) as u32;
            let ctx = m.ctx().clone();
            let ty = if callee == "sycl_range_ctor" {
                types::range_type(&ctx, rank)
            } else {
                types::id_type(&ctx, rank)
            };
            self.replace_with_constructor(m, call, ty);
            return Some(());
        }
        if let Some(rest) = callee.strip_prefix("sycl_buffer_ctor_") {
            let (elem, rank) = parse_elem_rank(m, rest)?;
            let ctx = m.ctx().clone();
            let ty = types::buffer_type(&ctx, elem, rank);
            self.replace_with_constructor(m, call, ty);
            return Some(());
        }
        if let Some(rest) = callee.strip_prefix("sycl_local_accessor_ctor_") {
            let (elem, rank) = parse_elem_rank(m, rest)?;
            let ctx = m.ctx().clone();
            let ty = types::accessor_type(&ctx, elem, rank, AccessMode::ReadWrite, Target::Local);
            self.replace_with_constructor(m, call, ty);
            return Some(());
        }
        if let Some(rest) = callee.strip_prefix("sycl_accessor_ctor_") {
            let mut parts = rest.splitn(3, '_');
            let elem_s = parts.next()?;
            let rank_s = parts.next()?;
            let mode_s = parts.next()?;
            let elem = parse_elem(m, elem_s)?;
            let rank: u32 = rank_s.parse().ok()?;
            let mode = AccessMode::parse(mode_s)?;
            let ctx = m.ctx().clone();
            let ty = types::accessor_type(&ctx, elem, rank, mode, Target::Global);
            self.replace_with_constructor(m, call, ty);
            return Some(());
        }
        if let Some(kernel) = callee.strip_prefix("sycl_parallel_for_nd_") {
            self.replace_with_schedule(m, call, kernel, sycl_mlir_sycl::host::FORM_ND_RANGE);
            return Some(());
        }
        if let Some(kernel) = callee.strip_prefix("sycl_parallel_for_range_") {
            self.replace_with_schedule(m, call, kernel, sycl_mlir_sycl::host::FORM_RANGE);
            return Some(());
        }
        None
    }

    fn replace_with_constructor(&mut self, m: &mut Module, call: OpId, ty: Type) {
        let operands = m.op_operands(call).to_vec();
        let callee_key = m.ctx().common_keys().callee;
        let mut attrs: Vec<(sycl_mlir_ir::AttrKey, Attribute)> = m
            .op_attrs(call)
            .iter()
            .filter(|(k, _)| *k != callee_key)
            .cloned()
            .collect();
        attrs.push((m.ctx().attr_key("type"), Attribute::Type(ty)));
        let name = m.ctx().op("sycl.host.constructor");
        let block = m.op_parent_block(call).expect("attached call");
        let index = m.op_index_in_block(call);
        let new = m.create_op_interned(name, &operands, &[], attrs);
        m.insert_op(block, index, new);
        m.erase_op(call);
        self.stats.constructors_raised += 1;
    }

    fn replace_with_schedule(&mut self, m: &mut Module, call: OpId, kernel: &str, form: &str) {
        let operands = m.op_operands(call).to_vec();
        let attrs = vec![
            (
                "kernel".into(),
                Attribute::SymbolRef(vec![
                    sycl_mlir_sycl::DEVICE_MODULE_SYM.to_string(),
                    kernel.to_string(),
                ]),
            ),
            ("form".into(), Attribute::Str(form.into())),
        ];
        let name = m.ctx().op("sycl.host.schedule_kernel");
        let block = m.op_parent_block(call).expect("attached call");
        let index = m.op_index_in_block(call);
        let new = m.create_op(name, &operands, &[], attrs);
        m.insert_op(block, index, new);
        m.erase_op(call);
        self.stats.kernels_raised += 1;
    }
}

fn parse_elem(m: &Module, s: &str) -> Option<Type> {
    let ctx = m.ctx();
    Some(match s {
        "f32" => ctx.f32_type(),
        "f64" => ctx.f64_type(),
        "i32" => ctx.i32_type(),
        "i64" => ctx.i64_type(),
        _ => return None,
    })
}

fn parse_elem_rank(m: &Module, s: &str) -> Option<(Type, u32)> {
    let (elem_s, rank_s) = s.rsplit_once('_')?;
    let elem = parse_elem(m, elem_s)?;
    let rank: u32 = rank_s.parse().ok()?;
    Some((elem, rank))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_dialects::arith::constant_int;
    use sycl_mlir_dialects::func::{build_func, build_return};
    use sycl_mlir_dialects::llvm;
    use sycl_mlir_ir::{print_module, verify, Builder, Context, Module};

    fn ctx() -> Context {
        let c = Context::new();
        sycl_mlir_dialects::register_all(&c);
        sycl_mlir_sycl::register(&c);
        c
    }

    /// The Listing 8 CGF: three accessors over three buffers plus a
    /// parallel_for — raising must produce the Listing 9 shape.
    #[test]
    fn listing8_raises_to_listing9() {
        let c = ctx();
        let mut m = Module::new(&c);
        let ptr = c.ptr_type();
        let top = m.top();
        let (func, entry) = build_func(
            &mut m,
            top,
            "cgf",
            &[ptr.clone(), ptr.clone(), ptr.clone(), ptr],
            &[],
        );
        let cgh = m.block_arg(entry, 0);
        let bufs = [
            m.block_arg(entry, 1),
            m.block_arg(entry, 2),
            m.block_arg(entry, 3),
        ];
        {
            let mut b = Builder::at_end(&mut m, entry);
            let i64t = b.ctx().i64_type();
            let range = llvm::alloca(&mut b, "sycl::range<1>");
            let size = constant_int(&mut b, 1024, i64t);
            llvm::call(&mut b, "sycl_range_ctor", &[range, size], &[]);
            let mut accs = Vec::new();
            for (i, &buf) in bufs.iter().enumerate() {
                let acc = llvm::alloca(&mut b, "sycl::accessor");
                let mode = if i == 2 { "write" } else { "read" };
                llvm::call(
                    &mut b,
                    &format!("sycl_accessor_ctor_f32_1_{mode}"),
                    &[acc, buf, cgh],
                    &[],
                );
                accs.push(acc);
            }
            let mut args = vec![cgh, range];
            args.extend(&accs);
            llvm::call(&mut b, "sycl_parallel_for_range_K", &args, &[]);
            build_return(&mut b, &[]);
        }
        let mut pass = RaiseHostPass::default();
        let changed = pass.run(&mut m).unwrap();
        assert!(changed);
        assert_eq!(pass.stats.constructors_raised, 4);
        assert_eq!(pass.stats.kernels_raised, 1);
        assert_eq!(pass.stats.unmatched_sycl_calls, 0);
        verify(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
        let text = print_module(&m);
        assert!(text.contains("sycl.host.constructor"), "{text}");
        assert!(text.contains("!sycl.range<1>"), "{text}");
        assert!(
            text.contains("!sycl.accessor<f32, 1, read, global>"),
            "{text}"
        );
        assert!(
            text.contains("!sycl.accessor<f32, 1, write, global>"),
            "{text}"
        );
        assert!(text.contains("sycl.host.schedule_kernel"), "{text}");
        assert!(text.contains("@device::@K"), "{text}");
        assert!(!text.contains("llvm.call"), "{text}");
        let _ = func;
    }

    /// An unknown runtime symbol stays opaque and is counted — the
    /// fragility the paper warns about when the runtime changes.
    #[test]
    fn unknown_runtime_symbol_left_unraised() {
        let c = ctx();
        let mut m = Module::new(&c);
        let top = m.top();
        let (_f, entry) = build_func(&mut m, top, "cgf", &[c.ptr_type()], &[]);
        let cgh = m.block_arg(entry, 0);
        {
            let mut b = Builder::at_end(&mut m, entry);
            llvm::call(&mut b, "sycl_handler_depends_on_v2", &[cgh], &[]);
            build_return(&mut b, &[]);
        }
        let mut pass = RaiseHostPass::default();
        pass.run(&mut m).unwrap();
        assert_eq!(pass.stats.unmatched_sycl_calls, 1);
        let text = print_module(&m);
        assert!(text.contains("llvm.call"), "{text}");
    }
}
