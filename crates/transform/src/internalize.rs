//! Loop internalization (§VI-C of the paper, Listings 6→7).
//!
//! Tiles a kernel's innermost affine loop by the work-group size `M`,
//! prefetches temporally-reused global accesses into `M × M` work-group
//! local tiles, and injects the two group barriers of Listing 7. Gating
//! conditions, straight from the paper:
//!
//! * the memory access analysis (§V-D) classifies each load's coalescing
//!   and temporal reuse; only *loads* with temporal reuse are candidates
//!   (stores are excluded — the paper's stated limitation);
//! * the uniformity analysis (§V-C) must prove the loop is **not** in a
//!   divergent region, or the barriers would deadlock (this is what keeps
//!   Gramschmidt unoptimized, §VIII);
//! * the work-group size must be a compile-time constant — propagated from
//!   the host by the joint analysis (§VII-B) — square, and divide the loop
//!   trip count.

use std::collections::HashMap;
use sycl_mlir_analysis::memaccess::{AccessInfo, AccessKind, DimKind, MemoryAccessAnalysis};
use sycl_mlir_analysis::uniformity::UniformityAnalysis;
use sycl_mlir_ir::dialect::traits;
use sycl_mlir_ir::{Attribute, Builder, Module, OpId, Pass, ValueId, WalkControl};
use sycl_mlir_sycl::device;

/// Statistics of one internalization run.
#[derive(Debug, Default, Clone)]
pub struct InternalizeStats {
    /// Loops tiled (one per kernel loop with ≥1 candidate).
    pub internalized_loops: usize,
    /// Array references prefetched to local memory (GEMM: 2, SYR2K: 4 —
    /// §VIII).
    pub prefetched_refs: usize,
    /// Candidate loops skipped because they sit in divergent regions
    /// (Gramschmidt, §VIII).
    pub skipped_divergent: usize,
    /// Store accesses that would have been candidates but for the
    /// loads-only limitation (§VIII).
    pub skipped_stores: usize,
}

/// The loop-internalization pass.
#[derive(Default)]
pub struct LoopInternalizationPass {
    pub stats: InternalizeStats,
}

impl Pass for LoopInternalizationPass {
    fn name(&self) -> &'static str {
        "loop-internalization"
    }

    fn run(&mut self, m: &mut Module) -> Result<bool, String> {
        let mut kernels = Vec::new();
        m.walk(m.top(), &mut |op| {
            if m.op_is(op, "func.func") && device::is_kernel(m, op) {
                kernels.push(op);
            }
            WalkControl::Advance
        });
        let mut changed = false;
        for k in kernels {
            changed |= self.run_on_kernel(m, k);
        }
        Ok(changed)
    }
}

struct Candidate {
    load: OpId,
    base: ValueId,
    /// Subscript position carrying the loop induction variable.
    k_pos: usize,
    /// The global-id axis used by the thread subscript (GEMM's `A[i][k]`
    /// uses axis 0; SYR2K's `A[j][k]` uses axis 1).
    thread_axis: u32,
    info: AccessInfo,
}

impl LoopInternalizationPass {
    fn run_on_kernel(&mut self, m: &mut Module, func: OpId) -> bool {
        // Work-group size must be known and square (Listing 6 uses
        // `wg_size(M, M)`).
        let Some(local) = m
            .attr(func, sycl_mlir_sycl::KERNEL_LOCAL_RANGE_ATTR)
            .and_then(|a| a.as_dense_i64())
            .map(|v| v.to_vec())
        else {
            return false;
        };
        if local.len() != 2 || local[0] != local[1] || local[0] < 2 {
            return false;
        }
        let tile = local[0];

        // The kernel's nd_item parameter (needed for local ids + barrier).
        let entry = m.op_region_block(func, 0);
        let Some(item) = m.block_args(entry).iter().rev().copied().find(|&a| {
            m.value_type(a)
                .dialect_type::<sycl_mlir_sycl::types::NdItemType>()
                .map(|t| t.dim == 2)
                .is_some_and(|x| x)
        }) else {
            return false;
        };

        // Innermost affine loops.
        let mut loops = Vec::new();
        m.walk(func, &mut |op| {
            if m.op_is(op, "affine.for") {
                loops.push(op);
            }
            WalkControl::Advance
        });
        let uniformity = UniformityAnalysis::compute(m, func);

        let mut changed = false;
        for l in loops {
            if m.op_is_erased(l) {
                continue;
            }
            // Innermost only, and barrier-free.
            let mut innermost = true;
            let mut has_barrier = false;
            m.walk(l, &mut |op| {
                if op != l && m.op_info(op).has_trait(traits::LOOP_LIKE) {
                    innermost = false;
                }
                if m.op_info(op).has_trait(traits::BARRIER) {
                    has_barrier = true;
                }
                WalkControl::Advance
            });
            if !innermost || has_barrier {
                continue;
            }
            // Constant bounds, step 1, trip count divisible by the tile.
            let lb = sycl_mlir_dialects::arith::const_int_of(m, m.op_operand(l, 0));
            let ub = sycl_mlir_dialects::arith::const_int_of(m, m.op_operand(l, 1));
            let step = sycl_mlir_dialects::arith::const_int_of(m, m.op_operand(l, 2));
            let (Some(lb), Some(ub), Some(1)) = (lb, ub, step) else {
                continue;
            };
            if (ub - lb) % tile != 0 || ub <= lb {
                continue;
            }
            let candidates = self.collect_candidates(m, func, l);
            if candidates.is_empty() {
                continue;
            }
            // Barrier legality: not in a divergent region (§V-C).
            if uniformity.is_divergent_at(m, l, func) {
                self.stats.skipped_divergent += 1;
                continue;
            }
            self.stats.prefetched_refs += candidates.len();
            self.stats.internalized_loops += 1;
            internalize(m, l, item, tile, candidates);
            changed = true;
        }
        changed
    }

    fn collect_candidates(&mut self, m: &Module, _func: OpId, loop_op: OpId) -> Vec<Candidate> {
        let maa = MemoryAccessAnalysis::analyze(m, loop_op);
        let mut out = Vec::new();
        let body = m.op_region_block(loop_op, 0);
        for a in maa.accesses {
            if !a.has_temporal_reuse() {
                continue;
            }
            if a.kind == AccessKind::Store {
                self.stats.skipped_stores += 1;
                continue;
            }
            // Base must be a rank-2 global accessor.
            let base_ty = m.value_type(a.base);
            let Some(acc) = sycl_mlir_sycl::types::accessor_info(&base_ty) else {
                continue;
            };
            if acc.dim != 2 || acc.target != sycl_mlir_sycl::types::Target::Local {
                // rank-2 global accessors only
                if acc.dim != 2 {
                    continue;
                }
            }
            if acc.target == sycl_mlir_sycl::types::Target::Local {
                continue;
            }
            // The load must sit directly in the loop body.
            if m.op_parent_block(a.load_op()) != Some(body) {
                continue;
            }
            let Some(k_pos) = k_position(&a, loop_op) else {
                continue;
            };
            // The other subscript must involve exactly one global-id axis
            // (its coefficients define the tile mapping) and no local ids
            // or loop ivs.
            let q = 1 - k_pos;
            let mut thread_axis: Option<u32> = None;
            let mut ok = true;
            for (&c, d) in a.matrix[q].iter().zip(&a.dims) {
                if c == 0 {
                    continue;
                }
                match d {
                    DimKind::GlobalId(ax) => {
                        if thread_axis.is_some() && thread_axis != Some(*ax) {
                            ok = false;
                        }
                        thread_axis = Some(*ax);
                    }
                    DimKind::LocalId(_) | DimKind::LoopIv(_) => ok = false,
                }
            }
            let Some(thread_axis) = thread_axis else {
                continue;
            };
            // All dim values (gids) must be defined outside the loop.
            let defined_outside = a.dim_values.iter().zip(&a.dims).all(|(&v, d)| {
                matches!(d, DimKind::LoopIv(_)) || m.value_defined_outside(v, loop_op)
            });
            if ok && defined_outside {
                out.push(Candidate {
                    load: a.op,
                    base: a.base,
                    k_pos,
                    thread_axis,
                    info: a,
                });
            }
        }
        out
    }
}

/// The subscript position where this loop's induction variable appears with
/// coefficient exactly 1 (and nowhere else).
fn k_position(a: &AccessInfo, loop_op: OpId) -> Option<usize> {
    let col = a
        .dims
        .iter()
        .position(|d| matches!(d, DimKind::LoopIv(l) if *l == loop_op))?;
    let mut pos = None;
    for (row, coeffs) in a.matrix.iter().enumerate() {
        match coeffs[col] {
            0 => {}
            1 if pos.is_none() => pos = Some(row),
            _ => return None,
        }
    }
    if a.matrix.len() != 2 {
        return None;
    }
    pos
}

trait AccessInfoExt {
    fn load_op(&self) -> OpId;
}

impl AccessInfoExt for AccessInfo {
    fn load_op(&self) -> OpId {
        self.op
    }
}

/// Materialize `Σ coeff_j · dim_j + offset` at the builder's position,
/// substituting `subst` for selected dimensions.
fn materialize_row(
    b: &mut Builder<'_>,
    info: &AccessInfo,
    row: usize,
    subst: &HashMap<usize, ValueId>,
) -> ValueId {
    let mut acc: Option<ValueId> = None;
    for (j, &coeff) in info.matrix[row].iter().enumerate() {
        if coeff == 0 {
            continue;
        }
        let dim_v = subst.get(&j).copied().unwrap_or(info.dim_values[j]);
        let term = if coeff == 1 {
            dim_v
        } else {
            let cst = sycl_mlir_dialects::arith::constant_index(b, coeff);
            sycl_mlir_dialects::arith::muli(b, dim_v, cst)
        };
        acc = Some(match acc {
            None => term,
            Some(prev) => sycl_mlir_dialects::arith::addi(b, prev, term),
        });
    }
    let offset = info.offsets[row];
    match (acc, offset) {
        (Some(v), 0) => v,
        (Some(v), o) => {
            let cst = sycl_mlir_dialects::arith::constant_index(b, o);
            sycl_mlir_dialects::arith::addi(b, v, cst)
        }
        (None, o) => sycl_mlir_dialects::arith::constant_index(b, o),
    }
}

/// Perform the Listing 6 → Listing 7 rewrite.
fn internalize(
    m: &mut Module,
    loop_op: OpId,
    item: ValueId,
    tile: i64,
    candidates: Vec<Candidate>,
) {
    let old_operands = m.op_operands(loop_op).to_vec();
    let old_results = m.op_results(loop_op).to_vec();
    let old_body = m.op_region_block(loop_op, 0);
    let old_args = m.block_args(old_body).to_vec();
    let old_iv = old_args[0];
    let old_yield = m.block_terminator(old_body).expect("terminator");
    let old_yield_operands = m.op_operands(old_yield).to_vec();
    let result_types: Vec<_> = old_results.iter().map(|&r| m.value_type(r)).collect();

    // Prologue before the loop: local ids, group handle, tiles.
    let (lx, ly, g0, g1, group, tiles, m_step) = {
        let mut b = Builder::before(m, loop_op);
        let lx = device::local_id(&mut b, item, 0);
        let ly = device::local_id(&mut b, item, 1);
        let g0 = device::group_id(&mut b, item, 0);
        let g1 = device::group_id(&mut b, item, 1);
        let group = device::get_group(&mut b, item);
        let mut tiles = Vec::new();
        for c in &candidates {
            let elem = sycl_mlir_sycl::types::accessor_info(&b.module().value_type(c.base))
                .expect("accessor base")
                .elem
                .clone();
            let t = device::local_alloca(&mut b, elem, &[tile, tile]);
            tiles.push(t);
        }
        let m_step = sycl_mlir_dialects::arith::constant_index(&mut b, tile);
        (lx, ly, g0, g1, group, tiles, m_step)
    };

    // Outer tile loop: `for t = lb to ub step M`.
    let outer_name = m.ctx().op("affine.for");
    let mut outer_operands = vec![old_operands[0], old_operands[1], m_step];
    outer_operands.extend_from_slice(&old_operands[3..]);
    let outer = m.create_op(outer_name, &outer_operands, &result_types, vec![]);
    {
        let block = m.op_parent_block(loop_op).expect("attached");
        let index = m.op_index_in_block(loop_op);
        m.insert_op(block, index, outer);
    }
    let outer_region = m.add_region(outer);
    let mut outer_arg_types = vec![m.ctx().index_type()];
    outer_arg_types.extend(result_types.iter().cloned());
    let outer_body = m.add_block(outer_region, &outer_arg_types);
    let t_iv = m.block_arg(outer_body, 0);
    let outer_iters: Vec<ValueId> = m.block_args(outer_body)[1..].to_vec();

    // Prefetch phase + first barrier (Listing 7 lines 14–16).
    {
        let mut b = Builder::at_end(m, outer_body);
        for (c, &tile_mem) in candidates.iter().zip(&tiles) {
            // Tile coordinates: position p (the k subscript) is enumerated
            // by one local axis, position q (the thread subscript) by the
            // other; the work-group covers the thread axis via
            // `group(a)*M + lid`.
            let lid_k = if c.k_pos == 0 { lx } else { ly };
            let lid_q = if c.k_pos == 0 { ly } else { lx };
            let k_sub = sycl_mlir_dialects::arith::addi(&mut b, t_iv, lid_k);
            let ga = if c.thread_axis == 0 { g0 } else { g1 };
            let base = sycl_mlir_dialects::arith::muli(&mut b, ga, m_step);
            let gid_sub = sycl_mlir_dialects::arith::addi(&mut b, base, lid_q);
            let k_col = c
                .info
                .dims
                .iter()
                .position(|d| matches!(d, DimKind::LoopIv(l) if *l == loop_op))
                .expect("loop dim");
            let gid_col = c
                .info
                .dims
                .iter()
                .position(|d| matches!(d, DimKind::GlobalId(ax) if *ax == c.thread_axis))
                .expect("thread dim");
            let mut subst = HashMap::new();
            subst.insert(k_col, k_sub);
            subst.insert(gid_col, gid_sub);
            let sub0 = materialize_row(&mut b, &c.info, 0, &subst);
            let sub1 = materialize_row(&mut b, &c.info, 1, &subst);
            let id = device::make_id(&mut b, &[sub0, sub1]);
            let view = device::subscript(&mut b, c.base, id);
            let zero = sycl_mlir_dialects::arith::constant_index(&mut b, 0);
            let val = sycl_mlir_dialects::affine::load(&mut b, view, &[zero]);
            // Tile layout: dim 0 indexes the k offset, dim 1 the thread
            // offset within the group's thread-axis window.
            sycl_mlir_dialects::affine::store(&mut b, val, tile_mem, &[lid_k, lid_q]);
        }
        device::group_barrier(&mut b, group);
    }

    // Inner loop over the tile (Listing 7 lines 17–18).
    let inner = {
        let mut b = Builder::at_end(m, outer_body);
        let zero = sycl_mlir_dialects::arith::constant_index(&mut b, 0);
        let tile_c = sycl_mlir_dialects::arith::constant_index(&mut b, tile);
        let one = sycl_mlir_dialects::arith::constant_index(&mut b, 1);
        let inner_name = b.ctx().op("affine.for");
        let mut inner_operands = vec![zero, tile_c, one];
        inner_operands.extend_from_slice(&outer_iters);
        let m = b.module();
        let inner = m.create_op(inner_name, &inner_operands, &result_types, vec![]);
        b.insert(inner);
        inner
    };
    let inner_region = m.add_region(inner);
    let mut inner_arg_types = vec![m.ctx().index_type()];
    inner_arg_types.extend(result_types.iter().cloned());
    let inner_body = m.add_block(inner_region, &inner_arg_types);
    let kk = m.block_arg(inner_body, 0);

    // Clone the original body into the inner loop.
    let mut mapping: HashMap<ValueId, ValueId> = HashMap::new();
    // old iv -> t + kk
    {
        let mut b = Builder::at_end(m, inner_body);
        let k_global = sycl_mlir_dialects::arith::addi(&mut b, t_iv, kk);
        mapping.insert(old_iv, k_global);
    }
    for (i, &old_iter) in old_args[1..].iter().enumerate() {
        mapping.insert(old_iter, m.block_arg(inner_body, 1 + i));
    }
    let candidate_of = |op: OpId| candidates.iter().position(|c| c.load == op);
    for &op in m.block_ops(old_body).to_vec().iter() {
        if op == old_yield {
            continue;
        }
        if let Some(ci) = candidate_of(op) {
            // Replace the global load with a tile load (Listing 7 line 18):
            // tile[kk][own offset along the access's thread axis].
            let c = &candidates[ci];
            let tile_mem = tiles[ci];
            let mut b = Builder::at_end(m, inner_body);
            let own = if c.thread_axis == 0 { lx } else { ly };
            let v = sycl_mlir_dialects::affine::load(&mut b, tile_mem, &[kk, own]);
            mapping.insert(m.op_result(c.load, 0), v);
            continue;
        }
        let cloned = m.clone_op(op, &mut mapping);
        m.append_op(inner_body, cloned);
    }
    {
        let yname = m.ctx().op("affine.yield");
        let mapped: Vec<ValueId> = old_yield_operands
            .iter()
            .map(|v| *mapping.get(v).unwrap_or(v))
            .collect();
        let y = m.create_op(yname, &mapped, &[], vec![]);
        m.append_op(inner_body, y);
    }

    // Second barrier + outer yield (Listing 7 lines 19–20).
    {
        let inner_results = m.op_results(inner).to_vec();
        let mut b = Builder::at_end(m, outer_body);
        device::group_barrier(&mut b, group);
        let yname = b.ctx().op("affine.yield");
        let m = b.module();
        let y = m.create_op(yname, &inner_results, &[], vec![]);
        m.append_op(outer_body, y);
    }

    // Rewire and drop the original loop.
    for (i, &r) in old_results.iter().enumerate() {
        let n = m.op_result(outer, i);
        m.replace_all_uses(r, n);
    }
    m.erase_op(loop_op);
    m.set_attr(outer, "sycl.internalized", Attribute::Unit);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_dialects::affine::build_affine_for;
    use sycl_mlir_dialects::arith::{self, constant_index};
    use sycl_mlir_dialects::func::{build_func, build_return};
    use sycl_mlir_ir::{print_module, verify, Context, Module};
    use sycl_mlir_sycl::device::{global_id, make_id, mark_kernel, subscript};
    use sycl_mlir_sycl::types::{accessor_type, nd_item_type, AccessMode, Target};

    fn ctx() -> Context {
        let c = Context::new();
        sycl_mlir_dialects::register_all(&c);
        sycl_mlir_sycl::register(&c);
        c
    }

    /// Build the Listing 6 matmul kernel: C[i][j] += A[i][k] * B[k][j].
    fn build_matmul(m: &mut Module, n: i64, wg: i64) -> OpId {
        let c = m.ctx().clone();
        let acc2r = accessor_type(&c, c.f32_type(), 2, AccessMode::Read, Target::Global);
        let acc2w = accessor_type(&c, c.f32_type(), 2, AccessMode::ReadWrite, Target::Global);
        let nd2 = nd_item_type(&c, 2);
        let top = m.top();
        let (func, entry) = build_func(
            m,
            top,
            "matrix_multiply",
            &[acc2r.clone(), acc2r, acc2w, nd2],
            &[],
        );
        mark_kernel(m, func);
        m.set_attr(
            func,
            sycl_mlir_sycl::KERNEL_LOCAL_RANGE_ATTR,
            Attribute::DenseI64(vec![wg, wg]),
        );
        m.set_attr(
            func,
            sycl_mlir_analysis::alias::ARG_BUFFER_IDS_ATTR,
            Attribute::DenseI64(vec![0, 1, 2, -1]),
        );
        let a_acc = m.block_arg(entry, 0);
        let b_acc = m.block_arg(entry, 1);
        let c_acc = m.block_arg(entry, 2);
        let item = m.block_arg(entry, 3);
        {
            let mut b = Builder::at_end(m, entry);
            let i = global_id(&mut b, item, 0);
            let j = global_id(&mut b, item, 1);
            let zero = constant_index(&mut b, 0);
            let nn = constant_index(&mut b, n);
            let one = constant_index(&mut b, 1);
            build_affine_for(&mut b, zero, nn, one, &[], |inner, k, _| {
                let z = constant_index(inner, 0);
                let id_a = make_id(inner, &[i, k]);
                let va = subscript(inner, a_acc, id_a);
                let la = sycl_mlir_dialects::affine::load(inner, va, &[z]);
                let id_b = make_id(inner, &[k, j]);
                let vb = subscript(inner, b_acc, id_b);
                let lb = sycl_mlir_dialects::affine::load(inner, vb, &[z]);
                let prod = arith::mulf(inner, la, lb);
                let id_c = make_id(inner, &[i, j]);
                let vc = subscript(inner, c_acc, id_c);
                let lc = sycl_mlir_dialects::affine::load(inner, vc, &[z]);
                let sum = arith::addf(inner, lc, prod);
                sycl_mlir_dialects::affine::store(inner, sum, vc, &[z]);
                vec![]
            });
            build_return(&mut b, &[]);
        }
        func
    }

    /// Listing 6 → Listing 7: two refs prefetched, two barriers, tiled loop.
    #[test]
    fn matmul_is_internalized() {
        let c = ctx();
        let mut m = Module::new(&c);
        build_matmul(&mut m, 64, 16);
        let mut pass = LoopInternalizationPass::default();
        let changed = pass.run(&mut m).unwrap();
        assert!(changed);
        assert_eq!(pass.stats.internalized_loops, 1);
        assert_eq!(pass.stats.prefetched_refs, 2);
        verify(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
        let text = print_module(&m);
        assert_eq!(text.matches("sycl.group.barrier").count(), 2, "{text}");
        assert_eq!(text.matches("sycl.local.alloca").count(), 2, "{text}");
        // Nested tiling: outer (step M) + inner loops.
        assert_eq!(text.matches("affine.for").count(), 2, "{text}");
    }

    /// No local-range attribute (host analysis didn't run): no transform.
    #[test]
    fn unknown_wg_size_blocks_internalization() {
        let c = ctx();
        let mut m = Module::new(&c);
        let func = build_matmul(&mut m, 64, 16);
        m.remove_attr(func, sycl_mlir_sycl::KERNEL_LOCAL_RANGE_ATTR);
        let mut pass = LoopInternalizationPass::default();
        let changed = pass.run(&mut m).unwrap();
        assert!(!changed);
    }

    /// A candidate loop inside a divergent branch is skipped — the
    /// Gramschmidt case of §VIII.
    #[test]
    fn divergent_region_blocks_internalization() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc2 = accessor_type(&c, c.f32_type(), 2, AccessMode::Read, Target::Global);
        let acc2w = accessor_type(&c, c.f32_type(), 2, AccessMode::ReadWrite, Target::Global);
        let nd2 = nd_item_type(&c, 2);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "gram", &[acc2.clone(), acc2, acc2w, nd2], &[]);
        mark_kernel(&mut m, func);
        m.set_attr(
            func,
            sycl_mlir_sycl::KERNEL_LOCAL_RANGE_ATTR,
            Attribute::DenseI64(vec![16, 16]),
        );
        let a_acc = m.block_arg(entry, 0);
        let b_acc = m.block_arg(entry, 1);
        let c_acc = m.block_arg(entry, 2);
        let item = m.block_arg(entry, 3);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let i = global_id(&mut b, item, 0);
            let j = global_id(&mut b, item, 1);
            let zero = constant_index(&mut b, 0);
            // Divergent guard: if (gid0 > 0) { candidate loop }.
            let div_cond = arith::cmpi(&mut b, "sgt", i, zero);
            sycl_mlir_dialects::scf::build_if(
                &mut b,
                div_cond,
                &[],
                |inner| {
                    let z = constant_index(inner, 0);
                    let nn = constant_index(inner, 64);
                    let one = constant_index(inner, 1);
                    build_affine_for(inner, z, nn, one, &[], |body, k, _| {
                        let z2 = constant_index(body, 0);
                        let id_a = make_id(body, &[i, k]);
                        let va = subscript(body, a_acc, id_a);
                        let la = sycl_mlir_dialects::affine::load(body, va, &[z2]);
                        let id_b = make_id(body, &[k, j]);
                        let vb = subscript(body, b_acc, id_b);
                        let lb = sycl_mlir_dialects::affine::load(body, vb, &[z2]);
                        let prod = arith::mulf(body, la, lb);
                        let id_c = make_id(body, &[i, j]);
                        let vc = subscript(body, c_acc, id_c);
                        let lc = sycl_mlir_dialects::affine::load(body, vc, &[z2]);
                        let sum = arith::addf(body, lc, prod);
                        sycl_mlir_dialects::affine::store(body, sum, vc, &[z2]);
                        vec![]
                    });
                    vec![]
                },
                |_| vec![],
            );
            build_return(&mut b, &[]);
        }
        let mut pass = LoopInternalizationPass::default();
        let changed = pass.run(&mut m).unwrap();
        assert!(!changed);
        assert_eq!(pass.stats.skipped_divergent, 1);
        let text = print_module(&m);
        assert!(!text.contains("sycl.group.barrier"), "{text}");
    }

    /// Trip count not divisible by the tile: no transform.
    #[test]
    fn indivisible_trip_count_blocks_internalization() {
        let c = ctx();
        let mut m = Module::new(&c);
        build_matmul(&mut m, 65, 16);
        let mut pass = LoopInternalizationPass::default();
        assert!(!pass.run(&mut m).unwrap());
    }
}
