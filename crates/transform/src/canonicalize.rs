//! Generic clean-up passes: canonicalization (folding + DCE via the greedy
//! driver) and common-subexpression elimination.

use std::collections::HashMap;
use sycl_mlir_ir::dialect::traits;
use sycl_mlir_ir::{apply_patterns_greedily, Attribute, Module, OpId, Pass, ValueId};

/// Folding + dead-code elimination to a fixed point.
#[derive(Default)]
pub struct CanonicalizePass;

impl Pass for CanonicalizePass {
    fn name(&self) -> &'static str {
        "canonicalize"
    }

    fn run(&mut self, m: &mut Module) -> Result<bool, String> {
        let top = m.top();
        Ok(apply_patterns_greedily(m, top, &[]))
    }
}

/// Structural key for CSE: op name + operands + attributes + result types
/// (two `arith.constant 1`s of type `i32` and `index` must not merge).
#[derive(PartialEq, Eq, Hash, Clone)]
struct CseKey {
    name: u32,
    operands: Vec<ValueId>,
    attrs: Vec<(u32, String)>,
    result_types: Vec<sycl_mlir_ir::Type>,
}

fn cse_key(m: &Module, op: OpId) -> CseKey {
    CseKey {
        name: m.op_name(op).0,
        operands: m.op_operands(op).to_vec(),
        attrs: m
            .op_attrs(op)
            .iter()
            .map(|(k, v)| (k.0, format!("{v}")))
            .collect(),
        result_types: m.op_results(op).iter().map(|&r| m.value_type(r)).collect(),
    }
}

/// Common-subexpression elimination over pure, region-free operations,
/// scoped by dominance (outer definitions are visible in nested regions).
#[derive(Default)]
pub struct CsePass;

impl Pass for CsePass {
    fn name(&self) -> &'static str {
        "cse"
    }

    fn run(&mut self, m: &mut Module) -> Result<bool, String> {
        let top = m.top();
        let mut changed = false;
        let mut scope = HashMap::new();
        cse_region_op(m, top, &mut scope, &mut changed);
        Ok(changed)
    }
}

fn cse_region_op(
    m: &mut Module,
    op: OpId,
    scope: &mut HashMap<CseKey, Vec<ValueId>>,
    changed: &mut bool,
) {
    let regions = m.op_regions(op).to_vec();
    for region in regions {
        let blocks = m.region_blocks(region).to_vec();
        for block in blocks {
            // Nested scopes see outer bindings but cannot leak theirs out.
            let snapshot = scope.clone();
            let ops = m.block_ops(block).to_vec();
            for inner in ops {
                if m.op_is_erased(inner) {
                    continue;
                }
                let info = m.op_info(inner);
                let pure = info.has_trait(traits::PURE) || info.has_trait(traits::CONSTANT_LIKE);
                if pure && m.op_regions(inner).is_empty() && !m.op_results(inner).is_empty() {
                    let key = cse_key(m, inner);
                    if let Some(existing) = scope.get(&key) {
                        let replacements = existing.clone();
                        m.replace_op(inner, &replacements);
                        *changed = true;
                        continue;
                    }
                    scope.insert(key, m.op_results(inner).to_vec());
                }
                cse_region_op(m, inner, scope, changed);
            }
            *scope = snapshot;
        }
    }
}

/// Tag helper shared by tests and examples: label an op so it can be found
/// again after transformation.
pub fn tag(m: &mut Module, op: OpId, label: &str) {
    m.set_attr(op, "tag", Attribute::Str(label.into()));
}

/// Find an op by its tag under `root`.
pub fn find_tagged(m: &Module, root: OpId, label: &str) -> Option<OpId> {
    let mut found = None;
    m.walk(root, &mut |op| {
        if m.attr(op, "tag").and_then(|a| a.as_str()) == Some(label) {
            found = Some(op);
            return sycl_mlir_ir::WalkControl::Interrupt;
        }
        sycl_mlir_ir::WalkControl::Advance
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_dialects::arith::{addi, constant_index};
    use sycl_mlir_dialects::func::{build_func, build_return};
    use sycl_mlir_dialects::scf::build_for;
    use sycl_mlir_ir::{Builder, Context, Module, PassManager};

    fn ctx() -> Context {
        let c = Context::new();
        sycl_mlir_dialects::register_all(&c);
        sycl_mlir_sycl::register(&c);
        c
    }

    #[test]
    fn cse_merges_duplicate_pure_ops() {
        let c = ctx();
        let mut m = Module::new(&c);
        let top = m.top();
        let (_f, entry) = build_func(&mut m, top, "f", &[c.index_type()], &[]);
        let x = m.block_arg(entry, 0);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let one_a = constant_index(&mut b, 1);
            let one_b = constant_index(&mut b, 1);
            let s1 = addi(&mut b, x, one_a);
            let s2 = addi(&mut b, x, one_b);
            // Keep both alive.
            b.build("llvm.store", &[s1, s1], &[], vec![]);
            b.build("llvm.store", &[s2, s2], &[], vec![]);
            build_return(&mut b, &[]);
        }
        let mut pm = PassManager::new();
        pm.add_pass(CsePass);
        pm.add_pass(CanonicalizePass);
        pm.run(&mut m).unwrap();
        let adds = m
            .nested_ops(m.top())
            .into_iter()
            .filter(|&o| !m.op_is_erased(o) && m.op_is(o, "arith.addi"))
            .count();
        assert_eq!(adds, 1);
    }

    #[test]
    fn cse_respects_region_scoping() {
        let c = ctx();
        let mut m = Module::new(&c);
        let top = m.top();
        let (_f, entry) = build_func(&mut m, top, "f", &[], &[]);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let lb = constant_index(&mut b, 0);
            let ub = constant_index(&mut b, 4);
            let step = constant_index(&mut b, 1);
            // Two sibling loops each defining iv+iv: they must NOT CSE into
            // each other (different regions, no dominance).
            for _ in 0..2 {
                build_for(&mut b, lb, ub, step, &[], |inner, iv, _| {
                    let s = addi(inner, iv, iv);
                    inner.build("llvm.store", &[s, s], &[], vec![]);
                    vec![]
                });
            }
            build_return(&mut b, &[]);
        }
        let mut pm = PassManager::new();
        pm.add_pass(CsePass);
        pm.run(&mut m).unwrap();
        let adds = m
            .nested_ops(m.top())
            .into_iter()
            .filter(|&o| !m.op_is_erased(o) && m.op_is(o, "arith.addi"))
            .count();
        assert_eq!(adds, 2);
    }
}
