//! Array-reduction detection (§VI-B of the paper, Listings 4→5).
//!
//! Finds loops that load an invariant array element, accumulate into it and
//! store it back every iteration, and rewrites them to carry the running
//! value in an `iter_args` scalar: the `2N` memory accesses become `2`.
//! Legality rests on the SYCL-aware alias analysis: nothing else in the
//! loop may touch the reduced location.

use std::collections::HashMap;
use sycl_mlir_analysis::alias::{AliasAnalysis, AliasResult};
use sycl_mlir_analysis::reaching::{access_target, read_target};
use sycl_mlir_ir::dialect::{memory_effects, traits, EffectKind};
use sycl_mlir_ir::{Builder, Module, OpId, Pass, ValueId, WalkControl};

/// The reduction-detection pass.
#[derive(Default)]
pub struct DetectReductionPass {
    /// Number of reductions rewritten (the paper counts 5 in Correlation
    /// and 4 in Covariance).
    pub rewritten: usize,
}

impl Pass for DetectReductionPass {
    fn name(&self) -> &'static str {
        "detect-reduction"
    }

    fn run(&mut self, m: &mut Module) -> Result<bool, String> {
        let mut changed = false;
        // Repeat until no loop offers another opportunity (several array
        // reductions can live in one loop).
        loop {
            let mut loops = Vec::new();
            m.walk(m.top(), &mut |op| {
                if m.op_info(op).has_trait(traits::LOOP_LIKE) {
                    loops.push(op);
                }
                WalkControl::Advance
            });
            let mut round = false;
            for &l in loops.iter().rev() {
                if m.op_is_erased(l) {
                    continue;
                }
                if detect_and_rewrite(m, l) {
                    self.rewritten += 1;
                    round = true;
                    changed = true;
                    break; // op ids shifted; re-collect loops
                }
            }
            if !round {
                break;
            }
        }
        Ok(changed)
    }
}

/// One reduction candidate inside a loop.
struct Candidate {
    load: OpId,
    store: OpId,
}

fn detect_and_rewrite(m: &mut Module, loop_op: OpId) -> bool {
    let Some(cand) = find_candidate(m, loop_op) else {
        return false;
    };
    rewrite(m, loop_op, cand);
    true
}

fn find_candidate(m: &Module, loop_op: OpId) -> Option<Candidate> {
    let aa = AliasAnalysis::new();
    let body = m.op_region_block(loop_op, 0);
    let body_ops = m.block_ops(body).to_vec();

    // Collect all memory accesses in the loop (recursively) once.
    let mut all_accesses: Vec<(OpId, ValueId, Vec<ValueId>, EffectKind)> = Vec::new();
    let mut unknown = false;
    m.walk(loop_op, &mut |op| {
        if op == loop_op {
            return WalkControl::Advance;
        }
        match memory_effects(m, op) {
            Some(effects) => {
                for e in &effects {
                    match e.kind {
                        EffectKind::Write => match access_target(m, op) {
                            Some((mem, idx)) => {
                                all_accesses.push((op, mem, idx, EffectKind::Write))
                            }
                            None => {
                                if e.value.is_none() {
                                    unknown = true
                                }
                            }
                        },
                        EffectKind::Read => match read_target(m, op) {
                            Some((mem, idx)) => all_accesses.push((op, mem, idx, EffectKind::Read)),
                            None => {
                                if e.value.is_none() {
                                    unknown = true
                                }
                            }
                        },
                        _ => {}
                    }
                }
            }
            None => unknown = true,
        }
        if m.op_info(op).has_trait(traits::RECURSIVE_EFFECTS) {
            return WalkControl::Skip;
        }
        WalkControl::Advance
    });
    if unknown {
        return None;
    }

    // Pattern: a top-level invariant load L and a later top-level store S to
    // provably the same location, with no other may-aliasing access.
    for (si, &store) in body_ops.iter().enumerate() {
        if !(m.op_is(store, "affine.store") || m.op_is(store, "memref.store")) {
            continue;
        }
        let (smem, sidx) = access_target(m, store)?;
        // Target must be loop-invariant.
        let invariant = m.value_defined_outside(smem, loop_op)
            && sidx.iter().all(|&v| m.value_defined_outside(v, loop_op));
        if !invariant {
            continue;
        }
        for &load in &body_ops[..si] {
            if !(m.op_is(load, "affine.load") || m.op_is(load, "memref.load")) {
                continue;
            }
            let Some((lmem, lidx)) = read_target(m, load) else {
                continue;
            };
            if aa.access_alias(m, (lmem, &lidx), (smem, &sidx)) != AliasResult::MustAlias {
                continue;
            }
            let l_invariant = m.value_defined_outside(lmem, loop_op)
                && lidx.iter().all(|&v| m.value_defined_outside(v, loop_op));
            if !l_invariant {
                continue;
            }
            // No other access may alias the location.
            let clean = all_accesses.iter().all(|(op, mem, idx, _)| {
                *op == load
                    || *op == store
                    || aa.access_alias(m, (smem, &sidx), (*mem, idx)) == AliasResult::NoAlias
            });
            if clean {
                return Some(Candidate { load, store });
            }
        }
    }
    None
}

/// Rewrite Listing 4 into Listing 5: pre-load the element, thread the
/// running value through `iter_args`, store once after the loop.
fn rewrite(m: &mut Module, loop_op: OpId, cand: Candidate) {
    let (lmem, lidx) = read_target(m, cand.load).expect("load target");
    let stored_value = m.op_operand(cand.store, 0);
    let elem_ty = m.value_type(m.op_result(cand.load, 0));
    let load_name = m.op_name_str(cand.load).to_string();
    let store_name = m.op_name_str(cand.store).to_string();

    // Initial value: re-load the element before the loop.
    let init = {
        let mut b = Builder::before(m, loop_op);
        let mut operands = vec![lmem];
        operands.extend_from_slice(&lidx);
        b.build_value(&load_name, &operands, elem_ty.clone(), vec![])
    };

    // Rebuild the loop with one extra iter_arg.
    let old_operands = m.op_operands(loop_op).to_vec();
    let old_results = m.op_results(loop_op).to_vec();
    let old_body = m.op_region_block(loop_op, 0);
    let old_args = m.block_args(old_body).to_vec();
    let old_yield = m.block_terminator(old_body).expect("loop terminator");
    let old_yield_operands = m.op_operands(old_yield).to_vec();
    let yield_name = m.op_name_str(old_yield).to_string();

    let mut new_operands = old_operands.clone();
    new_operands.push(init);
    let mut new_result_types: Vec<_> = old_results.iter().map(|&r| m.value_type(r)).collect();
    new_result_types.push(elem_ty.clone());
    let loop_name = m.op_name(loop_op);
    let attrs = m.op_attrs(loop_op).to_vec();
    let new_loop = m.create_op_interned(loop_name, &new_operands, &new_result_types, attrs);
    let region = m.add_region(new_loop);
    let mut arg_types: Vec<_> = old_args.iter().map(|&a| m.value_type(a)).collect();
    arg_types.push(elem_ty);
    let new_body = m.add_block(region, &arg_types);

    let mut mapping: HashMap<ValueId, ValueId> = HashMap::new();
    for (i, &old_arg) in old_args.iter().enumerate() {
        mapping.insert(old_arg, m.block_arg(new_body, i));
    }
    // The load's result is replaced by the carried scalar.
    let red_arg = m.block_arg(new_body, old_args.len());
    mapping.insert(m.op_result(cand.load, 0), red_arg);

    for &op in m.block_ops(old_body).to_vec().iter() {
        if op == cand.load || op == cand.store || op == old_yield {
            continue;
        }
        let cloned = m.clone_op(op, &mut mapping);
        m.append_op(new_body, cloned);
    }
    // New yield: old values + the running value.
    let mut new_yield_operands: Vec<ValueId> = old_yield_operands
        .iter()
        .map(|v| *mapping.get(v).unwrap_or(v))
        .collect();
    new_yield_operands.push(*mapping.get(&stored_value).unwrap_or(&stored_value));
    {
        let yname = m.ctx().op(&yield_name);
        let y = m.create_op(yname, &new_yield_operands, &[], vec![]);
        m.append_op(new_body, y);
    }

    // Insert the new loop before the old one, store the final value after.
    let block = m.op_parent_block(loop_op).expect("attached loop");
    let index = m.op_index_in_block(loop_op);
    m.insert_op(block, index, new_loop);
    {
        let mut b = Builder::at(m, block, index + 1);
        let final_v = b.module().op_result(new_loop, new_result_types.len() - 1);
        let mut operands = vec![final_v, lmem];
        operands.extend_from_slice(&lidx);
        b.build(&store_name, &operands, &[], vec![]);
    }

    // Rewire old results and erase the old loop.
    for (i, &r) in old_results.iter().enumerate() {
        let n = m.op_result(new_loop, i);
        m.replace_all_uses(r, n);
    }
    m.erase_op(loop_op);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_dialects::affine::{build_affine_for, load, store};
    use sycl_mlir_dialects::arith;
    use sycl_mlir_dialects::arith::constant_index;
    use sycl_mlir_dialects::func::{build_func, build_return};
    use sycl_mlir_ir::{print_module, verify, Context, Module};

    fn ctx() -> Context {
        let c = Context::new();
        sycl_mlir_dialects::register_all(&c);
        sycl_mlir_sycl::register(&c);
        c
    }

    /// The paper's Listing 4 → Listing 5 rewrite.
    #[test]
    fn listing4_becomes_listing5() {
        let c = ctx();
        let mut m = Module::new(&c);
        let f32t = c.f32_type();
        let mem1 = c.memref_type(f32t.clone(), &[1]);
        let memd = c.memref_type(f32t, &[-1]);
        let top = m.top();
        let (func, entry) = build_func(
            &mut m,
            top,
            "reduction",
            &[mem1, memd, c.index_type(), c.index_type()],
            &[],
        );
        // Host analysis proved the two arrays live in distinct buffers —
        // the SYCL-aware AA precondition for the rewrite (§VI-B).
        m.set_attr(
            func,
            sycl_mlir_analysis::alias::ARG_BUFFER_IDS_ATTR,
            sycl_mlir_ir::Attribute::DenseI64(vec![0, 1, -1, -1]),
        );
        let ptr = m.block_arg(entry, 0);
        let other = m.block_arg(entry, 1);
        let lb = m.block_arg(entry, 2);
        let ub = m.block_arg(entry, 3);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let one = constant_index(&mut b, 1);
            let zero = constant_index(&mut b, 0);
            build_affine_for(&mut b, lb, ub, one, &[], |inner, iv, _| {
                let val = load(inner, ptr, &[zero]);
                let o = load(inner, other, &[iv]);
                let res = arith::addf(inner, val, o);
                store(inner, res, ptr, &[zero]);
                vec![]
            });
            build_return(&mut b, &[]);
        }
        let mut pass = DetectReductionPass::default();
        let changed = pass.run(&mut m).unwrap();
        assert!(changed);
        assert_eq!(pass.rewritten, 1);
        verify(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));

        let text = print_module(&m);
        // The loop now carries one iter_arg and yields it.
        assert!(text.contains("affine.yield"), "{text}");
        // Exactly one load and one store of ptr remain, both outside the loop.
        let func_block = m.op_region_block(func, 0);
        let loop_op = m
            .block_ops(func_block)
            .iter()
            .copied()
            .find(|&o| m.op_is(o, "affine.for"))
            .unwrap();
        assert_eq!(m.op_results(loop_op).len(), 1);
        // Inside the loop: no store at all, and only the `other` load.
        let mut inner_stores = 0;
        let mut inner_loads = 0;
        m.walk(loop_op, &mut |op| {
            if m.op_is(op, "affine.store") {
                inner_stores += 1;
            }
            if m.op_is(op, "affine.load") {
                inner_loads += 1;
            }
            WalkControl::Advance
        });
        assert_eq!(inner_stores, 0, "{text}");
        assert_eq!(inner_loads, 1, "{text}");
    }

    /// When `%ptr` and `%other_ptr` may alias (two raw memref args), the
    /// rewrite must not fire — the paper's legality condition.
    #[test]
    fn aliasing_blocks_rewrite() {
        let c = ctx();
        let mut m = Module::new(&c);
        let f32t = c.f32_type();
        let memd = c.memref_type(f32t, &[-1]);
        let top = m.top();
        let (_func, entry) = build_func(
            &mut m,
            top,
            "maybe_aliased",
            &[memd.clone(), memd, c.index_type(), c.index_type()],
            &[],
        );
        let ptr = m.block_arg(entry, 0);
        let other = m.block_arg(entry, 1);
        let lb = m.block_arg(entry, 2);
        let ub = m.block_arg(entry, 3);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let one = constant_index(&mut b, 1);
            let zero = constant_index(&mut b, 0);
            build_affine_for(&mut b, lb, ub, one, &[], |inner, iv, _| {
                let val = load(inner, ptr, &[zero]);
                let o = load(inner, other, &[iv]);
                let res = arith::addf(inner, val, o);
                store(inner, res, ptr, &[zero]);
                vec![]
            });
            build_return(&mut b, &[]);
        }
        let mut pass = DetectReductionPass::default();
        let changed = pass.run(&mut m).unwrap();
        assert!(!changed);
        assert_eq!(pass.rewritten, 0);
    }

    /// Multiple reductions in one loop are all rewritten (Correlation has
    /// five, §VIII).
    #[test]
    fn multiple_reductions_in_one_loop() {
        let c = ctx();
        let mut m = Module::new(&c);
        let f32t = c.f32_type();
        let mem2 = c.memref_type(f32t.clone(), &[2]);
        let memd = c.memref_type(f32t, &[-1]);
        let top = m.top();
        let (func, entry) = build_func(
            &mut m,
            top,
            "two_reductions",
            &[mem2, memd, c.index_type(), c.index_type()],
            &[],
        );
        m.set_attr(
            func,
            sycl_mlir_analysis::alias::ARG_BUFFER_IDS_ATTR,
            sycl_mlir_ir::Attribute::DenseI64(vec![0, 1, -1, -1]),
        );
        let acc = m.block_arg(entry, 0);
        let other = m.block_arg(entry, 1);
        let lb = m.block_arg(entry, 2);
        let ub = m.block_arg(entry, 3);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let one = constant_index(&mut b, 1);
            let zero = constant_index(&mut b, 0);
            let one_i = constant_index(&mut b, 1);
            build_affine_for(&mut b, lb, ub, one, &[], |inner, iv, _| {
                let v0 = load(inner, acc, &[zero]);
                let o = load(inner, other, &[iv]);
                let s0 = arith::addf(inner, v0, o);
                store(inner, s0, acc, &[zero]);
                let v1 = load(inner, acc, &[one_i]);
                let s1 = arith::mulf(inner, v1, o);
                store(inner, s1, acc, &[one_i]);
                vec![]
            });
            build_return(&mut b, &[]);
        }
        let mut pass = DetectReductionPass::default();
        pass.run(&mut m).unwrap();
        assert_eq!(pass.rewritten, 2);
        verify(&m).unwrap_or_else(|e| panic!("{e}\n{}", print_module(&m)));
        // The surviving loop carries two scalars and does only the `other`
        // load inside.
        let func_block = m.op_region_block(func, 0);
        let loop_op = m
            .block_ops(func_block)
            .iter()
            .copied()
            .find(|&o| m.op_is(o, "affine.for"))
            .unwrap();
        assert_eq!(m.op_results(loop_op).len(), 2);
    }
}
