//! # sycl-mlir-transform — the transformations of §VI and §VII
//!
//! Device optimizations (§VI):
//!
//! * [`licm`] — loop-invariant code motion that also moves memory
//!   operations, guarded by loop versioning (§VI-A);
//! * [`reduction`] — array-reduction detection rewriting memory traffic
//!   into loop-carried scalars (§VI-B, Listings 4→5);
//! * [`internalize`] — loop internalization: tiling + local-memory
//!   prefetch + group barriers (§VI-C, Listings 6→7).
//!
//! Host/joint transformations (§VII):
//!
//! * [`raise`] — host raising from the `llvm` dialect to `sycl.host.*`
//!   operations (§VII-A, Listings 8→9);
//! * [`hostdev`] — host-device constant propagation (ND-range, scalar and
//!   constant-array arguments, accessor members / buffer identities) and
//!   SYCL dead-argument elimination (§VII-B).
//!
//! Generic clean-up passes live in [`canonicalize`].

pub mod canonicalize;
pub mod hostdev;
pub mod internalize;
pub mod licm;
pub mod raise;
pub mod reduction;

pub use canonicalize::{CanonicalizePass, CsePass};
pub use hostdev::{DeadArgumentEliminationPass, HostDeviceConstantPropagationPass};
pub use internalize::LoopInternalizationPass;
pub use licm::LicmPass;
pub use raise::RaiseHostPass;
pub use reduction::DetectReductionPass;
