//! Host-device optimization (§VII-B of the paper).
//!
//! After raising, the host's `sycl.host.constructor` /
//! `sycl.host.schedule_kernel` ops expose each kernel's *invocation
//! context*. This pass analyses every launch site of every kernel in the
//! joint module and propagates into the device code:
//!
//! * **Constant ND-range propagation** — constant global/local ranges land
//!   as kernel attributes and the corresponding getter ops
//!   (`sycl.nd_item.get_global_range`, …) fold to constants;
//! * **Scalar constant propagation** — kernel scalar arguments constant at
//!   every launch site are materialized as constants in the kernel;
//! * **Accessor member propagation** — constant accessor ranges fold
//!   `sycl.accessor.get_range`, and *buffer identities* are attached so the
//!   SYCL-aware alias analysis can separate accessors over distinct buffers
//!   (the refinement §VII-B motivates with Listing 8);
//! * **Constant-array arguments** — read-only accessors over buffers whose
//!   host data is a compile-time constant (the Sobel filter case of §VIII)
//!   are marked `sycl.const_args`, letting the device treat their loads as
//!   constant-memory accesses.
//!
//! [`DeadArgumentEliminationPass`] is the paper's *SYCL Dead Argument
//! Elimination*: kernel arguments left unused after propagation are
//! recorded so the runtime skips passing them, "making kernel launches more
//! efficient on the host side".

use std::collections::HashMap;
use sycl_mlir_ir::{Attribute, Builder, Module, OpId, Pass, ValueId, WalkControl};
use sycl_mlir_sycl::host::schedule_info;
use sycl_mlir_sycl::types::{accessor_info, AccessMode, Target};

/// Statistics of one propagation run.
#[derive(Debug, Default, Clone)]
pub struct HostDevStats {
    pub nd_ranges_propagated: usize,
    pub scalars_propagated: usize,
    pub kernels_annotated: usize,
    pub const_array_args: usize,
    pub getters_folded: usize,
}

/// Host-device constant propagation over a joint module.
#[derive(Default)]
pub struct HostDeviceConstantPropagationPass {
    pub stats: HostDevStats,
}

/// Everything we learned about one kernel argument at one launch site.
#[derive(Clone, Debug, PartialEq)]
enum ArgFact {
    /// Scalar with a compile-time constant value.
    ConstScalar(Attribute),
    /// Accessor over host buffer `buffer_ctor`, with optionally constant
    /// range extents and optionally constant init data.
    Accessor {
        buffer_ctor: OpId,
        range: Option<Vec<i64>>,
        const_data: bool,
        read_only: bool,
    },
    /// Work-group local accessor.
    Local,
    /// Nothing provable.
    Opaque,
}

/// One launch site of a kernel.
#[derive(Clone, Debug)]
struct LaunchInfo {
    global_range: Option<Vec<i64>>,
    local_range: Option<Vec<i64>>,
    args: Vec<ArgFact>,
}

impl Pass for HostDeviceConstantPropagationPass {
    fn name(&self) -> &'static str {
        "host-device-constprop"
    }

    fn run(&mut self, m: &mut Module) -> Result<bool, String> {
        // Gather launches per kernel.
        let mut launches: HashMap<OpId, Vec<LaunchInfo>> = HashMap::new();
        for func in m.funcs_in(m.top()) {
            let mut schedules = Vec::new();
            m.walk(func, &mut |op| {
                if m.op_is(op, "sycl.host.schedule_kernel") {
                    schedules.push(op);
                }
                WalkControl::Advance
            });
            for s in schedules {
                let Some(kernel) = schedule_info::resolve_kernel(m, s) else {
                    continue;
                };
                let info = analyze_launch(m, func, s);
                launches.entry(kernel).or_default().push(info);
            }
        }

        let mut changed = false;
        for (kernel, infos) in launches {
            changed |= self.apply_to_kernel(m, kernel, &infos);
        }
        Ok(changed)
    }
}

/// Find the unique `sycl.host.constructor` in `func` whose destination is
/// `v`.
fn ctor_of(m: &Module, func: OpId, v: ValueId) -> Option<OpId> {
    let mut found = None;
    let mut count = 0;
    m.walk(func, &mut |op| {
        if m.op_is(op, "sycl.host.constructor") && m.op_operands(op).first() == Some(&v) {
            found = Some(op);
            count += 1;
        }
        WalkControl::Advance
    });
    if count == 1 {
        found
    } else {
        None
    }
}

/// Constant extents of a raised range constructor.
fn const_extents(m: &Module, ctor: OpId) -> Option<Vec<i64>> {
    m.op_operands(ctor)[1..]
        .iter()
        .map(|&v| sycl_mlir_dialects::arith::const_int_of(m, v))
        .collect()
}

fn analyze_launch(m: &Module, func: OpId, schedule: OpId) -> LaunchInfo {
    let range_of = |v: ValueId| -> Option<Vec<i64>> {
        let ctor = ctor_of(m, func, v)?;
        const_extents(m, ctor)
    };
    let global_range = range_of(schedule_info::global_range(m, schedule));
    let local_range = schedule_info::local_range(m, schedule).and_then(range_of);

    let mut args = Vec::new();
    for arg in schedule_info::kernel_args(m, schedule) {
        args.push(analyze_arg(m, func, arg));
    }
    LaunchInfo {
        global_range,
        local_range,
        args,
    }
}

fn analyze_arg(m: &Module, func: OpId, arg: ValueId) -> ArgFact {
    // Scalars passed by value.
    if !matches!(m.value_type(arg).kind(), sycl_mlir_ir::TypeKind::Ptr) {
        if let Some(attr) = sycl_mlir_dialects::arith::const_of(m, arg) {
            return ArgFact::ConstScalar(attr);
        }
        return ArgFact::Opaque;
    }
    // Pointers: look for the raised constructor.
    let Some(ctor) = ctor_of(m, func, arg) else {
        return ArgFact::Opaque;
    };
    let Some(ty) = m.attr(ctor, "type").and_then(|a| a.as_type()).cloned() else {
        return ArgFact::Opaque;
    };
    if let Some(acc) = accessor_info(&ty) {
        if acc.target == Target::Local {
            return ArgFact::Local;
        }
        // Global accessor: (dst, buffer, cgh [, range, offset]).
        let ranged = m.op_operands(ctor).len() > 3;
        let Some(&buffer_ptr) = m.op_operands(ctor).get(1) else {
            return ArgFact::Opaque;
        };
        let Some(buffer_ctor) = ctor_of(m, func, buffer_ptr) else {
            return ArgFact::Opaque;
        };
        // Buffer: (dst, host_data, range).
        let range = if ranged {
            None // conservatively unknown for ranged accessors
        } else {
            m.op_operands(buffer_ctor)
                .get(2)
                .and_then(|&r| ctor_of(m, func, r))
                .and_then(|rc| const_extents(m, rc))
        };
        let const_data = m.attr(buffer_ctor, "init_data").is_some()
            && !buffer_written_elsewhere(m, func, buffer_ctor);
        return ArgFact::Accessor {
            buffer_ctor,
            range,
            const_data,
            read_only: acc.mode == AccessMode::Read && !ranged,
        };
    }
    ArgFact::Opaque
}

/// `true` if any *other* accessor over the same buffer could write it
/// (which would invalidate treating the init data as constant).
fn buffer_written_elsewhere(m: &Module, func: OpId, buffer_ctor: OpId) -> bool {
    let buffer_ptr = m.op_operands(buffer_ctor)[0];
    let mut written = false;
    m.walk(func, &mut |op| {
        if op != buffer_ctor
            && m.op_is(op, "sycl.host.constructor")
            && m.op_operands(op).len() >= 2
            && m.op_operands(op)[1] == buffer_ptr
        {
            if let Some(ty) = m.attr(op, "type").and_then(|a| a.as_type()) {
                if let Some(acc) = accessor_info(ty) {
                    if acc.mode.can_write() {
                        written = true;
                    }
                }
            }
        }
        WalkControl::Advance
    });
    written
}

impl HostDeviceConstantPropagationPass {
    fn apply_to_kernel(&mut self, m: &mut Module, kernel: OpId, infos: &[LaunchInfo]) -> bool {
        let mut changed = false;
        let first = &infos[0];

        // --- Constant ND-range propagation ---
        let all_equal = |f: fn(&LaunchInfo) -> &Option<Vec<i64>>| -> Option<Vec<i64>> {
            let v = f(first).clone()?;
            infos.iter().all(|i| f(i).as_ref() == Some(&v)).then_some(v)
        };
        if let Some(g) = all_equal(|i| &i.global_range) {
            m.set_attr(
                kernel,
                sycl_mlir_sycl::KERNEL_GLOBAL_RANGE_ATTR,
                Attribute::DenseI64(g),
            );
            self.stats.nd_ranges_propagated += 1;
            changed = true;
        }
        if let Some(l) = all_equal(|i| &i.local_range) {
            m.set_attr(
                kernel,
                sycl_mlir_sycl::KERNEL_LOCAL_RANGE_ATTR,
                Attribute::DenseI64(l),
            );
            changed = true;
        }

        // --- Per-argument facts, merged across launch sites ---
        let nargs = first.args.len();
        if infos.iter().any(|i| i.args.len() != nargs) {
            return changed;
        }
        let entry = m.op_region_block(kernel, 0);
        let params = m.block_args(entry).to_vec();

        // Buffer identities: use the first launch's partition if every
        // launch induces the same equality pattern.
        let mut buffer_ids = vec![-1_i64; nargs];
        {
            let pattern_consistent = infos.iter().all(|info| {
                for i in 0..nargs {
                    for j in (i + 1)..nargs {
                        let same_first = buffers_same(&first.args[i], &first.args[j]);
                        let same_here = buffers_same(&info.args[i], &info.args[j]);
                        if same_first != same_here {
                            return false;
                        }
                    }
                }
                true
            });
            if pattern_consistent {
                let mut next = 0_i64;
                let mut assigned: HashMap<OpId, i64> = HashMap::new();
                for (i, fact) in first.args.iter().enumerate() {
                    if let ArgFact::Accessor { buffer_ctor, .. } = fact {
                        let id = *assigned.entry(*buffer_ctor).or_insert_with(|| {
                            let id = next;
                            next += 1;
                            id
                        });
                        buffer_ids[i] = id;
                    }
                }
                m.set_attr(
                    kernel,
                    sycl_mlir_analysis::alias::ARG_BUFFER_IDS_ATTR,
                    Attribute::DenseI64(buffer_ids),
                );
                self.stats.kernels_annotated += 1;
                changed = true;
            }
        }

        // Scalar constants, const arrays and accessor ranges.
        let mut const_args = Vec::new();
        let mut arg_ranges: Vec<Attribute> = Vec::new();
        for i in 0..nargs {
            let fact = &first.args[i];
            let agree = infos.iter().all(|info| &info.args[i] == fact);
            match fact {
                ArgFact::ConstScalar(attr) if agree => {
                    if i < params.len() && m.value_has_uses(params[i]) {
                        let mut b = Builder::at(m, entry, 0);
                        let ty = b.module().value_type(params[i]);
                        let cst = b.build_value(
                            "arith.constant",
                            &[],
                            ty,
                            vec![("value".into(), attr.clone())],
                        );
                        b.module().replace_all_uses(params[i], cst);
                        self.stats.scalars_propagated += 1;
                        changed = true;
                    }
                    arg_ranges.push(Attribute::Int(-1));
                }
                ArgFact::Accessor {
                    range,
                    const_data,
                    read_only,
                    ..
                } => {
                    if *const_data && *read_only && agree {
                        const_args.push(i as i64);
                    }
                    match range {
                        Some(r) if agree => arg_ranges.push(Attribute::DenseI64(r.clone())),
                        _ => arg_ranges.push(Attribute::Int(-1)),
                    }
                }
                _ => arg_ranges.push(Attribute::Int(-1)),
            }
        }
        if !const_args.is_empty() {
            self.stats.const_array_args += const_args.len();
            m.set_attr(kernel, "sycl.const_args", Attribute::DenseI64(const_args));
            changed = true;
        }
        m.set_attr(kernel, "sycl.arg_ranges", Attribute::Array(arg_ranges));

        // --- Device-side folding of getters ---
        changed |= self.fold_device_queries(m, kernel);
        changed
    }

    /// Replace `get_global_range` / `get_local_range` / `get_group_range` /
    /// `accessor.get_range` with constants where the kernel attributes pin
    /// them down.
    fn fold_device_queries(&mut self, m: &mut Module, kernel: OpId) -> bool {
        let global = m
            .attr(kernel, sycl_mlir_sycl::KERNEL_GLOBAL_RANGE_ATTR)
            .and_then(|a| a.as_dense_i64())
            .map(|v| v.to_vec());
        let local = m
            .attr(kernel, sycl_mlir_sycl::KERNEL_LOCAL_RANGE_ATTR)
            .and_then(|a| a.as_dense_i64())
            .map(|v| v.to_vec());
        let arg_ranges = m.attr(kernel, "sycl.arg_ranges").cloned();
        let entry = m.op_region_block(kernel, 0);
        let params = m.block_args(entry).to_vec();

        let mut targets: Vec<(OpId, i64)> = Vec::new();
        m.walk(kernel, &mut |op| {
            let name = m.op_name_str(op);
            let dim = m
                .op_operands(op)
                .get(1)
                .and_then(|&d| sycl_mlir_dialects::arith::const_int_of(m, d))
                .unwrap_or(-1);
            let value = match &*name {
                "sycl.nd_item.get_global_range" | "sycl.item.get_range" => {
                    global.as_ref().and_then(|g| g.get(dim as usize).copied())
                }
                "sycl.nd_item.get_local_range" => {
                    local.as_ref().and_then(|l| l.get(dim as usize).copied())
                }
                "sycl.nd_item.get_group_range" => match (&global, &local) {
                    (Some(g), Some(l)) => g
                        .get(dim as usize)
                        .zip(l.get(dim as usize))
                        .map(|(&g, &l)| g / l),
                    _ => None,
                },
                "sycl.accessor.get_range" => {
                    let acc = m.op_operand(op, 0);
                    params
                        .iter()
                        .position(|&p| p == acc)
                        .and_then(|arg_idx| {
                            arg_ranges
                                .as_ref()
                                .and_then(|a| a.as_array())
                                .and_then(|ranges| ranges.get(arg_idx).cloned())
                        })
                        .and_then(|entry| match entry {
                            Attribute::DenseI64(r) => r.get(dim as usize).copied(),
                            _ => None,
                        })
                }
                _ => None,
            };
            if let Some(v) = value {
                targets.push((op, v));
            }
            WalkControl::Advance
        });
        let changed = !targets.is_empty();
        for (op, value) in targets {
            let block = m.op_parent_block(op).expect("attached");
            let index = m.op_index_in_block(op);
            let name = m.ctx().op("arith.constant");
            let ty = m.value_type(m.op_result(op, 0));
            let cst = m.create_op(
                name,
                &[],
                &[ty],
                vec![("value".into(), Attribute::Int(value))],
            );
            m.insert_op(block, index, cst);
            let new_v = m.op_result(cst, 0);
            m.replace_all_uses(m.op_result(op, 0), new_v);
            m.erase_op(op);
            self.stats.getters_folded += 1;
        }
        changed
    }
}

/// Do two arg facts refer to the same host buffer?
fn buffers_same(a: &ArgFact, b: &ArgFact) -> bool {
    match (a, b) {
        (ArgFact::Accessor { buffer_ctor: x, .. }, ArgFact::Accessor { buffer_ctor: y, .. }) => {
            x == y
        }
        _ => false,
    }
}

/// SYCL Dead Argument Elimination (§VII-B): record kernel arguments that
/// are unused after propagation so the runtime can skip them at launch.
#[derive(Default)]
pub struct DeadArgumentEliminationPass {
    pub dead_args_found: usize,
}

impl Pass for DeadArgumentEliminationPass {
    fn name(&self) -> &'static str {
        "sycl-dead-argument-elimination"
    }

    fn run(&mut self, m: &mut Module) -> Result<bool, String> {
        let Some(device) = m.lookup_symbol(m.top(), sycl_mlir_sycl::DEVICE_MODULE_SYM) else {
            return Ok(false);
        };
        let mut changed = false;
        for kernel in m.funcs_in(device) {
            if !sycl_mlir_sycl::device::is_kernel(m, kernel) {
                continue;
            }
            let entry = m.op_region_block(kernel, 0);
            let params = m.block_args(entry).to_vec();
            let mut dead = Vec::new();
            for (i, &p) in params.iter().enumerate() {
                let ty = m.value_type(p);
                if sycl_mlir_sycl::types::is_item_like(&ty) {
                    continue;
                }
                if !m.value_has_uses(p) {
                    dead.push(i as i64);
                }
            }
            if !dead.is_empty() {
                self.dead_args_found += dead.len();
                m.set_attr(
                    kernel,
                    sycl_mlir_sycl::KERNEL_DEAD_ARGS_ATTR,
                    Attribute::DenseI64(dead),
                );
                changed = true;
            }
        }
        Ok(changed)
    }
}
