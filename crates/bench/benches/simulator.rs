//! Criterion benchmarks of the simulator: wall-clock time to execute
//! representative workloads end to end under each flow (the harness itself,
//! not the simulated cycles).

use criterion::{criterion_group, criterion_main, Criterion};
use sycl_mlir_core::FlowKind;

fn bench_workloads(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate");
    group.sample_size(10);
    for name in ["VecAdd (float32)", "GEMM"] {
        let spec = sycl_mlir_benchsuite::all_workloads()
            .into_iter()
            .find(|w| w.name == name)
            .expect("workload registered");
        // Sizes must stay multiples of the work-group geometry.
        let size = if name == "GEMM" {
            32
        } else {
            spec.scaled_size / 4
        };
        for kind in [FlowKind::Dpcpp, FlowKind::SyclMlir] {
            group.bench_function(format!("{name}/{}", kind.name()), |b| {
                b.iter(|| {
                    let r = sycl_mlir_benchsuite::run_workload(&spec, size, kind)
                        .expect("workload runs");
                    assert!(r.valid);
                    r.cycles
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_workloads);
criterion_main!(benches);
