//! Criterion benchmarks of the compiler itself: compile-time of each flow's
//! pipeline over a representative joint module (a GEMM application). This
//! quantifies the cost of the extra analyses/transformations the SYCL-MLIR
//! flow runs at compile time (the trade-off §IX discusses against
//! AdaptiveCpp's run-time JIT).

use criterion::{criterion_group, criterion_main, Criterion};
use sycl_mlir_core::{Flow, FlowKind};

fn bench_pipelines(c: &mut Criterion) {
    let spec = sycl_mlir_benchsuite::all_workloads()
        .into_iter()
        .find(|w| w.name == "GEMM")
        .expect("GEMM registered");
    let mut group = c.benchmark_group("compile");
    for kind in FlowKind::all() {
        group.bench_function(kind.name(), |b| {
            b.iter_batched(
                || (spec.build)(32).module,
                |mut module| {
                    let flow = Flow::new(kind);
                    flow.compile(&mut module).expect("pipeline runs");
                    module
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_analyses(c: &mut Criterion) {
    // Analysis costs on the GEMM kernel (uniformity dominates; it embeds
    // reaching definitions).
    let spec = sycl_mlir_benchsuite::all_workloads()
        .into_iter()
        .find(|w| w.name == "GEMM")
        .expect("GEMM registered");
    let app = (spec.build)(32);
    let m = app.module;
    let device = m
        .lookup_symbol(m.top(), sycl_mlir_sycl::DEVICE_MODULE_SYM)
        .expect("device module");
    let kernel = m.funcs_in(device)[0];
    let mut group = c.benchmark_group("analysis");
    group.bench_function("uniformity", |b| {
        b.iter(|| sycl_mlir_analysis::UniformityAnalysis::compute(&m, kernel))
    });
    group.bench_function("reaching-definitions", |b| {
        b.iter(|| sycl_mlir_analysis::ReachingDefinitions::compute(&m, kernel))
    });
    group.bench_function("memory-access", |b| {
        b.iter(|| sycl_mlir_analysis::MemoryAccessAnalysis::analyze(&m, kernel))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pipelines, bench_analyses
}
criterion_main!(benches);
