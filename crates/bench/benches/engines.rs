//! Criterion benchmarks of the two simulator engines: wall-clock time to
//! execute representative workloads (GEMM for the matmul shape, jacobi for
//! a stencil) under the tree-walk reference interpreter vs the pre-decoded
//! plan executor, and the plan executor's scaling over worker threads.
//! This is the host-side cost of *simulating*, not the simulated cycles —
//! the quantity the plan engine and the work-group thread pool exist to
//! shrink.

use criterion::{criterion_group, criterion_main, Criterion};
use sycl_mlir_benchsuite::run_workload_on;
use sycl_mlir_core::FlowKind;
use sycl_mlir_sim::{Device, Engine, FuseLevel};

fn workload(name: &str) -> (sycl_mlir_benchsuite::WorkloadSpec, i64) {
    let spec = sycl_mlir_benchsuite::all_workloads()
        .into_iter()
        .find(|w| w.name == name)
        .expect("workload registered");
    // Sizes must stay multiples of the work-group geometry.
    let size = if name == "GEMM" { 32 } else { spec.scaled_size };
    (spec, size)
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    for name in ["GEMM", "jacobi"] {
        let (spec, size) = workload(name);
        for engine in [Engine::TreeWalk, Engine::Plan] {
            let device = Device::with_engine(engine);
            group.bench_function(format!("{name}/{}", engine.name()), |b| {
                b.iter(|| {
                    let (r, _) = run_workload_on(&spec, size, FlowKind::SyclMlir, &device)
                        .expect("workload runs");
                    assert!(r.valid);
                    r.cycles
                })
            });
        }
    }
    group.finish();
}

/// The fuse axis: the plan engine with the decoder's peephole fusion
/// off, at the PR 3 pairs-only level, and with full chain fusion
/// (sequential, so the delta is pure per-instruction dispatch).
fn bench_fuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("fuse");
    group.sample_size(10);
    for name in ["GEMM", "jacobi"] {
        let (spec, size) = workload(name);
        for fuse in [FuseLevel::Off, FuseLevel::Pairs, FuseLevel::Chains] {
            let device = Device::with_engine(Engine::Plan)
                .threads(1)
                .fuse_level(fuse);
            group.bench_function(format!("{name}/fuse-{}", fuse.name()), |b| {
                b.iter(|| {
                    let (r, _) = run_workload_on(&spec, size, FlowKind::SyclMlir, &device)
                        .expect("workload runs");
                    assert!(r.valid);
                    r.cycles
                })
            });
        }
    }
    group.finish();
}

/// The batch axis: launch-level parallelism over dependency-free command
/// groups, off vs on, at 4 workers (batching moves nothing without
/// threads to overlap the launches on). Uses the workload with the most
/// independent launches per level.
fn bench_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch");
    group.sample_size(10);
    for name in ["GEMM", "jacobi"] {
        let (spec, size) = workload(name);
        for batch in [false, true] {
            let device = Device::with_engine(Engine::Plan).threads(4).batch(batch);
            let label = if batch { "on" } else { "off" };
            group.bench_function(format!("{name}/batch-{label}"), |b| {
                b.iter(|| {
                    let (r, _) = run_workload_on(&spec, size, FlowKind::SyclMlir, &device)
                        .expect("workload runs");
                    assert!(r.valid);
                    r.cycles
                })
            });
        }
    }
    group.finish();
}

/// The overlap axis: level-barrier batching vs the out-of-order launch
/// scheduler, at 4 workers, on the stencil workload with the longest
/// dependency chains (heat transfer: 50 dependent launches).
fn bench_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlap");
    group.sample_size(10);
    for name in ["1D HeatTransfer (buffer)", "jacobi"] {
        let (spec, size) = workload(name);
        for overlap in [false, true] {
            let device = Device::with_engine(Engine::Plan)
                .threads(4)
                .batch(true)
                .overlap(overlap);
            let label = if overlap { "on" } else { "off" };
            group.bench_function(format!("{name}/overlap-{label}"), |b| {
                b.iter(|| {
                    let (r, _) = run_workload_on(&spec, size, FlowKind::SyclMlir, &device)
                        .expect("workload runs");
                    assert!(r.valid);
                    r.cycles
                })
            });
        }
    }
    group.finish();
}

/// The threads axis: the plan engine's work-group pool at 1/2/4/8 workers.
/// Results are bit-identical across the axis (asserted differentially in
/// `tests/differential.rs`); only wall time moves.
fn bench_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("threads");
    group.sample_size(10);
    for name in ["GEMM", "jacobi"] {
        let (spec, size) = workload(name);
        for threads in [1_usize, 2, 4, 8] {
            let device = Device::with_engine(Engine::Plan).threads(threads);
            group.bench_function(format!("{name}/plan-t{threads}"), |b| {
                b.iter(|| {
                    let (r, _) = run_workload_on(&spec, size, FlowKind::SyclMlir, &device)
                        .expect("workload runs");
                    assert!(r.valid);
                    r.cycles
                })
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engines,
    bench_fuse,
    bench_batch,
    bench_overlap,
    bench_threads
);
criterion_main!(benches);
