//! # sycl-mlir-bench — the evaluation harness (§VIII of the paper)
//!
//! Binaries regenerating every figure/table of the evaluation:
//!
//! * `repro_fig1` — prints the compilation flow of Fig. 1 per implementation
//!   (pipeline stages + IR after each stage on a matmul walkthrough);
//! * `repro_fig2` — the single-kernel speedup comparison of Fig. 2;
//! * `repro_fig3` — the polybench speedup comparison of Fig. 3;
//! * `repro_stencil` — the stencil results reported in §VIII's prose;
//! * `repro_all` — everything above plus the overall geo-means.
//!
//! The simulator is deterministic, so the paper's warm-up + 30-repetition
//! protocol collapses to a single measured run per configuration (JIT costs
//! still land on the AdaptiveCpp "warm-up" and are excluded, like §VIII).

use sycl_mlir_benchsuite::{geo_mean, run_workload_on, Category, RunResult, WorkloadSpec};
use sycl_mlir_core::FlowKind;
use sycl_mlir_sim::{Device, Engine, FuseLevel, JitMode, SchedPolicy, VerifyMode};

/// One row of a speedup table.
#[derive(Debug, Clone)]
pub struct Row {
    pub name: &'static str,
    /// Cycles per flow, ordered as [`FlowKind::all`]. `NaN` = validation
    /// failed (a "missing bar").
    pub cycles: [f64; 3],
    pub valid: [bool; 3],
}

impl Row {
    /// Speedup of `flow` over the DPC++ baseline.
    pub fn speedup(&self, flow: usize) -> f64 {
        if !self.valid[flow] || !self.valid[0] {
            return f64::NAN;
        }
        self.cycles[0] / self.cycles[flow]
    }
}

/// Run every workload of a category; scale factors below 1.0 shrink the
/// (already scaled) problem sizes further for quick runs. The engine and
/// worker count come from the `--engine=tree|plan` / `--threads=N` flags
/// ([`engine_flag`], [`threads_flag`]) or, absent those, the device
/// defaults.
pub fn run_category(category: Category, quick: bool) -> Vec<Row> {
    run_category_on(category, quick, &device_from_args())
}

/// [`run_category`] on an explicit device — lets a caller thread one
/// device through a whole sweep (the `--profile` accumulators live on the
/// device, so the final report must come from the device that ran).
pub fn run_category_on(category: Category, quick: bool, device: &Device) -> Vec<Row> {
    let mut rows = Vec::new();
    for w in sycl_mlir_benchsuite::all_workloads() {
        if w.category != category || !w.in_figure {
            continue;
        }
        rows.push(run_row(&w, quick, device));
    }
    rows
}

/// Run a single workload under all three flows on `device`.
pub fn run_row(w: &WorkloadSpec, quick: bool, device: &Device) -> Row {
    let size = if quick { quick_size(w) } else { w.scaled_size };
    let mut cycles = [f64::NAN; 3];
    let mut valid = [false; 3];
    for (i, kind) in FlowKind::all().into_iter().enumerate() {
        match run_workload_on(w, size, kind, device) {
            Ok((
                RunResult {
                    cycles: c,
                    valid: v,
                    ..
                },
                _,
            )) => {
                cycles[i] = c;
                valid[i] = v;
            }
            Err(e) => {
                // A tripped execution limit (--max-ops / --mem-cap /
                // --deadline-ms) means the workload was wedged and the
                // safety net caught it: exit with the distinct limit
                // status instead of reporting a missing bar.
                if e.contains("execution limit exceeded") {
                    eprintln!("error: {} [{}]: {e}", w.name, kind.name());
                    std::process::exit(LIMIT_EXIT);
                }
                eprintln!("warning: {} [{}] failed: {e}", w.name, kind.name());
            }
        }
    }
    Row {
        name: w.name,
        cycles,
        valid,
    }
}

/// Quick-mode problem size for a workload (shared with the differential
/// tests, which sweep every workload at these sizes).
pub fn quick_size(w: &WorkloadSpec) -> i64 {
    match w.category {
        Category::Polybench => (w.scaled_size / 2).max(32),
        Category::SingleKernel => (w.scaled_size / 4).max(64),
        Category::Stencil => w.scaled_size,
        // Group-aligned so the dynamic-nd-range variants keep their
        // zero-extent tail launch in quick mode too.
        Category::Reduction => (w.scaled_size / 4).max(64),
        Category::Sparse => (w.scaled_size / 4).max(64),
    }
}

/// Print a speedup table in the paper's format (speedup over DPC++,
/// higher is better; `--` marks a failed validation / missing bar).
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    println!(
        "{:<28} {:>12} {:>12}",
        "benchmark", "AdaptiveCpp", "SYCL-MLIR"
    );
    let mut acpp = Vec::new();
    let mut sm = Vec::new();
    for r in rows {
        let a = r.speedup(1);
        let s = r.speedup(2);
        let fmt = |v: f64| {
            if v.is_nan() {
                "--".to_string()
            } else {
                format!("{v:.2}x")
            }
        };
        println!("{:<28} {:>12} {:>12}", r.name, fmt(a), fmt(s));
        if a.is_finite() {
            acpp.push(a);
        }
        if s.is_finite() {
            sm.push(s);
        }
    }
    println!(
        "{:<28} {:>12} {:>12}",
        "geo.-mean",
        format!("{:.2}x", geo_mean(&acpp)),
        format!("{:.2}x", geo_mean(&sm))
    );
}

/// Parse the shared `--quick` flag.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Exit status of a `repro_*` binary when an execution limit tripped
/// (`--max-ops`, `--mem-cap`, `--deadline-ms`): distinct from success
/// (0), ordinary failures (1) and flag errors (2), so CI can tell "the
/// workload was wedged and the safety net caught it" apart from
/// everything else.
pub const LIMIT_EXIT: i32 = 3;

/// The shared flag/environment-variable table of every `repro_*` binary —
/// the single authoritative list of simulator knobs (mirrored by the
/// table in README.md and docs/ARCHITECTURE.md).
pub const KNOB_TABLE: &str = "\
flag            env variable           values        default  effect
--engine=...    SYCL_MLIR_SIM_ENGINE   tree | plan   plan     tree = tree-walk reference interpreter;
                                                              plan = pre-decoded register-file bytecode
--threads=...   SYCL_MLIR_SIM_THREADS  N | auto | 0  1        worker threads for plan-engine launches
                                                              (auto/0 = machine parallelism)
--fuse=...      SYCL_MLIR_SIM_FUSE     on | pairs    on       peephole-fuse decoded plans into
                                       | off                  superinstructions (plan engine only);
                                                              pairs = PR 3 two-instruction rewrites
                                                              only, on = pairs + indexed-access and
                                                              multiply-accumulate chains
--batch=...     SYCL_MLIR_SIM_BATCH    on | off      on       run dependency-free command groups of a
                                                              queue concurrently (plan engine only)
--overlap=...   SYCL_MLIR_SIM_OVERLAP  on | off      on       out-of-order launch scheduling: a command
                                                              group starts as soon as its own deps
                                                              retire (off = PR 3 level barriers)
--host-nodes=.. SYCL_MLIR_SIM_HOST_NODES  on | off   on       run host tasks as first-class launch-graph
                                                              nodes on the worker pool (off = legacy
                                                              segmented schedule: every host task is a
                                                              synchronization barrier)
--sched=...     SYCL_MLIR_SIM_SCHED    fifo          critpath  ready-set drain order of the out-of-order
                                       | critpath             scheduler: longest critical path first, or
                                                              FIFO publication order (A/B baseline);
                                                              results are bit-identical either way
--jit=...       SYCL_MLIR_SIM_JIT      on | off      on       closure-JIT tier of the plan engine:
                                       | always               compile hot decoded plans into
                                                              direct-threaded closure chains
                                                              (always = ignore the launch counter,
                                                              off = stay on the bytecode loop)
--jit-threshold=N  SYCL_MLIR_SIM_JIT_THRESHOLD  launches  1   launch count at which --jit=on
                                                              compiles a cached plan (1 = eagerly)
--verify=...    SYCL_MLIR_SIM_VERIFY   strict | lint lint     decode-time plan verification: prove
                                       | off                  accessor bounds and barrier uniformity
                                                              once per cached plan, then elide the
                                                              proven runtime checks (results stay
                                                              bit-identical). strict = reject plans
                                                              with findings (structured error),
                                                              lint = warn and run them fully checked,
                                                              off = no verification, no elision
--profile=...   SYCL_MLIR_SIM_PROFILE  on | off      off      count executed plan instructions and dump
                                                              per-opcode totals + fusion candidates
--max-ops=N     SYCL_MLIR_SIM_MAX_OPS  integer       off      weighted-operation budget per launch: a
                                                              kernel exceeding it fails with a
                                                              structured limit error (repro binaries
                                                              exit 3) instead of spinning forever
--mem-cap=N     SYCL_MLIR_SIM_MEM_CAP  bytes         off      cap on kernel-driven allocation growth
                                                              (allocas, materialized constants) per
                                                              worker per launch
--deadline-ms=N SYCL_MLIR_SIM_DEADLINE_MS  ms        off      wall-clock deadline per launch graph,
                                                              measured from submission
--quick         -                      -             off      shrink problem sizes for a fast sweep";

/// Print usage for a `repro_*` binary and exit when `--help`/`-h` was
/// passed. Flags win over environment variables; results are
/// bit-identical across every engine/threads/fuse/batch combination —
/// the knobs only move wall time.
pub fn handle_help_flag(binary: &str, purpose: &str) {
    if !std::env::args().any(|a| a == "--help" || a == "-h") {
        return;
    }
    println!("{binary} — {purpose}\n");
    println!("usage: {binary} [--quick] [--engine=tree|plan] [--threads=N] [--fuse=on|pairs|off] [--jit=on|off|always] [--jit-threshold=N] [--batch=on|off] [--overlap=on|off] [--host-nodes=on|off] [--sched=fifo|critpath] [--verify=strict|lint|off] [--profile=on|off] [--max-ops=N] [--mem-cap=BYTES] [--deadline-ms=MS]\n");
    println!("{KNOB_TABLE}");
    println!(
        "\nFlags win over environment variables. Outputs, statistics and cycle\ntables are bit-identical across every engine/threads/fuse/batch/overlap\ncombination (held by tests/differential.rs); those knobs only change\nwall time. The limit knobs (--max-ops, --mem-cap, --deadline-ms) are\nsafety nets: a kernel exceeding one fails with a structured error and\nexit status 3 instead of hanging the run."
    );
    std::process::exit(0);
}

/// Parse a shared `--<name>=on|off` flag. Unknown spellings abort rather
/// than silently benchmarking the wrong configuration.
fn on_off_flag(name: &str) -> Option<bool> {
    let prefix = format!("--{name}=");
    for arg in std::env::args() {
        if let Some(value) = arg.strip_prefix(&prefix) {
            match value {
                "on" | "1" | "true" => return Some(true),
                "off" | "0" | "false" => return Some(false),
                other => {
                    eprintln!("error: unknown --{name} value `{other}` (expected `on` or `off`)");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Parse the shared `--fuse=on|pairs|off` flag (plan-decoder peephole
/// fusion level: `on` = pairs + chains, `pairs` = two-instruction
/// rewrites only, `off` = none). Unknown spellings abort rather than
/// silently benchmarking the wrong configuration.
pub fn fuse_flag() -> Option<FuseLevel> {
    for arg in std::env::args() {
        if let Some(value) = arg.strip_prefix("--fuse=") {
            return Some(FuseLevel::parse(value).unwrap_or_else(|| {
                eprintln!(
                    "error: unknown --fuse value `{value}` (expected `on`, `pairs` or `off`)"
                );
                std::process::exit(2);
            }));
        }
    }
    None
}

/// Parse the shared `--jit=on|off|always` flag (closure-JIT tier of the
/// plan engine: `on` compiles a cached plan once its launch count reaches
/// the threshold, `always` ignores the counter, `off` stays on the
/// bytecode loop). Unknown spellings abort rather than silently
/// benchmarking the wrong tier.
pub fn jit_flag() -> Option<JitMode> {
    for arg in std::env::args() {
        if let Some(value) = arg.strip_prefix("--jit=") {
            return Some(JitMode::parse(value).unwrap_or_else(|| {
                eprintln!(
                    "error: unknown --jit value `{value}` (expected `on`, `off` or `always`)"
                );
                std::process::exit(2);
            }));
        }
    }
    None
}

/// Parse the shared `--jit-threshold=N` flag (launch count at which
/// `--jit=on` compiles a cached plan; `1` compiles eagerly).
pub fn jit_threshold_flag() -> Option<u64> {
    u64_flag("jit-threshold")
}

/// Parse the shared `--batch=on|off` flag (launch-level parallelism over
/// dependency-free command groups).
pub fn batch_flag() -> Option<bool> {
    on_off_flag("batch")
}

/// Parse the shared `--overlap=on|off` flag (out-of-order launch
/// scheduling: overlap dependency levels, off = PR 3 level barriers).
pub fn overlap_flag() -> Option<bool> {
    on_off_flag("overlap")
}

/// Parse the shared `--host-nodes=on|off` flag (host tasks as first-class
/// launch-graph nodes; off = legacy segmented schedule where every host
/// task is a synchronization barrier).
pub fn host_nodes_flag() -> Option<bool> {
    on_off_flag("host-nodes")
}

/// Parse the shared `--sched=fifo|critpath` flag (ready-set drain order
/// of the out-of-order scheduler). Unknown spellings abort rather than
/// silently benchmarking the wrong policy.
pub fn sched_flag() -> Option<SchedPolicy> {
    for arg in std::env::args() {
        if let Some(value) = arg.strip_prefix("--sched=") {
            return Some(SchedPolicy::parse(value).unwrap_or_else(|| {
                eprintln!("error: unknown --sched value `{value}` (expected `fifo` or `critpath`)");
                std::process::exit(2);
            }));
        }
    }
    None
}

/// Parse the shared `--profile=on|off` flag (per-instruction execution
/// counts; dumped after the sweep to rank fusion candidates).
pub fn profile_flag() -> Option<bool> {
    on_off_flag("profile")
}

/// Parse the shared `--verify=strict|lint|off` flag (decode-time plan
/// verification and proven-check elision). Unknown spellings abort
/// rather than silently benchmarking the wrong configuration.
pub fn verify_flag() -> Option<VerifyMode> {
    for arg in std::env::args() {
        if let Some(value) = arg.strip_prefix("--verify=") {
            return Some(VerifyMode::parse(value).unwrap_or_else(|| {
                eprintln!(
                    "error: unknown --verify value `{value}` (expected `strict`, `lint` or `off`)"
                );
                std::process::exit(2);
            }));
        }
    }
    None
}

/// Parse a shared `--<name>=N` non-negative integer flag. Unparsable
/// values abort rather than silently benchmarking the wrong
/// configuration.
fn u64_flag(name: &str) -> Option<u64> {
    let prefix = format!("--{name}=");
    for arg in std::env::args() {
        if let Some(value) = arg.strip_prefix(&prefix) {
            match value.parse::<u64>() {
                Ok(n) => return Some(n),
                Err(_) => {
                    eprintln!("error: --{name} value `{value}` is not a non-negative integer");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Parse the shared `--max-ops=N` flag (weighted-operation budget per
/// launch; a kernel exceeding it fails with a structured limit error).
pub fn max_ops_flag() -> Option<u64> {
    u64_flag("max-ops")
}

/// Parse the shared `--mem-cap=N` flag (bytes of kernel-driven
/// allocation growth allowed per worker per launch).
pub fn mem_cap_flag() -> Option<u64> {
    u64_flag("mem-cap")
}

/// Parse the shared `--deadline-ms=N` flag (wall-clock deadline per
/// launch graph, measured from submission).
pub fn deadline_ms_flag() -> Option<u64> {
    u64_flag("deadline-ms")
}

/// Parse the shared `--engine=tree|plan` flag. Unknown spellings abort
/// rather than silently benchmarking the wrong engine.
pub fn engine_flag() -> Option<Engine> {
    for arg in std::env::args() {
        if let Some(value) = arg.strip_prefix("--engine=") {
            match value {
                "tree" | "treewalk" | "tree-walk" => return Some(Engine::TreeWalk),
                "plan" => return Some(Engine::Plan),
                other => {
                    eprintln!("error: unknown engine `{other}` (expected `tree` or `plan`)");
                    std::process::exit(2);
                }
            }
        }
    }
    None
}

/// Parse the shared `--threads=N` flag (`N` a worker count, or `auto`/`0`
/// for the machine's available parallelism). Unparsable counts abort
/// rather than silently benchmarking the wrong configuration.
pub fn threads_flag() -> Option<usize> {
    for arg in std::env::args() {
        if let Some(value) = arg.strip_prefix("--threads=") {
            match value {
                "auto" | "0" => return Some(sycl_mlir_sim::auto_threads()),
                _ => match value.parse::<usize>() {
                    Ok(n) => return Some(n),
                    Err(_) => {
                        eprintln!(
                            "error: unparsable thread count `{value}` (expected a count, `auto` or `0`)"
                        );
                        std::process::exit(2);
                    }
                },
            }
        }
    }
    None
}

/// The device the repro binaries run on: the `--engine` / `--threads` /
/// `--fuse` / `--jit` / `--jit-threshold` / `--batch` / `--overlap` /
/// `--host-nodes` / `--sched` / `--verify` / `--profile` / `--max-ops` /
/// `--mem-cap` / `--deadline-ms` flags win,
/// then the `SYCL_MLIR_SIM_*` environment variables, then the defaults
/// (plan engine, sequential, fusion/batching/closure-JIT on, no limits).
/// See [`KNOB_TABLE`] for the full list.
pub fn device_from_args() -> Device {
    let mut device = Device::new();
    if let Some(engine) = engine_flag() {
        device = device.engine(engine);
    }
    if let Some(threads) = threads_flag() {
        device = device.threads(threads);
    }
    if let Some(fuse) = fuse_flag() {
        device = device.fuse_level(fuse);
    }
    if let Some(jit) = jit_flag() {
        device = device.jit(jit);
    }
    if let Some(n) = jit_threshold_flag() {
        device = device.jit_threshold(n);
    }
    if let Some(batch) = batch_flag() {
        device = device.batch(batch);
    }
    if let Some(overlap) = overlap_flag() {
        device = device.overlap(overlap);
    }
    if let Some(host_nodes) = host_nodes_flag() {
        device = device.host_nodes(host_nodes);
    }
    if let Some(sched) = sched_flag() {
        device = device.sched(sched);
    }
    if let Some(profile) = profile_flag() {
        device = device.profile(profile);
    }
    if let Some(verify) = verify_flag() {
        device = device.verify(verify);
    }
    if let Some(ops) = max_ops_flag() {
        device = device.max_ops(ops);
    }
    if let Some(bytes) = mem_cap_flag() {
        device = device.mem_cap(bytes);
    }
    if let Some(ms) = deadline_ms_flag() {
        device = device.deadline_ms(ms);
    }
    device
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_handles_missing_bars() {
        let r = Row {
            name: "x",
            cycles: [100.0, f64::NAN, 50.0],
            valid: [true, false, true],
        };
        assert!(r.speedup(1).is_nan());
        assert!((r.speedup(2) - 2.0).abs() < 1e-12);
    }
}
