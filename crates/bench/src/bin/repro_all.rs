//! Runs the complete evaluation of §VIII: Fig. 2, Fig. 3, the stencil
//! table, and the overall geo-means the paper quotes ("Overall, on
//! SYCL-Bench, SYCL-MLIR achieves a geo.-mean speedup of 1.18x over DPC++
//! and also performs better than AdaptiveCpp (geo.-mean 1.13x)").

use sycl_mlir_bench::{print_table, quick_flag, run_category_on};
use sycl_mlir_benchsuite::{geo_mean, Category};

fn main() {
    sycl_mlir_bench::handle_help_flag(
        "repro_all",
        "the complete evaluation of §VIII: Fig. 2, Fig. 3, stencils and overall geo-means",
    );
    let t0 = std::time::Instant::now();
    let quick = quick_flag();
    // One device for the whole sweep: the `--profile` accumulators live
    // on the device that ran the workloads.
    let device = sycl_mlir_bench::device_from_args();
    let fig2 = run_category_on(Category::SingleKernel, quick, &device);
    let fig3 = run_category_on(Category::Polybench, quick, &device);
    let stencil = run_category_on(Category::Stencil, quick, &device);

    print_table("Fig. 2: single-kernel benchmarks", &fig2);
    print_table("Fig. 3: polybench benchmarks", &fig3);
    print_table("Stencil workloads", &stencil);

    // Overall SYCL-Bench geo-means (Fig. 2 + Fig. 3 categories).
    let mut sm = Vec::new();
    let mut acpp = Vec::new();
    for r in fig2.iter().chain(&fig3) {
        let s = r.speedup(2);
        let a = r.speedup(1);
        if s.is_finite() {
            sm.push(s);
        }
        if a.is_finite() {
            acpp.push(a);
        }
    }
    println!("\n== Overall (SYCL-Bench: Fig. 2 + Fig. 3) ==");
    println!(
        "SYCL-MLIR geo.-mean over DPC++:  {:.2}x   (paper: 1.18x)",
        geo_mean(&sm)
    );
    println!(
        "AdaptiveCpp geo.-mean over DPC++: {:.2}x   (paper: 1.13x)",
        geo_mean(&acpp)
    );

    // The `--profile` dump: per-opcode execution totals plus the hottest
    // dataflow-adjacent pairs — the ranked candidates for the next
    // fusion superinstruction.
    if let Some(report) = device.profile_report() {
        println!("\n{report}");
    }

    // Machine-readable wall-time line for the perf trajectory in the
    // BENCH_*.json harness records. Covers the whole sweep (compilation of
    // every flow + simulation); simulation dominates and is what the
    // engine/thread choice moves.
    //
    // The tree-walk reference always runs sequentially, so record the
    // worker count that actually applied, not the requested flag — a
    // `--engine=tree --threads=4` run must not masquerade as a 4-thread
    // measurement in the perf trajectory.
    let effective_threads = match device.engine {
        sycl_mlir_sim::Engine::Plan => device.threads,
        sycl_mlir_sim::Engine::TreeWalk => 1,
    };
    // Fusion, batching and overlap are plan-engine features; report what
    // applied (overlap requires batch).
    let on_off = |b: bool| if b { "on" } else { "off" };
    let (fuse, batch, overlap) = match device.engine {
        sycl_mlir_sim::Engine::Plan => (device.fuse, device.batch, device.batch && device.overlap),
        sycl_mlir_sim::Engine::TreeWalk => (sycl_mlir_sim::FuseLevel::Off, false, false),
    };
    let fuse_name = fuse.name();
    println!(
        "\nrepro_wall_time_seconds: {:.3} (engine: {}, threads: {effective_threads}, fuse: {fuse_name}, batch: {}, overlap: {}, quick: {quick})",
        t0.elapsed().as_secs_f64(),
        device.engine.name(),
        on_off(batch),
        on_off(overlap),
    );
}
