//! Runs the complete evaluation of §VIII: Fig. 2, Fig. 3, the stencil
//! table, the reduction/scan and sparse indirect-index extension
//! families, and the overall geo-means the paper quotes ("Overall, on
//! SYCL-Bench, SYCL-MLIR achieves a geo.-mean speedup of 1.18x over DPC++
//! and also performs better than AdaptiveCpp (geo.-mean 1.13x)") — the
//! geo-means cover SYCL-Bench (Fig. 2 + Fig. 3) only.
//!
//! `--json` switches the output to a machine-readable summary (one JSON
//! object on stdout: per-workload cycles/validity/wall-milliseconds plus
//! the sweep configuration and total wall time) — the format
//! `scripts/ci.sh`'s perf-regression gate diffs against the checked-in
//! `scripts/bench-baseline.json`.

use sycl_mlir_bench::{print_table, quick_flag, run_category_on, run_row};
use sycl_mlir_benchsuite::{geo_mean, Category};

/// Stable lowercase tag for a category in the `--json` summary.
fn category_tag(c: Category) -> &'static str {
    match c {
        Category::SingleKernel => "single-kernel",
        Category::Polybench => "polybench",
        Category::Stencil => "stencil",
        Category::Reduction => "reduction",
        Category::Sparse => "sparse",
    }
}

/// A JSON number that round-trips `NaN` (not representable in JSON) as
/// `null`, matching the "missing bar" meaning it has in the tables.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn main() {
    sycl_mlir_bench::handle_help_flag(
        "repro_all",
        "the complete evaluation of §VIII: Fig. 2, Fig. 3, stencils, the reduction/scan and sparse extension families, and overall geo-means",
    );
    let t0 = std::time::Instant::now();
    let quick = quick_flag();
    let json = std::env::args().any(|a| a == "--json");
    // One device for the whole sweep: the `--profile` accumulators live
    // on the device that ran the workloads.
    let device = sycl_mlir_bench::device_from_args();

    // The tree-walk reference always runs sequentially, so record the
    // worker count that actually applied, not the requested flag — a
    // `--engine=tree --threads=4` run must not masquerade as a 4-thread
    // measurement in the perf trajectory.
    let effective_threads = match device.engine {
        sycl_mlir_sim::Engine::Plan => device.threads,
        sycl_mlir_sim::Engine::TreeWalk => 1,
    };
    // Fusion, batching, overlap and the closure-JIT tier are plan-engine
    // features; report what applied (overlap requires batch).
    let on_off = |b: bool| if b { "on" } else { "off" };
    let (fuse, jit, batch, overlap) = match device.engine {
        sycl_mlir_sim::Engine::Plan => (
            device.fuse,
            device.jit,
            device.batch,
            device.batch && device.overlap,
        ),
        sycl_mlir_sim::Engine::TreeWalk => (
            sycl_mlir_sim::FuseLevel::Off,
            sycl_mlir_sim::JitMode::Off,
            false,
            false,
        ),
    };

    if json {
        // Machine-readable sweep: same workloads and device as the table
        // mode, but each row is timed individually and printed as one
        // JSON object (hand-rolled — the output is flat enough that a
        // serializer dependency would be overkill).
        let mut entries = Vec::new();
        for category in [
            Category::SingleKernel,
            Category::Polybench,
            Category::Stencil,
            Category::Reduction,
            Category::Sparse,
        ] {
            for w in sycl_mlir_benchsuite::all_workloads() {
                if w.category != category || !w.in_figure {
                    continue;
                }
                let row_t0 = std::time::Instant::now();
                let row = run_row(&w, quick, &device);
                let wall_ms = row_t0.elapsed().as_secs_f64() * 1e3;
                entries.push((category, row, wall_ms));
            }
        }
        let mut sm = Vec::new();
        let mut acpp = Vec::new();
        for (category, r, _) in &entries {
            if !matches!(category, Category::SingleKernel | Category::Polybench) {
                continue; // geo-means cover SYCL-Bench (Fig. 2 + Fig. 3)
            }
            let s = r.speedup(2);
            let a = r.speedup(1);
            if s.is_finite() {
                sm.push(s);
            }
            if a.is_finite() {
                acpp.push(a);
            }
        }
        let workloads: Vec<String> = entries
            .iter()
            .map(|(category, r, wall_ms)| {
                format!(
                    "    {{\"name\": \"{}\", \"category\": \"{}\", \"cycles\": [{}, {}, {}], \"valid\": [{}, {}, {}], \"wall_ms\": {:.3}}}",
                    r.name,
                    category_tag(*category),
                    json_f64(r.cycles[0]),
                    json_f64(r.cycles[1]),
                    json_f64(r.cycles[2]),
                    r.valid[0],
                    r.valid[1],
                    r.valid[2],
                    wall_ms,
                )
            })
            .collect();
        println!("{{");
        println!("  \"schema\": 1,");
        println!("  \"quick\": {quick},");
        println!("  \"engine\": \"{}\",", device.engine.name());
        println!("  \"threads\": {effective_threads},");
        println!("  \"fuse\": \"{}\",", fuse.name());
        println!("  \"jit\": \"{}\",", jit.name());
        println!("  \"batch\": \"{}\",", on_off(batch));
        println!("  \"overlap\": \"{}\",", on_off(overlap));
        println!("  \"verify\": \"{}\",", device.verify.name());
        // Schema-additive verifier accumulators (all zero when the
        // verifier is off or the tree-walk engine runs): how many plans
        // were verified, how much of the suite the static passes proved.
        let vc = device.verify_counters();
        println!(
            "  \"verify_stats\": {{\"plans\": {}, \"sites_proven\": {}, \"sites_total\": {}, \"barriers_uniform\": {}, \"barriers_total\": {}, \"rejected\": {}, \"lint_findings\": {}, \"verify_us\": {}}},",
            vc.plans,
            vc.sites_proven,
            vc.sites_total,
            vc.barriers_uniform,
            vc.barriers_total,
            vc.rejected,
            vc.lint_findings,
            vc.verify_ns / 1_000,
        );
        println!("  \"workloads\": [");
        println!("{}", workloads.join(",\n"));
        println!("  ],");
        println!("  \"geo_mean_sycl_mlir\": {},", json_f64(geo_mean(&sm)));
        println!("  \"geo_mean_adaptivecpp\": {},", json_f64(geo_mean(&acpp)));
        println!("  \"wall_time_seconds\": {:.3}", t0.elapsed().as_secs_f64());
        println!("}}");
        return;
    }

    let fig2 = run_category_on(Category::SingleKernel, quick, &device);
    let fig3 = run_category_on(Category::Polybench, quick, &device);
    let stencil = run_category_on(Category::Stencil, quick, &device);
    let reduction = run_category_on(Category::Reduction, quick, &device);
    let sparse = run_category_on(Category::Sparse, quick, &device);

    print_table("Fig. 2: single-kernel benchmarks", &fig2);
    print_table("Fig. 3: polybench benchmarks", &fig3);
    print_table("Stencil workloads", &stencil);
    print_table("Reduction/scan workloads (extension)", &reduction);
    print_table("Sparse indirect-index workloads (extension)", &sparse);

    // Overall SYCL-Bench geo-means (Fig. 2 + Fig. 3 categories).
    let mut sm = Vec::new();
    let mut acpp = Vec::new();
    for r in fig2.iter().chain(&fig3) {
        let s = r.speedup(2);
        let a = r.speedup(1);
        if s.is_finite() {
            sm.push(s);
        }
        if a.is_finite() {
            acpp.push(a);
        }
    }
    println!("\n== Overall (SYCL-Bench: Fig. 2 + Fig. 3) ==");
    println!(
        "SYCL-MLIR geo.-mean over DPC++:  {:.2}x   (paper: 1.18x)",
        geo_mean(&sm)
    );
    println!(
        "AdaptiveCpp geo.-mean over DPC++: {:.2}x   (paper: 1.13x)",
        geo_mean(&acpp)
    );

    // The `--profile` dump: per-opcode execution totals plus the hottest
    // dataflow-adjacent pairs — the ranked candidates for the next
    // fusion superinstruction.
    if let Some(report) = device.profile_report() {
        println!("\n{report}");
    }

    // Machine-readable wall-time line for the perf trajectory in the
    // BENCH_*.json harness records. Covers the whole sweep (compilation of
    // every flow + simulation); simulation dominates and is what the
    // engine/thread choice moves.
    let fuse_name = fuse.name();
    let jit_name = jit.name();
    println!(
        "\nrepro_wall_time_seconds: {:.3} (engine: {}, threads: {effective_threads}, fuse: {fuse_name}, jit: {jit_name}, batch: {}, overlap: {}, verify: {}, quick: {quick})",
        t0.elapsed().as_secs_f64(),
        device.engine.name(),
        on_off(batch),
        on_off(overlap),
        device.verify.name(),
    );
}
