//! Regenerates the stencil evaluation of §VIII (prose, no figure):
//! 1D HeatTransfer (buffer: 0.86x, USM: 0.87x), iso2dfd (0.99x, ACpp 1.5x),
//! jacobi (1.0x); AdaptiveCpp fails validation on everything but iso2dfd.

use sycl_mlir_bench::{print_table, quick_flag, run_category};
use sycl_mlir_benchsuite::Category;

fn main() {
    sycl_mlir_bench::handle_help_flag("repro_stencil", "the stencil results of §VIII's prose");
    let rows = run_category(Category::Stencil, quick_flag());
    print_table(
        "Stencil workloads (speedup over DPC++, higher is better)",
        &rows,
    );
    println!(
        "\npaper reference: SYCL-MLIR 0.86x/0.87x (heat transfer), 0.99x (iso2dfd), 1.0x (jacobi);"
    );
    println!("AdaptiveCpp fails validation on all but iso2dfd (1.5x).");
    println!("note: this reproduction lands heat transfer at ~1.0x — none of the paper's device");
    println!("optimizations fire (matching §VIII), but the codegen overhead behind the paper's");
    println!("0.86x is not modelled (see EXPERIMENTS.md).");
}
