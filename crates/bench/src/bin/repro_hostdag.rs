//! Host-task-interleaved DAG benchmark: a randomized wide fan-out launch
//! graph whose rounds interleave host tasks with independent kernels.
//!
//! The shape is adversarial for the legacy segmented schedule (every
//! host task a synchronization barrier): with `--host-nodes=off` each
//! host task drains the whole graph, so the worker pool is starved
//! between segments; with host nodes on (the default) the host tasks
//! ride the hazard DAG as ordinary single-group nodes and every
//! independent kernel overlaps them. An interleaved A/B of
//! `--host-nodes=on` vs `--host-nodes=off` at `--threads=4` is the PR 9
//! headline measurement (recorded in BENCH_pr9.json).
//!
//! The printed table — per-buffer checksums, per-kernel cycle totals —
//! is deterministic and bit-identical across host-node modes, ready-set
//! policies (`--sched=fifo|critpath`), thread counts and engines; only
//! the `repro_wall_time_seconds:` line varies. scripts/ci.sh diffs the
//! tables across those axes.

use sycl_mlir_bench::{device_from_args, quick_flag};
use sycl_mlir_core::FlowKind;
use sycl_mlir_dialects::{arith, scf};
use sycl_mlir_frontend::{full_context, KernelModuleBuilder, KernelSig};
use sycl_mlir_runtime::exec::{compile_program, run};
use sycl_mlir_runtime::hostgen::generate_host_ir;
use sycl_mlir_runtime::{HostOp, Queue, SyclRuntime};
use sycl_mlir_sycl::device as sdev;
use sycl_mlir_sycl::types::AccessMode;

/// Buffers the rounds rotate over (the fan-out width of the DAG).
const BUFS: usize = 8;

/// A tiny deterministic xorshift so the graph is "random" but identical
/// on every run and machine.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn main() {
    sycl_mlir_bench::handle_help_flag(
        "repro_hostdag",
        "host-task-interleaved DAG: host nodes vs segmented schedule A/B",
    );
    let quick = quick_flag();
    let device = device_from_args();
    // Problem size: element count per buffer, inner-loop trip count of
    // the kernel, and interleaved rounds.
    // Many rounds of modest kernels: the segmented schedule pays one
    // full graph drain (worker spawn, shared-pool snapshot, ready-set
    // build) per host task — 2R+1 scheduling rounds against one — which
    // is exactly the overhead host nodes delete.
    let (n, trips, rounds): (i64, i64, usize) = if quick { (256, 8, 40) } else { (512, 16, 300) };

    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f32t = ctx.f32_type();
    // `churn`: an iterated multiply-add per element — heavy enough that
    // starving the worker pool between host-task segments is visible.
    let sig = KernelSig::new("churn", 1, true).accessor(f32t, 1, AccessMode::ReadWrite);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::global_id(b, item, 0);
        let v = sdev::load_via_id(b, args[0], &[gid]);
        let zero = arith::constant_index(b, 0);
        let one = arith::constant_index(b, 1);
        let end = arith::constant_index(b, trips);
        let lp = scf::build_for(b, zero, end, one, &[v], |inner, _iv, iters| {
            let f32t = inner.ctx().f32_type();
            let c0 = arith::constant_float(inner, 1.0001, f32t.clone());
            let c1 = arith::constant_float(inner, 0.001, f32t);
            let t = arith::mulf(inner, iters[0], c0);
            vec![arith::addf(inner, t, c1)]
        });
        let out = b.module().op_result(lp, 0);
        sdev::store_via_id(b, out, args[0], &[gid]);
    });

    let mut rt = SyclRuntime::new();
    let bufs: Vec<_> = (0..BUFS)
        .map(|bi| {
            rt.buffer_f32(
                (0..n)
                    .map(|i| 0.5 + (i + bi as i64) as f32 * 0.01)
                    .collect(),
                &[n],
            )
        })
        .collect();

    // Each round: one host task on a rotating buffer plus three kernels
    // on *other* buffers — independent of the host task, so with host
    // nodes on they overlap it, while the segmented schedule drains the
    // pool around every host task.
    let mut rng = XorShift(0x9E3779B97F4A7C15);
    let mut q = Queue::new();
    for r in 0..rounds {
        let hb = r % BUFS;
        let op = match rng.below(3) {
            0 => HostOp::Scale {
                buffer: bufs[hb],
                factor: 1.25,
            },
            1 => HostOp::Shift {
                buffer: bufs[hb],
                delta: 0.125,
            },
            _ => HostOp::AddInto {
                dst: bufs[hb],
                src: bufs[(hb + 1) % BUFS],
            },
        };
        q.submit(|h| h.host_task(op));
        for k in 0..3 {
            let kb_idx = (hb + 2 + k + rng.below(3)) % BUFS;
            q.submit(|h| {
                h.accessor(bufs[kb_idx], AccessMode::ReadWrite);
                h.parallel_for_nd("churn", &[n], &[64]);
            });
        }
    }
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();
    let mut program = match compile_program(FlowKind::SyclMlir, module) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: compilation failed: {e}");
            std::process::exit(1);
        }
    };

    // Config goes to stderr: stdout must be bit-identical across the
    // host-node/sched/thread axes so CI can diff it.
    eprintln!(
        "engine={} threads={} host_nodes={} sched={}",
        device.engine.name(),
        device.threads,
        device.host_nodes,
        device.sched.name()
    );
    let start = std::time::Instant::now();
    let report = match run(&mut program, &mut rt, &q, &device) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    let wall = start.elapsed().as_secs_f64();

    println!("== host-task DAG ({rounds} rounds x (1 host + 3 kernels), {BUFS} buffers, n={n}) ==");
    println!("buffer  checksum");
    for (bi, &buf) in bufs.iter().enumerate() {
        // An order-sensitive fold over the exact bits: any scheduling
        // divergence (a host task run out of hazard order, a lost
        // kernel) changes it.
        let sum = rt
            .read_f32(buf)
            .iter()
            .fold(0u64, |acc, x| acc.rotate_left(7) ^ u64::from(x.to_bits()));
        println!("{bi:>6}  {sum:#018x}");
    }
    let host_rows = report
        .kernel_runs
        .iter()
        .filter(|k| k.stats.work_groups == 0)
        .count();
    println!(
        "kernel runs: {} (host rows: {host_rows})",
        report.kernel_runs.len()
    );
    println!("total measured cycles: {:.1}", report.measured_cycles());
    println!("repro_wall_time_seconds: {wall:.3}");
}
