//! Regenerates Fig. 3 of the paper: polybench speedups over DPC++.
//!
//! Paper reference values (§VIII): AdaptiveCpp geo.-mean 1.22x (≈3x peak on
//! SYR2K), SYCL-MLIR geo.-mean 1.45x with a 4.32x maximum on SYR2K;
//! Correlation/Covariance driven by array reduction (5 and 4 opportunities),
//! 2mm/3mm/GEMM/SYR2K/SYRK by loop internalization (2 refs prefetched in
//! GEMM, 4 in SYR2K), Gramschmidt skipped for divergence.

use sycl_mlir_bench::{print_table, quick_flag, run_category};
use sycl_mlir_benchsuite::Category;

fn main() {
    sycl_mlir_bench::handle_help_flag("repro_fig3", "the polybench speedup comparison of Fig. 3");
    let rows = run_category(Category::Polybench, quick_flag());
    print_table(
        "Fig. 3: polybench benchmarks (speedup over DPC++, higher is better)",
        &rows,
    );
    println!("\npaper reference: AdaptiveCpp geo.-mean 1.22x, SYCL-MLIR geo.-mean 1.45x (max 4.32x on SYR2K)");
}
