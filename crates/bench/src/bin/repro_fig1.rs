//! Regenerates Fig. 1 of the paper: the SYCL compilation flow.
//!
//! Prints the dotted (DPC++, SMCP) and dashed (SYCL-MLIR, joint) paths and
//! walks a matmul application through each flow's pipeline, showing the IR
//! after every stage — the textual equivalent of the figure.

use sycl_mlir_core::{Flow, FlowKind};

fn main() {
    println!("Fig. 1 — SYCL compilation flow (textual reproduction)\n");
    println!("source.cpp");
    println!("  ├─(dotted, DPC++ SMCP)─ SYCL device compiler ──► device object");
    println!("  │                       C++ host compiler ─────► host object");
    println!("  │                       (device compiled in isolation)");
    println!("  └─(dashed, SYCL-MLIR)── Polygeist device compiler ─► device MLIR ┐");
    println!("                          host LLVM IR ──mlir-translate─► host MLIR ┤ joint");
    println!("                          joint module: raising + host-device opts ◄┘");
    println!("                          ──► linker ──► combined binary\n");

    let verbose = std::env::args().any(|a| a == "--ir");
    for kind in FlowKind::all() {
        let mut flow = Flow::new(kind);
        flow.dump_stages = true;
        println!("== {} pipeline ==", kind.name());
        for stage in flow.pipeline_description() {
            println!("  - {stage}");
        }
        // Walk the GEMM workload through the pipeline and report per-stage
        // IR sizes (or the full IR with --ir).
        let spec = sycl_mlir_benchsuite::all_workloads()
            .into_iter()
            .find(|w| w.name == "GEMM")
            .expect("GEMM registered");
        let app = (spec.build)(32);
        let mut module = app.module;
        match flow.compile(&mut module) {
            Ok(outcome) => {
                for (stage, ir) in &outcome.dumps {
                    println!("  after {:<24} {} lines of IR", stage, ir.lines().count());
                    if verbose {
                        println!("{ir}");
                    }
                }
                for note in &outcome.notes {
                    println!("  note: {note}");
                }
            }
            Err(e) => println!("  pipeline failed: {e}"),
        }
        println!();
    }
    println!("(re-run with --ir to print the full IR after every stage)");
}
