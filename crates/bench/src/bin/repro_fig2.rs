//! Regenerates Fig. 2 of the paper: single-kernel speedups over DPC++.
//!
//! Paper reference values (§VIII): AdaptiveCpp geo.-mean 1.03x, SYCL-MLIR
//! geo.-mean 1.02x, with Sobel7 benefiting from host-device constant
//! propagation. Run with `--quick` for smaller sizes.

use sycl_mlir_bench::{print_table, quick_flag, run_category};
use sycl_mlir_benchsuite::Category;

fn main() {
    sycl_mlir_bench::handle_help_flag(
        "repro_fig2",
        "the single-kernel speedup comparison of Fig. 2",
    );
    let rows = run_category(Category::SingleKernel, quick_flag());
    print_table(
        "Fig. 2: single-kernel benchmarks (speedup over DPC++, higher is better)",
        &rows,
    );
    println!("\npaper reference: AdaptiveCpp geo.-mean 1.03x, SYCL-MLIR geo.-mean 1.02x");
}
