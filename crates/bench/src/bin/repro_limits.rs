//! Execution-limit smoke test: an adversarial kernel that would spin
//! (effectively) forever must trip a structured limit error — op budget
//! or deadline, chosen by the usual flags — under the selected engine,
//! and the device must stay fully usable afterwards. Exits 0 when both
//! hold, 1 otherwise.

use sycl_mlir_bench::device_from_args;
use sycl_mlir_core::FlowKind;
use sycl_mlir_dialects::{arith, scf};
use sycl_mlir_frontend::{full_context, KernelModuleBuilder, KernelSig};
use sycl_mlir_runtime::exec::{compile_program, run};
use sycl_mlir_runtime::hostgen::generate_host_ir;
use sycl_mlir_runtime::{Queue, SyclRuntime};
use sycl_mlir_sycl::device as sdev;
use sycl_mlir_sycl::types::AccessMode;

const N: i64 = 64;

fn main() {
    sycl_mlir_bench::handle_help_flag(
        "repro_limits",
        "execution-limit smoke test: a wedged kernel must fail, not hang",
    );
    let mut device = device_from_args();
    if device.limits.max_ops.is_none() && device.limits.deadline_ms.is_none() {
        // Standalone default: small enough to trip the spinner quickly,
        // generous enough that the well-behaved kernel never notices.
        println!("no --max-ops / --deadline-ms given; defaulting to --max-ops=2000000");
        device = device.max_ops(2_000_000);
    }

    let ctx = full_context();
    let mut kb = KernelModuleBuilder::new(&ctx);
    let f32t = ctx.f32_type();

    // `spin`: every work-item iterates a ~10^18-trip loop — unbounded for
    // all practical purposes. Without limits this launch never returns.
    let sig = KernelSig::new("spin", 1, true).accessor(f32t.clone(), 1, AccessMode::ReadWrite);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::global_id(b, item, 0);
        let v = sdev::load_via_id(b, args[0], &[gid]);
        let zero = arith::constant_index(b, 0);
        let one = arith::constant_index(b, 1);
        let huge = arith::constant_index(b, 1 << 60);
        let lp = scf::build_for(b, zero, huge, one, &[v], |inner, _iv, iters| {
            let f32t = inner.ctx().f32_type();
            let c = arith::constant_float(inner, 1.0000001, f32t);
            vec![arith::mulf(inner, iters[0], c)]
        });
        let out = b.module().op_result(lp, 0);
        sdev::store_via_id(b, out, args[0], &[gid]);
    });

    // `scale`: the well-behaved kernel proving the device survives.
    let sig = KernelSig::new("scale", 1, true).accessor(f32t, 1, AccessMode::ReadWrite);
    kb.add_kernel(&sig, |b, args, item| {
        let gid = sdev::global_id(b, item, 0);
        let v = sdev::load_via_id(b, args[0], &[gid]);
        let f32t = b.ctx().f32_type();
        let two = arith::constant_float(b, 2.0, f32t);
        let d = arith::mulf(b, v, two);
        sdev::store_via_id(b, d, args[0], &[gid]);
    });

    let mut rt = SyclRuntime::new();
    let buf_a = rt.buffer_f32(vec![1.0; N as usize], &[N]);
    let buf_b = rt.buffer_f32(vec![3.0; N as usize], &[N]);
    let mut q = Queue::new();
    q.submit(|h| {
        h.accessor(buf_a, AccessMode::ReadWrite);
        h.parallel_for_nd("spin", &[N], &[16]);
    });
    q.submit(|h| {
        h.accessor(buf_b, AccessMode::ReadWrite);
        h.parallel_for_nd("scale", &[N], &[16]);
    });
    generate_host_ir(kb.module(), &rt, &q);
    let module = kb.finish();
    let mut program = match compile_program(FlowKind::SyclMlir, module) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: compilation failed: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "engine={} threads={} fuse={:?} overlap={}",
        device.engine.name(),
        device.threads,
        device.fuse,
        device.overlap
    );
    match run(&mut program, &mut rt, &q, &device) {
        Ok(_) => {
            eprintln!("error: the adversarial kernel completed — no limit tripped");
            std::process::exit(1);
        }
        Err(e) => match e.limit_kind() {
            Some(kind) => println!("limit tripped as expected: {e} (kind: {})", kind.name()),
            None => {
                eprintln!("error: expected a limit trip, got: {e}");
                std::process::exit(1);
            }
        },
    }

    // The same device (and its warm plan cache) must accept and correctly
    // run a subsequent launch.
    let mut q2 = Queue::new();
    q2.submit(|h| {
        h.accessor(buf_b, AccessMode::ReadWrite);
        h.parallel_for_nd("scale", &[N], &[16]);
    });
    match run(&mut program, &mut rt, &q2, &device) {
        Ok(_) => {
            let out = rt.read_f32(buf_b);
            if out.iter().any(|&x| x != 6.0) {
                eprintln!(
                    "error: post-limit launch produced wrong data: {:?}",
                    &out[..4]
                );
                std::process::exit(1);
            }
            println!("device usable after the trip: follow-up kernel ran correctly");
        }
        Err(e) => {
            eprintln!("error: device unusable after the limit trip: {e}");
            std::process::exit(1);
        }
    }
}
