//! The `func` dialect: `func.func`, `func.return`, `func.call`.

use sycl_mlir_ir::dialect::{traits, OpInfo};
use sycl_mlir_ir::{Attribute, Builder, Context, Dialect, Module, OpId, Type, ValueId};

/// Dialect registration handle.
pub struct FuncDialect;

impl Dialect for FuncDialect {
    fn name(&self) -> &'static str {
        "func"
    }

    fn register(&self, ctx: &Context) {
        ctx.register_op(
            OpInfo::new("func.func")
                .with_traits(traits::ISOLATED_FROM_ABOVE | traits::SYMBOL)
                .with_verify(verify_func),
        );
        ctx.register_op(
            OpInfo::new("func.return")
                .with_traits(traits::TERMINATOR)
                .with_verify(verify_return),
        );
        ctx.register_op(OpInfo::new("func.call").with_verify(verify_call));
    }
}

fn verify_func(m: &Module, op: OpId) -> Result<(), String> {
    let fty = m
        .attr(op, "function_type")
        .and_then(|a| a.as_type())
        .ok_or("missing `function_type` attribute")?;
    let (inputs, _) = fty
        .function_signature()
        .ok_or("`function_type` must be a function type")?;
    if m.symbol_name(op).is_none() {
        return Err("missing `sym_name` attribute".into());
    }
    if m.op_regions(op).len() != 1 {
        return Err("must have exactly one region".into());
    }
    let block = m.op_region_block(op, 0);
    let args = m.block_args(block);
    if args.len() != inputs.len() {
        return Err(format!(
            "entry block has {} arguments but the function type lists {}",
            args.len(),
            inputs.len()
        ));
    }
    for (i, (&a, t)) in args.iter().zip(inputs).enumerate() {
        if &m.value_type(a) != t {
            return Err(format!(
                "entry argument #{i} has type {} but the function type lists {t}",
                m.value_type(a)
            ));
        }
    }
    Ok(())
}

fn verify_return(m: &Module, op: OpId) -> Result<(), String> {
    let Some(func) = m.op_parent_op(op) else {
        return Ok(());
    };
    if !m.op_is(func, "func.func") {
        return Err("must be nested directly in a `func.func`".into());
    }
    let fty = m
        .attr(func, "function_type")
        .and_then(|a| a.as_type())
        .ok_or("enclosing function missing `function_type`")?;
    let (_, results) = fty.function_signature().ok_or("bad function type")?;
    let operands = m.op_operands(op);
    if operands.len() != results.len() {
        return Err(format!(
            "returns {} values but the function type lists {}",
            operands.len(),
            results.len()
        ));
    }
    for (i, (&v, t)) in operands.iter().zip(results).enumerate() {
        if &m.value_type(v) != t {
            return Err(format!(
                "returned value #{i} has type {} but the function returns {t}",
                m.value_type(v)
            ));
        }
    }
    Ok(())
}

fn verify_call(m: &Module, op: OpId) -> Result<(), String> {
    m.attr(op, "callee")
        .and_then(|a| a.as_symbol_ref())
        .map(|_| ())
        .ok_or_else(|| "missing `callee` symbol attribute".into())
}

/// Create a `func.func` named `name` inside `parent_module`'s block and
/// return `(func op, entry block)`.
pub fn build_func(
    m: &mut Module,
    parent_module: OpId,
    name: &str,
    inputs: &[Type],
    results: &[Type],
) -> (OpId, sycl_mlir_ir::BlockId) {
    let fty = m.ctx().function_type(inputs, results);
    let op_name = m.ctx().op("func.func");
    let op = m.create_op(
        op_name,
        &[],
        &[],
        vec![
            ("sym_name".into(), Attribute::Str(name.into())),
            ("function_type".into(), Attribute::Type(fty)),
        ],
    );
    let region = m.add_region(op);
    let block = m.add_block(region, inputs);
    let parent_block = m.op_region_block(parent_module, 0);
    m.append_op(parent_block, op);
    (op, block)
}

/// Terminate the current block with `func.return`.
pub fn build_return(b: &mut Builder<'_>, values: &[ValueId]) -> OpId {
    b.build("func.return", values, &[], vec![])
}

/// Build a direct `func.call` to `callee` with the given result types.
pub fn build_call(b: &mut Builder<'_>, callee: &str, args: &[ValueId], results: &[Type]) -> OpId {
    b.build(
        "func.call",
        args,
        results,
        vec![("callee".into(), Attribute::symbol(callee))],
    )
}

/// Resolve a `func.call`'s callee within `scope` (usually the enclosing
/// module op).
pub fn resolve_callee(m: &Module, call: OpId, scope: OpId) -> Option<OpId> {
    let path = m.attr(call, "callee")?.as_symbol_ref()?.to_vec();
    m.lookup_symbol_path(scope, &path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_ir::verify;

    #[test]
    fn build_and_verify_function() {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let i32t = ctx.i32_type();
        let top = m.top();
        let (func, entry) = build_func(
            &mut m,
            top,
            "id",
            std::slice::from_ref(&i32t),
            std::slice::from_ref(&i32t),
        );
        let arg = m.block_arg(entry, 0);
        {
            let mut b = Builder::at_end(&mut m, entry);
            build_return(&mut b, &[arg]);
        }
        assert!(verify(&m).is_ok(), "{:?}", verify(&m));
        assert_eq!(m.symbol_name(func), Some("id"));
        assert_eq!(m.lookup_symbol(m.top(), "id"), Some(func));
    }

    #[test]
    fn return_type_mismatch_rejected() {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let i32t = ctx.i32_type();
        let i64t = ctx.i64_type();
        let top = m.top();
        let (_, entry) = build_func(&mut m, top, "bad", &[i64t], &[i32t]);
        let arg = m.block_arg(entry, 0);
        {
            let mut b = Builder::at_end(&mut m, entry);
            build_return(&mut b, &[arg]);
        }
        let err = verify(&m).unwrap_err();
        assert!(err.to_string().contains("returned value #0"), "{err}");
    }

    #[test]
    fn call_resolution() {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let top = m.top();
        let (callee, entry) = build_func(&mut m, top, "f", &[], &[]);
        {
            let mut b = Builder::at_end(&mut m, entry);
            build_return(&mut b, &[]);
        }
        let (_, entry2) = build_func(&mut m, top, "g", &[], &[]);
        let call = {
            let mut b = Builder::at_end(&mut m, entry2);
            let call = build_call(&mut b, "f", &[], &[]);
            build_return(&mut b, &[]);
            call
        };
        assert_eq!(resolve_callee(&m, call, m.top()), Some(callee));
    }
}
