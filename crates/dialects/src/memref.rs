//! The `memref` dialect: stack allocation and memory access with declared
//! memory effects — the effect interface is what the reaching-definition
//! analysis (§V-B) and LICM (§VI-A) consume.

use sycl_mlir_ir::dialect::{traits, Effect, OpInfo};
use sycl_mlir_ir::{Builder, Context, Dialect, Module, OpId, Type, ValueId};

/// Dialect registration handle.
pub struct MemRefDialect;

impl Dialect for MemRefDialect {
    fn name(&self) -> &'static str {
        "memref"
    }

    fn register(&self, ctx: &Context) {
        ctx.register_op(
            OpInfo::new("memref.alloca")
                .with_verify(verify_alloca)
                .with_effects(|m, op| vec![Effect::alloc(m.op_result(op, 0))]),
        );
        ctx.register_op(
            OpInfo::new("memref.load")
                .with_verify(verify_load)
                .with_effects(|m, op| vec![Effect::read(m.op_operand(op, 0))]),
        );
        ctx.register_op(
            OpInfo::new("memref.store")
                .with_verify(verify_store)
                .with_effects(|m, op| vec![Effect::write(m.op_operand(op, 1))]),
        );
        ctx.register_op(
            OpInfo::new("memref.cast")
                .with_traits(traits::PURE)
                .with_verify(verify_cast),
        );
    }
}

fn verify_alloca(m: &Module, op: OpId) -> Result<(), String> {
    if m.op_results(op).len() != 1 {
        return Err("must produce one memref result".into());
    }
    let ty = m.value_type(m.op_result(op, 0));
    let shape = ty.memref_shape().ok_or("result must be a memref")?;
    if shape.iter().any(|&d| d < 0) {
        return Err("alloca requires a static shape".into());
    }
    Ok(())
}

fn check_indices(m: &Module, memref_ty: &Type, indices: &[ValueId]) -> Result<(), String> {
    let shape = memref_ty
        .memref_shape()
        .ok_or("expected a memref operand")?;
    if indices.len() != shape.len() {
        return Err(format!(
            "{} indices supplied for a rank-{} memref",
            indices.len(),
            shape.len()
        ));
    }
    for (i, &idx) in indices.iter().enumerate() {
        let t = m.value_type(idx);
        if !t.is_int_or_index() {
            return Err(format!("index #{i} must be an integer/index, got {t}"));
        }
    }
    Ok(())
}

fn verify_load(m: &Module, op: OpId) -> Result<(), String> {
    let operands = m.op_operands(op);
    if operands.is_empty() || m.op_results(op).len() != 1 {
        return Err("expects (memref, indices...) -> value".into());
    }
    let mem_ty = m.value_type(operands[0]);
    check_indices(m, &mem_ty, &operands[1..])?;
    let elem = mem_ty
        .memref_elem()
        .ok_or("first operand must be a memref")?;
    let res = m.value_type(m.op_result(op, 0));
    if elem != res {
        return Err(format!(
            "result type {res} does not match element type {elem}"
        ));
    }
    Ok(())
}

fn verify_store(m: &Module, op: OpId) -> Result<(), String> {
    let operands = m.op_operands(op);
    if operands.len() < 2 || !m.op_results(op).is_empty() {
        return Err("expects (value, memref, indices...) -> ()".into());
    }
    let mem_ty = m.value_type(operands[1]);
    check_indices(m, &mem_ty, &operands[2..])?;
    let elem = mem_ty
        .memref_elem()
        .ok_or("second operand must be a memref")?;
    let val = m.value_type(operands[0]);
    if elem != val {
        return Err(format!(
            "stored type {val} does not match element type {elem}"
        ));
    }
    Ok(())
}

fn verify_cast(m: &Module, op: OpId) -> Result<(), String> {
    if m.op_operands(op).len() != 1 || m.op_results(op).len() != 1 {
        return Err("expects one operand and one result".into());
    }
    let src = m.value_type(m.op_operand(op, 0));
    let dst = m.value_type(m.op_result(op, 0));
    match (src.memref_elem(), dst.memref_elem()) {
        (Some(a), Some(b)) if a == b => Ok(()),
        _ => Err(format!("cannot cast {src} to {dst}")),
    }
}

/// Allocate a static-shaped memref in private (work-item) memory.
pub fn alloca(b: &mut Builder<'_>, elem: Type, shape: &[i64]) -> ValueId {
    let ty = b.ctx().memref_type(elem, shape);
    b.build_value("memref.alloca", &[], ty, vec![])
}

/// Load `memref[indices...]`.
pub fn load(b: &mut Builder<'_>, memref: ValueId, indices: &[ValueId]) -> ValueId {
    let elem = b
        .module()
        .value_type(memref)
        .memref_elem()
        .expect("memref.load on non-memref value");
    let mut operands = vec![memref];
    operands.extend_from_slice(indices);
    b.build_value("memref.load", &operands, elem, vec![])
}

/// Store `value` into `memref[indices...]`.
pub fn store(b: &mut Builder<'_>, value: ValueId, memref: ValueId, indices: &[ValueId]) -> OpId {
    let mut operands = vec![value, memref];
    operands.extend_from_slice(indices);
    b.build("memref.store", &operands, &[], vec![])
}

/// `memref.cast` to another shape with the same element type.
pub fn cast(b: &mut Builder<'_>, memref: ValueId, to: Type) -> ValueId {
    b.build_value("memref.cast", &[memref], to, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::constant_index;
    use sycl_mlir_ir::dialect::{memory_effects, EffectKind};
    use sycl_mlir_ir::{verify, Module};

    #[test]
    fn load_store_roundtrip_and_effects() {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let block = m.top_block();
        let (mem, v, store_op) = {
            let mut b = Builder::at_end(&mut m, block);
            let f32t = b.ctx().f32_type();
            let mem = alloca(&mut b, f32t, &[4]);
            let i = constant_index(&mut b, 0);
            let v = load(&mut b, mem, &[i]);
            let store_op = store(&mut b, v, mem, &[i]);
            (mem, v, store_op)
        };
        assert!(verify(&m).is_ok(), "{:?}", verify(&m));
        let load_op = m.def_op(v).unwrap();
        let load_effects = memory_effects(&m, load_op).unwrap();
        assert_eq!(load_effects, vec![sycl_mlir_ir::Effect::read(mem)]);
        let effects = memory_effects(&m, store_op).unwrap();
        assert_eq!(effects.len(), 1);
        assert_eq!(effects[0].kind, EffectKind::Write);
        assert_eq!(effects[0].value, Some(mem));
    }

    #[test]
    fn rank_mismatch_rejected() {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let block = m.top_block();
        {
            let mut b = Builder::at_end(&mut m, block);
            let f32t = b.ctx().f32_type();
            let mem = alloca(&mut b, f32t.clone(), &[4, 4]);
            let i = constant_index(&mut b, 0);
            let mut operands = vec![mem, i];
            operands.truncate(2);
            b.build("memref.load", &operands, &[f32t], vec![]);
        }
        let err = verify(&m).unwrap_err();
        assert!(err.to_string().contains("indices supplied"), "{err}");
    }

    #[test]
    fn dynamic_alloca_rejected() {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let block = m.top_block();
        {
            let mut b = Builder::at_end(&mut m, block);
            let f32t = b.ctx().f32_type();
            let ty = b.ctx().memref_type(f32t, &[-1]);
            b.build("memref.alloca", &[], &[ty], vec![]);
        }
        let err = verify(&m).unwrap_err();
        assert!(err.to_string().contains("static shape"), "{err}");
    }

    #[test]
    fn cast_element_mismatch_rejected() {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let block = m.top_block();
        {
            let mut b = Builder::at_end(&mut m, block);
            let f32t = b.ctx().f32_type();
            let f64t = b.ctx().f64_type();
            let mem = alloca(&mut b, f32t, &[4]);
            let bad = b.ctx().memref_type(f64t, &[-1]);
            b.build("memref.cast", &[mem], &[bad], vec![]);
        }
        assert!(verify(&m).is_err());
    }
}
