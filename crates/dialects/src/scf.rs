//! The `scf` dialect: structured control flow (`scf.for`, `scf.if`,
//! `scf.yield`) with closure-based region builders.

use sycl_mlir_ir::dialect::{traits, OpInfo};
use sycl_mlir_ir::{Builder, Context, Dialect, Module, OpId, Type, ValueId};

/// Dialect registration handle.
pub struct ScfDialect;

impl Dialect for ScfDialect {
    fn name(&self) -> &'static str {
        "scf"
    }

    fn register(&self, ctx: &Context) {
        ctx.register_op(
            OpInfo::new("scf.for")
                .with_traits(traits::LOOP_LIKE | traits::RECURSIVE_EFFECTS)
                .with_verify(verify_for),
        );
        ctx.register_op(
            OpInfo::new("scf.if")
                .with_traits(traits::BRANCH_LIKE | traits::RECURSIVE_EFFECTS)
                .with_verify(verify_if),
        );
        ctx.register_op(OpInfo::new("scf.yield").with_traits(traits::TERMINATOR));
    }
}

/// Shared structural checks for `scf.for` / `affine.for`, which have the same
/// shape: `(lb, ub, step, inits...)`, one region whose block takes
/// `(iv, iters...)`, and results matching the `inits`.
pub(crate) fn verify_loop_shape(m: &Module, op: OpId) -> Result<(), String> {
    let operands = m.op_operands(op);
    if operands.len() < 3 {
        return Err("expects at least (lb, ub, step)".into());
    }
    for (i, &v) in operands[..3].iter().enumerate() {
        if !m.value_type(v).is_int_or_index() {
            return Err(format!(
                "bound #{i} must be integer/index, got {}",
                m.value_type(v)
            ));
        }
    }
    let num_iters = operands.len() - 3;
    if m.op_results(op).len() != num_iters {
        return Err(format!(
            "{} iter_args but {} results",
            num_iters,
            m.op_results(op).len()
        ));
    }
    if m.op_regions(op).len() != 1 {
        return Err("expects exactly one region".into());
    }
    let block = m.op_region_block(op, 0);
    let args = m.block_args(block);
    if args.len() != 1 + num_iters {
        return Err(format!(
            "body block takes {} arguments, expected {} (iv + iter_args)",
            args.len(),
            1 + num_iters
        ));
    }
    if !m.value_type(args[0]).is_int_or_index() {
        return Err("induction variable must be integer/index".into());
    }
    for i in 0..num_iters {
        let iter_ty = m.value_type(args[1 + i]);
        let init_ty = m.value_type(operands[3 + i]);
        let res_ty = m.value_type(m.op_result(op, i));
        if iter_ty != init_ty || iter_ty != res_ty {
            return Err(format!(
                "iter_arg #{i}: init {init_ty}, carried {iter_ty}, result {res_ty} must all match"
            ));
        }
    }
    // Yield must match iter types.
    if let Some(term) = m.block_terminator(block) {
        let yielded = m.op_operands(term);
        if yielded.len() != num_iters {
            return Err(format!(
                "loop yields {} values but has {} iter_args",
                yielded.len(),
                num_iters
            ));
        }
    }
    Ok(())
}

fn verify_for(m: &Module, op: OpId) -> Result<(), String> {
    verify_loop_shape(m, op)
}

fn verify_if(m: &Module, op: OpId) -> Result<(), String> {
    let operands = m.op_operands(op);
    if operands.len() != 1 {
        return Err("expects exactly one condition operand".into());
    }
    if m.value_type(operands[0]).int_width() != Some(1) {
        return Err(format!(
            "condition must be i1, got {}",
            m.value_type(operands[0])
        ));
    }
    if m.op_regions(op).len() != 2 {
        return Err("expects a `then` and an `else` region".into());
    }
    for ri in 0..2 {
        let block = m.op_region_block(op, ri);
        if !m.block_args(block).is_empty() {
            return Err("if regions take no arguments".into());
        }
        if let Some(term) = m.block_terminator(block) {
            if m.op_operands(term).len() != m.op_results(op).len() {
                return Err(format!(
                    "region #{ri} yields {} values but the op has {} results",
                    m.op_operands(term).len(),
                    m.op_results(op).len()
                ));
            }
        }
    }
    Ok(())
}

/// Loop accessors shared by `scf.for` and `affine.for`.
pub mod loop_info {
    use super::*;

    pub fn lower_bound(m: &Module, op: OpId) -> ValueId {
        m.op_operand(op, 0)
    }

    pub fn upper_bound(m: &Module, op: OpId) -> ValueId {
        m.op_operand(op, 1)
    }

    pub fn step(m: &Module, op: OpId) -> ValueId {
        m.op_operand(op, 2)
    }

    pub fn iter_inits(m: &Module, op: OpId) -> Vec<ValueId> {
        m.op_operands(op)[3..].to_vec()
    }

    pub fn induction_var(m: &Module, op: OpId) -> ValueId {
        m.block_arg(m.op_region_block(op, 0), 0)
    }

    pub fn iter_args(m: &Module, op: OpId) -> Vec<ValueId> {
        m.block_args(m.op_region_block(op, 0))[1..].to_vec()
    }

    pub fn body_block(m: &Module, op: OpId) -> sycl_mlir_ir::BlockId {
        m.op_region_block(op, 0)
    }

    /// `true` for any op with the `LOOP_LIKE` trait.
    pub fn is_loop(m: &Module, op: OpId) -> bool {
        m.op_info(op).has_trait(traits::LOOP_LIKE)
    }
}

/// Build a loop op (used for both `scf.for` and `affine.for`). The body
/// closure receives a builder positioned in the loop body, the induction
/// variable and the iteration arguments, and must return the values to
/// yield.
pub fn build_loop(
    b: &mut Builder<'_>,
    op_name: &str,
    lb: ValueId,
    ub: ValueId,
    step: ValueId,
    inits: &[ValueId],
    body: impl FnOnce(&mut Builder<'_>, ValueId, &[ValueId]) -> Vec<ValueId>,
) -> OpId {
    let result_types: Vec<Type> = inits.iter().map(|&v| b.module().value_type(v)).collect();
    let mut operands = vec![lb, ub, step];
    operands.extend_from_slice(inits);
    let op = b.build(op_name, &operands, &result_types, vec![]);
    let index_ty = b.ctx().index_type();
    let m = b.module();
    let region = m.add_region(op);
    let mut arg_types = vec![index_ty];
    arg_types.extend(result_types);
    let block = m.add_block(region, &arg_types);
    let iv = m.block_arg(block, 0);
    let iters: Vec<ValueId> = m.block_args(block)[1..].to_vec();
    let yields = {
        let mut inner = Builder::at_end(m, block);
        body(&mut inner, iv, &iters)
    };
    let yield_name = if op_name.starts_with("affine.") {
        "affine.yield"
    } else {
        "scf.yield"
    };
    let mut inner = Builder::at_end(m, block);
    inner.build(yield_name, &yields, &[], vec![]);
    op
}

/// Build an `scf.for`. See [`build_loop`] for the body contract.
pub fn build_for(
    b: &mut Builder<'_>,
    lb: ValueId,
    ub: ValueId,
    step: ValueId,
    inits: &[ValueId],
    body: impl FnOnce(&mut Builder<'_>, ValueId, &[ValueId]) -> Vec<ValueId>,
) -> OpId {
    build_loop(b, "scf.for", lb, ub, step, inits, body)
}

/// Build an `scf.if` with both branches; each closure returns its yields.
pub fn build_if(
    b: &mut Builder<'_>,
    cond: ValueId,
    result_types: &[Type],
    then_body: impl FnOnce(&mut Builder<'_>) -> Vec<ValueId>,
    else_body: impl FnOnce(&mut Builder<'_>) -> Vec<ValueId>,
) -> OpId {
    let op = b.build("scf.if", &[cond], result_types, vec![]);
    let m = b.module();
    for body in [
        Box::new(then_body) as Box<dyn FnOnce(&mut Builder<'_>) -> Vec<ValueId>>,
        Box::new(else_body),
    ] {
        let region = m.add_region(op);
        let block = m.add_block(region, &[]);
        let yields = {
            let mut inner = Builder::at_end(m, block);
            body(&mut inner)
        };
        let mut inner = Builder::at_end(m, block);
        inner.build("scf.yield", &yields, &[], vec![]);
    }
    op
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{self, constant_index};
    use crate::func::{build_func, build_return};
    use sycl_mlir_ir::{print_module, verify, Module};

    #[test]
    fn build_for_with_iter_args() {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let f64t = ctx.f64_type();
        let top = m.top();
        let (_f, entry) = build_func(&mut m, top, "sum", &[], std::slice::from_ref(&f64t));
        {
            let mut b = Builder::at_end(&mut m, entry);
            let zero = constant_index(&mut b, 0);
            let n = constant_index(&mut b, 10);
            let one = constant_index(&mut b, 1);
            let init = arith::constant_float(&mut b, 0.0, f64t);
            let loop_op = build_for(&mut b, zero, n, one, &[init], |inner, _iv, iters| {
                let one_f = arith::constant_float(inner, 1.0, inner.ctx().f64_type());
                let next = arith::addf(inner, iters[0], one_f);
                vec![next]
            });
            let result = b.module().op_result(loop_op, 0);
            build_return(&mut b, &[result]);
        }
        assert!(verify(&m).is_ok(), "{}\n{:?}", print_module(&m), verify(&m));
        let text = print_module(&m);
        assert!(text.contains("scf.for"), "{text}");
        assert!(text.contains("scf.yield"), "{text}");
    }

    #[test]
    fn build_if_with_results() {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let i64t = ctx.i64_type();
        let top = m.top();
        let (_f, entry) = build_func(
            &mut m,
            top,
            "pick",
            &[ctx.i1_type()],
            std::slice::from_ref(&i64t),
        );
        let cond = m.block_arg(entry, 0);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let if_op = build_if(
                &mut b,
                cond,
                std::slice::from_ref(&i64t),
                |inner| {
                    let one = arith::constant_int(inner, 1, inner.ctx().i64_type());
                    vec![one]
                },
                |inner| {
                    let two = arith::constant_int(inner, 2, inner.ctx().i64_type());
                    vec![two]
                },
            );
            let v = b.module().op_result(if_op, 0);
            build_return(&mut b, &[v]);
        }
        assert!(verify(&m).is_ok(), "{:?}", verify(&m));
    }

    #[test]
    fn loop_shape_violation_rejected() {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let block = m.top_block();
        {
            let mut b = Builder::at_end(&mut m, block);
            let zero = constant_index(&mut b, 0);
            b.build("scf.for", &[zero], &[], vec![]);
        }
        let err = verify(&m).unwrap_err();
        assert!(err.to_string().contains("at least (lb, ub, step)"), "{err}");
    }

    #[test]
    fn loop_info_accessors() {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let top = m.top();
        let (_f, entry) = build_func(&mut m, top, "f", &[], &[]);
        let loop_op = {
            let mut b = Builder::at_end(&mut m, entry);
            let lb = constant_index(&mut b, 2);
            let ub = constant_index(&mut b, 8);
            let step = constant_index(&mut b, 2);
            let op = build_for(&mut b, lb, ub, step, &[], |_inner, _iv, _| vec![]);
            build_return(&mut b, &[]);
            op
        };
        assert!(loop_info::is_loop(&m, loop_op));
        assert_eq!(
            arith::const_int_of(&m, loop_info::lower_bound(&m, loop_op)),
            Some(2)
        );
        assert_eq!(
            arith::const_int_of(&m, loop_info::upper_bound(&m, loop_op)),
            Some(8)
        );
        assert!(loop_info::iter_args(&m, loop_op).is_empty());
    }
}
