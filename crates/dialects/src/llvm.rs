//! The `llvm` dialect (minimal subset): the low-level form host code takes
//! after `mlir-translate` in the paper's flow (§IV, Fig. 1).
//!
//! Host modules arrive as `func.func`s whose bodies consist of `llvm.*` ops:
//! opaque-pointer allocas, loads/stores, GEPs and calls into the SYCL runtime
//! (`llvm.call` with mangled-ish callee names). The host raising pass
//! (§VII-A) pattern-matches those calls and rewrites them into `sycl.host.*`
//! operations.

use sycl_mlir_ir::dialect::{traits, Effect, OpInfo};
use sycl_mlir_ir::{Attribute, Builder, Context, Dialect, Module, OpId, Type, ValueId};

/// Dialect registration handle.
pub struct LlvmDialect;

impl Dialect for LlvmDialect {
    fn name(&self) -> &'static str {
        "llvm"
    }

    fn register(&self, ctx: &Context) {
        // Calls have unknown effects by default — exactly why raw host IR is
        // "too low-level for analysis" (§VII-A) until raised.
        ctx.register_op(OpInfo::new("llvm.call").with_verify(verify_call));
        ctx.register_op(
            OpInfo::new("llvm.alloca")
                .with_verify(verify_alloca)
                .with_effects(|m, op| vec![Effect::alloc(m.op_result(op, 0))]),
        );
        ctx.register_op(
            OpInfo::new("llvm.load")
                .with_verify(verify_load)
                .with_effects(|m, op| vec![Effect::read(m.op_operand(op, 0))]),
        );
        ctx.register_op(
            OpInfo::new("llvm.store")
                .with_verify(verify_store)
                .with_effects(|m, op| vec![Effect::write(m.op_operand(op, 1))]),
        );
        ctx.register_op(
            OpInfo::new("llvm.gep")
                .with_traits(traits::PURE)
                .with_verify(verify_gep),
        );
        ctx.register_op(OpInfo::new("llvm.undef").with_traits(traits::PURE));
    }
}

fn verify_call(m: &Module, op: OpId) -> Result<(), String> {
    m.attr(op, "callee")
        .and_then(|a| a.as_symbol_ref())
        .map(|_| ())
        .ok_or_else(|| "missing `callee` symbol attribute".into())
}

fn verify_alloca(m: &Module, op: OpId) -> Result<(), String> {
    if m.op_results(op).len() != 1
        || !matches!(
            m.value_type(m.op_result(op, 0)).kind(),
            sycl_mlir_ir::TypeKind::Ptr
        )
    {
        return Err("must produce a single `ptr` result".into());
    }
    Ok(())
}

fn verify_load(m: &Module, op: OpId) -> Result<(), String> {
    if m.op_operands(op).len() != 1 || m.op_results(op).len() != 1 {
        return Err("expects (ptr) -> value".into());
    }
    Ok(())
}

fn verify_store(m: &Module, op: OpId) -> Result<(), String> {
    if m.op_operands(op).len() != 2 || !m.op_results(op).is_empty() {
        return Err("expects (value, ptr) -> ()".into());
    }
    Ok(())
}

fn verify_gep(m: &Module, op: OpId) -> Result<(), String> {
    if m.op_operands(op).is_empty() || m.op_results(op).len() != 1 {
        return Err("expects (ptr, indices...) -> ptr".into());
    }
    Ok(())
}

/// Stack slot for a host object; `object` names the C++ type for
/// readability of the raised IR (e.g. `"sycl::buffer"`).
pub fn alloca(b: &mut Builder<'_>, object: &str) -> ValueId {
    let ptr = b.ctx().ptr_type();
    b.build_value(
        "llvm.alloca",
        &[],
        ptr,
        vec![("object".into(), Attribute::Str(object.into()))],
    )
}

/// Call a runtime function by mangled name.
pub fn call(b: &mut Builder<'_>, callee: &str, args: &[ValueId], results: &[Type]) -> OpId {
    b.build(
        "llvm.call",
        args,
        results,
        vec![("callee".into(), Attribute::symbol(callee))],
    )
}

/// The callee symbol of an `llvm.call`.
pub fn callee_name(m: &Module, op: OpId) -> Option<String> {
    m.attr(op, "callee")?.as_symbol_ref().map(|p| p.join("::"))
}

pub fn load(b: &mut Builder<'_>, ptr: ValueId, ty: Type) -> ValueId {
    b.build_value("llvm.load", &[ptr], ty, vec![])
}

pub fn store(b: &mut Builder<'_>, value: ValueId, ptr: ValueId) -> OpId {
    b.build("llvm.store", &[value, ptr], &[], vec![])
}

pub fn gep(b: &mut Builder<'_>, ptr: ValueId, indices: &[ValueId]) -> ValueId {
    let ptr_ty = b.ctx().ptr_type();
    let mut operands = vec![ptr];
    operands.extend_from_slice(indices);
    b.build_value("llvm.gep", &operands, ptr_ty, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_ir::dialect::memory_effects;
    use sycl_mlir_ir::{verify, Module};

    #[test]
    fn calls_have_unknown_effects() {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let block = m.top_block();
        let call_op = {
            let mut b = Builder::at_end(&mut m, block);
            let buf = alloca(&mut b, "sycl::buffer");
            call(&mut b, "sycl_buffer_ctor", &[buf], &[])
        };
        assert!(verify(&m).is_ok(), "{:?}", verify(&m));
        // The whole point of raising: this is opaque to analyses.
        assert_eq!(memory_effects(&m, call_op), None);
        assert_eq!(
            callee_name(&m, call_op).as_deref(),
            Some("sycl_buffer_ctor")
        );
    }

    #[test]
    fn missing_callee_rejected() {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let block = m.top_block();
        {
            let mut b = Builder::at_end(&mut m, block);
            b.build("llvm.call", &[], &[], vec![]);
        }
        assert!(verify(&m).is_err());
    }
}
