//! # sycl-mlir-dialects — the built-in dialect subset used by SYCL-MLIR
//!
//! Rust implementations of the upstream-MLIR dialects the paper's compilation
//! flow relies on (§II-B, §IV):
//!
//! * [`func`] — functions, calls and returns;
//! * [`arith`] — integer/float arithmetic with constant folding;
//! * [`math`] — transcendental functions used by the benchmark kernels;
//! * [`memref`] — stack allocation plus load/store with memory effects;
//! * [`scf`] — structured control flow (`scf.for`, `scf.if`);
//! * [`affine`] — affine loops and memory ops (`affine.for`, `affine.load`);
//! * [`llvm`] — the low-level dialect host code is translated into before
//!   raising (§VII-A).
//!
//! [`register_all`] installs everything into a [`Context`].
//!
//! ```
//! use sycl_mlir_ir::Context;
//! let ctx = Context::new();
//! sycl_mlir_dialects::register_all(&ctx);
//! assert!(ctx.lookup_op("arith.addi").is_some());
//! assert!(ctx.lookup_op("scf.for").is_some());
//! ```

pub mod affine;
pub mod arith;
pub mod func;
pub mod llvm;
pub mod math;
pub mod memref;
pub mod scf;

use sycl_mlir_ir::Context;

/// Register every built-in dialect (idempotent).
pub fn register_all(ctx: &Context) {
    ctx.register_dialect(&func::FuncDialect);
    ctx.register_dialect(&arith::ArithDialect);
    ctx.register_dialect(&math::MathDialect);
    ctx.register_dialect(&memref::MemRefDialect);
    ctx.register_dialect(&scf::ScfDialect);
    ctx.register_dialect(&affine::AffineDialect);
    ctx.register_dialect(&llvm::LlvmDialect);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_all_is_idempotent() {
        let ctx = Context::new();
        register_all(&ctx);
        register_all(&ctx);
        assert!(ctx.lookup_op("memref.load").is_some());
        assert!(ctx.lookup_op("affine.for").is_some());
        assert!(ctx.lookup_op("llvm.call").is_some());
        assert!(ctx.registered_dialects().len() >= 7);
    }
}
