//! The `arith` dialect: constants, integer/float arithmetic, comparisons.
//!
//! All ops are pure; binary ops fold when both operands are constants, and a
//! few algebraic identities (`x + 0`, `x * 1`, `x * 0`) fold as well. The
//! dialect registers the context-wide *constant materializer* used by the
//! greedy folding driver.

use sycl_mlir_ir::dialect::{traits, FoldOut, OpInfo};
use sycl_mlir_ir::{Attribute, Builder, Context, Dialect, Module, OpId, Type, TypeKind, ValueId};

/// Dialect registration handle.
pub struct ArithDialect;

/// Comparison predicates for `arith.cmpi` / `arith.cmpf` (stored as the
/// `predicate` string attribute).
pub mod predicate {
    pub const EQ: &str = "eq";
    pub const NE: &str = "ne";
    pub const SLT: &str = "slt";
    pub const SLE: &str = "sle";
    pub const SGT: &str = "sgt";
    pub const SGE: &str = "sge";
}

impl Dialect for ArithDialect {
    fn name(&self) -> &'static str {
        "arith"
    }

    fn register(&self, ctx: &Context) {
        ctx.register_op(
            OpInfo::new("arith.constant")
                .with_traits(traits::CONSTANT_LIKE | traits::PURE)
                .with_verify(verify_constant),
        );
        for name in [
            "arith.addi",
            "arith.subi",
            "arith.muli",
            "arith.divsi",
            "arith.remsi",
            "arith.andi",
            "arith.ori",
            "arith.xori",
            "arith.minsi",
            "arith.maxsi",
        ] {
            ctx.register_op(
                OpInfo::new(name)
                    .with_traits(traits::PURE)
                    .with_verify(verify_same_type_binary)
                    .with_fold(fold_int_binary),
            );
        }
        for name in [
            "arith.addf",
            "arith.subf",
            "arith.mulf",
            "arith.divf",
            "arith.minf",
            "arith.maxf",
        ] {
            ctx.register_op(
                OpInfo::new(name)
                    .with_traits(traits::PURE)
                    .with_verify(verify_same_type_binary)
                    .with_fold(fold_float_binary),
            );
        }
        ctx.register_op(
            OpInfo::new("arith.negf")
                .with_traits(traits::PURE)
                .with_fold(fold_negf),
        );
        ctx.register_op(
            OpInfo::new("arith.cmpi")
                .with_traits(traits::PURE)
                .with_verify(verify_cmp)
                .with_fold(fold_cmpi),
        );
        ctx.register_op(
            OpInfo::new("arith.cmpf")
                .with_traits(traits::PURE)
                .with_verify(verify_cmp)
                .with_fold(fold_cmpf),
        );
        ctx.register_op(
            OpInfo::new("arith.select")
                .with_traits(traits::PURE)
                .with_fold(fold_select),
        );
        ctx.register_op(
            OpInfo::new("arith.index_cast")
                .with_traits(traits::PURE)
                .with_fold(fold_cast_int),
        );
        ctx.register_op(
            OpInfo::new("arith.trunci")
                .with_traits(traits::PURE)
                .with_fold(fold_cast_int),
        );
        ctx.register_op(
            OpInfo::new("arith.extsi")
                .with_traits(traits::PURE)
                .with_fold(fold_cast_int),
        );
        ctx.register_op(
            OpInfo::new("arith.sitofp")
                .with_traits(traits::PURE)
                .with_fold(fold_sitofp),
        );
        ctx.register_op(
            OpInfo::new("arith.fptosi")
                .with_traits(traits::PURE)
                .with_fold(fold_fptosi),
        );
        ctx.register_op(OpInfo::new("arith.truncf").with_traits(traits::PURE));
        ctx.register_op(OpInfo::new("arith.extf").with_traits(traits::PURE));
        ctx.register_constant_materializer(|m, block, index, attr, ty| {
            let name = m.ctx().lookup_op("arith.constant")?;
            let op = m.create_op(
                name,
                &[],
                std::slice::from_ref(ty),
                vec![("value".into(), attr.clone())],
            );
            m.insert_op(block, index, op);
            Some(m.op_result(op, 0))
        });
    }
}

// ----------------------------------------------------------------------
// Verifiers
// ----------------------------------------------------------------------

fn verify_constant(m: &Module, op: OpId) -> Result<(), String> {
    let value = m.attr(op, "value").ok_or("missing `value` attribute")?;
    if m.op_results(op).len() != 1 {
        return Err("must produce exactly one result".into());
    }
    let ty = m.value_type(m.op_result(op, 0));
    match (value, ty.kind()) {
        (Attribute::Int(_), TypeKind::Int(_) | TypeKind::Index) => Ok(()),
        (Attribute::Bool(_), TypeKind::Int(1)) => Ok(()),
        (Attribute::Float(_), TypeKind::F32 | TypeKind::F64) => Ok(()),
        (Attribute::DenseI64(_) | Attribute::DenseF64(_), TypeKind::MemRef { .. }) => Ok(()),
        _ => Err(format!(
            "value attribute {value} incompatible with result type {ty}"
        )),
    }
}

fn verify_same_type_binary(m: &Module, op: OpId) -> Result<(), String> {
    if m.op_operands(op).len() != 2 || m.op_results(op).len() != 1 {
        return Err("expects two operands and one result".into());
    }
    let l = m.value_type(m.op_operand(op, 0));
    let r = m.value_type(m.op_operand(op, 1));
    let res = m.value_type(m.op_result(op, 0));
    if l != r || l != res {
        return Err(format!(
            "operand/result types must match, got ({l}, {r}) -> {res}"
        ));
    }
    Ok(())
}

fn verify_cmp(m: &Module, op: OpId) -> Result<(), String> {
    if m.op_operands(op).len() != 2 || m.op_results(op).len() != 1 {
        return Err("expects two operands and one result".into());
    }
    let res = m.value_type(m.op_result(op, 0));
    if res.int_width() != Some(1) {
        return Err(format!("result must be i1, got {res}"));
    }
    let pred = m
        .attr(op, "predicate")
        .and_then(|a| a.as_str())
        .ok_or("missing `predicate`")?;
    match pred {
        "eq" | "ne" | "slt" | "sle" | "sgt" | "sge" => Ok(()),
        other => Err(format!("unknown predicate `{other}`")),
    }
}

// ----------------------------------------------------------------------
// Folding
// ----------------------------------------------------------------------

/// The constant attribute behind a value, if it is produced by a
/// constant-like op.
pub fn const_of(m: &Module, v: ValueId) -> Option<Attribute> {
    let op = m.def_op(v)?;
    if !m.op_info(op).has_trait(traits::CONSTANT_LIKE) {
        return None;
    }
    m.attr(op, "value").cloned()
}

/// Integer constant behind a value, if any.
pub fn const_int_of(m: &Module, v: ValueId) -> Option<i64> {
    const_of(m, v)?.as_int()
}

/// Float constant behind a value, if any.
pub fn const_float_of(m: &Module, v: ValueId) -> Option<f64> {
    const_of(m, v)?.as_float()
}

fn fold_int_binary(m: &Module, op: OpId) -> Option<Vec<FoldOut>> {
    let name = m.op_name_str(op);
    let lhs = m.op_operand(op, 0);
    let rhs = m.op_operand(op, 1);
    let lc = const_int_of(m, lhs);
    let rc = const_int_of(m, rhs);
    // Algebraic identities first (no materialization needed).
    match (&*name, lc, rc) {
        ("arith.addi", Some(0), _) => return Some(vec![FoldOut::Value(rhs)]),
        ("arith.addi", _, Some(0)) => return Some(vec![FoldOut::Value(lhs)]),
        ("arith.subi", _, Some(0)) => return Some(vec![FoldOut::Value(lhs)]),
        ("arith.muli", Some(1), _) => return Some(vec![FoldOut::Value(rhs)]),
        ("arith.muli", _, Some(1)) => return Some(vec![FoldOut::Value(lhs)]),
        ("arith.muli", Some(0), _) | ("arith.muli", _, Some(0)) => {
            return Some(vec![FoldOut::Attr(Attribute::Int(0))])
        }
        _ => {}
    }
    let (l, r) = (lc?, rc?);
    let out = match &*name {
        "arith.addi" => l.wrapping_add(r),
        "arith.subi" => l.wrapping_sub(r),
        "arith.muli" => l.wrapping_mul(r),
        "arith.divsi" => {
            if r == 0 {
                return None;
            }
            l.wrapping_div(r)
        }
        "arith.remsi" => {
            if r == 0 {
                return None;
            }
            l.wrapping_rem(r)
        }
        "arith.andi" => l & r,
        "arith.ori" => l | r,
        "arith.xori" => l ^ r,
        "arith.minsi" => l.min(r),
        "arith.maxsi" => l.max(r),
        _ => return None,
    };
    Some(vec![FoldOut::Attr(Attribute::Int(out))])
}

fn fold_float_binary(m: &Module, op: OpId) -> Option<Vec<FoldOut>> {
    let name = m.op_name_str(op);
    let l = const_float_of(m, m.op_operand(op, 0))?;
    let r = const_float_of(m, m.op_operand(op, 1))?;
    let out = match &*name {
        "arith.addf" => l + r,
        "arith.subf" => l - r,
        "arith.mulf" => l * r,
        "arith.divf" => l / r,
        "arith.minf" => l.min(r),
        "arith.maxf" => l.max(r),
        _ => return None,
    };
    Some(vec![FoldOut::Attr(Attribute::Float(out))])
}

fn fold_negf(m: &Module, op: OpId) -> Option<Vec<FoldOut>> {
    let v = const_float_of(m, m.op_operand(op, 0))?;
    Some(vec![FoldOut::Attr(Attribute::Float(-v))])
}

fn eval_int_predicate(pred: &str, l: i64, r: i64) -> Option<bool> {
    Some(match pred {
        "eq" => l == r,
        "ne" => l != r,
        "slt" => l < r,
        "sle" => l <= r,
        "sgt" => l > r,
        "sge" => l >= r,
        _ => return None,
    })
}

fn fold_cmpi(m: &Module, op: OpId) -> Option<Vec<FoldOut>> {
    let l = const_int_of(m, m.op_operand(op, 0))?;
    let r = const_int_of(m, m.op_operand(op, 1))?;
    let pred = m.attr(op, "predicate")?.as_str()?.to_string();
    let out = eval_int_predicate(&pred, l, r)?;
    Some(vec![FoldOut::Attr(Attribute::Bool(out))])
}

fn fold_cmpf(m: &Module, op: OpId) -> Option<Vec<FoldOut>> {
    let l = const_float_of(m, m.op_operand(op, 0))?;
    let r = const_float_of(m, m.op_operand(op, 1))?;
    let pred = m.attr(op, "predicate")?.as_str()?.to_string();
    let out = match pred.as_str() {
        "eq" => l == r,
        "ne" => l != r,
        "slt" => l < r,
        "sle" => l <= r,
        "sgt" => l > r,
        "sge" => l >= r,
        _ => return None,
    };
    Some(vec![FoldOut::Attr(Attribute::Bool(out))])
}

fn fold_select(m: &Module, op: OpId) -> Option<Vec<FoldOut>> {
    let cond = const_of(m, m.op_operand(op, 0))?;
    let cond = cond.as_bool().or_else(|| cond.as_int().map(|v| v != 0))?;
    let chosen = if cond {
        m.op_operand(op, 1)
    } else {
        m.op_operand(op, 2)
    };
    Some(vec![FoldOut::Value(chosen)])
}

fn fold_cast_int(m: &Module, op: OpId) -> Option<Vec<FoldOut>> {
    let v = const_int_of(m, m.op_operand(op, 0))?;
    Some(vec![FoldOut::Attr(Attribute::Int(v))])
}

fn fold_sitofp(m: &Module, op: OpId) -> Option<Vec<FoldOut>> {
    let v = const_int_of(m, m.op_operand(op, 0))?;
    Some(vec![FoldOut::Attr(Attribute::Float(v as f64))])
}

fn fold_fptosi(m: &Module, op: OpId) -> Option<Vec<FoldOut>> {
    let v = const_float_of(m, m.op_operand(op, 0))?;
    Some(vec![FoldOut::Attr(Attribute::Int(v as i64))])
}

// ----------------------------------------------------------------------
// Builder helpers
// ----------------------------------------------------------------------

/// Build an integer constant of the given type.
pub fn constant_int(b: &mut Builder<'_>, value: i64, ty: Type) -> ValueId {
    b.build_value(
        "arith.constant",
        &[],
        ty,
        vec![("value".into(), Attribute::Int(value))],
    )
}

/// Build an `index` constant.
pub fn constant_index(b: &mut Builder<'_>, value: i64) -> ValueId {
    let ty = b.ctx().index_type();
    constant_int(b, value, ty)
}

/// Build a floating-point constant of the given type.
pub fn constant_float(b: &mut Builder<'_>, value: f64, ty: Type) -> ValueId {
    b.build_value(
        "arith.constant",
        &[],
        ty,
        vec![("value".into(), Attribute::Float(value))],
    )
}

fn binary(b: &mut Builder<'_>, name: &str, lhs: ValueId, rhs: ValueId) -> ValueId {
    let ty = b.module().value_type(lhs);
    b.build_value(name, &[lhs, rhs], ty, vec![])
}

pub fn addi(b: &mut Builder<'_>, l: ValueId, r: ValueId) -> ValueId {
    binary(b, "arith.addi", l, r)
}

pub fn subi(b: &mut Builder<'_>, l: ValueId, r: ValueId) -> ValueId {
    binary(b, "arith.subi", l, r)
}

pub fn muli(b: &mut Builder<'_>, l: ValueId, r: ValueId) -> ValueId {
    binary(b, "arith.muli", l, r)
}

pub fn divsi(b: &mut Builder<'_>, l: ValueId, r: ValueId) -> ValueId {
    binary(b, "arith.divsi", l, r)
}

pub fn remsi(b: &mut Builder<'_>, l: ValueId, r: ValueId) -> ValueId {
    binary(b, "arith.remsi", l, r)
}

pub fn minsi(b: &mut Builder<'_>, l: ValueId, r: ValueId) -> ValueId {
    binary(b, "arith.minsi", l, r)
}

pub fn maxsi(b: &mut Builder<'_>, l: ValueId, r: ValueId) -> ValueId {
    binary(b, "arith.maxsi", l, r)
}

pub fn addf(b: &mut Builder<'_>, l: ValueId, r: ValueId) -> ValueId {
    binary(b, "arith.addf", l, r)
}

pub fn subf(b: &mut Builder<'_>, l: ValueId, r: ValueId) -> ValueId {
    binary(b, "arith.subf", l, r)
}

pub fn mulf(b: &mut Builder<'_>, l: ValueId, r: ValueId) -> ValueId {
    binary(b, "arith.mulf", l, r)
}

pub fn divf(b: &mut Builder<'_>, l: ValueId, r: ValueId) -> ValueId {
    binary(b, "arith.divf", l, r)
}

pub fn minf(b: &mut Builder<'_>, l: ValueId, r: ValueId) -> ValueId {
    binary(b, "arith.minf", l, r)
}

pub fn maxf(b: &mut Builder<'_>, l: ValueId, r: ValueId) -> ValueId {
    binary(b, "arith.maxf", l, r)
}

pub fn negf(b: &mut Builder<'_>, v: ValueId) -> ValueId {
    let ty = b.module().value_type(v);
    b.build_value("arith.negf", &[v], ty, vec![])
}

/// Integer/index comparison; `pred` is one of the [`predicate`] constants.
pub fn cmpi(b: &mut Builder<'_>, pred: &str, l: ValueId, r: ValueId) -> ValueId {
    let i1 = b.ctx().i1_type();
    b.build_value(
        "arith.cmpi",
        &[l, r],
        i1,
        vec![("predicate".into(), Attribute::Str(pred.into()))],
    )
}

/// Float comparison; `pred` is one of the [`predicate`] constants.
pub fn cmpf(b: &mut Builder<'_>, pred: &str, l: ValueId, r: ValueId) -> ValueId {
    let i1 = b.ctx().i1_type();
    b.build_value(
        "arith.cmpf",
        &[l, r],
        i1,
        vec![("predicate".into(), Attribute::Str(pred.into()))],
    )
}

pub fn select(b: &mut Builder<'_>, cond: ValueId, t: ValueId, f: ValueId) -> ValueId {
    let ty = b.module().value_type(t);
    b.build_value("arith.select", &[cond, t, f], ty, vec![])
}

/// `arith.index_cast` between `index` and integer types.
pub fn index_cast(b: &mut Builder<'_>, v: ValueId, to: Type) -> ValueId {
    b.build_value("arith.index_cast", &[v], to, vec![])
}

pub fn sitofp(b: &mut Builder<'_>, v: ValueId, to: Type) -> ValueId {
    b.build_value("arith.sitofp", &[v], to, vec![])
}

pub fn fptosi(b: &mut Builder<'_>, v: ValueId, to: Type) -> ValueId {
    b.build_value("arith.fptosi", &[v], to, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_ir::{apply_patterns_greedily, verify, Module};

    fn setup() -> (Context, Module) {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let m = Module::new(&ctx);
        (ctx, m)
    }

    #[test]
    fn constants_verify() {
        let (_ctx, mut m) = setup();
        let block = m.top_block();
        let mut b = Builder::at_end(&mut m, block);
        let i32t = b.ctx().i32_type();
        let f32t = b.ctx().f32_type();
        constant_int(&mut b, 42, i32t);
        constant_float(&mut b, 1.5, f32t);
        constant_index(&mut b, 7);
        assert!(verify(&m).is_ok());
    }

    #[test]
    fn mismatched_binary_rejected() {
        let (ctx, mut m) = setup();
        let block = m.top_block();
        let mut b = Builder::at_end(&mut m, block);
        let i32t = ctx.i32_type();
        let i64t = ctx.i64_type();
        let a = constant_int(&mut b, 1, i32t);
        let c = constant_int(&mut b, 2, i64t.clone());
        b.build("arith.addi", &[a, c], &[i64t], vec![]);
        let err = verify(&m).unwrap_err();
        assert!(err.to_string().contains("types must match"), "{err}");
    }

    #[test]
    fn constant_folding_add() {
        let (ctx, mut m) = setup();
        let block = m.top_block();
        // Keep the result alive with a user that doesn't fold.
        let v = {
            let mut b = Builder::at_end(&mut m, block);
            let i64t = ctx.i64_type();
            let a = constant_int(&mut b, 20, i64t.clone());
            let c = constant_int(&mut b, 22, i64t);
            addi(&mut b, a, c)
        };
        {
            let mut b = Builder::at_end(&mut m, block);
            b.build("llvm.store", &[v, v], &[], vec![]); // operand types unchecked here
        }
        let top = m.top();
        apply_patterns_greedily(&mut m, top, &[]);
        // The add must be gone; a constant 42 must feed the store.
        let ops: Vec<String> = m
            .block_ops(m.top_block())
            .iter()
            .map(|&o| m.op_name_str(o).to_string())
            .collect();
        assert!(!ops.contains(&"arith.addi".to_string()), "{ops:?}");
        let store = *m.block_ops(m.top_block()).last().unwrap();
        let operand = m.op_operand(store, 0);
        assert_eq!(const_int_of(&m, operand), Some(42));
    }

    #[test]
    fn identity_folds() {
        let (ctx, mut m) = setup();
        let block = m.top_block();
        let (x, sum) = {
            let mut b = Builder::at_end(&mut m, block);
            let i64t = ctx.i64_type();
            let x = b.build_value("llvm.undef", &[], i64t.clone(), vec![]);
            let zero = constant_int(&mut b, 0, i64t);
            let sum = addi(&mut b, x, zero);
            (x, sum)
        };
        {
            let mut b = Builder::at_end(&mut m, block);
            b.build("llvm.store", &[sum, sum], &[], vec![]);
        }
        let top = m.top();
        apply_patterns_greedily(&mut m, top, &[]);
        let store = *m.block_ops(m.top_block()).last().unwrap();
        assert_eq!(m.op_operand(store, 0), x);
    }

    #[test]
    fn cmp_and_select_fold() {
        let (ctx, mut m) = setup();
        let block = m.top_block();
        let sel = {
            let mut b = Builder::at_end(&mut m, block);
            let i64t = ctx.i64_type();
            let a = constant_int(&mut b, 3, i64t.clone());
            let c = constant_int(&mut b, 5, i64t.clone());
            let cond = cmpi(&mut b, predicate::SLT, a, c);
            let x = constant_int(&mut b, 100, i64t.clone());
            let y = constant_int(&mut b, 200, i64t);
            select(&mut b, cond, x, y)
        };
        {
            let mut b = Builder::at_end(&mut m, block);
            b.build("llvm.store", &[sel, sel], &[], vec![]);
        }
        let top = m.top();
        apply_patterns_greedily(&mut m, top, &[]);
        let store = *m.block_ops(m.top_block()).last().unwrap();
        assert_eq!(const_int_of(&m, m.op_operand(store, 0)), Some(100));
    }
}
