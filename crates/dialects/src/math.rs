//! The `math` dialect: transcendental functions used by the SYCL-Bench
//! kernels (square roots in MolDyn/NBody/Correlation, `exp` in the kernels
//! derived from statistics workloads, …). All ops are pure and fold on
//! constant input.

use sycl_mlir_ir::dialect::{traits, FoldOut, OpInfo};
use sycl_mlir_ir::{Attribute, Builder, Context, Dialect, Module, OpId, ValueId};

/// Dialect registration handle.
pub struct MathDialect;

const UNARY_OPS: [&str; 8] = [
    "math.sqrt",
    "math.exp",
    "math.log",
    "math.absf",
    "math.sin",
    "math.cos",
    "math.floor",
    "math.rsqrt",
];

impl Dialect for MathDialect {
    fn name(&self) -> &'static str {
        "math"
    }

    fn register(&self, ctx: &Context) {
        for name in UNARY_OPS {
            ctx.register_op(
                OpInfo::new(name)
                    .with_traits(traits::PURE)
                    .with_verify(verify_unary)
                    .with_fold(fold_unary),
            );
        }
        ctx.register_op(
            OpInfo::new("math.powf")
                .with_traits(traits::PURE)
                .with_fold(fold_powf),
        );
    }
}

fn verify_unary(m: &Module, op: OpId) -> Result<(), String> {
    if m.op_operands(op).len() != 1 || m.op_results(op).len() != 1 {
        return Err("expects one operand and one result".into());
    }
    let in_ty = m.value_type(m.op_operand(op, 0));
    let out_ty = m.value_type(m.op_result(op, 0));
    if !in_ty.is_float() || in_ty != out_ty {
        return Err(format!(
            "expects matching float types, got {in_ty} -> {out_ty}"
        ));
    }
    Ok(())
}

/// Evaluate a `math` unary op on a concrete `f64`; shared with the
/// interpreter in the simulator crate.
pub fn eval_unary(name: &str, x: f64) -> Option<f64> {
    Some(match name {
        "math.sqrt" => x.sqrt(),
        "math.exp" => x.exp(),
        "math.log" => x.ln(),
        "math.absf" => x.abs(),
        "math.sin" => x.sin(),
        "math.cos" => x.cos(),
        "math.floor" => x.floor(),
        "math.rsqrt" => 1.0 / x.sqrt(),
        _ => return None,
    })
}

fn fold_unary(m: &Module, op: OpId) -> Option<Vec<FoldOut>> {
    let x = crate::arith::const_float_of(m, m.op_operand(op, 0))?;
    let name = m.op_name_str(op);
    let out = eval_unary(&name, x)?;
    Some(vec![FoldOut::Attr(Attribute::Float(out))])
}

fn fold_powf(m: &Module, op: OpId) -> Option<Vec<FoldOut>> {
    let x = crate::arith::const_float_of(m, m.op_operand(op, 0))?;
    let y = crate::arith::const_float_of(m, m.op_operand(op, 1))?;
    Some(vec![FoldOut::Attr(Attribute::Float(x.powf(y)))])
}

fn unary(b: &mut Builder<'_>, name: &str, v: ValueId) -> ValueId {
    let ty = b.module().value_type(v);
    b.build_value(name, &[v], ty, vec![])
}

pub fn sqrt(b: &mut Builder<'_>, v: ValueId) -> ValueId {
    unary(b, "math.sqrt", v)
}

pub fn exp(b: &mut Builder<'_>, v: ValueId) -> ValueId {
    unary(b, "math.exp", v)
}

pub fn log(b: &mut Builder<'_>, v: ValueId) -> ValueId {
    unary(b, "math.log", v)
}

pub fn absf(b: &mut Builder<'_>, v: ValueId) -> ValueId {
    unary(b, "math.absf", v)
}

pub fn sin(b: &mut Builder<'_>, v: ValueId) -> ValueId {
    unary(b, "math.sin", v)
}

pub fn cos(b: &mut Builder<'_>, v: ValueId) -> ValueId {
    unary(b, "math.cos", v)
}

pub fn floor(b: &mut Builder<'_>, v: ValueId) -> ValueId {
    unary(b, "math.floor", v)
}

pub fn powf(b: &mut Builder<'_>, x: ValueId, y: ValueId) -> ValueId {
    let ty = b.module().value_type(x);
    b.build_value("math.powf", &[x, y], ty, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{const_float_of, constant_float};
    use sycl_mlir_ir::{apply_patterns_greedily, verify, Module};

    #[test]
    fn sqrt_folds_on_constant() {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let block = m.top_block();
        let root = m.top();
        {
            let mut b = Builder::at_end(&mut m, block);
            let f64t = b.ctx().f64_type();
            let nine = constant_float(&mut b, 9.0, f64t);
            let r = sqrt(&mut b, nine);
            b.build("llvm.store", &[r, r], &[], vec![]);
        }
        apply_patterns_greedily(&mut m, root, &[]);
        let store = *m.block_ops(m.top_block()).last().unwrap();
        assert_eq!(const_float_of(&m, m.op_operand(store, 0)), Some(3.0));
    }

    #[test]
    fn type_mismatch_rejected() {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let block = m.top_block();
        {
            let mut b = Builder::at_end(&mut m, block);
            let f32t = b.ctx().f32_type();
            let f64t = b.ctx().f64_type();
            let x = constant_float(&mut b, 1.0, f32t);
            b.build("math.sqrt", &[x], &[f64t], vec![]);
        }
        assert!(verify(&m).is_err());
    }
}
