//! The `affine` dialect: loops whose index arithmetic is amenable to the
//! memory access analysis of §V-D, plus `affine.load`/`affine.store`.
//!
//! Structurally `affine.for` matches `scf.for` (same operand/region shape);
//! the dialect distinction marks loops the polyhedral-style passes (reduction
//! detection §VI-B, loop internalization §VI-C) are allowed to reason about.

use sycl_mlir_ir::dialect::{traits, Effect, OpInfo};
use sycl_mlir_ir::{Builder, Context, Dialect, Module, OpId, ValueId};

/// Dialect registration handle.
pub struct AffineDialect;

impl Dialect for AffineDialect {
    fn name(&self) -> &'static str {
        "affine"
    }

    fn register(&self, ctx: &Context) {
        ctx.register_op(
            OpInfo::new("affine.for")
                .with_traits(traits::LOOP_LIKE | traits::RECURSIVE_EFFECTS)
                .with_verify(crate::scf::verify_loop_shape),
        );
        ctx.register_op(OpInfo::new("affine.yield").with_traits(traits::TERMINATOR));
        ctx.register_op(
            OpInfo::new("affine.load")
                .with_verify(verify_affine_load)
                .with_effects(|m, op| vec![Effect::read(m.op_operand(op, 0))]),
        );
        ctx.register_op(
            OpInfo::new("affine.store")
                .with_verify(verify_affine_store)
                .with_effects(|m, op| vec![Effect::write(m.op_operand(op, 1))]),
        );
    }
}

fn verify_affine_load(m: &Module, op: OpId) -> Result<(), String> {
    let operands = m.op_operands(op);
    if operands.is_empty() || m.op_results(op).len() != 1 {
        return Err("expects (memref, indices...) -> value".into());
    }
    let ty = m.value_type(operands[0]);
    let elem = ty.memref_elem().ok_or("first operand must be a memref")?;
    if m.value_type(m.op_result(op, 0)) != elem {
        return Err("result type must match the memref element type".into());
    }
    Ok(())
}

fn verify_affine_store(m: &Module, op: OpId) -> Result<(), String> {
    let operands = m.op_operands(op);
    if operands.len() < 2 || !m.op_results(op).is_empty() {
        return Err("expects (value, memref, indices...) -> ()".into());
    }
    let ty = m.value_type(operands[1]);
    let elem = ty.memref_elem().ok_or("second operand must be a memref")?;
    if m.value_type(operands[0]) != elem {
        return Err("stored type must match the memref element type".into());
    }
    Ok(())
}

/// Build an `affine.for`; see [`crate::scf::build_loop`] for the contract.
pub fn build_affine_for(
    b: &mut Builder<'_>,
    lb: ValueId,
    ub: ValueId,
    step: ValueId,
    inits: &[ValueId],
    body: impl FnOnce(&mut Builder<'_>, ValueId, &[ValueId]) -> Vec<ValueId>,
) -> OpId {
    crate::scf::build_loop(b, "affine.for", lb, ub, step, inits, body)
}

/// Load through `affine.load`.
pub fn load(b: &mut Builder<'_>, memref: ValueId, indices: &[ValueId]) -> ValueId {
    let elem = b
        .module()
        .value_type(memref)
        .memref_elem()
        .expect("affine.load on non-memref value");
    let mut operands = vec![memref];
    operands.extend_from_slice(indices);
    b.build_value("affine.load", &operands, elem, vec![])
}

/// Store through `affine.store`.
pub fn store(b: &mut Builder<'_>, value: ValueId, memref: ValueId, indices: &[ValueId]) -> OpId {
    let mut operands = vec![value, memref];
    operands.extend_from_slice(indices);
    b.build("affine.store", &operands, &[], vec![])
}

/// `true` if `op` is an `affine.for`.
pub fn is_affine_for(m: &Module, op: OpId) -> bool {
    m.op_is(op, "affine.for")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arith::{self, constant_index};
    use crate::func::{build_func, build_return};
    use sycl_mlir_ir::{print_module, verify, Module};

    /// Builds the reduction example of the paper's Listing 4:
    /// a loop loading and storing `%ptr[0]` every iteration.
    #[test]
    fn listing4_shape_builds_and_verifies() {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let f32t = ctx.f32_type();
        let mem1 = ctx.memref_type(f32t.clone(), &[1]);
        let memd = ctx.memref_type(f32t.clone(), &[-1]);
        let top = m.top();
        let (_f, entry) = build_func(
            &mut m,
            top,
            "reduction",
            &[mem1, memd, ctx.index_type(), ctx.index_type()],
            &[],
        );
        let ptr = m.block_arg(entry, 0);
        let other = m.block_arg(entry, 1);
        let lb = m.block_arg(entry, 2);
        let ub = m.block_arg(entry, 3);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let one = constant_index(&mut b, 1);
            build_affine_for(&mut b, lb, ub, one, &[], |inner, iv, _| {
                let zero = constant_index(inner, 0);
                let val = load(inner, ptr, &[zero]);
                let o = load(inner, other, &[iv]);
                let res = arith::addf(inner, val, o);
                store(inner, res, ptr, &[zero]);
                vec![]
            });
            build_return(&mut b, &[]);
        }
        assert!(verify(&m).is_ok(), "{}\n{:?}", print_module(&m), verify(&m));
        let text = print_module(&m);
        assert!(text.contains("affine.for"), "{text}");
        assert!(text.contains("affine.load"), "{text}");
        assert!(text.contains("affine.store"), "{text}");
    }

    #[test]
    fn affine_store_type_mismatch_rejected() {
        let ctx = Context::new();
        crate::register_all(&ctx);
        let mut m = Module::new(&ctx);
        let block = m.top_block();
        {
            let mut b = Builder::at_end(&mut m, block);
            let f64t = b.ctx().f64_type();
            let f32t = b.ctx().f32_type();
            let v = arith::constant_float(&mut b, 1.0, f64t);
            let mem = crate::memref::alloca(&mut b, f32t, &[1]);
            let zero = constant_index(&mut b, 0);
            b.build("affine.store", &[v, mem, zero], &[], vec![]);
        }
        assert!(verify(&m).is_err());
    }
}
