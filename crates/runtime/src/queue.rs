//! Queues, command groups, and the dependency-tracking scheduler.
//!
//! With the buffer/accessor model "the SYCL runtime can fully automate
//! dependency tracking between kernels and necessary data movements"
//! (§II-A): command groups are ordered by RAW/WAR/WAW hazards over the
//! buffers their accessors request.

use crate::buffer::BufferId;
use sycl_mlir_sim::{LaunchDag, NdRangeSpec};
use sycl_mlir_sycl::types::AccessMode;

/// One kernel argument recorded in a command group, in kernel-parameter
/// order.
#[derive(Clone, Debug, PartialEq)]
pub enum CgArg {
    /// An accessor over `buffer` with the given mode.
    Acc {
        /// The buffer the accessor ranges over.
        buffer: BufferId,
        /// Requested access mode (drives dependency tracking).
        mode: AccessMode,
    },
    /// Scalar captured by the kernel functor, constant in the host source
    /// (visible to host constant propagation).
    ScalarI64(i64),
    /// See [`CgArg::ScalarI64`].
    ScalarF64(f64),
    /// See [`CgArg::ScalarI64`].
    ScalarF32(f32),
    /// See [`CgArg::ScalarI64`].
    ScalarI32(i32),
    /// Scalar only known at run time (opaque to the compiler).
    RuntimeI64(i64),
    /// See [`CgArg::RuntimeI64`].
    RuntimeF64(f64),
    /// A USM device pointer (manually managed, opaque to host analysis).
    Usm {
        /// The USM allocation.
        id: crate::buffer::UsmId,
        /// Element count of the allocation.
        len: i64,
    },
}

impl CgArg {
    /// The buffer and mode, if this argument is an accessor.
    pub fn accessor(&self) -> Option<(BufferId, AccessMode)> {
        match self {
            CgArg::Acc { buffer, mode } => Some((*buffer, *mode)),
            _ => None,
        }
    }
}

/// A deterministic host-side operation submitted as a command group (the
/// SYCL `handler::host_task`): it reads/writes buffers on the host and is
/// ordered through the same hazard DAG as kernel launches. The executor
/// runs it as a **first-class launch-graph node** (a
/// [`sycl_mlir_sim::HostNode`]): one logical work-group on a pool worker,
/// hazard-tracked, metered at a fixed weight, cancellable and
/// fault-injectable like any kernel launch — so kernels with no hazard on
/// the host task overlap it freely. `SYCL_MLIR_SIM_HOST_NODES=off`
/// restores the legacy segmented schedule, where every host task is a
/// synchronization point splitting the program into separately scheduled
/// launch-graph segments; results, reports and failure positions are
/// bit-identical either way.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum HostOp {
    /// Multiply every element of `buffer` by `factor`.
    Scale {
        /// The buffer to scale in place.
        buffer: BufferId,
        /// The factor (applied through `f64` for every element type).
        factor: f64,
    },
    /// Add `delta` to every element of `buffer`.
    Shift {
        /// The buffer to shift in place.
        buffer: BufferId,
        /// The addend (applied through `f64` for every element type).
        delta: f64,
    },
    /// `dst[i] += src[i]` elementwise (the buffers must share element
    /// type; lengths are clamped to the shorter one).
    AddInto {
        /// The accumulated-into buffer.
        dst: BufferId,
        /// The added buffer.
        src: BufferId,
    },
}

impl HostOp {
    /// The accessor requirements implied by the operation — recorded on
    /// the command group so dependency tracking sees host tasks exactly
    /// like kernel submissions.
    pub fn requirements(&self) -> Vec<(BufferId, AccessMode)> {
        match *self {
            HostOp::Scale { buffer, .. } | HostOp::Shift { buffer, .. } => {
                vec![(buffer, AccessMode::ReadWrite)]
            }
            HostOp::AddInto { dst, src } => {
                vec![(dst, AccessMode::ReadWrite), (src, AccessMode::Read)]
            }
        }
    }
}

/// A recorded command group: one kernel submission (or host task) with
/// its requirements.
#[derive(Clone, Debug)]
pub struct CommandGroup {
    /// Kernel name to resolve at execution time (`"<host-task>"` for host
    /// tasks).
    pub kernel: String,
    /// Launch geometry.
    pub nd: NdRangeSpec,
    /// `parallel_for(nd_range)` vs `parallel_for(range)`.
    pub nd_form: bool,
    /// Arguments in kernel-parameter order.
    pub args: Vec<CgArg>,
    /// The host operation, when this group is a host task instead of a
    /// kernel launch.
    pub host: Option<HostOp>,
}

impl CommandGroup {
    /// Buffers this command group reads / writes.
    pub fn reads_writes(&self) -> (Vec<BufferId>, Vec<BufferId>) {
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        for a in &self.args {
            if let Some((b, mode)) = a.accessor() {
                if mode.can_read() {
                    reads.push(b);
                }
                if mode.can_write() {
                    writes.push(b);
                }
            }
        }
        (reads, writes)
    }

    /// USM allocations this command group touches. USM pointers carry no
    /// access mode (they are opaque to the runtime, §II-A), so dependency
    /// tracking must assume read+write on each.
    pub fn usm_ids(&self) -> Vec<crate::buffer::UsmId> {
        self.args
            .iter()
            .filter_map(|a| match a {
                CgArg::Usm { id, .. } => Some(*id),
                _ => None,
            })
            .collect()
    }
}

/// The command-group construction API handed to [`Queue::submit`] closures,
/// mirroring the SYCL handler.
#[derive(Default)]
pub struct Handler {
    args: Vec<CgArg>,
    cg: Option<CommandGroup>,
}

impl Handler {
    /// Request an accessor (also records the scheduling requirement).
    pub fn accessor(&mut self, buffer: BufferId, mode: AccessMode) -> &mut Handler {
        self.args.push(CgArg::Acc { buffer, mode });
        self
    }

    /// Capture a compile-time-constant scalar.
    pub fn scalar_i64(&mut self, v: i64) -> &mut Handler {
        self.args.push(CgArg::ScalarI64(v));
        self
    }

    /// See [`Handler::scalar_i64`].
    pub fn scalar_f64(&mut self, v: f64) -> &mut Handler {
        self.args.push(CgArg::ScalarF64(v));
        self
    }

    /// See [`Handler::scalar_i64`].
    pub fn scalar_f32(&mut self, v: f32) -> &mut Handler {
        self.args.push(CgArg::ScalarF32(v));
        self
    }

    /// See [`Handler::scalar_i64`].
    pub fn scalar_i32(&mut self, v: i32) -> &mut Handler {
        self.args.push(CgArg::ScalarI32(v));
        self
    }

    /// Capture a scalar whose value only exists at run time.
    pub fn runtime_i64(&mut self, v: i64) -> &mut Handler {
        self.args.push(CgArg::RuntimeI64(v));
        self
    }

    /// See [`Handler::runtime_i64`].
    pub fn runtime_f64(&mut self, v: f64) -> &mut Handler {
        self.args.push(CgArg::RuntimeF64(v));
        self
    }

    /// Pass a USM device pointer (the kernel sees a plain global array; no
    /// buffer-identity or constness information reaches the compiler).
    pub fn usm(&mut self, id: crate::buffer::UsmId, len: i64) -> &mut Handler {
        self.args.push(CgArg::Usm { id, len });
        self
    }

    /// Submit an nd-range kernel (Listing 6 style).
    pub fn parallel_for_nd(&mut self, kernel: &str, global: &[i64], local: &[i64]) {
        let mut g = [1_i64; 3];
        let mut l = [1_i64; 3];
        for (i, &x) in global.iter().enumerate() {
            g[i] = x;
        }
        for (i, &x) in local.iter().enumerate() {
            l[i] = x;
        }
        self.cg = Some(CommandGroup {
            kernel: kernel.to_string(),
            nd: NdRangeSpec {
                global: g,
                local: l,
                rank: global.len() as u32,
            },
            nd_form: true,
            args: std::mem::take(&mut self.args),
            host: None,
        });
    }

    /// Submit a range kernel; the runtime picks the work-group size.
    pub fn parallel_for(&mut self, kernel: &str, global: &[i64]) {
        let mut g = [1_i64; 3];
        for (i, &x) in global.iter().enumerate() {
            g[i] = x;
        }
        let l = pick_work_group(&g, global.len() as u32);
        self.cg = Some(CommandGroup {
            kernel: kernel.to_string(),
            nd: NdRangeSpec {
                global: g,
                local: l,
                rank: global.len() as u32,
            },
            nd_form: false,
            args: std::mem::take(&mut self.args),
            host: None,
        });
    }

    /// Submit a host task (the SYCL `handler::host_task`): deterministic
    /// host-side work over buffers, ordered through the hazard DAG like
    /// any kernel. The operation's buffer requirements are recorded
    /// automatically (in addition to any explicitly requested accessors).
    pub fn host_task(&mut self, op: HostOp) {
        for (buffer, mode) in op.requirements() {
            self.args.push(CgArg::Acc { buffer, mode });
        }
        self.cg = Some(CommandGroup {
            kernel: "<host-task>".to_string(),
            nd: NdRangeSpec::d1(1, 1),
            nd_form: false,
            args: std::mem::take(&mut self.args),
            host: Some(op),
        });
    }
}

/// Runtime work-group choice for `parallel_for(range)`: largest
/// power-of-two divisor up to 256 (1-d) / 16 per dim (2-d/3-d).
fn pick_work_group(global: &[i64; 3], rank: u32) -> [i64; 3] {
    let mut local = [1_i64; 3];
    let cap = if rank <= 1 { 256 } else { 16 };
    for d in 0..rank as usize {
        let mut w = 1;
        while w * 2 <= cap && global[d] % (w * 2) == 0 {
            w *= 2;
        }
        local[d] = w;
    }
    local
}

/// An in-order-submission queue with automatic dependency tracking.
#[derive(Default, Debug)]
pub struct Queue {
    /// Recorded command groups, in submission order.
    pub groups: Vec<CommandGroup>,
}

impl Queue {
    /// An empty queue.
    pub fn new() -> Queue {
        Queue::default()
    }

    /// Record a command group (the SYCL `queue::submit`).
    ///
    /// # Panics
    ///
    /// Panics if the closure never calls a `parallel_for` variant.
    pub fn submit(&mut self, f: impl FnOnce(&mut Handler)) -> usize {
        let mut h = Handler::default();
        f(&mut h);
        let cg = h.cg.expect("command group did not submit a kernel");
        self.groups.push(cg);
        self.groups.len() - 1
    }

    /// Dependency edges `(before, after)` implied by buffer hazards
    /// (RAW, WAR, WAW) — what the SYCL scheduler enforces (§II-A) — plus
    /// conservative read+write hazards on shared USM allocations (USM
    /// pointers carry no access mode the runtime could refine).
    pub fn dependencies(&self) -> Vec<(usize, usize)> {
        // Per-group requirement sets are immutable; compute them once
        // instead of once per pair.
        let rw: Vec<_> = self.groups.iter().map(|g| g.reads_writes()).collect();
        let usm: Vec<_> = self.groups.iter().map(|g| g.usm_ids()).collect();
        let mut edges = Vec::new();
        for j in 0..self.groups.len() {
            let (rj, wj) = &rw[j];
            for i in 0..j {
                let (ri, wi) = &rw[i];
                let raw = wi.iter().any(|b| rj.contains(b));
                let war = ri.iter().any(|b| wj.contains(b));
                let waw = wi.iter().any(|b| wj.contains(b));
                let shared_usm = usm[i].iter().any(|u| usm[j].contains(u));
                if raw || war || waw || shared_usm {
                    edges.push((i, j));
                }
            }
        }
        edges
    }

    /// A valid execution order (submission order is always valid for an
    /// in-order dependency DAG, but this verifies acyclicity structurally).
    pub fn schedule(&self) -> Vec<usize> {
        (0..self.groups.len()).collect()
    }

    /// The full hazard DAG over the recorded command groups: predecessor
    /// counts plus successor lists, indices in submission order. This is
    /// what the executor's out-of-order scheduler consumes
    /// ([`sycl_mlir_sim::Device::launch_graph`]); [`Queue::batches`] is
    /// derived from the same graph, so the two views can never disagree.
    pub fn dep_graph(&self) -> LaunchDag {
        LaunchDag::from_edges(self.groups.len(), &self.dependencies())
    }

    /// Partition the topological order into **dependency levels**: batch
    /// `k` holds every command group all of whose predecessors sit in
    /// batches `< k`. Command groups within one batch are mutually
    /// independent (no RAW/WAR/WAW hazard connects them), so the device
    /// may execute a whole batch concurrently; batches must still run in
    /// order. Within a batch, indices are in submission order.
    ///
    /// Since the out-of-order scheduler landed this leveled view is a
    /// fallback/debug path (`--overlap=off`); it is re-derived from
    /// [`Queue::dep_graph`] — the topological layering of the exported
    /// DAG — rather than computed independently.
    pub fn batches(&self) -> Vec<Vec<usize>> {
        self.dep_graph().levels()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependency_edges() {
        let a = BufferId(0);
        let b = BufferId(1);
        let mut q = Queue::new();
        // CG0 writes a; CG1 reads a, writes b (RAW on a); CG2 reads b (RAW
        // on b); CG2 is independent of CG0.
        q.submit(|h| {
            h.accessor(a, AccessMode::Write);
            h.parallel_for("k0", &[16]);
        });
        q.submit(|h| {
            h.accessor(a, AccessMode::Read)
                .accessor(b, AccessMode::Write);
            h.parallel_for("k1", &[16]);
        });
        q.submit(|h| {
            h.accessor(b, AccessMode::Read);
            h.parallel_for("k2", &[16]);
        });
        let deps = q.dependencies();
        assert!(deps.contains(&(0, 1)));
        assert!(deps.contains(&(1, 2)));
        assert!(!deps.contains(&(0, 2)));
        assert_eq!(q.schedule(), vec![0, 1, 2]);
    }

    #[test]
    fn runtime_work_group_choice() {
        assert_eq!(pick_work_group(&[1024, 1, 1], 1)[0], 256);
        assert_eq!(pick_work_group(&[100, 1, 1], 1)[0], 4);
        assert_eq!(pick_work_group(&[64, 64, 1], 2), [16, 16, 1]);
        assert_eq!(pick_work_group(&[6, 6, 1], 2), [2, 2, 1]);
    }

    #[test]
    fn batches_group_dependency_free_levels() {
        let a = BufferId(0);
        let b = BufferId(1);
        let c = BufferId(2);
        let mut q = Queue::new();
        // CG0 writes a; CG1 reads a (level 1); CG2 writes c (independent,
        // level 0); CG3 reads a and c (level 1).
        q.submit(|h| {
            h.accessor(a, AccessMode::Write);
            h.parallel_for("k0", &[16]);
        });
        q.submit(|h| {
            h.accessor(a, AccessMode::Read)
                .accessor(b, AccessMode::Write);
            h.parallel_for("k1", &[16]);
        });
        q.submit(|h| {
            h.accessor(c, AccessMode::Write);
            h.parallel_for("k2", &[16]);
        });
        q.submit(|h| {
            h.accessor(a, AccessMode::Read)
                .accessor(c, AccessMode::Read);
            h.parallel_for("k3", &[16]);
        });
        assert_eq!(q.batches(), vec![vec![0, 2], vec![1, 3]]);
        assert_eq!(Queue::new().batches(), Vec::<Vec<usize>>::new());
    }

    #[test]
    fn usm_arguments_are_conservative_hazards() {
        let u = crate::buffer::UsmId(0);
        let v = crate::buffer::UsmId(1);
        let mut q = Queue::new();
        // CG0 and CG1 share USM allocation `u` (no access mode exists to
        // refine the hazard); CG2 touches only `v`.
        q.submit(|h| {
            h.usm(u, 16);
            h.parallel_for("k0", &[16]);
        });
        q.submit(|h| {
            h.usm(u, 16);
            h.parallel_for("k1", &[16]);
        });
        q.submit(|h| {
            h.usm(v, 16);
            h.parallel_for("k2", &[16]);
        });
        let deps = q.dependencies();
        assert!(deps.contains(&(0, 1)));
        assert!(!deps.contains(&(0, 2)));
        assert_eq!(q.batches(), vec![vec![0, 2], vec![1]]);
    }

    /// `batches()` must equal the topological layering of the exported
    /// DAG — computed here independently, straight from the edge list, so
    /// the two views can never silently disagree.
    #[test]
    fn batches_equal_topological_layering_of_dep_graph() {
        let a = BufferId(0);
        let b = BufferId(1);
        let c = BufferId(2);
        let u = crate::buffer::UsmId(0);
        let mut q = Queue::new();
        // A small lattice: writes, reads, a shared USM pair and a host
        // task, producing three levels with mixed membership.
        q.submit(|h| {
            h.accessor(a, AccessMode::Write);
            h.parallel_for("k0", &[16]);
        });
        q.submit(|h| {
            h.accessor(a, AccessMode::Read)
                .accessor(b, AccessMode::Write);
            h.parallel_for("k1", &[16]);
        });
        q.submit(|h| {
            h.accessor(c, AccessMode::Write);
            h.usm(u, 16);
            h.parallel_for("k2", &[16]);
        });
        q.submit(|h| {
            h.host_task(HostOp::Scale {
                buffer: b,
                factor: 2.0,
            })
        });
        q.submit(|h| {
            h.usm(u, 16);
            h.parallel_for("k4", &[16]);
        });

        // Independent layering from the raw edges.
        let n = q.groups.len();
        let mut level = vec![0_usize; n];
        for (i, j) in q.dependencies() {
            level[j] = level[j].max(level[i] + 1);
        }
        let depth = level.iter().copied().max().unwrap_or(0) + 1;
        let mut expect = vec![Vec::new(); depth];
        for (cg, &l) in level.iter().enumerate() {
            expect[l].push(cg);
        }
        assert_eq!(q.batches(), expect);

        // And the exported DAG agrees structurally with the edge list.
        let dag = q.dep_graph();
        let edges = q.dependencies();
        for (i, j) in &edges {
            assert!(dag.succs[*i].contains(j), "edge ({i}, {j}) missing");
        }
        assert_eq!(
            dag.preds.iter().sum::<usize>(),
            edges.len(),
            "predecessor counts must count every edge exactly once"
        );
    }

    /// Host tasks participate in dependency tracking through the
    /// requirements implied by their operation.
    #[test]
    fn host_tasks_are_hazard_tracked() {
        let a = BufferId(0);
        let b = BufferId(1);
        let mut q = Queue::new();
        q.submit(|h| {
            h.accessor(a, AccessMode::Write);
            h.parallel_for("k0", &[16]);
        });
        // Host task reads a, accumulates into b: RAW on a.
        q.submit(|h| h.host_task(HostOp::AddInto { dst: b, src: a }));
        // Kernel reading b: RAW on b against the host task.
        q.submit(|h| {
            h.accessor(b, AccessMode::Read);
            h.parallel_for("k2", &[16]);
        });
        let deps = q.dependencies();
        assert!(deps.contains(&(0, 1)));
        assert!(deps.contains(&(1, 2)));
        assert!(!deps.contains(&(0, 2)));
        assert!(q.groups[1].host.is_some());
        assert_eq!(q.groups[1].kernel, "<host-task>");
    }

    #[test]
    fn nd_submission_records_geometry() {
        let mut q = Queue::new();
        q.submit(|h| {
            h.scalar_i64(42);
            h.parallel_for_nd("gemm", &[64, 64], &[16, 16]);
        });
        let cg = &q.groups[0];
        assert!(cg.nd_form);
        assert_eq!(cg.nd.global, [64, 64, 1]);
        assert_eq!(cg.nd.local, [16, 16, 1]);
        assert_eq!(cg.args, vec![CgArg::ScalarI64(42)]);
    }
}
