//! Buffers, USM allocations and the runtime's host-side state.

use sycl_mlir_sim::{DataVec, MemoryPool};

/// Handle to a SYCL buffer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BufferId(pub usize);

/// Handle to a USM allocation (`malloc_device`-style, §II-A).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct UsmId(pub usize);

/// One buffer: host data plus range metadata.
#[derive(Clone, Debug)]
pub struct BufferData {
    /// Host copy of the buffer contents.
    pub data: DataVec,
    /// Extents, padded with 1s to rank 3.
    pub range: [i64; 3],
    /// Number of meaningful dimensions.
    pub rank: u32,
    /// Host data is a compile-time constant (e.g. `const float filter[]`
    /// captured into the kernel — the Sobel case of §VIII).
    pub const_init: bool,
}

/// The runtime's host-side state: buffers, USM allocations and transfer
/// counters.
#[derive(Default, Debug)]
pub struct SyclRuntime {
    /// All buffers, indexed by [`BufferId`].
    pub buffers: Vec<BufferData>,
    /// All USM allocations, indexed by [`UsmId`].
    pub usm: Vec<DataVec>,
    /// Host→device and device→host bytes moved (the buffer/accessor model
    /// automates these transfers, §II-A).
    pub bytes_to_device: u64,
    /// Device→host bytes moved.
    pub bytes_to_host: u64,
}

fn range3(range: &[i64]) -> ([i64; 3], u32) {
    let mut r = [1_i64; 3];
    for (i, &x) in range.iter().enumerate() {
        r[i] = x;
    }
    (r, range.len() as u32)
}

impl SyclRuntime {
    /// A runtime with no buffers or allocations.
    pub fn new() -> SyclRuntime {
        SyclRuntime::default()
    }

    fn add_buffer(&mut self, data: DataVec, range: &[i64], const_init: bool) -> BufferId {
        let len: i64 = range.iter().product();
        assert_eq!(
            len as usize,
            data.len(),
            "buffer data does not match its range"
        );
        let (r, rank) = range3(range);
        let id = BufferId(self.buffers.len());
        self.buffers.push(BufferData {
            data,
            range: r,
            rank,
            const_init,
        });
        id
    }

    /// An `f32` buffer over `data` with the given range.
    pub fn buffer_f32(&mut self, data: Vec<f32>, range: &[i64]) -> BufferId {
        self.add_buffer(DataVec::F32(data), range, false)
    }

    /// An `f64` buffer over `data` with the given range.
    pub fn buffer_f64(&mut self, data: Vec<f64>, range: &[i64]) -> BufferId {
        self.add_buffer(DataVec::F64(data), range, false)
    }

    /// An `i32` buffer over `data` with the given range.
    pub fn buffer_i32(&mut self, data: Vec<i32>, range: &[i64]) -> BufferId {
        self.add_buffer(DataVec::I32(data), range, false)
    }

    /// An `i64` buffer over `data` with the given range.
    pub fn buffer_i64(&mut self, data: Vec<i64>, range: &[i64]) -> BufferId {
        self.add_buffer(DataVec::I64(data), range, false)
    }

    /// A buffer over data the host program declares `const` — candidate
    /// for host→device constant propagation (§VII-B, Sobel filter).
    pub fn buffer_const_f32(&mut self, data: Vec<f32>, range: &[i64]) -> BufferId {
        self.add_buffer(DataVec::F32(data), range, true)
    }

    /// See [`SyclRuntime::buffer_const_f32`].
    pub fn buffer_const_f64(&mut self, data: Vec<f64>, range: &[i64]) -> BufferId {
        self.add_buffer(DataVec::F64(data), range, true)
    }

    /// USM device allocation: the user manages transfers manually (§II-A).
    pub fn usm_alloc_f32(&mut self, data: Vec<f32>) -> UsmId {
        let id = UsmId(self.usm.len());
        self.usm.push(DataVec::F32(data));
        id
    }

    /// See [`SyclRuntime::usm_alloc_f32`].
    pub fn usm_alloc_f64(&mut self, data: Vec<f64>) -> UsmId {
        let id = UsmId(self.usm.len());
        self.usm.push(DataVec::F64(data));
        id
    }

    /// Read an `f32` buffer back (panics on a type mismatch).
    pub fn read_f32(&self, id: BufferId) -> &[f32] {
        match &self.buffers[id.0].data {
            DataVec::F32(v) => v,
            other => panic!("buffer {id:?} is not f32: {other:?}"),
        }
    }

    /// Read an `f64` buffer back (panics on a type mismatch).
    pub fn read_f64(&self, id: BufferId) -> &[f64] {
        match &self.buffers[id.0].data {
            DataVec::F64(v) => v,
            other => panic!("buffer {id:?} is not f64: {other:?}"),
        }
    }

    /// Read an `i32` buffer back (panics on a type mismatch).
    pub fn read_i32(&self, id: BufferId) -> &[i32] {
        match &self.buffers[id.0].data {
            DataVec::I32(v) => v,
            other => panic!("buffer {id:?} is not i32: {other:?}"),
        }
    }

    /// Read an `i64` buffer back (panics on a type mismatch).
    pub fn read_i64(&self, id: BufferId) -> &[i64] {
        match &self.buffers[id.0].data {
            DataVec::I64(v) => v,
            other => panic!("buffer {id:?} is not i64: {other:?}"),
        }
    }

    /// Read an `f32` USM allocation back (panics on a type mismatch).
    pub fn usm_read_f32(&self, id: UsmId) -> &[f32] {
        match &self.usm[id.0] {
            DataVec::F32(v) => v,
            other => panic!("usm {id:?} is not f32: {other:?}"),
        }
    }

    /// Read an `f64` USM allocation back (panics on a type mismatch).
    pub fn usm_read_f64(&self, id: UsmId) -> &[f64] {
        match &self.usm[id.0] {
            DataVec::F64(v) => v,
            other => panic!("usm {id:?} is not f64: {other:?}"),
        }
    }

    /// Upload all buffers/USM allocations into a fresh device pool;
    /// returns per-buffer and per-USM device memory ids.
    pub(crate) fn upload_to_device(
        &mut self,
        pool: &mut MemoryPool,
    ) -> (Vec<sycl_mlir_sim::MemId>, Vec<sycl_mlir_sim::MemId>) {
        let mut buf_ids = Vec::with_capacity(self.buffers.len());
        for b in &self.buffers {
            self.bytes_to_device += (b.data.len() * b.data.elem_bytes()) as u64;
            buf_ids.push(pool.alloc(b.data.clone()));
        }
        let mut usm_ids = Vec::with_capacity(self.usm.len());
        for u in &self.usm {
            self.bytes_to_device += (u.len() * u.elem_bytes()) as u64;
            usm_ids.push(pool.alloc(u.clone()));
        }
        (buf_ids, usm_ids)
    }

    /// Write device memory back to the host copies.
    pub(crate) fn download_from_device(
        &mut self,
        pool: &MemoryPool,
        buf_ids: &[sycl_mlir_sim::MemId],
        usm_ids: &[sycl_mlir_sim::MemId],
    ) {
        for (b, &mem) in self.buffers.iter_mut().zip(buf_ids) {
            self.bytes_to_host += (b.data.len() * b.data.elem_bytes()) as u64;
            b.data = pool.data(mem).clone();
        }
        for (u, &mem) in self.usm.iter_mut().zip(usm_ids) {
            self.bytes_to_host += (u.len() * u.elem_bytes()) as u64;
            *u = pool.data(mem).clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_roundtrip() {
        let mut rt = SyclRuntime::new();
        let b = rt.buffer_f32(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(rt.read_f32(b), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(rt.buffers[b.0].rank, 2);
        assert_eq!(rt.buffers[b.0].range, [2, 2, 1]);
        assert!(!rt.buffers[b.0].const_init);
        let c = rt.buffer_const_f32(vec![0.5], &[1]);
        assert!(rt.buffers[c.0].const_init);
    }

    #[test]
    #[should_panic(expected = "does not match its range")]
    fn mismatched_range_panics() {
        let mut rt = SyclRuntime::new();
        rt.buffer_f32(vec![1.0; 3], &[2, 2]);
    }

    #[test]
    fn device_roundtrip_moves_bytes() {
        let mut rt = SyclRuntime::new();
        let b = rt.buffer_f64(vec![1.0; 8], &[8]);
        let mut pool = MemoryPool::new();
        let (bufs, _) = rt.upload_to_device(&mut pool);
        assert_eq!(rt.bytes_to_device, 64);
        pool.store(bufs[b.0], 3, sycl_mlir_sim::RtValue::F64(9.0));
        rt.download_from_device(&pool, &bufs, &[]);
        assert_eq!(rt.read_f64(b)[3], 9.0);
        assert_eq!(rt.bytes_to_host, 64);
    }
}
