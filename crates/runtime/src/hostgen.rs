//! Host IR generation: what clang + `mlir-translate` produce in Fig. 1.
//!
//! For every recorded command group this emits a host `func.func` whose
//! body is `llvm`-dialect calls into the (simplified-mangled) SYCL runtime:
//! range/buffer/accessor constructions and the `parallel_for` submission.
//! This is the *low-level* form §VII-A calls "too low-level for analysis";
//! the raising pass recovers the semantics from it.

use crate::buffer::{BufferId, SyclRuntime};
use crate::queue::{CgArg, Queue};
use std::collections::HashMap;
use sycl_mlir_dialects::{arith, llvm};
use sycl_mlir_ir::{Attribute, Builder, Module, ValueId};
use sycl_mlir_sim::DataVec;

fn elem_name(d: &DataVec) -> &'static str {
    match d {
        DataVec::F32(_) => "f32",
        DataVec::F64(_) => "f64",
        DataVec::I32(_) => "i32",
        DataVec::I64(_) => "i64",
    }
}

fn mode_name(mode: sycl_mlir_sycl::types::AccessMode) -> &'static str {
    mode.as_str()
}

/// Append one host function per command group to the joint module. Host
/// tasks are skipped: their bodies are arbitrary host code outside the
/// compiler's view (no CGF to raise), which is exactly why the paper's
/// host analyses must treat them as opaque.
pub fn generate_host_ir(m: &mut Module, runtime: &SyclRuntime, queue: &Queue) {
    for (i, cg) in queue.groups.iter().enumerate() {
        if cg.host.is_some() {
            continue;
        }
        let ptr = m.ctx().ptr_type();
        let top = m.top();
        let (_func, entry) =
            sycl_mlir_dialects::func::build_func(m, top, &format!("cgf_{i}"), &[ptr], &[]);
        let cgh = m.block_arg(entry, 0);
        let mut b = Builder::at_end(m, entry);
        let i64t = b.ctx().i64_type();

        // ND-range objects.
        let grange = llvm::alloca(&mut b, "sycl::range");
        let mut gargs = vec![grange];
        for d in 0..cg.nd.rank as usize {
            gargs.push(arith::constant_int(&mut b, cg.nd.global[d], i64t.clone()));
        }
        llvm::call(&mut b, "sycl_range_ctor", &gargs, &[]);
        let lrange = if cg.nd_form {
            let lrange = llvm::alloca(&mut b, "sycl::range");
            let mut largs = vec![lrange];
            for d in 0..cg.nd.rank as usize {
                largs.push(arith::constant_int(&mut b, cg.nd.local[d], i64t.clone()));
            }
            llvm::call(&mut b, "sycl_range_ctor", &largs, &[]);
            Some(lrange)
        } else {
            None
        };

        // Buffers are constructed once per CGF even when several accessors
        // share them (that sharing is exactly what the host analysis uses
        // for buffer identities).
        let mut buffer_ptrs: HashMap<BufferId, ValueId> = HashMap::new();
        let mut arg_values: Vec<ValueId> = Vec::new();
        for arg in &cg.args {
            match arg {
                CgArg::Acc { buffer, mode } => {
                    let info = &runtime.buffers[buffer.0];
                    let buf_ptr = if let Some(&p) = buffer_ptrs.get(buffer) {
                        p
                    } else {
                        let brange = llvm::alloca(&mut b, "sycl::range");
                        let mut bargs = vec![brange];
                        for d in 0..info.rank as usize {
                            bargs.push(arith::constant_int(&mut b, info.range[d], i64t.clone()));
                        }
                        llvm::call(&mut b, "sycl_range_ctor", &bargs, &[]);
                        let host_data = llvm::alloca(&mut b, "host_data");
                        let buf = llvm::alloca(&mut b, "sycl::buffer");
                        let callee =
                            format!("sycl_buffer_ctor_{}_{}", elem_name(&info.data), info.rank);
                        let call = llvm::call(&mut b, &callee, &[buf, host_data, brange], &[]);
                        if info.const_init {
                            // The frontend sees a `const` initializer: bake
                            // it into the IR (the Sobel filter path).
                            let attr = match &info.data {
                                DataVec::F32(v) => {
                                    Attribute::DenseF64(v.iter().map(|&x| x as f64).collect())
                                }
                                DataVec::F64(v) => Attribute::DenseF64(v.clone()),
                                DataVec::I32(v) => {
                                    Attribute::DenseI64(v.iter().map(|&x| x as i64).collect())
                                }
                                DataVec::I64(v) => Attribute::DenseI64(v.clone()),
                            };
                            b.module().set_attr(call, "init_data", attr);
                        }
                        buffer_ptrs.insert(*buffer, buf);
                        buf
                    };
                    let acc = llvm::alloca(&mut b, "sycl::accessor");
                    let callee = format!(
                        "sycl_accessor_ctor_{}_{}_{}",
                        elem_name(&runtime.buffers[buffer.0].data),
                        runtime.buffers[buffer.0].rank,
                        mode_name(*mode)
                    );
                    llvm::call(&mut b, &callee, &[acc, buf_ptr, cgh], &[]);
                    arg_values.push(acc);
                }
                CgArg::ScalarI64(v) => {
                    arg_values.push(arith::constant_int(&mut b, *v, i64t.clone()))
                }
                CgArg::ScalarI32(v) => {
                    let i32t = b.ctx().i32_type();
                    arg_values.push(arith::constant_int(&mut b, *v as i64, i32t));
                }
                CgArg::ScalarF64(v) => {
                    let f64t = b.ctx().f64_type();
                    arg_values.push(arith::constant_float(&mut b, *v, f64t));
                }
                CgArg::ScalarF32(v) => {
                    let f32t = b.ctx().f32_type();
                    arg_values.push(arith::constant_float(&mut b, *v as f64, f32t));
                }
                CgArg::RuntimeI64(_) => {
                    let v = b.build_value("llvm.undef", &[], i64t.clone(), vec![]);
                    arg_values.push(v);
                }
                CgArg::RuntimeF64(_) => {
                    let f64t = b.ctx().f64_type();
                    let v = b.build_value("llvm.undef", &[], f64t, vec![]);
                    arg_values.push(v);
                }
                CgArg::Usm { .. } => {
                    // USM pointers are opaque to the host analysis: the
                    // user manages them manually (§II-A).
                    let v = b.build_value("llvm.undef", &[], b.ctx().ptr_type(), vec![]);
                    arg_values.push(v);
                }
            }
        }

        let (callee, mut call_args) = if cg.nd_form {
            (
                format!("sycl_parallel_for_nd_{}", cg.kernel),
                vec![cgh, grange, lrange.expect("nd form has local range")],
            )
        } else {
            (
                format!("sycl_parallel_for_range_{}", cg.kernel),
                vec![cgh, grange],
            )
        };
        call_args.extend(arg_values);
        llvm::call(&mut b, &callee, &call_args, &[]);
        sycl_mlir_dialects::func::build_return(&mut b, &[]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sycl_mlir_sycl::types::AccessMode;

    #[test]
    fn host_ir_emitted_and_raisable() {
        let ctx = sycl_mlir_frontend::full_context();
        let mut rt = SyclRuntime::new();
        let a = rt.buffer_f32(vec![0.0; 16], &[16]);
        let w = rt.buffer_const_f32(vec![1.0, 2.0, 3.0], &[3]);
        let mut q = Queue::new();
        q.submit(|h| {
            h.accessor(a, AccessMode::ReadWrite);
            h.accessor(w, AccessMode::Read);
            h.scalar_i64(3);
            h.parallel_for_nd("conv", &[16], &[4]);
        });
        let mut kb = sycl_mlir_frontend::KernelModuleBuilder::new(&ctx);
        generate_host_ir(kb.module(), &rt, &q);
        let m = kb.finish();
        sycl_mlir_ir::verify(&m).unwrap();
        let text = sycl_mlir_ir::print_module(&m);
        assert!(text.contains("func.func @cgf_0"), "{text}");
        assert!(text.contains("sycl_parallel_for_nd_conv"), "{text}");
        assert!(text.contains("sycl_buffer_ctor_f32_1"), "{text}");
        assert!(text.contains("init_data"), "{text}");
        assert!(
            text.contains("sycl_accessor_ctor_f32_1_read_write"),
            "{text}"
        );
    }
}
