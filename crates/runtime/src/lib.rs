//! # sycl-mlir-runtime — the SYCL runtime substrate
//!
//! The paper keeps "the runtime component of the SYCL implementation …
//! completely unchanged" across compilers (§VIII); this crate is that
//! shared runtime:
//!
//! * [`buffer`] — buffers (the buffer/accessor model of §II-A) and USM
//!   allocations, with host↔device transfer bookkeeping;
//! * [`queue`] — queues, command groups and the dependency-tracking
//!   scheduler (RAW/WAR/WAW edges between command groups over buffers);
//! * [`hostgen`] — emits the low-level `llvm`-dialect host IR a
//!   clang + `mlir-translate` pipeline would produce for the recorded
//!   command groups (the input to host raising, §VII-A);
//! * [`exec`] — compiles the joint module with a [`sycl_mlir_core::Flow`]
//!   and executes command groups on the simulated device, honouring
//!   dead-argument elimination at launch and performing AdaptiveCpp's JIT
//!   specialization on first launch.

#![deny(missing_docs)]

pub mod buffer;
pub mod exec;
pub mod hostgen;
pub mod queue;

pub use buffer::{BufferId, SyclRuntime, UsmId};
pub use exec::{compile_program, KernelRun, Program, RunReport};
pub use queue::{CgArg, CommandGroup, Handler, HostOp, Queue};
