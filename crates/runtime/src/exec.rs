//! Program compilation + execution: ties the compiler flows, the runtime
//! state and the simulated device together.

use crate::buffer::SyclRuntime;
use crate::queue::{CgArg, HostOp, Queue};
use std::collections::{HashMap, HashSet};
use sycl_mlir_core::{CompileOutcome, Flow, FlowKind};
use sycl_mlir_ir::{Module, OpId};
use sycl_mlir_sim::{
    AccessorVal, BatchLaunch, Device, ExecStats, HostNode, HostView, LaunchDag, MemId, MemoryPool,
    RtValue, SharedPool, SimError,
};

/// A compiled SYCL application (joint module + flow that produced it).
pub struct Program {
    /// The compiled joint module.
    pub module: Module,
    /// The flow that compiled it.
    pub flow: Flow,
    /// Pipeline diagnostics recorded during compilation.
    pub outcome: CompileOutcome,
    jit_done: HashSet<String>,
}

/// Compile the joint module under the given flow.
///
/// # Errors
///
/// Propagates pipeline failures (pass errors, verifier reports).
pub fn compile_program(kind: FlowKind, mut module: Module) -> Result<Program, String> {
    let flow = Flow::new(kind);
    let outcome = flow.compile(&mut module)?;
    Ok(Program {
        module,
        flow,
        outcome,
        jit_done: HashSet::new(),
    })
}

/// Execution record of one kernel launch.
#[derive(Clone, Debug)]
pub struct KernelRun {
    /// Kernel name as submitted.
    pub kernel: String,
    /// Dynamic statistics of the launch, cycles charged.
    pub stats: ExecStats,
    /// Host-side launch overhead (reduced by dead-argument elimination).
    pub launch_cycles: f64,
    /// One-time JIT cost charged at this launch (AdaptiveCpp first run).
    pub jit_cycles: f64,
}

/// Execution record of a full queue.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// One record per command group, in submission order.
    pub kernel_runs: Vec<KernelRun>,
}

impl RunReport {
    /// Device + launch cycles — the quantity the paper's figures compare
    /// (after the warm-up run absorbed JIT costs, §VIII).
    pub fn measured_cycles(&self) -> f64 {
        self.kernel_runs
            .iter()
            .map(|k| k.stats.device_cycles + k.launch_cycles)
            .sum()
    }

    /// Including one-time JIT costs (what the discarded warm-up run pays).
    pub fn cold_cycles(&self) -> f64 {
        self.measured_cycles() + self.kernel_runs.iter().map(|k| k.jit_cycles).sum::<f64>()
    }

    /// Sum of the per-kernel statistics.
    pub fn total_stats(&self) -> ExecStats {
        let mut s = ExecStats::default();
        for k in &self.kernel_runs {
            s.add(&k.stats);
        }
        s
    }
}

/// Execute every command group of `queue` on `device`, reading/writing the
/// runtime's buffers.
///
/// The queue exports its full hazard DAG ([`Queue::dep_graph`]) and the
/// whole program is handed to the device's out-of-order scheduler
/// ([`Device::launch_graph`]): a launch starts the moment its own
/// dependencies retire. The device's knobs select weaker schedules from
/// the same graph — `overlap` off strengthens it to level barriers (the
/// PR 3 batch schedule), `batch` off to the submission-order chain — and
/// every schedule produces bit-identical buffers, statistics and report
/// tables; only wall time differs.
///
/// Host tasks ([`crate::queue::HostOp`]) run as first-class graph nodes
/// ([`HostNode`]): hazard-tracked, metered at a fixed weight, cancellable
/// and fault-injectable like any kernel launch — so one graph spans the
/// whole program and kernels with no hazard on a host task overlap it
/// freely. [`Device::host_nodes`] off restores the legacy segmented
/// schedule (every host task a synchronization barrier splitting the
/// program into separately scheduled launch graphs) as an A/B baseline;
/// both modes produce bit-identical buffers, reports and failure
/// positions.
///
/// # Errors
///
/// Fails on unresolved kernels, interpreter errors, or divergent barriers.
/// With several failing work-groups anywhere in the program, the error of
/// the lexicographically smallest `(submission, work-group)` position is
/// reported, identically under every schedule and thread count. Every
/// error — limit trips, kernel failures and host-task failures alike — is
/// stamped with the **submission index** of the offending command group
/// (never a segment-local position), so the caller can name the offending
/// command group whatever schedule was in effect; a wedged kernel program
/// fails instead of hanging, and the device stays usable for the next
/// run.
pub fn run(
    program: &mut Program,
    runtime: &mut SyclRuntime,
    queue: &Queue,
    device: &Device,
) -> Result<RunReport, SimError> {
    let mut pool = MemoryPool::new();
    let (buf_mems, usm_mems) = runtime.upload_to_device(&mut pool);
    let mut runs: Vec<Option<KernelRun>> = queue.groups.iter().map(|_| None).collect();

    // Resolve and (for AdaptiveCpp) JIT-specialize every kernel in
    // **submission order**, before any launch. Specialization reads only
    // the module and the seeding command group's geometry/buffer ids —
    // never execution results — so hoisting it is unobservable; doing it
    // in submission order guarantees the same command group seeds a
    // kernel's one-shot specialization whatever schedule reorders
    // execution across dependency levels (a kernel name can appear at
    // several levels).
    let mut kernels: Vec<Option<OpId>> = Vec::with_capacity(queue.groups.len());
    let mut jit_cycles_of: Vec<f64> = Vec::with_capacity(queue.groups.len());
    for cg in &queue.groups {
        if cg.host.is_some() {
            kernels.push(None);
            jit_cycles_of.push(0.0);
            continue;
        }
        let kernel = resolve_kernel(&program.module, &cg.kernel).ok_or_else(|| {
            SimError::msg(format!(
                "kernel `{}` not found in the device module",
                cg.kernel
            ))
        })?;

        // AdaptiveCpp: JIT-specialize on first launch with runtime
        // context.
        let mut jit_cycles = 0.0;
        if program.flow.kind == FlowKind::AdaptiveCpp && !program.jit_done.contains(&cg.kernel) {
            let ids: Vec<i64> = cg
                .args
                .iter()
                .map(|a| match a {
                    CgArg::Acc { buffer, .. } => buffer.0 as i64,
                    _ => -1,
                })
                .collect();
            let rank = cg.nd.rank as usize;
            program
                .flow
                .jit_specialize(
                    &mut program.module,
                    kernel,
                    &cg.nd.global[..rank],
                    &cg.nd.local[..rank],
                    &ids,
                )
                .map_err(|e| SimError::msg(format!("JIT specialization failed: {e}")))?;
            program.jit_done.insert(cg.kernel.clone());
            jit_cycles = device.cost.jit_compile;
        }
        kernels.push(Some(kernel));
        jit_cycles_of.push(jit_cycles);
    }

    // With host nodes on (the default) the whole program is ONE launch
    // graph: host tasks ride along as [`HostNode`] entries, ordered by
    // the same hazard edges as kernels. With host nodes off, the legacy
    // segmented schedule: host tasks are synchronization points, maximal
    // runs of kernel submissions between them form segments scheduled as
    // one launch graph each.
    enum Step {
        Host(usize),
        Graph(Vec<usize>),
    }
    let deps = queue.dependencies();
    let mut steps: Vec<Step> = Vec::new();
    if device.host_nodes {
        steps.push(Step::Graph((0..queue.groups.len()).collect()));
    } else {
        let mut segment: Vec<usize> = Vec::new();
        for (cgi, cg) in queue.groups.iter().enumerate() {
            if cg.host.is_some() {
                if !segment.is_empty() {
                    steps.push(Step::Graph(std::mem::take(&mut segment)));
                }
                steps.push(Step::Host(cgi));
            } else {
                segment.push(cgi);
            }
        }
        if !segment.is_empty() {
            steps.push(Step::Graph(segment));
        }
    }

    for step in steps {
        let batch = match step {
            Step::Host(cgi) => {
                // Segmented mode: run the same closure a host node would,
                // on the calling thread, against a short-lived shared view
                // — failures surface as structured errors stamped with
                // the submission index, exactly like graph-mode hosts.
                let cg = &queue.groups[cgi];
                let node = host_node_of(cg.host.expect("host step"), &buf_mems);
                {
                    let shared = SharedPool::new(&mut pool);
                    node.run(&HostView::new(&shared))
                        .map_err(|e| stamp_submission(e, cgi, 0))?;
                }
                runs[cgi] = Some(KernelRun {
                    kernel: cg.kernel.clone(),
                    stats: ExecStats::default(),
                    launch_cycles: 0.0,
                    jit_cycles: 0.0,
                });
                continue;
            }
            Step::Graph(batch) => batch,
        };
        let dag = schedule_dag(&batch, &deps, device);
        let mut launches: Vec<BatchLaunch> = Vec::with_capacity(batch.len());
        let jit: Vec<f64> = batch.iter().map(|&cgi| jit_cycles_of[cgi]).collect();
        for &cgi in &batch {
            let cg = &queue.groups[cgi];
            launches.push(match cg.host {
                Some(op) => BatchLaunch::host_node(host_node_of(op, &buf_mems)),
                None => BatchLaunch::kernel(
                    kernels[cgi].expect("kernel entry"),
                    Vec::new(), // bound below
                    cg.nd,
                ),
            });
        }

        // Bind arguments (constant-argument attributes may have been
        // refreshed by the JIT specializations above). Host entries carry
        // no arguments — their closures captured the buffer ids.
        for (&cgi, launch) in batch.iter().zip(&mut launches) {
            let cg = &queue.groups[cgi];
            let Some(kernel) = launch.kernel else {
                continue;
            };
            let const_args: Vec<i64> = program
                .module
                .attr(kernel, "sycl.const_args")
                .and_then(|a| a.as_dense_i64())
                .map(|v| v.to_vec())
                .unwrap_or_default();
            let mut args: Vec<RtValue> = Vec::with_capacity(cg.args.len());
            for (i, a) in cg.args.iter().enumerate() {
                let v = match a {
                    CgArg::Acc { buffer, .. } => {
                        let info = &runtime.buffers[buffer.0];
                        RtValue::Accessor(AccessorVal {
                            mem: buf_mems[buffer.0],
                            range: info.range,
                            offset: [0; 3],
                            rank: info.rank,
                            constant: const_args.contains(&(i as i64)),
                        })
                    }
                    CgArg::ScalarI64(v) | CgArg::RuntimeI64(v) => RtValue::Int(*v),
                    CgArg::ScalarI32(v) => RtValue::Int(*v as i64),
                    CgArg::ScalarF64(v) | CgArg::RuntimeF64(v) => RtValue::F64(*v),
                    CgArg::ScalarF32(v) => RtValue::F32(*v),
                    CgArg::Usm { id, len } => RtValue::Accessor(AccessorVal {
                        mem: usm_mems[id.0],
                        range: [*len, 1, 1],
                        offset: [0; 3],
                        rank: 1,
                        constant: false,
                    }),
                };
                args.push(v);
            }
            launch.args = args;
        }

        // Errors come back stamped with the launch's index *within this
        // graph*; re-stamp **every** error kind with the submission index
        // so the caller can name the offending command group whatever
        // schedule (or host-task segmentation) was in effect. With host
        // nodes on the mapping is the identity (one whole-program graph);
        // with segmentation it is the fix for the old bug where only
        // `LimitExceeded` was re-stamped and every other error reported a
        // segment-local position.
        let stats = device
            .launch_graph(&program.module, &launches, &dag, &mut pool)
            .map_err(|e| match e {
                SimError::LimitExceeded {
                    kind,
                    launch,
                    group,
                } => SimError::LimitExceeded {
                    kind,
                    launch: batch[launch],
                    group,
                },
                SimError::Message {
                    message,
                    at: Some((launch, group)),
                } => SimError::Message {
                    message,
                    at: Some((batch[launch], group)),
                },
                other => other,
            })?;

        for ((&cgi, launch), (stats, jit_cycles)) in
            batch.iter().zip(&launches).zip(stats.into_iter().zip(jit))
        {
            let cg = &queue.groups[cgi];
            runs[cgi] = Some(match launch.kernel {
                Some(kernel) => {
                    // Launch overhead: DAE-marked arguments are not passed
                    // (§VII-B).
                    let dead = program
                        .module
                        .attr(kernel, sycl_mlir_sycl::KERNEL_DEAD_ARGS_ATTR)
                        .and_then(|a| a.as_dense_i64())
                        .map(|v| v.len())
                        .unwrap_or(0);
                    let passed = cg.args.len().saturating_sub(dead);
                    let launch_cycles =
                        device.cost.launch_base + device.cost.launch_per_arg * passed as f64;
                    KernelRun {
                        kernel: cg.kernel.clone(),
                        stats,
                        launch_cycles,
                        jit_cycles,
                    }
                }
                // Host rows: zeroed stats and no launch overhead, in both
                // scheduling modes.
                None => KernelRun {
                    kernel: cg.kernel.clone(),
                    stats: ExecStats::default(),
                    launch_cycles: 0.0,
                    jit_cycles: 0.0,
                },
            });
        }
    }

    // Report rows in submission order regardless of the schedule, so
    // downstream sums (f64 cycle totals) are bit-identical under every
    // scheduler mode.
    let report = RunReport {
        kernel_runs: runs
            .into_iter()
            .map(|r| r.expect("every command group executed"))
            .collect(),
    };
    runtime.download_from_device(&pool, &buf_mems, &usm_mems);
    Ok(report)
}

/// The launch graph a kernel segment runs under, per the device's
/// scheduling knobs. All three shapes are (weakenings into) supergraphs
/// of the segment's hazard edges over the **same** executor, which is
/// what keeps results — and failure positions — bit-identical across
/// modes:
///
/// * `batch` off — the submission-order chain (serial debug schedule);
/// * `overlap` off — hazard edges strengthened to level barriers (the
///   PR 3 batch schedule);
/// * both on — the hazard DAG itself: full out-of-order overlap.
fn schedule_dag(segment: &[usize], deps: &[(usize, usize)], device: &Device) -> LaunchDag {
    if !device.batch {
        return LaunchDag::chain(segment.len());
    }
    let pos: HashMap<usize, usize> = segment
        .iter()
        .enumerate()
        .map(|(k, &cgi)| (cgi, k))
        .collect();
    let local: Vec<(usize, usize)> = deps
        .iter()
        .filter_map(|(i, j)| Some((*pos.get(i)?, *pos.get(j)?)))
        .collect();
    let dag = LaunchDag::from_edges(segment.len(), &local);
    if device.overlap {
        dag
    } else {
        dag.level_barriers()
    }
}

/// Stamp an error with the submission position `(cgi, group)` — the
/// segmented-mode twin of the graph scheduler's position stamping for
/// host nodes.
fn stamp_submission(e: SimError, cgi: usize, group: usize) -> SimError {
    match e {
        SimError::Message { message, .. } => SimError::Message {
            message,
            at: Some((cgi, group)),
        },
        SimError::LimitExceeded { kind, .. } => SimError::LimitExceeded {
            kind,
            launch: cgi,
            group,
        },
    }
}

/// Build the [`HostNode`] closure of a host task over the device-resident
/// buffers. Element updates go through `f64` for every element type (with
/// the exact legacy conversions: `i32` elements saturate through `as i32`
/// before the truncating store), so the result is deterministic and
/// independent of the schedule position granted by the hazard DAG. A
/// type-mismatched `AddInto` reports a structured [`SimError`] with
/// pinned text instead of panicking a pool worker.
fn host_node_of(op: HostOp, buf_mems: &[MemId]) -> HostNode {
    let apply = |mem: MemId, f: Box<dyn Fn(f64) -> f64 + Send + Sync>| {
        HostNode::new(move |view: &HostView<'_, '_>| {
            let n = view.len(mem) as i64;
            match view.dtype_name(mem) {
                "f32" => {
                    for i in 0..n {
                        let RtValue::F32(x) = view.load(mem, i) else {
                            unreachable!("f32 buffer loads f32")
                        };
                        view.store(mem, i, RtValue::F32(f(x as f64) as f32));
                    }
                }
                "f64" => {
                    for i in 0..n {
                        let RtValue::F64(x) = view.load(mem, i) else {
                            unreachable!("f64 buffer loads f64")
                        };
                        view.store(mem, i, RtValue::F64(f(x)));
                    }
                }
                "i32" => {
                    for i in 0..n {
                        let RtValue::Int(x) = view.load(mem, i) else {
                            unreachable!("i32 buffer loads int")
                        };
                        view.store(mem, i, RtValue::Int(f(x as f64) as i32 as i64));
                    }
                }
                _ => {
                    for i in 0..n {
                        let RtValue::Int(x) = view.load(mem, i) else {
                            unreachable!("i64 buffer loads int")
                        };
                        view.store(mem, i, RtValue::Int(f(x as f64) as i64));
                    }
                }
            }
            Ok(())
        })
    };
    match op {
        HostOp::Scale { buffer, factor } => {
            apply(buf_mems[buffer.0], Box::new(move |x| x * factor))
        }
        HostOp::Shift { buffer, delta } => apply(buf_mems[buffer.0], Box::new(move |x| x + delta)),
        HostOp::AddInto { dst, src } => {
            let (dst, src) = (buf_mems[dst.0], buf_mems[src.0]);
            HostNode::new(move |view: &HostView<'_, '_>| {
                let (dd, sd) = (view.dtype_name(dst), view.dtype_name(src));
                if dd != sd {
                    return Err(SimError::msg(format!(
                        "host AddInto over mismatched element types {sd} -> {dd}"
                    )));
                }
                // The legacy zip clamps to the shorter buffer.
                let n = view.len(dst).min(view.len(src)) as i64;
                for i in 0..n {
                    match (view.load(dst, i), view.load(src, i)) {
                        (RtValue::F32(d), RtValue::F32(s)) => {
                            view.store(dst, i, RtValue::F32(d + s))
                        }
                        (RtValue::F64(d), RtValue::F64(s)) => {
                            view.store(dst, i, RtValue::F64(d + s))
                        }
                        // i32 sums stay in range in i64 and the store
                        // truncates — exactly i32 wrapping addition.
                        (RtValue::Int(d), RtValue::Int(s)) => {
                            view.store(dst, i, RtValue::Int(d.wrapping_add(s)))
                        }
                        _ => unreachable!("element types checked equal above"),
                    }
                }
                Ok(())
            })
        }
    }
}

fn resolve_kernel(m: &Module, name: &str) -> Option<OpId> {
    let device = m.lookup_symbol(m.top(), sycl_mlir_sycl::DEVICE_MODULE_SYM)?;
    m.lookup_symbol(device, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostgen::generate_host_ir;
    use sycl_mlir_frontend::{full_context, KernelModuleBuilder, KernelSig};
    use sycl_mlir_sycl::types::AccessMode;

    /// End-to-end: build a vadd application, compile with each flow, run,
    /// and check all three produce identical results.
    #[test]
    fn vadd_end_to_end_all_flows() {
        let n = 64_i64;
        for kind in FlowKind::all() {
            let ctx = full_context();
            let mut kb = KernelModuleBuilder::new(&ctx);
            let sig = KernelSig::new("vadd", 1, true)
                .accessor(ctx.f32_type(), 1, AccessMode::Read)
                .accessor(ctx.f32_type(), 1, AccessMode::Read)
                .accessor(ctx.f32_type(), 1, AccessMode::Write);
            kb.add_kernel(&sig, |b, args, item| {
                let gid = sycl_mlir_sycl::device::global_id(b, item, 0);
                let va = sycl_mlir_sycl::device::load_via_id(b, args[0], &[gid]);
                let vb = sycl_mlir_sycl::device::load_via_id(b, args[1], &[gid]);
                let sum = sycl_mlir_dialects::arith::addf(b, va, vb);
                sycl_mlir_sycl::device::store_via_id(b, sum, args[2], &[gid]);
            });

            let mut rt = SyclRuntime::new();
            let a = rt.buffer_f32((0..n).map(|i| i as f32).collect(), &[n]);
            let b_buf = rt.buffer_f32(vec![100.0; n as usize], &[n]);
            let c_buf = rt.buffer_f32(vec![0.0; n as usize], &[n]);
            let mut q = Queue::new();
            q.submit(|h| {
                h.accessor(a, AccessMode::Read)
                    .accessor(b_buf, AccessMode::Read)
                    .accessor(c_buf, AccessMode::Write);
                h.parallel_for_nd("vadd", &[n], &[16]);
            });
            generate_host_ir(kb.module(), &rt, &q);
            let module = kb.finish();

            let mut program =
                compile_program(kind, module).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
            let device = Device::new();
            let report = run(&mut program, &mut rt, &q, &device)
                .unwrap_or_else(|e| panic!("{}: {e}", kind.name()));

            let out = rt.read_f32(c_buf);
            assert_eq!(out[0], 100.0, "{}", kind.name());
            assert_eq!(out[63], 163.0, "{}", kind.name());
            assert!(report.measured_cycles() > 0.0);
            if kind == FlowKind::AdaptiveCpp {
                assert!(report.cold_cycles() > report.measured_cycles());
            }
        }
    }

    /// A kernel name appearing at *different dependency levels* must be
    /// JIT-specialized by the same (submission-order-first) command group
    /// whether batching reorders execution or not — otherwise batch=on
    /// and batch=off would bake different geometries into the kernel and
    /// the bit-identical contract of [`run`] would break. Exercises
    /// AdaptiveCpp (the only flow that JIT-specializes) with kernel `k`
    /// submitted at level 1 first (reads what `p` wrote) and at level 0
    /// second.
    #[test]
    fn batching_preserves_jit_specialization_order() {
        let n = 32_i64;
        let build_and_run = |batch: bool| {
            let ctx = full_context();
            let mut kb = KernelModuleBuilder::new(&ctx);
            let sig_p = KernelSig::new("p", 1, true)
                .accessor(ctx.f32_type(), 1, AccessMode::Write)
                .scalar(ctx.f32_type());
            kb.add_kernel(&sig_p, |b, args, item| {
                let gid = sycl_mlir_sycl::device::global_id(b, item, 0);
                sycl_mlir_sycl::device::store_via_id(b, args[1], args[0], &[gid]);
            });
            let sig_k = KernelSig::new("k", 1, true)
                .accessor(ctx.f32_type(), 1, AccessMode::Read)
                .accessor(ctx.f32_type(), 1, AccessMode::Write);
            kb.add_kernel(&sig_k, |b, args, item| {
                let gid = sycl_mlir_sycl::device::global_id(b, item, 0);
                let v = sycl_mlir_sycl::device::load_via_id(b, args[0], &[gid]);
                let d = sycl_mlir_dialects::arith::addf(b, v, v);
                sycl_mlir_sycl::device::store_via_id(b, d, args[1], &[gid]);
            });

            let mut rt = SyclRuntime::new();
            let a = rt.buffer_f32(vec![0.0; n as usize], &[n]);
            let b_buf = rt.buffer_f32(vec![0.0; n as usize], &[n]);
            let c_buf = rt.buffer_f32(vec![1.0; n as usize], &[n]);
            let d_buf = rt.buffer_f32(vec![0.0; n as usize], &[n]);
            let mut q = Queue::new();
            // CG0: p writes a (level 0).
            q.submit(|h| {
                h.accessor(a, AccessMode::Write).scalar_f32(2.5);
                h.parallel_for_nd("p", &[n], &[16]);
            });
            // CG1: k reads a — level 1, but first submission of `k`, so it
            // must seed the JIT specialization under batch=on too.
            q.submit(|h| {
                h.accessor(a, AccessMode::Read)
                    .accessor(b_buf, AccessMode::Write);
                h.parallel_for_nd("k", &[n], &[16]);
            });
            // CG2: k again, over unrelated buffers — level 0, i.e. batch=on
            // *executes* it before CG1.
            q.submit(|h| {
                h.accessor(c_buf, AccessMode::Read)
                    .accessor(d_buf, AccessMode::Write);
                h.parallel_for_nd("k", &[n], &[16]);
            });
            generate_host_ir(kb.module(), &rt, &q);
            let module = kb.finish();

            let mut program = compile_program(FlowKind::AdaptiveCpp, module).unwrap();
            let device = sycl_mlir_sim::Device::new().threads(4).batch(batch);
            let report = run(&mut program, &mut rt, &q, &device).unwrap();
            let per_kernel: Vec<(String, f64, sycl_mlir_sim::ExecStats)> = report
                .kernel_runs
                .iter()
                .map(|k| (k.kernel.clone(), k.jit_cycles, k.stats.clone()))
                .collect();
            (
                per_kernel,
                rt.read_f32(b_buf).to_vec(),
                rt.read_f32(d_buf).to_vec(),
            )
        };
        let (seq_runs, seq_b, seq_d) = build_and_run(false);
        let (bat_runs, bat_b, bat_d) = build_and_run(true);
        assert_eq!(seq_b, bat_b, "level-1 output differs under batching");
        assert_eq!(seq_d, bat_d, "level-0 output differs under batching");
        assert_eq!(seq_runs, bat_runs, "per-kernel reports differ");
        // The JIT cost lands on CG1 — `k`'s first *submission* — not CG2.
        assert!(seq_runs[1].1 > 0.0, "CG1 must carry k's JIT cost");
        assert_eq!(seq_runs[2].1, 0.0, "CG2 must not re-specialize");
    }

    /// DAE shrinks the launch cost: a kernel with an unused accessor
    /// argument launches cheaper under SYCL-MLIR than under DPC++.
    #[test]
    fn dead_argument_elimination_reduces_launch_cost() {
        let n = 32_i64;
        let mut cycles = Vec::new();
        for kind in [FlowKind::Dpcpp, FlowKind::SyclMlir] {
            let ctx = full_context();
            let mut kb = KernelModuleBuilder::new(&ctx);
            let sig = KernelSig::new("writer", 1, true)
                .accessor(ctx.f32_type(), 1, AccessMode::Write)
                .accessor(ctx.f32_type(), 1, AccessMode::Read) // never used
                .scalar(ctx.f32_type());
            kb.add_kernel(&sig, |b, args, item| {
                let gid = sycl_mlir_sycl::device::global_id(b, item, 0);
                sycl_mlir_sycl::device::store_via_id(b, args[2], args[0], &[gid]);
            });
            let mut rt = SyclRuntime::new();
            let out = rt.buffer_f32(vec![0.0; n as usize], &[n]);
            let unused = rt.buffer_f32(vec![0.0; n as usize], &[n]);
            let mut q = Queue::new();
            q.submit(|h| {
                h.accessor(out, AccessMode::Write)
                    .accessor(unused, AccessMode::Read)
                    .scalar_f32(7.5);
                h.parallel_for_nd("writer", &[n], &[16]);
            });
            generate_host_ir(kb.module(), &rt, &q);
            let module = kb.finish();
            let mut program = compile_program(kind, module).unwrap();
            let device = Device::new();
            let report = run(&mut program, &mut rt, &q, &device).unwrap();
            assert_eq!(rt.read_f32(out)[5], 7.5);
            cycles.push(report.kernel_runs[0].launch_cycles);
        }
        assert!(
            cycles[1] < cycles[0],
            "SYCL-MLIR launch {} should be cheaper than DPC++ {}",
            cycles[1],
            cycles[0]
        );
    }
}
