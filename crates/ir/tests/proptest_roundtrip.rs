//! Property-based tests on the IR kernel: printer/parser round-trips,
//! interning laws, and affine-expression linearity.

use proptest::prelude::*;
use std::ops::{Add, Mul};
use sycl_mlir_ir::affine::AffineExpr;
use sycl_mlir_ir::{parse_module, print_module, Attribute, Builder, Context, Module, OpInfo};

fn test_ctx() -> Context {
    let ctx = Context::new();
    ctx.register_op(
        OpInfo::new("func.func")
            .with_traits(sycl_mlir_ir::traits::ISOLATED_FROM_ABOVE | sycl_mlir_ir::traits::SYMBOL),
    );
    ctx.register_op(OpInfo::new("func.return").with_traits(sycl_mlir_ir::traits::TERMINATOR));
    ctx.register_op(OpInfo::new("t.op"));
    ctx
}

/// Attributes whose `Display` form round-trips exactly.
fn attr_strategy() -> impl Strategy<Value = Attribute> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Attribute::Int),
        (-1000..1000i64).prop_map(|v| Attribute::Float(v as f64 / 8.0)),
        any::<bool>().prop_map(Attribute::Bool),
        "[a-z][a-z0-9_]{0,8}".prop_map(Attribute::Str),
        Just(Attribute::Unit),
        proptest::collection::vec(any::<i64>(), 0..6).prop_map(Attribute::DenseI64),
        proptest::collection::vec("[a-z][a-z0-9_]{0,5}", 1..3).prop_map(Attribute::SymbolRef),
    ];
    leaf.prop_recursive(2, 8, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Attribute::Array)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// print → parse → print is a fixed point for arbitrary attributes.
    #[test]
    fn attribute_roundtrip(attrs in proptest::collection::vec(attr_strategy(), 1..5)) {
        let ctx = test_ctx();
        let mut m = Module::new(&ctx);
        let block = m.top_block();
        let mut b = Builder::at_end(&mut m, block);
        let named: Vec<(String, Attribute)> = attrs
            .into_iter()
            .enumerate()
            .map(|(i, a)| (format!("k{i}"), a))
            .collect();
        b.build("t.op", &[], &[], named);
        let printed = print_module(&m);
        let reparsed = parse_module(&ctx, &printed)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        prop_assert_eq!(print_module(&reparsed), printed);
    }

    /// Interned types are pointer-equal iff structurally equal.
    #[test]
    fn type_interning_law(shape in proptest::collection::vec(-1..64i64, 0..3),
                          shape2 in proptest::collection::vec(-1..64i64, 0..3)) {
        let ctx = test_ctx();
        let a = ctx.memref_type(ctx.f32_type(), &shape);
        let b = ctx.memref_type(ctx.f32_type(), &shape);
        let c = ctx.memref_type(ctx.f32_type(), &shape2);
        prop_assert_eq!(a.clone(), b);
        prop_assert_eq!(shape == shape2, a == c);
    }

    /// `as_linear` agrees with `eval` on random linear expressions.
    #[test]
    fn affine_linear_matches_eval(coeffs in proptest::collection::vec(-50..50i64, 1..4),
                                  konst in -100..100i64,
                                  point in proptest::collection::vec(-20..20i64, 4)) {
        let n = coeffs.len();
        let mut expr = AffineExpr::Const(konst);
        for (i, &c) in coeffs.iter().enumerate() {
            expr = expr.add(AffineExpr::Dim(i).mul(AffineExpr::Const(c)));
        }
        let (got_coeffs, got_konst) = expr.as_linear(n).expect("linear by construction");
        prop_assert_eq!(&got_coeffs, &coeffs);
        prop_assert_eq!(got_konst, konst);
        let dims = &point[..n];
        let direct: i64 = coeffs.iter().zip(dims).map(|(c, d)| c * d).sum::<i64>() + konst;
        prop_assert_eq!(expr.eval(dims, &[]), direct);
    }
}
