//! Textual IR parser: the inverse of [`crate::printer`].
//!
//! The parser understands the generic operation form plus the custom forms
//! for `builtin.module` and `func.func`, and defers dialect type syntax
//! (`!sycl.id<2>`) to parser hooks registered in the [`Context`]
//! (see [`Context::register_type_parser`]).

use crate::affine::{AffineExpr, AffineMap};
use crate::attrs::Attribute;
use crate::context::Context;
use crate::module::{BlockId, Module, ValueId};
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// A parse failure with 1-based source coordinates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub message: String,
    pub line: usize,
    pub col: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a module from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input, unknown op names, or unknown
/// value references. The result is *not* verified; run
/// [`crate::verify`] afterwards for structural checks.
///
/// ```
/// use sycl_mlir_ir::{parse_module, print_module, Context};
/// let ctx = Context::new();
/// let m = parse_module(&ctx, "builtin.module {\n}\n").unwrap();
/// assert!(print_module(&m).starts_with("builtin.module {"));
/// ```
pub fn parse_module(ctx: &Context, src: &str) -> Result<Module, ParseError> {
    let mut p = Parser {
        ctx: ctx.clone(),
        src: src.as_bytes(),
        pos: 0,
        values: HashMap::new(),
    };
    let mut m = Module::new(ctx);
    p.skip_ws();
    p.expect_keyword("builtin.module")?;
    p.skip_ws();
    if p.peek() == Some(b'@') {
        let name = p.read_symbol()?;
        m.set_attr(m.top(), "sym_name", Attribute::Str(name));
    }
    p.skip_ws();
    if p.try_keyword("attributes") {
        let attrs = p.parse_attr_dict()?;
        for (k, v) in attrs {
            m.set_attr(m.top(), &k, v);
        }
    }
    p.expect(b'{')?;
    let top_block = m.top_block();
    p.parse_ops_until_brace(&mut m, top_block)?;
    p.skip_ws();
    if p.pos < p.src.len() {
        return Err(p.err("trailing input after module"));
    }
    Ok(m)
}

/// Parse a standalone type from text (e.g. `"memref<?xf32>"`); useful for
/// dialect type parsers that embed nested types in their `<...>` body.
///
/// # Errors
///
/// Returns a [`ParseError`] if the text is not a complete type.
pub fn parse_type(ctx: &Context, src: &str) -> Result<Type, ParseError> {
    let mut p = Parser {
        ctx: ctx.clone(),
        src: src.as_bytes(),
        pos: 0,
        values: HashMap::new(),
    };
    let ty = p.parse_type()?;
    p.skip_ws();
    if p.pos < p.src.len() {
        return Err(p.err("trailing input after type"));
    }
    Ok(ty)
}

struct Parser<'a> {
    ctx: Context,
    src: &'a [u8],
    pos: usize,
    values: HashMap<String, ValueId>,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.src[..self.pos.min(self.src.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
            if self.src[self.pos..].starts_with(b"//") {
                while !matches!(self.peek(), None | Some(b'\n')) {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}`, found `{}`",
                c as char,
                self.peek().map(|b| b as char).unwrap_or('␄')
            )))
        }
    }

    fn try_char(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn is_ident_char(b: u8) -> bool {
        b.is_ascii_alphanumeric() || b == b'_' || b == b'.' || b == b'$'
    }

    fn read_ident(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if Self::is_ident_char(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn try_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        let bytes = kw.as_bytes();
        if self.src[self.pos..].starts_with(bytes) {
            let after = self.pos + bytes.len();
            if self.src.get(after).copied().map(Self::is_ident_char) != Some(true) {
                self.pos = after;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.try_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`")))
        }
    }

    fn read_value_name(&mut self) -> Result<String, ParseError> {
        self.expect(b'%')?;
        let mut name = String::from("%");
        name.push_str(&self.read_ident()?);
        Ok(name)
    }

    fn read_symbol(&mut self) -> Result<String, ParseError> {
        self.expect(b'@')?;
        self.read_ident()
    }

    fn lookup_value(&mut self, name: &str) -> Result<ValueId, ParseError> {
        self.values
            .get(name)
            .copied()
            .ok_or_else(|| self.err(format!("unknown value `{name}`")))
    }

    fn define_value(&mut self, name: String, v: ValueId) -> Result<(), ParseError> {
        if self.values.insert(name.clone(), v).is_some() {
            return Err(self.err(format!("redefinition of value `{name}`")));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Numbers & strings
    // ------------------------------------------------------------------

    fn read_number(&mut self) -> Result<Attribute, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().map(|b| b.is_ascii_digit()) == Some(true) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().map(|b| b.is_ascii_digit()) == Some(true) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'-' | b'+')) {
                self.pos += 1;
            }
            while self.peek().map(|b| b.is_ascii_digit()) == Some(true) {
                self.pos += 1;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.pos]).into_owned();
        if text.is_empty() || text == "-" {
            return Err(self.err("expected number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Attribute::Float)
                .map_err(|e| self.err(format!("bad float `{text}`: {e}")))
        } else {
            text.parse::<i64>()
                .map(Attribute::Int)
                .map_err(|e| self.err(format!("bad integer `{text}`: {e}")))
        }
    }

    fn read_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    other => {
                        return Err(
                            self.err(format!("bad escape `\\{:?}`", other.map(|b| b as char)))
                        )
                    }
                },
                Some(b) => out.push(b as char),
            }
        }
    }

    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                let inputs = self.parse_type_list()?;
                self.expect(b'-')?;
                self.expect(b'>')?;
                let results = self.parse_type_list()?;
                Ok(self.ctx.function_type(&inputs, &results))
            }
            Some(b'!') => {
                self.pos += 1;
                let full = self.read_ident()?;
                let (dialect, name) = full
                    .split_once('.')
                    .ok_or_else(|| self.err(format!("dialect type `!{full}` missing `.`")))?;
                let body = if self.peek() == Some(b'<') {
                    self.read_balanced_angles()?
                } else {
                    String::new()
                };
                let parser = self.ctx.type_parser(dialect).ok_or_else(|| {
                    self.err(format!("no type parser registered for dialect `{dialect}`"))
                })?;
                parser(&self.ctx, name, &body)
                    .ok_or_else(|| self.err(format!("cannot parse type `!{full}<{body}>`")))
            }
            _ => {
                let ident = self.read_ident()?;
                match ident.as_str() {
                    "index" => Ok(self.ctx.index_type()),
                    "f32" => Ok(self.ctx.f32_type()),
                    "f64" => Ok(self.ctx.f64_type()),
                    "none" => Ok(self.ctx.none_type()),
                    "ptr" => Ok(self.ctx.ptr_type()),
                    "memref" => {
                        self.expect(b'<')?;
                        let mut shape = Vec::new();
                        loop {
                            self.skip_ws();
                            if self.peek() == Some(b'?') {
                                self.pos += 1;
                                self.expect(b'x')?;
                                shape.push(-1);
                            } else if self.peek().map(|b| b.is_ascii_digit()) == Some(true) {
                                let n = match self.read_number()? {
                                    Attribute::Int(n) => n,
                                    _ => return Err(self.err("bad memref dimension")),
                                };
                                self.expect(b'x')?;
                                shape.push(n);
                            } else {
                                break;
                            }
                        }
                        let elem = self.parse_type()?;
                        self.expect(b'>')?;
                        Ok(self.ctx.memref_type(elem, &shape))
                    }
                    _ if ident.starts_with('i')
                        && ident[1..].chars().all(|c| c.is_ascii_digit())
                        && ident.len() > 1 =>
                    {
                        let width: u32 = ident[1..]
                            .parse()
                            .map_err(|_| self.err(format!("bad integer type `{ident}`")))?;
                        Ok(self.ctx.int_type(width))
                    }
                    other => Err(self.err(format!("unknown type `{other}`"))),
                }
            }
        }
    }

    fn parse_type_list(&mut self) -> Result<Vec<Type>, ParseError> {
        self.expect(b'(')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() != Some(b')') {
            loop {
                out.push(self.parse_type()?);
                if !self.try_char(b',') {
                    break;
                }
            }
        }
        self.expect(b')')?;
        Ok(out)
    }

    /// After peeking `<`, capture the raw balanced `<...>` body.
    fn read_balanced_angles(&mut self) -> Result<String, ParseError> {
        self.expect(b'<')?;
        let start = self.pos;
        let mut depth = 1usize;
        let mut prev = 0u8;
        while let Some(b) = self.bump() {
            match b {
                b'<' => depth += 1,
                // `->` inside (e.g. affine maps) does not close the bracket.
                b'>' if prev != b'-' => {
                    depth -= 1;
                    if depth == 0 {
                        return Ok(
                            String::from_utf8_lossy(&self.src[start..self.pos - 1]).into_owned()
                        );
                    }
                }
                _ => {}
            }
            prev = b;
        }
        Err(self.err("unterminated `<...>`"))
    }

    // ------------------------------------------------------------------
    // Attributes
    // ------------------------------------------------------------------

    fn parse_attr_dict(&mut self) -> Result<Vec<(String, Attribute)>, ParseError> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() != Some(b'}') {
            loop {
                let key = self.read_ident()?;
                self.expect(b'=')?;
                let value = self.parse_attr_value()?;
                out.push((key, value));
                if !self.try_char(b',') {
                    break;
                }
            }
        }
        self.expect(b'}')?;
        Ok(out)
    }

    fn parse_attr_value(&mut self) -> Result<Attribute, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Attribute::Str(self.read_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() != Some(b']') {
                    loop {
                        items.push(self.parse_attr_value()?);
                        if !self.try_char(b',') {
                            break;
                        }
                    }
                }
                self.expect(b']')?;
                Ok(Attribute::Array(items))
            }
            Some(b'@') => {
                let mut path = vec![self.read_symbol()?];
                while self.src[self.pos..].starts_with(b"::") {
                    self.pos += 2;
                    path.push(self.read_symbol()?);
                }
                Ok(Attribute::SymbolRef(path))
            }
            Some(b'-') | Some(b'0'..=b'9') => self.read_number(),
            _ => {
                if self.try_keyword("unit") {
                    Ok(Attribute::Unit)
                } else if self.try_keyword("true") {
                    Ok(Attribute::Bool(true))
                } else if self.try_keyword("false") {
                    Ok(Attribute::Bool(false))
                } else if self.try_keyword("densei64") {
                    let body = self.read_balanced_angles()?;
                    let vals = parse_num_list::<i64>(&body).map_err(|e| self.err(e))?;
                    Ok(Attribute::DenseI64(vals))
                } else if self.try_keyword("densef64") {
                    let body = self.read_balanced_angles()?;
                    let vals = parse_num_list::<f64>(&body).map_err(|e| self.err(e))?;
                    Ok(Attribute::DenseF64(vals))
                } else if self.try_keyword("affine_map") {
                    let body = self.read_balanced_angles()?;
                    parse_affine_map(&body)
                        .map(Attribute::AffineMap)
                        .map_err(|e| self.err(e))
                } else {
                    Ok(Attribute::Type(self.parse_type()?))
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Operations
    // ------------------------------------------------------------------

    fn parse_ops_until_brace(&mut self, m: &mut Module, block: BlockId) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(());
            }
            if self.peek().is_none() {
                return Err(self.err("unexpected end of input, expected `}`"));
            }
            self.parse_op(m, block)?;
        }
    }

    fn parse_op(&mut self, m: &mut Module, block: BlockId) -> Result<(), ParseError> {
        self.skip_ws();
        // Optional result list.
        let mut result_names = Vec::new();
        if self.peek() == Some(b'%') {
            loop {
                result_names.push(self.read_value_name()?);
                if !self.try_char(b',') {
                    break;
                }
            }
            self.expect(b'=')?;
        }
        let name = self.read_ident()?;
        match name.as_str() {
            "func.func" => {
                if !result_names.is_empty() {
                    return Err(self.err("func.func produces no results"));
                }
                self.parse_func(m, block)
            }
            "builtin.module" => {
                if !result_names.is_empty() {
                    return Err(self.err("builtin.module produces no results"));
                }
                self.parse_nested_module(m, block)
            }
            _ => self.parse_generic_op(m, block, &name, result_names),
        }
    }

    fn parse_func(&mut self, m: &mut Module, block: BlockId) -> Result<(), ParseError> {
        let sym = self.read_symbol()?;
        self.expect(b'(')?;
        let mut arg_names = Vec::new();
        let mut arg_types = Vec::new();
        self.skip_ws();
        if self.peek() != Some(b')') {
            loop {
                arg_names.push(self.read_value_name()?);
                self.expect(b':')?;
                arg_types.push(self.parse_type()?);
                if !self.try_char(b',') {
                    break;
                }
            }
        }
        self.expect(b')')?;
        self.expect(b'-')?;
        self.expect(b'>')?;
        let results = self.parse_type_list()?;
        let mut attrs = vec![
            ("sym_name".to_string(), Attribute::Str(sym)),
            (
                "function_type".to_string(),
                Attribute::Type(self.ctx.function_type(&arg_types, &results)),
            ),
        ];
        if self.try_keyword("attributes") {
            attrs.extend(self.parse_attr_dict()?);
        }
        let name = self
            .ctx
            .lookup_op("func.func")
            .ok_or_else(|| self.err("`func.func` is not registered; register the func dialect"))?;
        let op = m.create_op(name, &[], &[], attrs);
        let region = m.add_region(op);
        let body = m.add_block(region, &arg_types);
        for (i, n) in arg_names.into_iter().enumerate() {
            let v = m.block_arg(body, i);
            self.define_value(n, v)?;
        }
        m.append_op(block, op);
        self.expect(b'{')?;
        self.parse_ops_until_brace(m, body)
    }

    fn parse_nested_module(&mut self, m: &mut Module, block: BlockId) -> Result<(), ParseError> {
        let mut attrs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'@') {
            attrs.push(("sym_name".to_string(), Attribute::Str(self.read_symbol()?)));
        }
        if self.try_keyword("attributes") {
            attrs.extend(self.parse_attr_dict()?);
        }
        let name = self.ctx.op("builtin.module");
        let op = m.create_op(name, &[], &[], attrs);
        let region = m.add_region(op);
        let body = m.add_block(region, &[]);
        m.append_op(block, op);
        self.expect(b'{')?;
        self.parse_ops_until_brace(m, body)
    }

    fn parse_generic_op(
        &mut self,
        m: &mut Module,
        block: BlockId,
        name: &str,
        result_names: Vec<String>,
    ) -> Result<(), ParseError> {
        let op_name = self.ctx.lookup_op(name).ok_or_else(|| {
            self.err(format!(
                "unknown operation `{name}` (dialect not registered?)"
            ))
        })?;
        self.expect(b'(')?;
        let mut operands = Vec::new();
        self.skip_ws();
        if self.peek() != Some(b')') {
            loop {
                let n = self.read_value_name()?;
                operands.push(self.lookup_value(&n)?);
                if !self.try_char(b',') {
                    break;
                }
            }
        }
        self.expect(b')')?;
        self.skip_ws();
        let attrs = if self.peek() == Some(b'{') {
            self.parse_attr_dict()?
        } else {
            Vec::new()
        };
        self.expect(b':')?;
        let operand_types = self.parse_type_list()?;
        self.expect(b'-')?;
        self.expect(b'>')?;
        let result_types = self.parse_type_list()?;
        if operand_types.len() != operands.len() {
            return Err(self.err(format!(
                "`{name}`: {} operands but {} operand types",
                operands.len(),
                operand_types.len()
            )));
        }
        for (i, (&v, t)) in operands.iter().zip(&operand_types).enumerate() {
            if &m.value_type(v) != t {
                return Err(self.err(format!(
                    "`{name}`: operand #{i} has type {} but {} was written",
                    m.value_type(v),
                    t
                )));
            }
        }
        if result_types.len() != result_names.len() {
            return Err(self.err(format!(
                "`{name}`: {} results named but {} result types",
                result_names.len(),
                result_types.len()
            )));
        }
        let op = m.create_op(op_name, &operands, &result_types, attrs);
        for (i, n) in result_names.into_iter().enumerate() {
            let v = m.op_result(op, i);
            self.define_value(n, v)?;
        }
        m.append_op(block, op);
        // Regions.
        loop {
            self.skip_ws();
            if self.peek() != Some(b'{') {
                break;
            }
            self.pos += 1;
            let region = m.add_region(op);
            self.skip_ws();
            let body = if self.peek() == Some(b'^') {
                self.pos += 1;
                self.expect(b'(')?;
                let mut arg_names = Vec::new();
                let mut arg_types = Vec::new();
                self.skip_ws();
                if self.peek() != Some(b')') {
                    loop {
                        arg_names.push(self.read_value_name()?);
                        self.expect(b':')?;
                        arg_types.push(self.parse_type()?);
                        if !self.try_char(b',') {
                            break;
                        }
                    }
                }
                self.expect(b')')?;
                self.expect(b':')?;
                let b = m.add_block(region, &arg_types);
                for (i, n) in arg_names.into_iter().enumerate() {
                    let v = m.block_arg(b, i);
                    self.define_value(n, v)?;
                }
                b
            } else {
                m.add_block(region, &[])
            };
            self.parse_ops_until_brace(m, body)?;
        }
        Ok(())
    }
}

fn parse_num_list<T: std::str::FromStr>(body: &str) -> Result<Vec<T>, String>
where
    T::Err: fmt::Display,
{
    body.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<T>().map_err(|e| format!("bad number `{s}`: {e}")))
        .collect()
}

/// Parse the body of an `affine_map<...>` attribute as printed by
/// [`AffineMap`]'s `Display` impl.
fn parse_affine_map(body: &str) -> Result<AffineMap, String> {
    let mut p = AffineParser {
        src: body.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'(')?;
    let mut num_dims = 0;
    p.skip_ws();
    if p.peek() != Some(b')') {
        loop {
            let id = p.read_word()?;
            if !id.starts_with('d') {
                return Err(format!("expected dim name, found `{id}`"));
            }
            num_dims += 1;
            if !p.try_char(b',') {
                break;
            }
        }
    }
    p.expect(b')')?;
    p.expect(b'-')?;
    p.expect(b'>')?;
    p.expect(b'(')?;
    let mut exprs = Vec::new();
    p.skip_ws();
    if p.peek() != Some(b')') {
        loop {
            exprs.push(p.parse_expr()?);
            if !p.try_char(b',') {
                break;
            }
        }
    }
    p.expect(b')')?;
    Ok(AffineMap::new(num_dims, exprs))
}

struct AffineParser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> AffineParser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` in affine map", c as char))
        }
    }

    fn try_char(&mut self, c: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn read_word(&mut self) -> Result<String, String> {
        self.skip_ws();
        let start = self.pos;
        while self.peek().map(|b| b.is_ascii_alphanumeric() || b == b'_') == Some(true) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err("expected word in affine map".into());
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).into_owned())
    }

    fn parse_expr(&mut self) -> Result<AffineExpr, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let lhs = self.parse_expr()?;
                self.skip_ws();
                let expr = if self.try_char(b'+') {
                    AffineExpr::Add(Box::new(lhs), Box::new(self.parse_expr()?))
                } else if self.try_char(b'*') {
                    AffineExpr::Mul(Box::new(lhs), Box::new(self.parse_expr()?))
                } else {
                    let word = self.read_word()?;
                    match word.as_str() {
                        "mod" => AffineExpr::Mod(Box::new(lhs), Box::new(self.parse_expr()?)),
                        "floordiv" => {
                            AffineExpr::FloorDiv(Box::new(lhs), Box::new(self.parse_expr()?))
                        }
                        other => return Err(format!("unknown affine operator `{other}`")),
                    }
                };
                self.expect(b')')?;
                Ok(expr)
            }
            Some(b'-') | Some(b'0'..=b'9') => {
                let start = self.pos;
                if self.peek() == Some(b'-') {
                    self.pos += 1;
                }
                while self.peek().map(|b| b.is_ascii_digit()) == Some(true) {
                    self.pos += 1;
                }
                String::from_utf8_lossy(&self.src[start..self.pos])
                    .parse::<i64>()
                    .map(AffineExpr::Const)
                    .map_err(|e| format!("bad affine constant: {e}"))
            }
            _ => {
                let word = self.read_word()?;
                if let Some(rest) = word.strip_prefix('d') {
                    if let Ok(i) = rest.parse::<usize>() {
                        return Ok(AffineExpr::Dim(i));
                    }
                }
                if let Some(rest) = word.strip_prefix('s') {
                    if let Ok(i) = rest.parse::<usize>() {
                        return Ok(AffineExpr::Sym(i));
                    }
                }
                Err(format!("unknown affine atom `{word}`"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{traits, OpInfo};
    use crate::printer::print_module;

    fn ctx() -> Context {
        let c = Context::new();
        c.register_op(
            OpInfo::new("func.func").with_traits(traits::ISOLATED_FROM_ABOVE | traits::SYMBOL),
        );
        c.register_op(OpInfo::new("func.return").with_traits(traits::TERMINATOR));
        c.register_op(OpInfo::new("t.make").with_traits(traits::PURE));
        c.register_op(OpInfo::new("t.use"));
        c.register_op(OpInfo::new("t.wrap"));
        c.register_op(OpInfo::new("t.yield").with_traits(traits::TERMINATOR));
        c
    }

    #[test]
    fn roundtrip_simple() {
        let c = ctx();
        let src = "builtin.module {\n  func.func @f(%0: i32) -> (i32) {\n    %1 = t.make() {k = 1} : () -> (i32)\n    func.return(%1) : (i32) -> ()\n  }\n}\n";
        let m = parse_module(&c, src).unwrap();
        assert_eq!(print_module(&m), src);
    }

    #[test]
    fn roundtrip_regions_and_block_args() {
        let c = ctx();
        let src = "builtin.module {\n  func.func @f() -> () {\n    %0 = t.make() : () -> (index)\n    t.wrap(%0) : (index) -> () {\n      ^(%1: index):\n      t.yield() : () -> ()\n    }\n    func.return() : () -> ()\n  }\n}\n";
        let m = parse_module(&c, src).unwrap();
        let printed = print_module(&m);
        let m2 = parse_module(&c, &printed).unwrap();
        assert_eq!(print_module(&m2), printed);
        assert!(printed.contains("^(%1: index):"), "{printed}");
    }

    #[test]
    fn nested_module_roundtrip() {
        let c = ctx();
        let src = "builtin.module {\n  builtin.module @device {\n    func.func @k() -> () {\n      func.return() : () -> ()\n    }\n  }\n}\n";
        let m = parse_module(&c, src).unwrap();
        assert_eq!(print_module(&m), src);
        let dev = m.lookup_symbol(m.top(), "device").unwrap();
        assert!(m.lookup_symbol(dev, "k").is_some());
        assert!(m
            .lookup_symbol_path(m.top(), &["device".into(), "k".into()])
            .is_some());
    }

    #[test]
    fn unknown_value_is_an_error() {
        let c = ctx();
        let src = "builtin.module {\n  t.use(%9) : (i32) -> ()\n}\n";
        let err = parse_module(&c, src).unwrap_err();
        assert!(err.message.contains("unknown value"), "{err}");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unknown_op_is_an_error() {
        let c = ctx();
        let err = parse_module(&c, "builtin.module {\n  nope.nope() : () -> ()\n}\n").unwrap_err();
        assert!(err.message.contains("unknown operation"), "{err}");
    }

    #[test]
    fn operand_type_mismatch_is_an_error() {
        let c = ctx();
        let src = "builtin.module {\n  %0 = t.make() : () -> (i32)\n  t.use(%0) : (i64) -> ()\n}\n";
        let err = parse_module(&c, src).unwrap_err();
        assert!(err.message.contains("operand #0 has type i32"), "{err}");
    }

    #[test]
    fn attribute_kinds_roundtrip() {
        let c = ctx();
        let src = "builtin.module {\n  %0 = t.make() {a = -4, b = 2.5, c = \"hi\", d = true, e = unit, f = [1, 2], g = @x::@y, h = densei64<1, 2>, i = densef64<1.5>, j = memref<?xf32>, k = affine_map<(d0, d1) -> ((d0 + 1), (d1 * 2))>} : () -> (i32)\n}\n";
        let m = parse_module(&c, src).unwrap();
        let printed = print_module(&m);
        let m2 = parse_module(&c, &printed).unwrap();
        assert_eq!(print_module(&m2), printed);
        let op = m.block_ops(m.top_block())[0];
        assert_eq!(m.attr(op, "a").and_then(|a| a.as_int()), Some(-4));
        assert_eq!(m.attr(op, "b").and_then(|a| a.as_float()), Some(2.5));
        assert_eq!(
            m.attr(op, "g")
                .and_then(|a| a.as_symbol_ref())
                .map(|p| p.len()),
            Some(2)
        );
        let map = m.attr(op, "k").and_then(|a| a.as_affine_map()).unwrap();
        assert_eq!(map.num_dims, 2);
        assert_eq!(map.eval(&[3, 5]), vec![4, 10]);
    }
}
