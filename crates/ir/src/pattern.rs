//! Greedy pattern rewriting and folding.
//!
//! [`apply_patterns_greedily`] repeatedly applies rewrite patterns, op
//! folders and dead-code elimination until a fixed point is reached — the
//! same driver MLIR's canonicalization uses, and the mechanism behind the
//! "gradual lowering through pattern rewriting" process described in §II-B
//! of the paper.

use crate::dialect::{traits, FoldOut};
use crate::module::{Module, OpId, WalkControl};

/// A rewrite rule rooted at a single operation.
pub trait RewritePattern {
    /// Diagnostic name.
    fn name(&self) -> &'static str {
        "pattern"
    }

    /// If set, only ops with this full name are offered to the pattern.
    fn root_name(&self) -> Option<&'static str> {
        None
    }

    /// Attempt the rewrite rooted at `op`; return `true` if IR was changed.
    /// On `true`, `op` may have been erased.
    fn match_and_rewrite(&self, m: &mut Module, op: OpId) -> bool;
}

const MAX_ROUNDS: usize = 64;

/// Apply `patterns` plus registered folders and trivial dead-code
/// elimination greedily under `root` until fixpoint. Returns whether
/// anything changed.
pub fn apply_patterns_greedily(
    m: &mut Module,
    root: OpId,
    patterns: &[Box<dyn RewritePattern>],
) -> bool {
    let mut changed_any = false;
    for _round in 0..MAX_ROUNDS {
        let mut changed = false;

        // Dead-code elimination: erase unused pure ops (bottom-up).
        let mut ops: Vec<OpId> = Vec::new();
        m.walk(root, &mut |op| {
            if op != root {
                ops.push(op);
            }
            WalkControl::Advance
        });
        for &op in ops.iter().rev() {
            if m.op_is_erased(op) {
                continue;
            }
            let info = m.op_info(op);
            let pure = info.has_trait(traits::PURE) || info.has_trait(traits::CONSTANT_LIKE);
            if pure
                && !m.op_results(op).is_empty()
                && m.op_results(op).iter().all(|&r| !m.value_has_uses(r))
                && m.op_regions(op).is_empty()
            {
                m.erase_op(op);
                changed = true;
            }
        }

        // Folding + patterns (top-down).
        for &op in &ops {
            if m.op_is_erased(op) {
                continue;
            }
            if try_fold(m, op) {
                changed = true;
                continue;
            }
            let name = m.op_name_str(op);
            for p in patterns {
                if let Some(root_name) = p.root_name() {
                    if root_name != &*name {
                        continue;
                    }
                }
                if p.match_and_rewrite(m, op) {
                    changed = true;
                    break;
                }
            }
        }

        if !changed {
            break;
        }
        changed_any = true;
    }
    changed_any
}

/// Attempt to fold a single op using its registered folder; constants are
/// materialized through the context's constant materializer.
pub fn try_fold(m: &mut Module, op: OpId) -> bool {
    let info = m.op_info(op);
    let Some(fold) = info.fold else {
        return false;
    };
    let Some(outs) = fold(m, op) else {
        return false;
    };
    debug_assert_eq!(outs.len(), m.op_results(op).len());
    let block = match m.op_parent_block(op) {
        Some(b) => b,
        None => return false,
    };
    let index = m.op_index_in_block(op);
    let mut replacements = Vec::with_capacity(outs.len());
    for (i, out) in outs.into_iter().enumerate() {
        match out {
            FoldOut::Value(v) => {
                // Folding to one of the op's own results is a no-op signal.
                if m.op_results(op).contains(&v) {
                    return false;
                }
                replacements.push(v);
            }
            FoldOut::Attr(attr) => {
                let ty = m.value_type(m.op_result(op, i));
                let Some(materialize) = m.ctx().constant_materializer() else {
                    return false;
                };
                let Some(v) = materialize(m, block, index, &attr, &ty) else {
                    return false;
                };
                replacements.push(v);
            }
        }
    }
    m.replace_op(op, &replacements);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{traits, OpInfo};
    use crate::{Attribute, Builder, Context, Module};

    /// A pattern that renames `t.a` ops into `t.b`.
    struct AtoB;

    impl RewritePattern for AtoB {
        fn name(&self) -> &'static str {
            "a-to-b"
        }

        fn root_name(&self) -> Option<&'static str> {
            Some("t.a")
        }

        fn match_and_rewrite(&self, m: &mut Module, op: OpId) -> bool {
            let mut b = Builder::before(m, op);
            let i32t = b.ctx().i32_type();
            let new = b.build_value("t.b", &[], i32t, vec![]);
            m.replace_op(op, &[new]);
            true
        }
    }

    fn setup() -> (Context, Module) {
        let ctx = Context::new();
        ctx.register_op(OpInfo::new("t.a").with_traits(traits::PURE));
        ctx.register_op(OpInfo::new("t.b").with_traits(traits::PURE));
        ctx.register_op(OpInfo::new("t.use"));
        let m = Module::new(&ctx);
        (ctx, m)
    }

    #[test]
    fn pattern_rewrites_to_fixpoint() {
        let (ctx, mut m) = setup();
        let block = m.top_block();
        let v = {
            let mut b = Builder::at_end(&mut m, block);
            let i32t = ctx.i32_type();
            b.build_value("t.a", &[], i32t, vec![])
        };
        {
            let mut b = Builder::at_end(&mut m, block);
            b.build("t.use", &[v], &[], vec![]);
        }
        let top = m.top();
        let changed = apply_patterns_greedily(&mut m, top, &[Box::new(AtoB)]);
        assert!(changed);
        let names: Vec<String> = m
            .block_ops(m.top_block())
            .iter()
            .map(|&o| m.op_name_str(o).to_string())
            .collect();
        assert_eq!(names, vec!["t.b", "t.use"]);
    }

    #[test]
    fn dce_erases_unused_pure_ops() {
        let (ctx, mut m) = setup();
        let block = m.top_block();
        {
            let mut b = Builder::at_end(&mut m, block);
            let i32t = ctx.i32_type();
            let _unused = b.build_value("t.b", &[], i32t, vec![]);
        }
        let top = m.top();
        let changed = apply_patterns_greedily(&mut m, top, &[]);
        assert!(changed);
        assert!(m.block_ops(m.top_block()).is_empty());
    }

    #[test]
    fn folding_materializes_constants() {
        let ctx = Context::new();
        // A fake "always folds to 7" op plus a constant op + materializer.
        ctx.register_op(OpInfo::new("t.const").with_traits(traits::CONSTANT_LIKE));
        ctx.register_op(
            OpInfo::new("t.seven")
                .with_traits(traits::PURE)
                .with_fold(|_m, _op| Some(vec![crate::FoldOut::Attr(Attribute::Int(7))])),
        );
        ctx.register_op(OpInfo::new("t.use"));
        ctx.register_constant_materializer(|m, block, index, attr, ty| {
            let name = m.ctx().op("t.const");
            let op = m.create_op(
                name,
                &[],
                std::slice::from_ref(ty),
                vec![("value".into(), attr.clone())],
            );
            m.insert_op(block, index, op);
            Some(m.op_result(op, 0))
        });
        let mut m = Module::new(&ctx);
        let block = m.top_block();
        let v = {
            let mut b = Builder::at_end(&mut m, block);
            let i32t = ctx.i32_type();
            b.build_value("t.seven", &[], i32t, vec![])
        };
        {
            let mut b = Builder::at_end(&mut m, block);
            b.build("t.use", &[v], &[], vec![]);
        }
        let top = m.top();
        assert!(apply_patterns_greedily(&mut m, top, &[]));
        let ops = m.block_ops(m.top_block()).to_vec();
        assert_eq!(ops.len(), 2);
        assert!(m.op_is(ops[0], "t.const"));
        assert_eq!(m.attr(ops[0], "value").and_then(|a| a.as_int()), Some(7));
    }
}
