//! Textual IR printer.
//!
//! The format mirrors MLIR's generic operation syntax with custom forms for
//! `builtin.module` and `func.func`:
//!
//! ```text
//! builtin.module {
//!   func.func @axpy(%0: f32, %1: memref<?xf32>) -> () {
//!     %2 = arith.constant() {value = 0} : () -> (index)
//!     %3 = memref.load(%1, %2) : (memref<?xf32>, index) -> (f32)
//!     ...
//!     func.return() : () -> ()
//!   }
//! }
//! ```
//!
//! Value names are globally unique (`%0`, `%1`, …) in print order, so the
//! output parses back with [`crate::parser::parse_module`].

use crate::module::{BlockId, Module, OpId, ValueId};
use std::collections::HashMap;
use std::fmt::Write;

struct Namer {
    names: HashMap<ValueId, String>,
    next: usize,
}

impl Namer {
    fn new() -> Namer {
        Namer {
            names: HashMap::new(),
            next: 0,
        }
    }

    fn name(&mut self, v: ValueId) -> String {
        if let Some(n) = self.names.get(&v) {
            return n.clone();
        }
        let n = format!("%{}", self.next);
        self.next += 1;
        self.names.insert(v, n.clone());
        n
    }
}

/// Print a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let mut namer = Namer::new();
    print_op_rec(m, m.top(), &mut namer, 0, &mut out);
    out
}

/// Print a single operation subtree (fresh value numbering).
pub fn print_op(m: &Module, op: OpId) -> String {
    let mut out = String::new();
    let mut namer = Namer::new();
    print_op_rec(m, op, &mut namer, 0, &mut out);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_attr_dict(m: &Module, op: OpId, skip: &[&str], out: &mut String) -> bool {
    let attrs: Vec<_> = m
        .op_attrs(op)
        .iter()
        .map(|(k, v)| (m.attr_key_str(*k), v))
        .filter(|(k, _)| !skip.contains(&&**k))
        .collect();
    if attrs.is_empty() {
        return false;
    }
    out.push('{');
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{k} = {v}");
    }
    out.push('}');
    true
}

fn print_region(
    m: &Module,
    op: OpId,
    region_index: usize,
    namer: &mut Namer,
    level: usize,
    out: &mut String,
) {
    let block = m.op_region_block(op, region_index);
    out.push_str(" {\n");
    print_block_body(m, block, namer, level + 1, out);
    indent(out, level);
    out.push('}');
}

fn print_block_body(m: &Module, block: BlockId, namer: &mut Namer, level: usize, out: &mut String) {
    let args = m.block_args(block).to_vec();
    if !args.is_empty() {
        indent(out, level);
        out.push_str("^(");
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let n = namer.name(*a);
            let _ = write!(out, "{n}: {}", m.value_type(*a));
        }
        out.push_str("):\n");
    }
    for &inner in m.block_ops(block) {
        print_op_rec(m, inner, namer, level, out);
    }
}

fn print_op_rec(m: &Module, op: OpId, namer: &mut Namer, level: usize, out: &mut String) {
    let name = m.op_name_str(op);
    indent(out, level);
    match &*name {
        "builtin.module" => {
            out.push_str("builtin.module");
            if let Some(sym) = m.symbol_name(op) {
                let _ = write!(out, " @{sym}");
            }
            out.push(' ');
            if print_attr_dict(m, op, &["sym_name"], out) {
                out.push(' ');
            }
            out.pop(); // balance: remove trailing space before region brace
            print_region(m, op, 0, namer, level, out);
            out.push('\n');
        }
        "func.func" => {
            let sym = m.symbol_name(op).unwrap_or("<anon>").to_string();
            let _ = write!(out, "func.func @{sym}(");
            let block = m.op_region_block(op, 0);
            let args = m.block_args(block).to_vec();
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let n = namer.name(*a);
                let _ = write!(out, "{n}: {}", m.value_type(*a));
            }
            out.push_str(") -> (");
            if let Some(fty) = m.attr(op, "function_type").and_then(|a| a.as_type()) {
                if let Some((_, results)) = fty.function_signature() {
                    for (i, t) in results.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "{t}");
                    }
                }
            }
            out.push(')');
            let mut tmp = String::new();
            if print_attr_dict(m, op, &["sym_name", "function_type"], &mut tmp) {
                let _ = write!(out, " attributes {tmp}");
            }
            out.push_str(" {\n");
            // Do not reprint the block header: func args are in the signature.
            for &inner in m.block_ops(block) {
                print_op_rec(m, inner, namer, level + 1, out);
            }
            indent(out, level);
            out.push_str("}\n");
        }
        _ => {
            let results = m.op_results(op).to_vec();
            for (i, r) in results.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let n = namer.name(*r);
                out.push_str(&n);
            }
            if !results.is_empty() {
                out.push_str(" = ");
            }
            out.push_str(&name);
            out.push('(');
            let operands = m.op_operands(op).to_vec();
            for (i, v) in operands.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let n = namer.name(*v);
                out.push_str(&n);
            }
            out.push_str(") ");
            if print_attr_dict(m, op, &[], out) {
                out.push(' ');
            }
            out.push_str(": (");
            for (i, v) in operands.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}", m.value_type(*v));
            }
            out.push_str(") -> (");
            for (i, r) in results.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{}", m.value_type(*r));
            }
            out.push(')');
            for i in 0..m.op_regions(op).len() {
                print_region(m, op, i, namer, level, out);
            }
            out.push('\n');
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::dialect::OpInfo;
    use crate::{Attribute, Builder, Context, Module};

    #[test]
    fn prints_generic_ops() {
        let ctx = Context::new();
        ctx.register_op(OpInfo::new("test.make"));
        ctx.register_op(OpInfo::new("test.use"));
        let mut m = Module::new(&ctx);
        let block = m.top_block();
        let mut b = Builder::at_end(&mut m, block);
        let i32t = b.ctx().i32_type();
        let v = b.build_value(
            "test.make",
            &[],
            i32t,
            vec![("k".into(), Attribute::Int(3))],
        );
        b.build("test.use", &[v], &[], vec![]);
        let text = super::print_module(&m);
        assert!(
            text.contains("%0 = test.make() {k = 3} : () -> (i32)"),
            "got:\n{text}"
        );
        assert!(text.contains("test.use(%0) : (i32) -> ()"), "got:\n{text}");
        assert!(text.starts_with("builtin.module {"), "got:\n{text}");
    }
}
