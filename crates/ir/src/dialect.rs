//! Dialect registry: operation metadata, traits and interfaces.
//!
//! Every operation name is registered with an [`OpInfo`] carrying:
//!
//! * **traits** — bit flags such as [`traits::PURE`] or
//!   [`traits::NON_UNIFORM_SOURCE`]; the uniformity analysis of §V-C consults
//!   the latter exactly as the paper describes ("a custom trait informs the
//!   analysis about SYCL operations that are known sources of
//!   non-uniformity");
//! * a **memory-effect interface** ([`OpInfo::effects`]) — the generic
//!   interface §V-B uses so the reaching-definition analysis can reason about
//!   operations from any dialect;
//! * an optional **verifier** and **folder**.

use crate::attrs::Attribute;
use crate::module::{Module, OpId, ValueId};
use std::sync::Arc;

/// Interned operation name; index into the context's registry.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct OpName(pub u32);

/// Operation trait flags.
///
/// Traits let analyses reason about unknown dialects generically — the
/// re-usability argument of §V-C.
pub mod traits {
    /// No memory effects; freely speculatable.
    pub const PURE: u32 = 1 << 0;
    /// Terminates its block (e.g. `scf.yield`, `func.return`).
    pub const TERMINATOR: u32 = 1 << 1;
    /// Produces work-item-dependent values (e.g.
    /// `sycl.nd_item.get_global_id`). Consulted by the uniformity analysis.
    pub const NON_UNIFORM_SOURCE: u32 = 1 << 2;
    /// Materializes a compile-time constant (e.g. `arith.constant`).
    pub const CONSTANT_LIKE: u32 = 1 << 3;
    /// The op's regions may not reference values defined above
    /// (e.g. `func.func`, `builtin.module`).
    pub const ISOLATED_FROM_ABOVE: u32 = 1 << 4;
    /// Memory effects are the union of the effects of nested ops
    /// (e.g. `scf.for`, `scf.if`).
    pub const RECURSIVE_EFFECTS: u32 = 1 << 5;
    /// A loop with a single induction variable region
    /// (`scf.for`, `affine.for`).
    pub const LOOP_LIKE: u32 = 1 << 6;
    /// Two-armed conditional (`scf.if`).
    pub const BRANCH_LIKE: u32 = 1 << 7;
    /// Work-group barrier semantics (`sycl.group.barrier`); executing this in
    /// divergent control flow deadlocks (§V-C).
    pub const BARRIER: u32 = 1 << 8;
    /// Declares a symbol via a `sym_name` attribute (func.func, modules).
    pub const SYMBOL: u32 = 1 << 9;
}

/// Kind of a memory effect an operation has on a value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EffectKind {
    Read,
    Write,
    Alloc,
    Free,
}

/// One memory effect. `value` identifies the affected memory (a memref-like
/// SSA value) when known; `None` means "some unknown memory".
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Effect {
    pub kind: EffectKind,
    pub value: Option<ValueId>,
}

impl Effect {
    pub fn read(value: ValueId) -> Effect {
        Effect {
            kind: EffectKind::Read,
            value: Some(value),
        }
    }

    pub fn write(value: ValueId) -> Effect {
        Effect {
            kind: EffectKind::Write,
            value: Some(value),
        }
    }

    pub fn alloc(value: ValueId) -> Effect {
        Effect {
            kind: EffectKind::Alloc,
            value: Some(value),
        }
    }

    pub fn read_unknown() -> Effect {
        Effect {
            kind: EffectKind::Read,
            value: None,
        }
    }

    pub fn write_unknown() -> Effect {
        Effect {
            kind: EffectKind::Write,
            value: None,
        }
    }
}

/// Result of folding one op result: either an existing value or a constant
/// attribute to materialize.
#[derive(Clone, Debug)]
pub enum FoldOut {
    Value(ValueId),
    Attr(Attribute),
}

/// Per-op verifier callback.
pub type VerifyFn = fn(&Module, OpId) -> Result<(), String>;
/// Memory-effect interface callback.
pub type EffectsFn = fn(&Module, OpId) -> Vec<Effect>;
/// Folding callback; returns one [`FoldOut`] per op result when folding
/// succeeds.
pub type FoldFn = fn(&Module, OpId) -> Option<Vec<FoldOut>>;

/// Metadata registered for an operation name.
#[derive(Clone)]
pub struct OpInfo {
    pub name: Arc<str>,
    pub dialect: Arc<str>,
    pub traits: u32,
    pub verify: Option<VerifyFn>,
    pub effects: Option<EffectsFn>,
    pub fold: Option<FoldFn>,
}

impl OpInfo {
    /// Create an [`OpInfo`] with no traits and no callbacks. The dialect
    /// namespace is everything before the first `.` of `name`.
    pub fn new(name: &str) -> OpInfo {
        let dialect = name.split('.').next().unwrap_or(name);
        OpInfo {
            name: Arc::from(name),
            dialect: Arc::from(dialect),
            traits: 0,
            verify: None,
            effects: None,
            fold: None,
        }
    }

    pub fn with_traits(mut self, t: u32) -> OpInfo {
        self.traits |= t;
        self
    }

    pub fn with_verify(mut self, f: VerifyFn) -> OpInfo {
        self.verify = Some(f);
        self
    }

    pub fn with_effects(mut self, f: EffectsFn) -> OpInfo {
        self.effects = Some(f);
        self
    }

    pub fn with_fold(mut self, f: FoldFn) -> OpInfo {
        self.fold = Some(f);
        self
    }

    pub fn has_trait(&self, t: u32) -> bool {
        self.traits & t != 0
    }
}

/// A dialect bundles op registrations (and type parsers) for a namespace.
pub trait Dialect {
    /// Namespace, e.g. `"arith"`.
    fn name(&self) -> &'static str;
    /// Register all ops/types of this dialect into the context.
    fn register(&self, ctx: &crate::Context);
}

/// Compute the memory effects of `op`, using traits and the effect interface:
/// `Some(vec![])` for pure ops, `Some(effects)` when the op (or, for
/// recursive ops, all nested ops) declare effects, `None` when unknown.
///
/// This is the project-wide entry point mirroring MLIR's
/// `getEffects`/`isMemoryEffectFree` queries used throughout §V–§VI.
pub fn memory_effects(m: &Module, op: OpId) -> Option<Vec<Effect>> {
    let info = m.op_info(op);
    if info.has_trait(traits::PURE) || info.has_trait(traits::CONSTANT_LIKE) {
        return Some(Vec::new());
    }
    if let Some(f) = info.effects {
        return Some(f(m, op));
    }
    if info.has_trait(traits::RECURSIVE_EFFECTS) {
        let mut all = Vec::new();
        for &region in m.op_regions(op) {
            for block in m.region_blocks(region) {
                for &inner in m.block_ops(*block) {
                    let nested = memory_effects(m, inner)?;
                    all.extend(nested);
                }
            }
        }
        return Some(all);
    }
    // Terminators that just forward values are effect-free.
    if info.has_trait(traits::TERMINATOR) {
        return Some(Vec::new());
    }
    None
}

/// `true` if the op is known to have no memory effects at all.
pub fn is_memory_effect_free(m: &Module, op: OpId) -> bool {
    matches!(memory_effects(m, op), Some(effects) if effects.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opinfo_builder() {
        let info = OpInfo::new("arith.addi").with_traits(traits::PURE);
        assert_eq!(&*info.name, "arith.addi");
        assert_eq!(&*info.dialect, "arith");
        assert!(info.has_trait(traits::PURE));
        assert!(!info.has_trait(traits::TERMINATOR));
    }

    #[test]
    fn effect_constructors() {
        let e = Effect::read_unknown();
        assert_eq!(e.kind, EffectKind::Read);
        assert!(e.value.is_none());
    }
}
