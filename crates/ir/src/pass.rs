//! Pass manager infrastructure.
//!
//! Mirrors MLIR's pass pipeline: passes run in order over a module, with
//! optional verification between passes and optional IR dumping (used by the
//! Fig. 1 reproduction to show the compilation flow stage by stage).

use crate::module::Module;
use crate::printer::print_module;
use crate::verifier::verify;
use std::time::{Duration, Instant};

/// A module-level transformation.
pub trait Pass {
    /// Human-readable pass name (e.g. `"licm"`).
    fn name(&self) -> &'static str;

    /// Run on the module; return whether any change was made.
    ///
    /// # Errors
    ///
    /// Returns a message describing an unrecoverable pass failure.
    fn run(&mut self, module: &mut Module) -> Result<bool, String>;
}

/// Execution record for one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct PassStats {
    /// `(pass name, wall time, changed)` per executed pass.
    pub per_pass: Vec<(String, Duration, bool)>,
}

impl PassStats {
    /// Total pipeline wall time.
    pub fn total_time(&self) -> Duration {
        self.per_pass.iter().map(|(_, d, _)| *d).sum()
    }

    /// Whether any pass reported a change.
    pub fn any_changed(&self) -> bool {
        self.per_pass.iter().any(|(_, _, c)| *c)
    }
}

/// Ordered pipeline of passes.
///
/// ```
/// use sycl_mlir_ir::{Context, Module, Pass, PassManager};
///
/// struct Nop;
/// impl Pass for Nop {
///     fn name(&self) -> &'static str { "nop" }
///     fn run(&mut self, _m: &mut Module) -> Result<bool, String> { Ok(false) }
/// }
///
/// let ctx = Context::new();
/// let mut m = Module::new(&ctx);
/// let mut pm = PassManager::new();
/// pm.add_pass(Nop);
/// let stats = pm.run(&mut m).unwrap();
/// assert_eq!(stats.per_pass.len(), 1);
/// ```
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    /// Verify the module after every pass (on by default).
    pub verify_each: bool,
    /// Capture the IR after each pass into [`PassManager::dumps`].
    pub dump_after_each: bool,
    /// `(pass name, IR text)` captured when [`PassManager::dump_after_each`]
    /// is set.
    pub dumps: Vec<(String, String)>,
}

impl Default for PassManager {
    fn default() -> PassManager {
        PassManager::new()
    }
}

impl PassManager {
    pub fn new() -> PassManager {
        PassManager {
            passes: Vec::new(),
            verify_each: true,
            dump_after_each: false,
            dumps: Vec::new(),
        }
    }

    /// Append a pass to the pipeline.
    pub fn add_pass(&mut self, pass: impl Pass + 'static) -> &mut PassManager {
        self.passes.push(Box::new(pass));
        self
    }

    /// Names of the registered passes, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Run the pipeline.
    ///
    /// # Errors
    ///
    /// Returns the failing pass's message, or a verifier report if
    /// [`PassManager::verify_each`] is set and a pass broke the IR.
    pub fn run(&mut self, module: &mut Module) -> Result<PassStats, String> {
        let mut stats = PassStats::default();
        for pass in &mut self.passes {
            let start = Instant::now();
            let changed = pass
                .run(module)
                .map_err(|e| format!("pass `{}` failed: {e}", pass.name()))?;
            stats
                .per_pass
                .push((pass.name().to_string(), start.elapsed(), changed));
            if self.verify_each {
                verify(module)
                    .map_err(|e| format!("IR invalid after pass `{}`:\n{e}", pass.name()))?;
            }
            if self.dump_after_each {
                self.dumps
                    .push((pass.name().to_string(), print_module(module)));
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::OpInfo;
    use crate::{Builder, Context};

    struct AddOp;

    impl Pass for AddOp {
        fn name(&self) -> &'static str {
            "add-op"
        }

        fn run(&mut self, m: &mut Module) -> Result<bool, String> {
            let block = m.top_block();
            let mut b = Builder::at_end(m, block);
            b.build("t.mark", &[], &[], vec![]);
            Ok(true)
        }
    }

    struct Failing;

    impl Pass for Failing {
        fn name(&self) -> &'static str {
            "failing"
        }

        fn run(&mut self, _m: &mut Module) -> Result<bool, String> {
            Err("boom".into())
        }
    }

    #[test]
    fn runs_in_order_and_records_stats() {
        let ctx = Context::new();
        ctx.register_op(OpInfo::new("t.mark"));
        let mut m = Module::new(&ctx);
        let mut pm = PassManager::new();
        pm.add_pass(AddOp).add_pass(AddOp);
        let stats = pm.run(&mut m).unwrap();
        assert_eq!(stats.per_pass.len(), 2);
        assert!(stats.any_changed());
        assert_eq!(m.block_ops(m.top_block()).len(), 2);
    }

    #[test]
    fn failure_is_reported_with_pass_name() {
        let ctx = Context::new();
        let mut m = Module::new(&ctx);
        let mut pm = PassManager::new();
        pm.add_pass(Failing);
        let err = pm.run(&mut m).unwrap_err();
        assert!(err.contains("failing"), "{err}");
        assert!(err.contains("boom"), "{err}");
    }

    #[test]
    fn dumps_after_each_when_enabled() {
        let ctx = Context::new();
        ctx.register_op(OpInfo::new("t.mark"));
        let mut m = Module::new(&ctx);
        let mut pm = PassManager::new();
        pm.dump_after_each = true;
        pm.add_pass(AddOp);
        pm.run(&mut m).unwrap();
        assert_eq!(pm.dumps.len(), 1);
        assert!(pm.dumps[0].1.contains("t.mark"));
    }
}
