//! The type system: interned built-in types plus extensible dialect types.
//!
//! [`Type`] is a cheap handle (an `Arc` to interned data); equality and
//! hashing are pointer-based, which is sound because all types are interned
//! in a [`crate::Context`]. The handle is `Send + Sync`, so decoded
//! artifacts that carry types (the simulator's `KernelPlan`) can be shared
//! across worker threads. Dialect types (e.g. the SYCL dialect's
//! `!sycl.id<2>`) plug in through [`DialectTypeImpl`] without this crate
//! knowing about them — this mirrors MLIR's extensible type system that the
//! paper's SYCL dialect relies on (§III).

use std::any::Any;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A handle to an interned type. Cheap to clone; equality is pointer equality.
///
/// ```
/// use sycl_mlir_ir::Context;
/// let ctx = Context::new();
/// assert_eq!(ctx.i32_type(), ctx.i32_type());
/// assert_ne!(ctx.i32_type(), ctx.i64_type());
/// ```
#[derive(Clone)]
pub struct Type(Arc<TypeKind>);

impl Type {
    pub(crate) fn from_kind(kind: TypeKind) -> Type {
        Type(Arc::new(kind))
    }

    /// The structural description of this type.
    pub fn kind(&self) -> &TypeKind {
        &self.0
    }

    /// Returns `true` for any integer type (including `i1`).
    pub fn is_integer(&self) -> bool {
        matches!(*self.0, TypeKind::Int(_))
    }

    /// Bit width for integer types.
    pub fn int_width(&self) -> Option<u32> {
        match *self.0 {
            TypeKind::Int(w) => Some(w),
            _ => None,
        }
    }

    /// Returns `true` for `f32` and `f64`.
    pub fn is_float(&self) -> bool {
        matches!(*self.0, TypeKind::F32 | TypeKind::F64)
    }

    /// Returns `true` for the platform-width `index` type.
    pub fn is_index(&self) -> bool {
        matches!(*self.0, TypeKind::Index)
    }

    /// Returns `true` for `index` or any integer type.
    pub fn is_int_or_index(&self) -> bool {
        self.is_integer() || self.is_index()
    }

    /// Returns `true` for memref types.
    pub fn is_memref(&self) -> bool {
        matches!(*self.0, TypeKind::MemRef { .. })
    }

    /// Element type of a memref.
    pub fn memref_elem(&self) -> Option<Type> {
        match &*self.0 {
            TypeKind::MemRef { elem, .. } => Some(elem.clone()),
            _ => None,
        }
    }

    /// Shape of a memref (`-1` encodes a dynamic dimension, printed `?`).
    pub fn memref_shape(&self) -> Option<&[i64]> {
        match &*self.0 {
            TypeKind::MemRef { shape, .. } => Some(shape),
            _ => None,
        }
    }

    /// Inputs and results of a function type.
    pub fn function_signature(&self) -> Option<(&[Type], &[Type])> {
        match &*self.0 {
            TypeKind::Function { inputs, results } => Some((inputs, results)),
            _ => None,
        }
    }

    /// Downcast a dialect type to its concrete implementation.
    ///
    /// ```ignore
    /// let id_ty = ty.dialect_type::<IdType>().expect("not a !sycl.id");
    /// ```
    pub fn dialect_type<T: DialectTypeImpl>(&self) -> Option<&T> {
        match &*self.0 {
            TypeKind::Dialect(d) => d.0.as_any().downcast_ref::<T>(),
            _ => None,
        }
    }

    /// Returns the dialect type wrapper, if this is a dialect type.
    pub fn as_dialect(&self) -> Option<&DialectType> {
        match &*self.0 {
            TypeKind::Dialect(d) => Some(d),
            _ => None,
        }
    }
}

impl PartialEq for Type {
    fn eq(&self, other: &Type) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for Type {}

impl Hash for Type {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_usize(Arc::as_ptr(&self.0) as usize);
    }
}

impl fmt::Debug for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &*self.0 {
            TypeKind::Int(w) => write!(f, "i{w}"),
            TypeKind::Index => write!(f, "index"),
            TypeKind::F32 => write!(f, "f32"),
            TypeKind::F64 => write!(f, "f64"),
            TypeKind::None => write!(f, "none"),
            TypeKind::Ptr => write!(f, "ptr"),
            TypeKind::MemRef { elem, shape } => {
                write!(f, "memref<")?;
                for d in shape {
                    if *d < 0 {
                        write!(f, "?x")?;
                    } else {
                        write!(f, "{d}x")?;
                    }
                }
                write!(f, "{elem}>")
            }
            TypeKind::Function { inputs, results } => {
                write!(f, "(")?;
                for (i, t) in inputs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ") -> (")?;
                for (i, t) in results.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            TypeKind::Dialect(d) => write!(f, "{}", d.0.print()),
        }
    }
}

/// Structural description of a type; used as the interning key.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TypeKind {
    /// Signless integer of the given bit width (`i1`, `i8`, …, `i64`).
    Int(u32),
    /// Platform-width index type used for loop induction variables and
    /// memref subscripts.
    Index,
    /// 32-bit IEEE float.
    F32,
    /// 64-bit IEEE float.
    F64,
    /// The unit type.
    None,
    /// Opaque pointer, used by the `llvm` dialect for host code.
    Ptr,
    /// Multi-dimensional buffer view; `-1` in the shape is a dynamic extent.
    MemRef { elem: Type, shape: Vec<i64> },
    /// Function type.
    Function {
        inputs: Vec<Type>,
        results: Vec<Type>,
    },
    /// A type defined by a dialect outside this crate.
    Dialect(DialectType),
}

/// Type-erased wrapper around a dialect-defined type.
#[derive(Clone)]
pub struct DialectType(pub Arc<dyn DialectTypeImpl>);

impl DialectType {
    pub fn new<T: DialectTypeImpl>(imp: T) -> DialectType {
        DialectType(Arc::new(imp))
    }
}

impl PartialEq for DialectType {
    fn eq(&self, other: &DialectType) -> bool {
        self.0.eq_dyn(&*other.0)
    }
}

impl Eq for DialectType {}

impl Hash for DialectType {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash_code());
    }
}

impl fmt::Debug for DialectType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0.print())
    }
}

/// Implemented by concrete dialect types (e.g. the SYCL dialect's `id`,
/// `range`, `accessor` types). Instances must be immutable value objects:
/// `eq_dyn`/`hash_code` define structural identity used for interning. The
/// `Send + Sync` bound keeps [`Type`] handles shareable across the
/// simulator's worker threads.
pub trait DialectTypeImpl: fmt::Debug + Send + Sync + 'static {
    /// The owning dialect's namespace, e.g. `"sycl"`.
    fn dialect(&self) -> &'static str;
    /// The type's name within the dialect, e.g. `"id"`.
    fn type_name(&self) -> &'static str;
    /// Structural equality against another dialect type.
    fn eq_dyn(&self, other: &dyn DialectTypeImpl) -> bool;
    /// Structural hash, consistent with [`DialectTypeImpl::eq_dyn`].
    fn hash_code(&self) -> u64;
    /// Full textual form, e.g. `"!sycl.id<2>"`.
    fn print(&self) -> String;
    /// Downcasting support.
    fn as_any(&self) -> &dyn Any;
}

#[cfg(test)]
mod tests {
    use crate::Context;

    #[test]
    fn interning_gives_pointer_equality() {
        let ctx = Context::new();
        let a = ctx.memref_type(ctx.f32_type(), &[-1, 4]);
        let b = ctx.memref_type(ctx.f32_type(), &[-1, 4]);
        let c = ctx.memref_type(ctx.f64_type(), &[-1, 4]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn display_forms() {
        let ctx = Context::new();
        assert_eq!(ctx.i1_type().to_string(), "i1");
        assert_eq!(ctx.index_type().to_string(), "index");
        let m = ctx.memref_type(ctx.f32_type(), &[-1]);
        assert_eq!(m.to_string(), "memref<?xf32>");
        let m2 = ctx.memref_type(ctx.i64_type(), &[10]);
        assert_eq!(m2.to_string(), "memref<10xi64>");
        let f = ctx.function_type(&[ctx.i32_type()], &[ctx.f32_type()]);
        assert_eq!(f.to_string(), "(i32) -> (f32)");
    }

    #[test]
    fn accessors() {
        let ctx = Context::new();
        let m = ctx.memref_type(ctx.f32_type(), &[2, 3]);
        assert!(m.is_memref());
        assert_eq!(m.memref_elem().unwrap(), ctx.f32_type());
        assert_eq!(m.memref_shape().unwrap(), &[2, 3]);
        assert!(ctx.i32_type().is_int_or_index());
        assert!(ctx.index_type().is_int_or_index());
        assert!(!ctx.f32_type().is_int_or_index());
        assert_eq!(ctx.i32_type().int_width(), Some(32));
    }
}
