//! Arena-based IR storage: operations, regions, blocks and SSA values.
//!
//! A [`Module`] owns every IR entity of one compilation unit, addressed by
//! typed ids. The root is a `builtin.module` operation; host and device code
//! live side by side by nesting a second `builtin.module` inside it — the
//! joint host/device representation at the heart of the paper's compilation
//! flow (§IV, Fig. 1).
//!
//! Use-def chains are maintained incrementally: every [`ValueId`] knows its
//! uses, so queries like "is this loop-invariant" (LICM, §VI-A) and
//! `replace_all_uses` are cheap.

use crate::attrs::{AttrKey, Attribute};
use crate::context::Context;
use crate::dialect::{OpInfo, OpName};
use crate::types::Type;
use std::collections::HashMap;

/// Identifies an operation within a [`Module`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct OpId(pub u32);

/// Identifies a block within a [`Module`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Identifies a region within a [`Module`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RegionId(pub u32);

/// Identifies an SSA value (op result or block argument) within a [`Module`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ValueId(pub u32);

/// Where a value comes from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValueDef {
    OpResult { op: OpId, index: u32 },
    BlockArg { block: BlockId, index: u32 },
}

/// One use of a value: operand `index` of operation `op`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Use {
    pub op: OpId,
    pub index: u32,
}

/// Traversal control for [`Module::walk`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WalkControl {
    /// Continue into nested regions.
    Advance,
    /// Do not descend into this op's regions.
    Skip,
    /// Abort the walk.
    Interrupt,
}

struct OpData {
    name: OpName,
    operands: Vec<ValueId>,
    results: Vec<ValueId>,
    attrs: Vec<(AttrKey, Attribute)>,
    regions: Vec<RegionId>,
    parent: Option<BlockId>,
    erased: bool,
}

struct BlockData {
    args: Vec<ValueId>,
    ops: Vec<OpId>,
    region: RegionId,
    erased: bool,
}

struct RegionData {
    blocks: Vec<BlockId>,
    parent_op: OpId,
    erased: bool,
}

struct ValueData {
    ty: Type,
    def: ValueDef,
    uses: Vec<Use>,
    erased: bool,
}

/// Registers the `builtin` dialect (just `builtin.module`). Called by
/// [`Context::new`].
pub(crate) fn register_builtin(ctx: &Context) {
    use crate::dialect::traits;
    ctx.register_op(
        OpInfo::new("builtin.module").with_traits(traits::ISOLATED_FROM_ABOVE | traits::SYMBOL),
    );
}

/// Owner of all IR entities for one compilation unit.
///
/// Every module carries a process-unique [`Module::module_id`] and a
/// monotonically increasing [`Module::mutation_epoch`] bumped by every
/// mutating operation. Together they key caches of artifacts derived from
/// the IR (the simulator's cross-launch kernel-plan cache): a cached
/// artifact is valid exactly while the epoch it was built at is current.
///
/// ```
/// use sycl_mlir_ir::{Context, Module};
/// let ctx = Context::new();
/// let m = Module::new(&ctx);
/// assert_eq!(m.block_ops(m.top_block()).len(), 0);
/// ```
pub struct Module {
    ctx: Context,
    ops: Vec<OpData>,
    blocks: Vec<BlockData>,
    regions: Vec<RegionData>,
    values: Vec<ValueData>,
    top: OpId,
    id: u64,
    epoch: u64,
}

/// Source of process-unique module ids.
static NEXT_MODULE_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl std::fmt::Debug for Module {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", crate::printer::print_module(self))
    }
}

impl Module {
    /// Create an empty module: a root `builtin.module` with one region and
    /// one (empty) block.
    pub fn new(ctx: &Context) -> Module {
        let mut m = Module {
            ctx: ctx.clone(),
            ops: Vec::new(),
            blocks: Vec::new(),
            regions: Vec::new(),
            values: Vec::new(),
            top: OpId(0),
            id: NEXT_MODULE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            epoch: 0,
        };
        let name = ctx.op("builtin.module");
        let top = m.create_op(name, &[], &[], vec![]);
        let region = m.add_region(top);
        m.add_block(region, &[]);
        m.top = top;
        m
    }

    pub fn ctx(&self) -> &Context {
        &self.ctx
    }

    /// Process-unique identity of this module; never reused, so it can key
    /// caches that outlive any single module.
    pub fn module_id(&self) -> u64 {
        self.id
    }

    /// Monotonic counter bumped by every IR mutation (op/block/region
    /// creation, attachment, attribute and operand edits, erasure). Two
    /// reads returning the same epoch guarantee the IR did not change in
    /// between — the invalidation signal for derived-artifact caches.
    pub fn mutation_epoch(&self) -> u64 {
        self.epoch
    }

    /// Record an IR mutation. Called by every `&mut self` editing method;
    /// over-approximating (bumping for an edit that turns out to be a
    /// no-op) is fine, missing a real mutation is not.
    #[inline]
    fn bump_epoch(&mut self) {
        self.epoch += 1;
    }

    /// The root `builtin.module` operation.
    pub fn top(&self) -> OpId {
        self.top
    }

    /// The single block of the root module's region.
    pub fn top_block(&self) -> BlockId {
        self.regions[self.ops[self.top.0 as usize].regions[0].0 as usize].blocks[0]
    }

    // ------------------------------------------------------------------
    // Creation
    // ------------------------------------------------------------------

    /// Create a detached operation. Attach it with [`Module::append_op`] or
    /// [`Module::insert_op`].
    pub fn create_op(
        &mut self,
        name: OpName,
        operands: &[ValueId],
        result_types: &[Type],
        attrs: Vec<(String, Attribute)>,
    ) -> OpId {
        let interned = attrs
            .into_iter()
            .map(|(k, v)| (self.ctx.attr_key(&k), v))
            .collect();
        self.create_op_interned(name, operands, result_types, interned)
    }

    /// Like [`Module::create_op`] but with pre-interned attribute keys
    /// (e.g. when cloning or rebuilding an existing op's attributes).
    pub fn create_op_interned(
        &mut self,
        name: OpName,
        operands: &[ValueId],
        result_types: &[Type],
        attrs: Vec<(AttrKey, Attribute)>,
    ) -> OpId {
        self.bump_epoch();
        let op = OpId(self.ops.len() as u32);
        let mut results = Vec::with_capacity(result_types.len());
        for (i, ty) in result_types.iter().enumerate() {
            let v = ValueId(self.values.len() as u32);
            self.values.push(ValueData {
                ty: ty.clone(),
                def: ValueDef::OpResult {
                    op,
                    index: i as u32,
                },
                uses: Vec::new(),
                erased: false,
            });
            results.push(v);
        }
        self.ops.push(OpData {
            name,
            operands: operands.to_vec(),
            results,
            attrs,
            regions: Vec::new(),
            parent: None,
            erased: false,
        });
        for (i, &v) in operands.iter().enumerate() {
            self.values[v.0 as usize].uses.push(Use {
                op,
                index: i as u32,
            });
        }
        op
    }

    /// Add an (empty) region to an operation.
    pub fn add_region(&mut self, op: OpId) -> RegionId {
        self.bump_epoch();
        let region = RegionId(self.regions.len() as u32);
        self.regions.push(RegionData {
            blocks: Vec::new(),
            parent_op: op,
            erased: false,
        });
        self.ops[op.0 as usize].regions.push(region);
        region
    }

    /// Add a block with the given argument types to a region.
    pub fn add_block(&mut self, region: RegionId, arg_types: &[Type]) -> BlockId {
        self.bump_epoch();
        let block = BlockId(self.blocks.len() as u32);
        let mut args = Vec::with_capacity(arg_types.len());
        for (i, ty) in arg_types.iter().enumerate() {
            let v = ValueId(self.values.len() as u32);
            self.values.push(ValueData {
                ty: ty.clone(),
                def: ValueDef::BlockArg {
                    block,
                    index: i as u32,
                },
                uses: Vec::new(),
                erased: false,
            });
            args.push(v);
        }
        self.blocks.push(BlockData {
            args,
            ops: Vec::new(),
            region,
            erased: false,
        });
        self.regions[region.0 as usize].blocks.push(block);
        block
    }

    /// Append an extra argument to an existing block.
    pub fn add_block_arg(&mut self, block: BlockId, ty: Type) -> ValueId {
        self.bump_epoch();
        let index = self.blocks[block.0 as usize].args.len() as u32;
        let v = ValueId(self.values.len() as u32);
        self.values.push(ValueData {
            ty,
            def: ValueDef::BlockArg { block, index },
            uses: Vec::new(),
            erased: false,
        });
        self.blocks[block.0 as usize].args.push(v);
        v
    }

    /// Attach a detached op at the end of a block.
    pub fn append_op(&mut self, block: BlockId, op: OpId) {
        self.bump_epoch();
        debug_assert!(
            self.ops[op.0 as usize].parent.is_none(),
            "op already attached"
        );
        self.ops[op.0 as usize].parent = Some(block);
        self.blocks[block.0 as usize].ops.push(op);
    }

    /// Attach a detached op at position `index` of a block.
    pub fn insert_op(&mut self, block: BlockId, index: usize, op: OpId) {
        self.bump_epoch();
        debug_assert!(
            self.ops[op.0 as usize].parent.is_none(),
            "op already attached"
        );
        self.ops[op.0 as usize].parent = Some(block);
        self.blocks[block.0 as usize].ops.insert(index, op);
    }

    /// Detach an op from its parent block without erasing it.
    pub fn detach_op(&mut self, op: OpId) {
        self.bump_epoch();
        if let Some(block) = self.ops[op.0 as usize].parent.take() {
            let ops = &mut self.blocks[block.0 as usize].ops;
            if let Some(pos) = ops.iter().position(|&o| o == op) {
                ops.remove(pos);
            }
        }
    }

    /// Move an attached op so it sits immediately before `before` in the
    /// latter's block.
    pub fn move_op_before(&mut self, op: OpId, before: OpId) {
        self.detach_op(op);
        let block = self
            .op_parent_block(before)
            .expect("`before` must be attached");
        let index = self.op_index_in_block(before);
        self.insert_op(block, index, op);
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    pub fn op_name(&self, op: OpId) -> OpName {
        self.ops[op.0 as usize].name
    }

    /// Registered metadata for this op.
    pub fn op_info(&self, op: OpId) -> OpInfo {
        self.ctx.op_info(self.ops[op.0 as usize].name)
    }

    /// Full textual name, e.g. `"arith.addi"`.
    pub fn op_name_str(&self, op: OpId) -> std::sync::Arc<str> {
        self.ctx.op_name_str(self.ops[op.0 as usize].name)
    }

    /// `true` if the op's full name equals `name`.
    pub fn op_is(&self, op: OpId, name: &str) -> bool {
        &*self.op_name_str(op) == name
    }

    pub fn op_operands(&self, op: OpId) -> &[ValueId] {
        &self.ops[op.0 as usize].operands
    }

    pub fn op_operand(&self, op: OpId, index: usize) -> ValueId {
        self.ops[op.0 as usize].operands[index]
    }

    pub fn op_results(&self, op: OpId) -> &[ValueId] {
        &self.ops[op.0 as usize].results
    }

    /// The `index`-th result value.
    ///
    /// # Panics
    ///
    /// Panics if the op has fewer results.
    pub fn op_result(&self, op: OpId, index: usize) -> ValueId {
        self.ops[op.0 as usize].results[index]
    }

    /// The op's attributes under their interned keys; resolve names with
    /// [`Module::attr_key_str`].
    pub fn op_attrs(&self, op: OpId) -> &[(AttrKey, Attribute)] {
        &self.ops[op.0 as usize].attrs
    }

    pub fn attr<'a>(&'a self, op: OpId, key: &str) -> Option<&'a Attribute> {
        let key = self.ctx.lookup_attr_key(key)?;
        self.attr_by_id(op, key)
    }

    /// Attribute lookup by pre-interned key — integer compares only; the
    /// fast path for decode loops and passes that resolve keys once.
    pub fn attr_by_id(&self, op: OpId, key: AttrKey) -> Option<&Attribute> {
        self.ops[op.0 as usize]
            .attrs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v)
    }

    /// Textual name of an interned attribute key.
    pub fn attr_key_str(&self, key: AttrKey) -> std::sync::Arc<str> {
        self.ctx.attr_key_str(key)
    }

    pub fn set_attr(&mut self, op: OpId, key: &str, value: Attribute) {
        let key = self.ctx.attr_key(key);
        self.set_attr_by_id(op, key, value);
    }

    pub fn set_attr_by_id(&mut self, op: OpId, key: AttrKey, value: Attribute) {
        self.bump_epoch();
        let attrs = &mut self.ops[op.0 as usize].attrs;
        if let Some(slot) = attrs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            attrs.push((key, value));
        }
    }

    pub fn remove_attr(&mut self, op: OpId, key: &str) -> Option<Attribute> {
        let key = self.ctx.lookup_attr_key(key)?;
        let attrs = &mut self.ops[op.0 as usize].attrs;
        let pos = attrs.iter().position(|(k, _)| *k == key)?;
        let removed = attrs.remove(pos).1;
        self.bump_epoch();
        Some(removed)
    }

    pub fn op_regions(&self, op: OpId) -> &[RegionId] {
        &self.ops[op.0 as usize].regions
    }

    /// The single block of the op's `index`-th region.
    ///
    /// # Panics
    ///
    /// Panics if the region is missing or empty.
    pub fn op_region_block(&self, op: OpId, index: usize) -> BlockId {
        self.regions[self.ops[op.0 as usize].regions[index].0 as usize].blocks[0]
    }

    pub fn region_blocks(&self, region: RegionId) -> &[BlockId] {
        &self.regions[region.0 as usize].blocks
    }

    /// The single block of a region.
    pub fn region_block(&self, region: RegionId) -> BlockId {
        self.regions[region.0 as usize].blocks[0]
    }

    pub fn region_parent_op(&self, region: RegionId) -> OpId {
        self.regions[region.0 as usize].parent_op
    }

    pub fn block_ops(&self, block: BlockId) -> &[OpId] {
        &self.blocks[block.0 as usize].ops
    }

    pub fn block_args(&self, block: BlockId) -> &[ValueId] {
        &self.blocks[block.0 as usize].args
    }

    pub fn block_arg(&self, block: BlockId, index: usize) -> ValueId {
        self.blocks[block.0 as usize].args[index]
    }

    pub fn block_region(&self, block: BlockId) -> RegionId {
        self.blocks[block.0 as usize].region
    }

    /// The last op of a block (its terminator, in verified IR).
    pub fn block_terminator(&self, block: BlockId) -> Option<OpId> {
        self.blocks[block.0 as usize].ops.last().copied()
    }

    pub fn op_parent_block(&self, op: OpId) -> Option<BlockId> {
        self.ops[op.0 as usize].parent
    }

    /// The operation whose region contains this op.
    pub fn op_parent_op(&self, op: OpId) -> Option<OpId> {
        let block = self.ops[op.0 as usize].parent?;
        Some(self.regions[self.blocks[block.0 as usize].region.0 as usize].parent_op)
    }

    /// Position of an attached op within its block.
    ///
    /// # Panics
    ///
    /// Panics if the op is detached.
    pub fn op_index_in_block(&self, op: OpId) -> usize {
        let block = self.ops[op.0 as usize].parent.expect("op is detached");
        self.blocks[block.0 as usize]
            .ops
            .iter()
            .position(|&o| o == op)
            .expect("op not found in its parent block")
    }

    pub fn value_type(&self, v: ValueId) -> Type {
        self.values[v.0 as usize].ty.clone()
    }

    pub fn value_def(&self, v: ValueId) -> ValueDef {
        self.values[v.0 as usize].def
    }

    /// The op defining `v`, or `None` for block arguments.
    pub fn def_op(&self, v: ValueId) -> Option<OpId> {
        match self.values[v.0 as usize].def {
            ValueDef::OpResult { op, .. } => Some(op),
            ValueDef::BlockArg { .. } => None,
        }
    }

    /// Current uses of a value (cloned snapshot).
    pub fn value_uses(&self, v: ValueId) -> Vec<Use> {
        self.values[v.0 as usize].uses.clone()
    }

    pub fn value_has_uses(&self, v: ValueId) -> bool {
        !self.values[v.0 as usize].uses.is_empty()
    }

    pub fn value_is_erased(&self, v: ValueId) -> bool {
        self.values[v.0 as usize].erased
    }

    pub fn op_is_erased(&self, op: OpId) -> bool {
        self.ops[op.0 as usize].erased
    }

    /// Total number of (live) operations — a convenience for statistics.
    pub fn live_op_count(&self) -> usize {
        self.ops.iter().filter(|o| !o.erased).count()
    }

    /// Upper bound on `ValueId` indices (including erased slots); lets
    /// consumers build dense side tables.
    pub fn value_capacity(&self) -> usize {
        self.values.len()
    }

    /// Upper bound on `OpId` indices (including erased slots).
    pub fn op_capacity(&self) -> usize {
        self.ops.len()
    }

    // ------------------------------------------------------------------
    // Mutation
    // ------------------------------------------------------------------

    /// Replace operand `index` of `op`, maintaining use lists.
    pub fn set_operand(&mut self, op: OpId, index: usize, new: ValueId) {
        let old = self.ops[op.0 as usize].operands[index];
        if old == new {
            return;
        }
        self.bump_epoch();
        let uses = &mut self.values[old.0 as usize].uses;
        if let Some(pos) = uses
            .iter()
            .position(|u| u.op == op && u.index == index as u32)
        {
            uses.remove(pos);
        }
        self.ops[op.0 as usize].operands[index] = new;
        self.values[new.0 as usize].uses.push(Use {
            op,
            index: index as u32,
        });
    }

    /// Append an operand to `op`.
    pub fn push_operand(&mut self, op: OpId, v: ValueId) {
        self.bump_epoch();
        let index = self.ops[op.0 as usize].operands.len() as u32;
        self.ops[op.0 as usize].operands.push(v);
        self.values[v.0 as usize].uses.push(Use { op, index });
    }

    /// Remove operand `index` from `op`, shifting later operands down.
    pub fn erase_operand(&mut self, op: OpId, index: usize) {
        self.bump_epoch();
        let old = self.ops[op.0 as usize].operands.remove(index);
        let uses = &mut self.values[old.0 as usize].uses;
        if let Some(pos) = uses
            .iter()
            .position(|u| u.op == op && u.index == index as u32)
        {
            uses.remove(pos);
        }
        // Reindex the remaining uses of all shifted operands.
        for i in index..self.ops[op.0 as usize].operands.len() {
            let v = self.ops[op.0 as usize].operands[i];
            for u in &mut self.values[v.0 as usize].uses {
                if u.op == op && u.index == (i + 1) as u32 {
                    u.index = i as u32;
                    break;
                }
            }
        }
    }

    /// Rewrite every use of `old` to `new`.
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) {
        if old == new {
            return;
        }
        self.bump_epoch();
        let uses = std::mem::take(&mut self.values[old.0 as usize].uses);
        for u in &uses {
            self.ops[u.op.0 as usize].operands[u.index as usize] = new;
        }
        self.values[new.0 as usize].uses.extend(uses);
    }

    /// Erase an attached or detached op, recursively erasing nested regions.
    ///
    /// # Panics
    ///
    /// Panics if any result still has uses outside the erased subtree.
    pub fn erase_op(&mut self, op: OpId) {
        self.bump_epoch();
        self.detach_op(op);
        self.erase_op_inner(op);
    }

    fn erase_op_inner(&mut self, op: OpId) {
        // Erase nested ops bottom-up first.
        let regions = self.ops[op.0 as usize].regions.clone();
        for region in regions {
            let blocks = self.regions[region.0 as usize].blocks.clone();
            for block in blocks {
                let ops = std::mem::take(&mut self.blocks[block.0 as usize].ops);
                for inner in ops.into_iter().rev() {
                    self.ops[inner.0 as usize].parent = None;
                    self.erase_op_inner(inner);
                }
                for &arg in &self.blocks[block.0 as usize].args.clone() {
                    assert!(
                        self.values[arg.0 as usize].uses.is_empty(),
                        "erasing block with used arguments"
                    );
                    self.values[arg.0 as usize].erased = true;
                }
                self.blocks[block.0 as usize].erased = true;
            }
            self.regions[region.0 as usize].erased = true;
        }
        // Drop this op's operand uses.
        let operands = self.ops[op.0 as usize].operands.clone();
        for (i, v) in operands.into_iter().enumerate() {
            let uses = &mut self.values[v.0 as usize].uses;
            if let Some(pos) = uses.iter().position(|u| u.op == op && u.index == i as u32) {
                uses.remove(pos);
            }
        }
        for &r in &self.ops[op.0 as usize].results.clone() {
            assert!(
                self.values[r.0 as usize].uses.is_empty(),
                "erasing op `{}` whose result is still used",
                self.op_name_str(op)
            );
            self.values[r.0 as usize].erased = true;
        }
        self.ops[op.0 as usize].erased = true;
    }

    /// Replace an op with existing values: all uses of each result are
    /// rewritten to the corresponding value, then the op is erased.
    pub fn replace_op(&mut self, op: OpId, replacements: &[ValueId]) {
        let results = self.ops[op.0 as usize].results.clone();
        assert_eq!(
            results.len(),
            replacements.len(),
            "replacement arity mismatch"
        );
        for (r, n) in results.iter().zip(replacements) {
            self.replace_all_uses(*r, *n);
        }
        self.erase_op(op);
    }

    // ------------------------------------------------------------------
    // Cloning
    // ------------------------------------------------------------------

    /// Deep-clone `op` (with nested regions) as a new *detached* op.
    /// Operands are remapped through `mapping` (falling back to the original
    /// value); `mapping` is extended with result and block-arg equivalences.
    pub fn clone_op(&mut self, op: OpId, mapping: &mut HashMap<ValueId, ValueId>) -> OpId {
        let name = self.ops[op.0 as usize].name;
        let operands: Vec<ValueId> = self.ops[op.0 as usize]
            .operands
            .iter()
            .map(|v| *mapping.get(v).unwrap_or(v))
            .collect();
        let result_types: Vec<Type> = self.ops[op.0 as usize]
            .results
            .iter()
            .map(|&r| self.values[r.0 as usize].ty.clone())
            .collect();
        let attrs = self.ops[op.0 as usize].attrs.clone();
        let new_op = self.create_op_interned(name, &operands, &result_types, attrs);
        for i in 0..result_types.len() {
            let old_r = self.ops[op.0 as usize].results[i];
            let new_r = self.ops[new_op.0 as usize].results[i];
            mapping.insert(old_r, new_r);
        }
        let regions = self.ops[op.0 as usize].regions.clone();
        for region in regions {
            let new_region = self.add_region(new_op);
            let blocks = self.regions[region.0 as usize].blocks.clone();
            for block in blocks {
                let arg_types: Vec<Type> = self.blocks[block.0 as usize]
                    .args
                    .iter()
                    .map(|&a| self.values[a.0 as usize].ty.clone())
                    .collect();
                let new_block = self.add_block(new_region, &arg_types);
                for i in 0..arg_types.len() {
                    let old_a = self.blocks[block.0 as usize].args[i];
                    let new_a = self.blocks[new_block.0 as usize].args[i];
                    mapping.insert(old_a, new_a);
                }
                let inner_ops = self.blocks[block.0 as usize].ops.clone();
                for inner in inner_ops {
                    let new_inner = self.clone_op(inner, mapping);
                    self.append_op(new_block, new_inner);
                }
            }
        }
        new_op
    }

    // ------------------------------------------------------------------
    // Traversal
    // ------------------------------------------------------------------

    /// Pre-order walk of `root` and all nested ops.
    pub fn walk(&self, root: OpId, f: &mut dyn FnMut(OpId) -> WalkControl) -> WalkControl {
        match f(root) {
            WalkControl::Interrupt => return WalkControl::Interrupt,
            WalkControl::Skip => return WalkControl::Advance,
            WalkControl::Advance => {}
        }
        for &region in self.op_regions(root) {
            for &block in self.region_blocks(region) {
                for &op in self.block_ops(block) {
                    if self.walk(op, f) == WalkControl::Interrupt {
                        return WalkControl::Interrupt;
                    }
                }
            }
        }
        WalkControl::Advance
    }

    /// Collect all ops under `root` (pre-order, excluding `root` itself).
    pub fn nested_ops(&self, root: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        self.walk(root, &mut |op| {
            if op != root {
                out.push(op);
            }
            WalkControl::Advance
        });
        out
    }

    /// `true` if `ancestor` (an op) transitively contains `op`.
    pub fn is_ancestor(&self, ancestor: OpId, op: OpId) -> bool {
        let mut cur = Some(op);
        while let Some(c) = cur {
            if c == ancestor {
                return true;
            }
            cur = self.op_parent_op(c);
        }
        false
    }

    /// `true` if value `v` is defined outside the subtree rooted at `op`
    /// (i.e. its defining op/block is not contained in `op`).
    pub fn value_defined_outside(&self, v: ValueId, op: OpId) -> bool {
        match self.value_def(v) {
            ValueDef::OpResult { op: def, .. } => !self.is_ancestor(op, def),
            ValueDef::BlockArg { block, .. } => {
                let owner = self.regions[self.blocks[block.0 as usize].region.0 as usize].parent_op;
                !(owner == op || self.is_ancestor(op, owner))
            }
        }
    }

    // ------------------------------------------------------------------
    // Symbols
    // ------------------------------------------------------------------

    /// Symbol name of an op (its `sym_name` attribute).
    pub fn symbol_name(&self, op: OpId) -> Option<&str> {
        self.attr(op, "sym_name").and_then(|a| a.as_str())
    }

    /// Find a directly nested op with the given `sym_name` in `scope`'s
    /// first region.
    pub fn lookup_symbol(&self, scope: OpId, name: &str) -> Option<OpId> {
        let region = *self.op_regions(scope).first()?;
        for &block in self.region_blocks(region) {
            for &op in self.block_ops(block) {
                if self.symbol_name(op) == Some(name) {
                    return Some(op);
                }
            }
        }
        None
    }

    /// Resolve a possibly nested symbol path (e.g. `["device", "kernel"]`)
    /// starting at `scope`.
    pub fn lookup_symbol_path(&self, scope: OpId, path: &[String]) -> Option<OpId> {
        let mut cur = scope;
        for part in path {
            cur = self.lookup_symbol(cur, part)?;
        }
        Some(cur)
    }

    /// All `func.func` ops directly inside `scope` (a module op).
    pub fn funcs_in(&self, scope: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        if let Some(&region) = self.op_regions(scope).first() {
            for &block in self.region_blocks(region) {
                for &op in self.block_ops(block) {
                    if self.op_is(op, "func.func") {
                        out.push(op);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::OpInfo;

    fn test_ctx() -> Context {
        let ctx = Context::new();
        ctx.register_op(OpInfo::new("test.producer"));
        ctx.register_op(OpInfo::new("test.consumer"));
        ctx.register_op(OpInfo::new("test.region_op"));
        ctx
    }

    #[test]
    fn create_and_use_values() {
        let ctx = test_ctx();
        let mut m = Module::new(&ctx);
        let i32t = ctx.i32_type();
        let p = m.create_op(
            ctx.op("test.producer"),
            &[],
            std::slice::from_ref(&i32t),
            vec![],
        );
        let v = m.op_result(p, 0);
        let c = m.create_op(ctx.op("test.consumer"), &[v, v], &[], vec![]);
        let top = m.top_block();
        m.append_op(top, p);
        m.append_op(top, c);
        assert_eq!(m.value_uses(v).len(), 2);
        assert_eq!(m.op_operands(c), &[v, v]);
        assert_eq!(m.def_op(v), Some(p));
        assert_eq!(m.op_parent_op(c), Some(m.top()));
    }

    #[test]
    fn replace_all_uses_moves_use_list() {
        let ctx = test_ctx();
        let mut m = Module::new(&ctx);
        let i32t = ctx.i32_type();
        let p1 = m.create_op(
            ctx.op("test.producer"),
            &[],
            std::slice::from_ref(&i32t),
            vec![],
        );
        let p2 = m.create_op(
            ctx.op("test.producer"),
            &[],
            std::slice::from_ref(&i32t),
            vec![],
        );
        let v1 = m.op_result(p1, 0);
        let v2 = m.op_result(p2, 0);
        let c = m.create_op(ctx.op("test.consumer"), &[v1], &[], vec![]);
        let top = m.top_block();
        m.append_op(top, p1);
        m.append_op(top, p2);
        m.append_op(top, c);
        m.replace_all_uses(v1, v2);
        assert!(!m.value_has_uses(v1));
        assert_eq!(m.value_uses(v2).len(), 1);
        assert_eq!(m.op_operand(c, 0), v2);
    }

    #[test]
    fn erase_op_recursively() {
        let ctx = test_ctx();
        let mut m = Module::new(&ctx);
        let i32t = ctx.i32_type();
        let outer = m.create_op(ctx.op("test.region_op"), &[], &[], vec![]);
        let region = m.add_region(outer);
        let block = m.add_block(region, std::slice::from_ref(&i32t));
        let arg = m.block_arg(block, 0);
        let inner = m.create_op(ctx.op("test.consumer"), &[arg], &[], vec![]);
        m.append_op(block, inner);
        let top = m.top_block();
        m.append_op(top, outer);
        assert_eq!(m.live_op_count(), 3); // builtin.module + outer + inner
        m.erase_op(outer);
        assert_eq!(m.live_op_count(), 1);
        assert!(m.op_is_erased(outer));
        assert!(m.op_is_erased(inner));
        assert!(m.value_is_erased(arg));
    }

    #[test]
    #[should_panic(expected = "still used")]
    fn erase_used_op_panics() {
        let ctx = test_ctx();
        let mut m = Module::new(&ctx);
        let i32t = ctx.i32_type();
        let p = m.create_op(
            ctx.op("test.producer"),
            &[],
            std::slice::from_ref(&i32t),
            vec![],
        );
        let v = m.op_result(p, 0);
        let c = m.create_op(ctx.op("test.consumer"), &[v], &[], vec![]);
        let top = m.top_block();
        m.append_op(top, p);
        m.append_op(top, c);
        m.erase_op(p);
    }

    #[test]
    fn clone_op_remaps_nested_values() {
        let ctx = test_ctx();
        let mut m = Module::new(&ctx);
        let i32t = ctx.i32_type();
        let outer = m.create_op(ctx.op("test.region_op"), &[], &[], vec![]);
        let region = m.add_region(outer);
        let block = m.add_block(region, std::slice::from_ref(&i32t));
        let arg = m.block_arg(block, 0);
        let inner = m.create_op(ctx.op("test.consumer"), &[arg], &[], vec![]);
        m.append_op(block, inner);
        let top = m.top_block();
        m.append_op(top, outer);

        let mut mapping = HashMap::new();
        let cloned = m.clone_op(outer, &mut mapping);
        m.append_op(top, cloned);
        let cloned_block = m.op_region_block(cloned, 0);
        let cloned_arg = m.block_arg(cloned_block, 0);
        let cloned_inner = m.block_ops(cloned_block)[0];
        assert_ne!(cloned_inner, inner);
        assert_eq!(m.op_operand(cloned_inner, 0), cloned_arg);
        assert_eq!(mapping.get(&arg), Some(&cloned_arg));
    }

    #[test]
    fn erase_operand_reindexes_uses() {
        let ctx = test_ctx();
        let mut m = Module::new(&ctx);
        let i32t = ctx.i32_type();
        let p = m.create_op(
            ctx.op("test.producer"),
            &[],
            std::slice::from_ref(&i32t),
            vec![],
        );
        let q = m.create_op(
            ctx.op("test.producer"),
            &[],
            std::slice::from_ref(&i32t),
            vec![],
        );
        let v = m.op_result(p, 0);
        let w = m.op_result(q, 0);
        let c = m.create_op(ctx.op("test.consumer"), &[v, w], &[], vec![]);
        let top = m.top_block();
        m.append_op(top, p);
        m.append_op(top, q);
        m.append_op(top, c);
        m.erase_operand(c, 0);
        assert_eq!(m.op_operands(c), &[w]);
        assert!(!m.value_has_uses(v));
        let uses = m.value_uses(w);
        assert_eq!(uses.len(), 1);
        assert_eq!(uses[0].index, 0);
    }

    #[test]
    fn walk_orders_and_controls() {
        let ctx = test_ctx();
        let mut m = Module::new(&ctx);
        let outer = m.create_op(ctx.op("test.region_op"), &[], &[], vec![]);
        let region = m.add_region(outer);
        let block = m.add_block(region, &[]);
        let inner = m.create_op(ctx.op("test.producer"), &[], &[ctx.i32_type()], vec![]);
        m.append_op(block, inner);
        let top = m.top_block();
        m.append_op(top, outer);

        let mut seen = Vec::new();
        m.walk(m.top(), &mut |op| {
            seen.push(op);
            WalkControl::Advance
        });
        assert_eq!(seen, vec![m.top(), outer, inner]);

        let mut seen_skip = Vec::new();
        m.walk(m.top(), &mut |op| {
            seen_skip.push(op);
            if op == outer {
                WalkControl::Skip
            } else {
                WalkControl::Advance
            }
        });
        assert_eq!(seen_skip, vec![m.top(), outer]);
    }

    #[test]
    fn mutation_epoch_tracks_edits_and_module_ids_are_unique() {
        let ctx = test_ctx();
        let mut m = Module::new(&ctx);
        let m2 = Module::new(&ctx);
        assert_ne!(m.module_id(), m2.module_id());

        let e0 = m.mutation_epoch();
        let i32t = ctx.i32_type();
        let p = m.create_op(
            ctx.op("test.producer"),
            &[],
            std::slice::from_ref(&i32t),
            vec![],
        );
        let top = m.top_block();
        m.append_op(top, p);
        let e1 = m.mutation_epoch();
        assert!(e1 > e0, "creation and attachment must advance the epoch");

        // Pure reads leave the epoch unchanged.
        let _ = m.op_operands(p);
        let _ = m.value_type(m.op_result(p, 0));
        assert_eq!(m.mutation_epoch(), e1);

        m.set_attr(p, "note", Attribute::Int(1));
        let e2 = m.mutation_epoch();
        assert!(e2 > e1, "attribute edits must advance the epoch");
        m.erase_op(p);
        assert!(m.mutation_epoch() > e2, "erasure must advance the epoch");
    }

    #[test]
    fn value_defined_outside() {
        let ctx = test_ctx();
        let mut m = Module::new(&ctx);
        let i32t = ctx.i32_type();
        let p = m.create_op(
            ctx.op("test.producer"),
            &[],
            std::slice::from_ref(&i32t),
            vec![],
        );
        let outer = m.create_op(ctx.op("test.region_op"), &[], &[], vec![]);
        let region = m.add_region(outer);
        let block = m.add_block(region, std::slice::from_ref(&i32t));
        let arg = m.block_arg(block, 0);
        let v = m.op_result(p, 0);
        let inner = m.create_op(ctx.op("test.consumer"), &[v, arg], &[], vec![]);
        m.append_op(block, inner);
        let top = m.top_block();
        m.append_op(top, p);
        m.append_op(top, outer);
        assert!(m.value_defined_outside(v, outer));
        assert!(!m.value_defined_outside(arg, outer));
    }
}
