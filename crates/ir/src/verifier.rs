//! Structural IR verifier.
//!
//! Checks, for every operation in a module:
//!
//! * per-op invariants registered via [`crate::OpInfo::verify`];
//! * terminator placement — only the last op of a block may carry the
//!   `TERMINATOR` trait, and every region of a non-module op must end in one;
//! * SSA dominance (within the structured single-block-region discipline);
//! * the `ISOLATED_FROM_ABOVE` trait (no captured values).

use crate::dialect::traits;
use crate::module::{Module, OpId, ValueDef, WalkControl};
use std::fmt;

/// A verification failure, with one message per violation found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    pub messages: Vec<String>,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, msg) in self.messages.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "verifier: {msg}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// Verify the whole module. Returns all violations at once.
///
/// # Errors
///
/// Returns a [`VerifyError`] listing every violated invariant.
pub fn verify(m: &Module) -> Result<(), VerifyError> {
    let mut messages = Vec::new();
    m.walk(m.top(), &mut |op| {
        verify_op(m, op, &mut messages);
        WalkControl::Advance
    });
    if messages.is_empty() {
        Ok(())
    } else {
        Err(VerifyError { messages })
    }
}

fn verify_op(m: &Module, op: OpId, messages: &mut Vec<String>) {
    let info = m.op_info(op);
    let name = m.op_name_str(op);

    if let Some(f) = info.verify {
        if let Err(e) = f(m, op) {
            messages.push(format!("`{name}`: {e}"));
        }
    }

    // Terminator placement inside each region of this op.
    let is_module_like = &*name == "builtin.module";
    for (ri, &region) in m.op_regions(op).iter().enumerate() {
        let blocks = m.region_blocks(region);
        if blocks.len() != 1 {
            messages.push(format!(
                "`{name}`: region #{ri} must contain exactly one block (structured IR), found {}",
                blocks.len()
            ));
            continue;
        }
        let block = blocks[0];
        let ops = m.block_ops(block);
        for (i, &inner) in ops.iter().enumerate() {
            let inner_info = m.op_info(inner);
            if inner_info.has_trait(traits::TERMINATOR) && i + 1 != ops.len() {
                messages.push(format!(
                    "`{}` inside `{name}`: terminator is not the last operation of its block",
                    m.op_name_str(inner)
                ));
            }
        }
        if !is_module_like {
            match ops.last() {
                Some(&last) if m.op_info(last).has_trait(traits::TERMINATOR) => {}
                Some(&last) => messages.push(format!(
                    "`{name}`: region #{ri} does not end with a terminator (ends with `{}`)",
                    m.op_name_str(last)
                )),
                None => messages.push(format!("`{name}`: region #{ri} has an empty block")),
            }
        }
    }

    // Operand validity + dominance.
    for (i, &v) in m.op_operands(op).iter().enumerate() {
        if m.value_is_erased(v) {
            messages.push(format!("`{name}`: operand #{i} refers to an erased value"));
            continue;
        }
        if !value_dominates(m, v, op) {
            messages.push(format!(
                "`{name}`: operand #{i} is not dominated by its definition"
            ));
        }
    }

    // Isolation.
    if info.has_trait(traits::ISOLATED_FROM_ABOVE) {
        for inner in m.nested_ops(op) {
            for (i, &v) in m.op_operands(inner).iter().enumerate() {
                if m.value_defined_outside(v, op) {
                    messages.push(format!(
                        "`{}` inside isolated `{name}`: operand #{i} captures a value from above",
                        m.op_name_str(inner)
                    ));
                }
            }
        }
    }
}

/// Dominance in the structured regime: the definition must appear earlier in
/// the same block as `op` or in a block of a (transitive) ancestor op.
fn value_dominates(m: &Module, v: crate::ValueId, op: OpId) -> bool {
    match m.value_def(v) {
        ValueDef::BlockArg { block, .. } => {
            // A block argument dominates every op nested under its block.
            let mut cur = Some(op);
            while let Some(c) = cur {
                if m.op_parent_block(c) == Some(block) {
                    return true;
                }
                cur = m.op_parent_op(c);
            }
            false
        }
        ValueDef::OpResult { op: def_op, .. } => {
            let Some(def_block) = m.op_parent_block(def_op) else {
                return false; // detached definition
            };
            // Find the ancestor of `op` (possibly `op` itself) attached to
            // the definition's block; the def must come strictly before it.
            let mut cur = Some(op);
            while let Some(c) = cur {
                if c == def_op {
                    return false; // use nested inside its own definition
                }
                if m.op_parent_block(c) == Some(def_block) {
                    return m.op_index_in_block(def_op) < m.op_index_in_block(c);
                }
                cur = m.op_parent_op(c);
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::{traits, OpInfo};
    use crate::{Builder, Context, Module};

    fn ctx_with(names: &[(&str, u32)]) -> Context {
        let ctx = Context::new();
        for (n, t) in names {
            ctx.register_op(OpInfo::new(n).with_traits(*t));
        }
        ctx
    }

    #[test]
    fn empty_module_verifies() {
        let ctx = Context::new();
        let m = Module::new(&ctx);
        assert!(verify(&m).is_ok());
    }

    #[test]
    fn misplaced_terminator_rejected() {
        let ctx = ctx_with(&[("t.ret", traits::TERMINATOR), ("t.op", 0), ("t.wrap", 0)]);
        let mut m = Module::new(&ctx);
        let wrap = m.create_op(ctx.op("t.wrap"), &[], &[], vec![]);
        let region = m.add_region(wrap);
        let block = m.add_block(region, &[]);
        {
            let mut b = Builder::at_end(&mut m, block);
            b.build("t.ret", &[], &[], vec![]);
            b.build("t.op", &[], &[], vec![]);
        }
        let top = m.top_block();
        m.append_op(top, wrap);
        let err = verify(&m).unwrap_err();
        assert!(
            err.to_string().contains("terminator is not the last"),
            "{err}"
        );
    }

    #[test]
    fn missing_terminator_rejected() {
        let ctx = ctx_with(&[("t.op", 0), ("t.wrap", 0)]);
        let mut m = Module::new(&ctx);
        let wrap = m.create_op(ctx.op("t.wrap"), &[], &[], vec![]);
        let region = m.add_region(wrap);
        let block = m.add_block(region, &[]);
        {
            let mut b = Builder::at_end(&mut m, block);
            b.build("t.op", &[], &[], vec![]);
        }
        let top = m.top_block();
        m.append_op(top, wrap);
        let err = verify(&m).unwrap_err();
        assert!(
            err.to_string().contains("does not end with a terminator"),
            "{err}"
        );
    }

    #[test]
    fn use_before_def_rejected() {
        let ctx = ctx_with(&[("t.make", 0), ("t.use", 0)]);
        let mut m = Module::new(&ctx);
        let i32t = ctx.i32_type();
        let make = m.create_op(ctx.op("t.make"), &[], &[i32t], vec![]);
        let v = m.op_result(make, 0);
        let use_op = m.create_op(ctx.op("t.use"), &[v], &[], vec![]);
        let top = m.top_block();
        // use appears before def
        m.append_op(top, use_op);
        m.append_op(top, make);
        let err = verify(&m).unwrap_err();
        assert!(err.to_string().contains("not dominated"), "{err}");
    }

    #[test]
    fn isolation_violation_rejected() {
        let ctx = ctx_with(&[("t.make", 0), ("t.use", 0)]);
        let iso = {
            let info = OpInfo::new("t.iso").with_traits(traits::ISOLATED_FROM_ABOVE);
            ctx.register_op(info)
        };
        let mut m = Module::new(&ctx);
        let i32t = ctx.i32_type();
        let make = m.create_op(ctx.op("t.make"), &[], &[i32t], vec![]);
        let v = m.op_result(make, 0);
        let wrap = m.create_op(iso, &[], &[], vec![]);
        let region = m.add_region(wrap);
        let block = m.add_block(region, &[]);
        let use_op = m.create_op(ctx.op("t.use"), &[v], &[], vec![]);
        m.append_op(block, use_op);
        let top = m.top_block();
        m.append_op(top, make);
        m.append_op(top, wrap);
        let err = verify(&m).unwrap_err();
        assert!(
            err.to_string().contains("captures a value from above"),
            "{err}"
        );
    }
}
