//! # sycl-mlir-ir — an MLIR-like IR kernel in pure Rust
//!
//! This crate is the substrate for the SYCL-MLIR reproduction. It provides the
//! mechanisms the paper attributes to the MLIR framework (§II-B of the paper):
//!
//! * **Interned, extensible types** — built-in types plus dialect-defined
//!   types registered through the [`types::DialectTypeImpl`] trait, so the
//!   SYCL dialect can add `!sycl.id<2>` and friends without this crate
//!   knowing about SYCL.
//! * **Operations, regions, blocks and SSA values** stored in arena form in a
//!   [`module::Module`], with incrementally-maintained use lists.
//! * **A dialect registry** ([`dialect`]) where each operation carries traits
//!   (purity, terminator-ness, sources of non-uniformity, …), a verifier, a
//!   folder, and a *memory-effect interface* — the exact mechanism §V of the
//!   paper uses to let the reaching-definition and uniformity analyses reason
//!   about ops from any dialect.
//! * **Textual printer and parser** that round-trip the IR, mirroring MLIR's
//!   generic operation syntax.
//! * **Pass manager and greedy pattern-rewrite driver** underpinning the
//!   analyses and transformations of §V–§VII.
//!
//! The design intentionally favours a single *structured* control-flow world:
//! every region holds exactly one block and control flow is expressed through
//! `scf`/`affine` ops, matching all IR the paper shows.
//!
//! ```
//! use sycl_mlir_ir::{Context, Module};
//!
//! let ctx = Context::new();
//! let module = Module::new(&ctx);
//! assert!(sycl_mlir_ir::verify(&module).is_ok());
//! ```

pub mod affine;
pub mod attrs;
pub mod builder;
pub mod context;
pub mod dialect;
pub mod module;
pub mod parser;
pub mod pass;
pub mod pattern;
pub mod printer;
pub mod types;
pub mod verifier;

pub use affine::{AffineExpr, AffineMap};
pub use attrs::{AttrKey, Attribute};
pub use builder::Builder;
pub use context::{CommonKeys, Context};
pub use dialect::{traits, Dialect, Effect, EffectKind, FoldOut, OpInfo, OpName};
pub use module::{BlockId, Module, OpId, RegionId, Use, ValueDef, ValueId, WalkControl};
pub use parser::{parse_module, ParseError};
pub use pass::{Pass, PassManager, PassStats};
pub use pattern::{apply_patterns_greedily, RewritePattern};
pub use printer::{print_module, print_op};
pub use types::{DialectTypeImpl, Type, TypeKind};
pub use verifier::{verify, VerifyError};
