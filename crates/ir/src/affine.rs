//! Affine expressions and maps.
//!
//! The memory access analysis (§V-D of the paper) describes a SYCL memory
//! access by an *access matrix* and an *offset vector* over work-item ids and
//! loop induction variables. [`AffineExpr`] / [`AffineMap`] are the carrier
//! for those results and for loop bound reasoning in the tiling
//! infrastructure used by loop internalization (§VI-C).

use std::fmt;

/// A quasi-affine expression over dimension and symbol placeholders.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum AffineExpr {
    /// The `i`-th dimension (`d0`, `d1`, …).
    Dim(usize),
    /// The `i`-th symbol (`s0`, `s1`, …).
    Sym(usize),
    /// Integer constant.
    Const(i64),
    Add(Box<AffineExpr>, Box<AffineExpr>),
    Mul(Box<AffineExpr>, Box<AffineExpr>),
    Mod(Box<AffineExpr>, Box<AffineExpr>),
    FloorDiv(Box<AffineExpr>, Box<AffineExpr>),
}

impl std::ops::Add for AffineExpr {
    type Output = AffineExpr;

    fn add(self, rhs: AffineExpr) -> AffineExpr {
        AffineExpr::Add(Box::new(self), Box::new(rhs))
    }
}

impl std::ops::Mul for AffineExpr {
    type Output = AffineExpr;

    fn mul(self, rhs: AffineExpr) -> AffineExpr {
        AffineExpr::Mul(Box::new(self), Box::new(rhs))
    }
}

impl AffineExpr {
    /// Evaluate with concrete dimension and symbol values.
    ///
    /// # Panics
    ///
    /// Panics if a `Dim`/`Sym` index is out of range or on division by zero.
    pub fn eval(&self, dims: &[i64], syms: &[i64]) -> i64 {
        match self {
            AffineExpr::Dim(i) => dims[*i],
            AffineExpr::Sym(i) => syms[*i],
            AffineExpr::Const(c) => *c,
            AffineExpr::Add(a, b) => a.eval(dims, syms) + b.eval(dims, syms),
            AffineExpr::Mul(a, b) => a.eval(dims, syms) * b.eval(dims, syms),
            AffineExpr::Mod(a, b) => a.eval(dims, syms).rem_euclid(b.eval(dims, syms)),
            AffineExpr::FloorDiv(a, b) => a.eval(dims, syms).div_euclid(b.eval(dims, syms)),
        }
    }

    /// Decompose into linear form: coefficients for each of `num_dims`
    /// dimensions plus a constant, i.e. `c0*d0 + … + cN*dN + k`.
    ///
    /// Returns `None` if the expression is not linear in the dimensions
    /// (contains `mod`/`floordiv` or products of dimensions). Symbols are
    /// treated as non-constant and make the expression non-linear if they
    /// appear (the analyses in this project express everything over dims).
    pub fn as_linear(&self, num_dims: usize) -> Option<(Vec<i64>, i64)> {
        let mut coeffs = vec![0_i64; num_dims];
        let mut konst = 0_i64;
        self.accumulate_linear(num_dims, 1, &mut coeffs, &mut konst)?;
        Some((coeffs, konst))
    }

    fn accumulate_linear(
        &self,
        num_dims: usize,
        scale: i64,
        coeffs: &mut [i64],
        konst: &mut i64,
    ) -> Option<()> {
        match self {
            AffineExpr::Dim(i) => {
                if *i >= num_dims {
                    return None;
                }
                coeffs[*i] += scale;
                Some(())
            }
            AffineExpr::Sym(_) => None,
            AffineExpr::Const(c) => {
                *konst += scale * c;
                Some(())
            }
            AffineExpr::Add(a, b) => {
                a.accumulate_linear(num_dims, scale, coeffs, konst)?;
                b.accumulate_linear(num_dims, scale, coeffs, konst)
            }
            AffineExpr::Mul(a, b) => match (a.const_value(), b.const_value()) {
                (Some(ca), _) => b.accumulate_linear(num_dims, scale * ca, coeffs, konst),
                (_, Some(cb)) => a.accumulate_linear(num_dims, scale * cb, coeffs, konst),
                _ => None,
            },
            AffineExpr::Mod(..) | AffineExpr::FloorDiv(..) => None,
        }
    }

    /// Constant value if the expression is a constant.
    pub fn const_value(&self) -> Option<i64> {
        match self {
            AffineExpr::Const(c) => Some(*c),
            AffineExpr::Add(a, b) => Some(a.const_value()? + b.const_value()?),
            AffineExpr::Mul(a, b) => Some(a.const_value()? * b.const_value()?),
            AffineExpr::Mod(a, b) => Some(a.const_value()?.rem_euclid(b.const_value()?)),
            AffineExpr::FloorDiv(a, b) => Some(a.const_value()?.div_euclid(b.const_value()?)),
            _ => None,
        }
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffineExpr::Dim(i) => write!(f, "d{i}"),
            AffineExpr::Sym(i) => write!(f, "s{i}"),
            AffineExpr::Const(c) => write!(f, "{c}"),
            AffineExpr::Add(a, b) => write!(f, "({a} + {b})"),
            AffineExpr::Mul(a, b) => write!(f, "({a} * {b})"),
            AffineExpr::Mod(a, b) => write!(f, "({a} mod {b})"),
            AffineExpr::FloorDiv(a, b) => write!(f, "({a} floordiv {b})"),
        }
    }
}

/// A multi-result affine map `(d0, …) -> (e0, e1, …)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AffineMap {
    pub num_dims: usize,
    pub exprs: Vec<AffineExpr>,
}

impl AffineMap {
    pub fn new(num_dims: usize, exprs: Vec<AffineExpr>) -> AffineMap {
        AffineMap { num_dims, exprs }
    }

    /// Evaluate all results with concrete dimension values.
    pub fn eval(&self, dims: &[i64]) -> Vec<i64> {
        self.exprs.iter().map(|e| e.eval(dims, &[])).collect()
    }

    /// The access matrix and offset vector of §V-D: row `r`, column `c` is
    /// the coefficient of dimension `c` in result `r`; the offset vector is
    /// the constant part per row. `None` if any result is non-linear.
    pub fn as_matrix(&self) -> Option<(Vec<Vec<i64>>, Vec<i64>)> {
        let mut matrix = Vec::with_capacity(self.exprs.len());
        let mut offsets = Vec::with_capacity(self.exprs.len());
        for e in &self.exprs {
            let (coeffs, konst) = e.as_linear(self.num_dims)?;
            matrix.push(coeffs);
            offsets.push(konst);
        }
        Some((matrix, offsets))
    }
}

impl fmt::Display for AffineMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "affine_map<(")?;
        for i in 0..self.num_dims {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "d{i}")?;
        }
        write!(f, ") -> (")?;
        for (i, e) in self.exprs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")>")
    }
}

#[cfg(test)]
mod tests {
    use std::ops::{Add, Mul};

    use super::*;

    fn d(i: usize) -> AffineExpr {
        AffineExpr::Dim(i)
    }

    fn c(v: i64) -> AffineExpr {
        AffineExpr::Const(v)
    }

    #[test]
    fn eval_and_linear() {
        // 2*d0 + d1 + 3
        let e = d(0).mul(c(2)).add(d(1)).add(c(3));
        assert_eq!(e.eval(&[5, 7], &[]), 20);
        let (coeffs, k) = e.as_linear(2).unwrap();
        assert_eq!(coeffs, vec![2, 1]);
        assert_eq!(k, 3);
    }

    #[test]
    fn nonlinear_rejected() {
        let e = d(0).mul(d(1));
        assert!(e.as_linear(2).is_none());
        let m = AffineExpr::Mod(Box::new(d(0)), Box::new(c(4)));
        assert!(m.as_linear(1).is_none());
    }

    /// The exact matrix from §V-D of the paper, for Listing 3's access
    /// `[gid_x + 1, 2*i, 2*i + 2 + gid_y]` over dims (gid_x, gid_y, i).
    #[test]
    fn paper_listing3_matrix() {
        let map = AffineMap::new(
            3,
            vec![
                d(0).add(c(1)),
                d(2).mul(c(2)),
                d(2).mul(c(2)).add(c(2)).add(d(1)),
            ],
        );
        let (matrix, offsets) = map.as_matrix().unwrap();
        assert_eq!(matrix, vec![vec![1, 0, 0], vec![0, 0, 2], vec![0, 1, 2]]);
        assert_eq!(offsets, vec![1, 0, 2]);
    }

    #[test]
    fn map_display() {
        let map = AffineMap::new(2, vec![d(0).add(c(1)), d(1)]);
        assert_eq!(map.to_string(), "affine_map<(d0, d1) -> ((d0 + 1), d1)>");
        assert_eq!(map.eval(&[4, 9]), vec![5, 9]);
    }
}
