//! The [`Context`]: interner for types and the registry for dialects,
//! operations, type parsers and the constant materializer hook.

use crate::attrs::{AttrKey, Attribute};
use crate::dialect::{Dialect, OpInfo, OpName};
use crate::module::{BlockId, Module, ValueId};
use crate::types::{DialectType, DialectTypeImpl, Type, TypeKind};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Parses the `<body>` of a dialect type like `!sycl.id<2>`; receives the
/// type name (`"id"`) and the body text (`"2"`).
pub type TypeParserFn = fn(&Context, name: &str, body: &str) -> Option<Type>;

/// Materializes a constant op producing `attr` of the given type, inserting
/// it into `block` at `index`; returns the produced value. Registered by the
/// `arith` dialect and used by the folding driver.
pub type ConstantMaterializerFn =
    fn(&mut Module, block: BlockId, index: usize, attr: &Attribute, ty: &Type) -> Option<ValueId>;

struct ContextInner {
    types: RefCell<HashMap<TypeKind, Type>>,
    op_infos: RefCell<Vec<OpInfo>>,
    op_names: RefCell<HashMap<String, OpName>>,
    attr_keys: RefCell<HashMap<String, AttrKey>>,
    attr_key_names: RefCell<Vec<Arc<str>>>,
    dialects: RefCell<Vec<&'static str>>,
    type_parsers: RefCell<HashMap<String, TypeParserFn>>,
    materializer: RefCell<Option<ConstantMaterializerFn>>,
}

/// Pre-interned keys for the attributes every hot path touches. Obtained
/// from [`Context::common_keys`]; stable for the lifetime of the context.
#[derive(Clone, Copy, Debug)]
pub struct CommonKeys {
    /// `"value"` — constant payloads (`arith.constant`).
    pub value: AttrKey,
    /// `"predicate"` — `arith.cmpi`/`arith.cmpf` comparison kind.
    pub predicate: AttrKey,
    /// `"callee"` — `func.call` targets.
    pub callee: AttrKey,
    /// `"sym_name"` — symbol declarations.
    pub sym_name: AttrKey,
}

/// Shared, cheaply clonable compilation context.
///
/// All modules created against a context share its interned types and op
/// registry. Registering a dialect twice is idempotent.
///
/// The spine is an `Arc` so handles derived from the context (interned
/// [`Type`]s, op-name and attr-key strings) are `Send + Sync`; the context
/// itself stays single-threaded (`RefCell` registries) — IR construction
/// and transformation are not parallel, only decoded kernel plans are.
///
/// ```
/// use sycl_mlir_ir::Context;
/// let ctx = Context::new();
/// let t = ctx.memref_type(ctx.f32_type(), &[-1]);
/// assert_eq!(t.to_string(), "memref<?xf32>");
/// ```
#[derive(Clone)]
pub struct Context {
    inner: Arc<ContextInner>,
}

impl Default for Context {
    fn default() -> Context {
        Context::new()
    }
}

impl Context {
    /// Create a context with the `builtin` dialect pre-registered.
    pub fn new() -> Context {
        // The registries inside are still `RefCell` (IR construction and
        // transformation are single-threaded by design), so this `Arc`
        // buys no sharing yet — it is the groundwork for lock-based
        // registries and keeps the spine uniform with the `Send + Sync`
        // handles (interned types, name strings) derived from it.
        #[allow(clippy::arc_with_non_send_sync)]
        let ctx = Context {
            inner: Arc::new(ContextInner {
                types: RefCell::new(HashMap::new()),
                op_infos: RefCell::new(Vec::new()),
                op_names: RefCell::new(HashMap::new()),
                attr_keys: RefCell::new(HashMap::new()),
                attr_key_names: RefCell::new(Vec::new()),
                dialects: RefCell::new(Vec::new()),
                type_parsers: RefCell::new(HashMap::new()),
                materializer: RefCell::new(None),
            }),
        };
        // Pre-intern the hot attribute keys so `common_keys` ids are stable
        // regardless of which dialects get registered later.
        for key in ["value", "predicate", "callee", "sym_name"] {
            ctx.attr_key(key);
        }
        crate::module::register_builtin(&ctx);
        ctx
    }

    /// Intern an attribute key, returning its stable id.
    pub fn attr_key(&self, name: &str) -> AttrKey {
        if let Some(&k) = self.inner.attr_keys.borrow().get(name) {
            return k;
        }
        let mut names = self.inner.attr_key_names.borrow_mut();
        let k = AttrKey(names.len() as u32);
        names.push(Arc::from(name));
        self.inner
            .attr_keys
            .borrow_mut()
            .insert(name.to_string(), k);
        k
    }

    /// Look up an already-interned attribute key without interning it. An
    /// absent key means no op in any module of this context carries it.
    pub fn lookup_attr_key(&self, name: &str) -> Option<AttrKey> {
        self.inner.attr_keys.borrow().get(name).copied()
    }

    /// The textual name of an interned attribute key.
    pub fn attr_key_str(&self, key: AttrKey) -> Arc<str> {
        self.inner.attr_key_names.borrow()[key.0 as usize].clone()
    }

    /// Pre-interned ids of the most frequently accessed attribute keys.
    pub fn common_keys(&self) -> CommonKeys {
        CommonKeys {
            value: self.attr_key("value"),
            predicate: self.attr_key("predicate"),
            callee: self.attr_key("callee"),
            sym_name: self.attr_key("sym_name"),
        }
    }

    /// Intern a type; structurally equal kinds yield pointer-equal types.
    pub fn intern_type(&self, kind: TypeKind) -> Type {
        if let Some(t) = self.inner.types.borrow().get(&kind) {
            return t.clone();
        }
        let t = Type::from_kind(kind.clone());
        self.inner.types.borrow_mut().insert(kind, t.clone());
        t
    }

    pub fn i1_type(&self) -> Type {
        self.intern_type(TypeKind::Int(1))
    }

    pub fn i8_type(&self) -> Type {
        self.intern_type(TypeKind::Int(8))
    }

    pub fn i16_type(&self) -> Type {
        self.intern_type(TypeKind::Int(16))
    }

    pub fn i32_type(&self) -> Type {
        self.intern_type(TypeKind::Int(32))
    }

    pub fn i64_type(&self) -> Type {
        self.intern_type(TypeKind::Int(64))
    }

    pub fn int_type(&self, width: u32) -> Type {
        self.intern_type(TypeKind::Int(width))
    }

    pub fn index_type(&self) -> Type {
        self.intern_type(TypeKind::Index)
    }

    pub fn f32_type(&self) -> Type {
        self.intern_type(TypeKind::F32)
    }

    pub fn f64_type(&self) -> Type {
        self.intern_type(TypeKind::F64)
    }

    pub fn none_type(&self) -> Type {
        self.intern_type(TypeKind::None)
    }

    pub fn ptr_type(&self) -> Type {
        self.intern_type(TypeKind::Ptr)
    }

    /// `memref<shape x elem>`; `-1` in `shape` is a dynamic dimension.
    pub fn memref_type(&self, elem: Type, shape: &[i64]) -> Type {
        self.intern_type(TypeKind::MemRef {
            elem,
            shape: shape.to_vec(),
        })
    }

    pub fn function_type(&self, inputs: &[Type], results: &[Type]) -> Type {
        self.intern_type(TypeKind::Function {
            inputs: inputs.to_vec(),
            results: results.to_vec(),
        })
    }

    /// Intern a dialect-defined type.
    pub fn dialect_type<T: DialectTypeImpl>(&self, imp: T) -> Type {
        self.intern_type(TypeKind::Dialect(DialectType::new(imp)))
    }

    /// Register an operation. Re-registering the same name returns the
    /// existing [`OpName`] (the new info is ignored), making dialect
    /// registration idempotent.
    pub fn register_op(&self, info: OpInfo) -> OpName {
        let key = info.name.to_string();
        if let Some(existing) = self.inner.op_names.borrow().get(&key) {
            return *existing;
        }
        let mut infos = self.inner.op_infos.borrow_mut();
        let name = OpName(infos.len() as u32);
        infos.push(info);
        self.inner.op_names.borrow_mut().insert(key, name);
        name
    }

    /// Look up a registered operation by full name (e.g. `"arith.addi"`).
    pub fn lookup_op(&self, full_name: &str) -> Option<OpName> {
        self.inner.op_names.borrow().get(full_name).copied()
    }

    /// Like [`Context::lookup_op`] but panics with a helpful message; use
    /// when the dialect is known to be registered.
    ///
    /// # Panics
    ///
    /// Panics if the op was never registered.
    pub fn op(&self, full_name: &str) -> OpName {
        self.lookup_op(full_name).unwrap_or_else(|| {
            panic!("operation `{full_name}` is not registered; did you register its dialect?")
        })
    }

    /// Registered metadata for an op name.
    pub fn op_info(&self, name: OpName) -> OpInfo {
        self.inner.op_infos.borrow()[name.0 as usize].clone()
    }

    /// Full textual name for an op.
    pub fn op_name_str(&self, name: OpName) -> Arc<str> {
        self.inner.op_infos.borrow()[name.0 as usize].name.clone()
    }

    /// Register a dialect (idempotent).
    pub fn register_dialect(&self, dialect: &dyn Dialect) {
        if self.inner.dialects.borrow().contains(&dialect.name()) {
            return;
        }
        self.inner.dialects.borrow_mut().push(dialect.name());
        dialect.register(self);
    }

    /// Names of all registered dialects.
    pub fn registered_dialects(&self) -> Vec<&'static str> {
        self.inner.dialects.borrow().clone()
    }

    /// Register the parser hook for `!<dialect>.<name><body?>` types.
    pub fn register_type_parser(&self, dialect: &str, parser: TypeParserFn) {
        self.inner
            .type_parsers
            .borrow_mut()
            .insert(dialect.to_string(), parser);
    }

    pub(crate) fn type_parser(&self, dialect: &str) -> Option<TypeParserFn> {
        self.inner.type_parsers.borrow().get(dialect).copied()
    }

    /// Register the constant materializer (normally done by the `arith`
    /// dialect).
    pub fn register_constant_materializer(&self, f: ConstantMaterializerFn) {
        *self.inner.materializer.borrow_mut() = Some(f);
    }

    pub fn constant_materializer(&self) -> Option<ConstantMaterializerFn> {
        *self.inner.materializer.borrow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::traits;

    #[test]
    fn op_registration_is_idempotent() {
        let ctx = Context::new();
        let a = ctx.register_op(OpInfo::new("test.op").with_traits(traits::PURE));
        let b = ctx.register_op(OpInfo::new("test.op"));
        assert_eq!(a, b);
        assert!(ctx.op_info(a).has_trait(traits::PURE));
        assert_eq!(&*ctx.op_name_str(a), "test.op");
    }

    #[test]
    fn lookup_missing_op() {
        let ctx = Context::new();
        assert!(ctx.lookup_op("nope.nope").is_none());
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn op_panics_on_missing() {
        let ctx = Context::new();
        let _ = ctx.op("ghost.op");
    }
}
