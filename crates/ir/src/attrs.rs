//! Attributes: compile-time constant data attached to operations.
//!
//! Unlike types, attributes are stored by value on operations (they are small
//! and rarely shared), matching how this reproduction uses them: constants,
//! symbol names, dense data for host-propagated arrays, and affine maps from
//! the memory access analysis.

use crate::affine::AffineMap;
use crate::types::Type;
use std::fmt;

/// Interned attribute key; index into the context's key table.
///
/// Operations store their attributes under interned keys, so hot paths (the
/// simulator's decode stage, CSE, folding) can look attributes up with an
/// integer compare instead of a string scan. Resolve a key once with
/// [`crate::Context::attr_key`] and reuse it via
/// [`crate::Module::attr_by_id`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct AttrKey(pub u32);

/// A compile-time constant value attached to an operation.
#[derive(Clone, PartialEq, Debug)]
pub enum Attribute {
    /// Presence-only marker.
    Unit,
    /// Boolean.
    Bool(bool),
    /// Signless integer constant (also used for `index`).
    Int(i64),
    /// Floating-point constant (stored as `f64`; `f32` constants round-trip).
    Float(f64),
    /// String.
    Str(String),
    /// A type as payload (e.g. `function_type` on `func.func`).
    Type(Type),
    /// Heterogeneous array.
    Array(Vec<Attribute>),
    /// Dense integer data (e.g. constant ND-ranges).
    DenseI64(Vec<i64>),
    /// Dense floating-point data (e.g. a host-propagated filter array).
    DenseF64(Vec<f64>),
    /// Possibly-nested symbol reference, e.g. `@device::@kernel`.
    SymbolRef(Vec<String>),
    /// An affine map (used by analysis results and tiling metadata).
    AffineMap(AffineMap),
}

impl Attribute {
    /// Convenience constructor for a single-level symbol reference.
    pub fn symbol(name: impl Into<String>) -> Attribute {
        Attribute::SymbolRef(vec![name.into()])
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attribute::Int(v) => Some(*v),
            Attribute::Bool(b) => Some(*b as i64),
            _ => None,
        }
    }

    pub fn as_float(&self) -> Option<f64> {
        match self {
            Attribute::Float(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Attribute::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attribute::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_type(&self) -> Option<&Type> {
        match self {
            Attribute::Type(t) => Some(t),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Attribute]> {
        match self {
            Attribute::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_dense_i64(&self) -> Option<&[i64]> {
        match self {
            Attribute::DenseI64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_dense_f64(&self) -> Option<&[f64]> {
        match self {
            Attribute::DenseF64(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_symbol_ref(&self) -> Option<&[String]> {
        match self {
            Attribute::SymbolRef(path) => Some(path),
            _ => None,
        }
    }

    pub fn as_affine_map(&self) -> Option<&AffineMap> {
        match self {
            Attribute::AffineMap(m) => Some(m),
            _ => None,
        }
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attribute::Unit => write!(f, "unit"),
            Attribute::Bool(b) => write!(f, "{b}"),
            Attribute::Int(v) => write!(f, "{v}"),
            Attribute::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
            Attribute::Str(s) => write!(f, "{s:?}"),
            Attribute::Type(t) => write!(f, "{t}"),
            Attribute::Array(items) => {
                write!(f, "[")?;
                for (i, a) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "]")
            }
            Attribute::DenseI64(v) => {
                write!(f, "densei64<")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ">")
            }
            Attribute::DenseF64(v) => {
                write!(f, "densef64<")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                        write!(f, "{x:.1}")?;
                    } else {
                        write!(f, "{x}")?;
                    }
                }
                write!(f, ">")
            }
            Attribute::SymbolRef(path) => {
                for (i, p) in path.iter().enumerate() {
                    if i > 0 {
                        write!(f, "::")?;
                    }
                    write!(f, "@{p}")?;
                }
                Ok(())
            }
            Attribute::AffineMap(m) => write!(f, "{m}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrips_basics() {
        assert_eq!(Attribute::Int(42).to_string(), "42");
        assert_eq!(Attribute::Float(2.0).to_string(), "2.0");
        assert_eq!(Attribute::Float(2.5).to_string(), "2.5");
        assert_eq!(Attribute::Bool(true).to_string(), "true");
        assert_eq!(Attribute::Str("hi".into()).to_string(), "\"hi\"");
        assert_eq!(
            Attribute::SymbolRef(vec!["device".into(), "k".into()]).to_string(),
            "@device::@k"
        );
        assert_eq!(
            Attribute::DenseI64(vec![1, 2]).to_string(),
            "densei64<1, 2>"
        );
    }

    #[test]
    fn accessors() {
        assert_eq!(Attribute::Int(7).as_int(), Some(7));
        assert_eq!(Attribute::Bool(true).as_int(), Some(1));
        assert_eq!(Attribute::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Attribute::Str("x".into()).as_str(), Some("x"));
        assert!(Attribute::Unit.as_int().is_none());
        let arr = Attribute::Array(vec![Attribute::Int(1)]);
        assert_eq!(arr.as_array().unwrap().len(), 1);
    }
}
