//! [`Builder`]: cursor-style op insertion.

use crate::attrs::Attribute;
use crate::context::Context;
use crate::dialect::OpName;
use crate::module::{BlockId, Module, OpId, ValueId};
use crate::types::Type;

/// An insertion cursor into a block of a [`Module`].
///
/// The builder owns a mutable borrow of the module; create ops through it and
/// they are inserted at the cursor, which advances past each new op.
///
/// ```
/// use sycl_mlir_ir::{Builder, Context, Module, OpInfo};
/// let ctx = Context::new();
/// ctx.register_op(OpInfo::new("test.thing"));
/// let mut m = Module::new(&ctx);
/// let block = m.top_block();
/// let mut b = Builder::at_end(&mut m, block);
/// let op = b.build("test.thing", &[], &[], vec![]);
/// assert_eq!(m.block_ops(block), &[op]);
/// ```
pub struct Builder<'m> {
    module: &'m mut Module,
    block: BlockId,
    index: usize,
}

impl<'m> Builder<'m> {
    /// Position the cursor at the end of `block`.
    pub fn at_end(module: &'m mut Module, block: BlockId) -> Builder<'m> {
        let index = module.block_ops(block).len();
        Builder {
            module,
            block,
            index,
        }
    }

    /// Position the cursor at `index` within `block`.
    pub fn at(module: &'m mut Module, block: BlockId, index: usize) -> Builder<'m> {
        Builder {
            module,
            block,
            index,
        }
    }

    /// Position the cursor immediately before `op`.
    pub fn before(module: &'m mut Module, op: OpId) -> Builder<'m> {
        let block = module.op_parent_block(op).expect("op must be attached");
        let index = module.op_index_in_block(op);
        Builder {
            module,
            block,
            index,
        }
    }

    pub fn module(&mut self) -> &mut Module {
        self.module
    }

    pub fn ctx(&self) -> Context {
        self.module.ctx().clone()
    }

    pub fn block(&self) -> BlockId {
        self.block
    }

    pub fn index(&self) -> usize {
        self.index
    }

    /// Move the cursor to the end of another block.
    pub fn set_insertion_end(&mut self, block: BlockId) {
        self.index = self.module.block_ops(block).len();
        self.block = block;
    }

    /// Create an op by registered [`OpName`] and insert it at the cursor.
    pub fn build_named(
        &mut self,
        name: OpName,
        operands: &[ValueId],
        result_types: &[Type],
        attrs: Vec<(String, Attribute)>,
    ) -> OpId {
        let op = self.module.create_op(name, operands, result_types, attrs);
        self.module.insert_op(self.block, self.index, op);
        self.index += 1;
        op
    }

    /// Create an op by full name string and insert it at the cursor.
    ///
    /// # Panics
    ///
    /// Panics if the op name is not registered.
    pub fn build(
        &mut self,
        name: &str,
        operands: &[ValueId],
        result_types: &[Type],
        attrs: Vec<(String, Attribute)>,
    ) -> OpId {
        let name = self.module.ctx().op(name);
        self.build_named(name, operands, result_types, attrs)
    }

    /// Build and return the op's only result.
    ///
    /// # Panics
    ///
    /// Panics if the op does not produce exactly one result.
    pub fn build_value(
        &mut self,
        name: &str,
        operands: &[ValueId],
        result_type: Type,
        attrs: Vec<(String, Attribute)>,
    ) -> ValueId {
        let op = self.build(name, operands, &[result_type], attrs);
        self.module.op_result(op, 0)
    }

    /// Insert an already-created (detached) op at the cursor.
    pub fn insert(&mut self, op: OpId) {
        self.module.insert_op(self.block, self.index, op);
        self.index += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dialect::OpInfo;

    #[test]
    fn cursor_advances() {
        let ctx = Context::new();
        ctx.register_op(OpInfo::new("t.a"));
        ctx.register_op(OpInfo::new("t.b"));
        let mut m = Module::new(&ctx);
        let block = m.top_block();
        let mut b = Builder::at_end(&mut m, block);
        let a = b.build("t.a", &[], &[], vec![]);
        let bb = b.build("t.b", &[], &[], vec![]);
        assert_eq!(m.block_ops(block), &[a, bb]);
    }

    #[test]
    fn before_inserts_in_front() {
        let ctx = Context::new();
        ctx.register_op(OpInfo::new("t.a"));
        ctx.register_op(OpInfo::new("t.b"));
        let mut m = Module::new(&ctx);
        let block = m.top_block();
        let a = {
            let mut b = Builder::at_end(&mut m, block);
            b.build("t.a", &[], &[], vec![])
        };
        let inserted = {
            let mut b = Builder::before(&mut m, a);
            b.build("t.b", &[], &[], vec![])
        };
        assert_eq!(m.block_ops(block), &[inserted, a]);
    }
}
