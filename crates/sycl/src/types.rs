//! SYCL dialect types (§III of the paper): the classes `id`, `range`,
//! `item`, `nd_item`, `nd_range`, `group`, `accessor` and `buffer` modelled
//! as MLIR types.

use std::any::Any;
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use sycl_mlir_ir::parser::parse_type as parse_type_str;
use sycl_mlir_ir::{Context, DialectTypeImpl, Type};

/// Accessor access mode (encoded in the C++ type via template parameters,
/// §II-A).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessMode {
    Read,
    Write,
    ReadWrite,
}

impl AccessMode {
    pub fn as_str(self) -> &'static str {
        match self {
            AccessMode::Read => "read",
            AccessMode::Write => "write",
            AccessMode::ReadWrite => "read_write",
        }
    }

    pub fn parse(s: &str) -> Option<AccessMode> {
        match s {
            "read" => Some(AccessMode::Read),
            "write" => Some(AccessMode::Write),
            "read_write" => Some(AccessMode::ReadWrite),
            _ => None,
        }
    }

    /// `true` if the mode permits reading.
    pub fn can_read(self) -> bool {
        !matches!(self, AccessMode::Write)
    }

    /// `true` if the mode permits writing.
    pub fn can_write(self) -> bool {
        !matches!(self, AccessMode::Read)
    }
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Accessor target memory: global device memory or work-group local memory
/// (the memory hierarchy of §II-A).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Target {
    Global,
    Local,
}

impl Target {
    pub fn as_str(self) -> &'static str {
        match self {
            Target::Global => "global",
            Target::Local => "local",
        }
    }

    pub fn parse(s: &str) -> Option<Target> {
        match s {
            "global" => Some(Target::Global),
            "local" => Some(Target::Local),
            _ => None,
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

macro_rules! impl_dialect_type {
    ($ty:ty, $name:literal) => {
        impl DialectTypeImpl for $ty {
            fn dialect(&self) -> &'static str {
                "sycl"
            }

            fn type_name(&self) -> &'static str {
                $name
            }

            fn eq_dyn(&self, other: &dyn DialectTypeImpl) -> bool {
                other.as_any().downcast_ref::<$ty>() == Some(self)
            }

            fn hash_code(&self) -> u64 {
                let mut h = DefaultHasher::new();
                $name.hash(&mut h);
                self.hash(&mut h);
                h.finish()
            }

            fn print(&self) -> String {
                self.print_impl()
            }

            fn as_any(&self) -> &dyn Any {
                self
            }
        }
    };
}

macro_rules! dim_only_type {
    ($(#[$doc:meta])* $ty:ident, $name:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
        pub struct $ty {
            pub dim: u32,
        }

        impl $ty {
            fn print_impl(&self) -> String {
                format!(concat!("!sycl.", $name, "<{}>"), self.dim)
            }
        }

        impl_dialect_type!($ty, $name);
    };
}

dim_only_type!(
    /// `!sycl.id<n>` — a point in an n-dimensional index space.
    IdType, "id");
dim_only_type!(
    /// `!sycl.range<n>` — extents of an n-dimensional index space.
    RangeType, "range");
dim_only_type!(
    /// `!sycl.item<n>` — work-item handle for `parallel_for(range)`.
    ItemType, "item");
dim_only_type!(
    /// `!sycl.nd_item<n>` — work-item handle for `parallel_for(nd_range)`.
    NdItemType, "nd_item");
dim_only_type!(
    /// `!sycl.nd_range<n>` — global range subdivided into work-groups.
    NdRangeType, "nd_range");
dim_only_type!(
    /// `!sycl.group<n>` — the work-group of a work-item.
    GroupType, "group");

/// `!sycl.accessor<elem, n, mode, target>` — the paper's central device-side
/// memory abstraction (§II-A, §III).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AccessorType {
    pub elem: Type,
    pub dim: u32,
    pub mode: AccessMode,
    pub target: Target,
}

impl AccessorType {
    fn print_impl(&self) -> String {
        format!(
            "!sycl.accessor<{}, {}, {}, {}>",
            self.elem, self.dim, self.mode, self.target
        )
    }
}

impl_dialect_type!(AccessorType, "accessor");

/// `!sycl.buffer<elem, n>` — host-side buffer handle (used as the `type`
/// attribute of `sycl.host.constructor`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct BufferType {
    pub elem: Type,
    pub dim: u32,
}

impl BufferType {
    fn print_impl(&self) -> String {
        format!("!sycl.buffer<{}, {}>", self.elem, self.dim)
    }
}

impl_dialect_type!(BufferType, "buffer");

// ----------------------------------------------------------------------
// Constructors
// ----------------------------------------------------------------------

pub fn id_type(ctx: &Context, dim: u32) -> Type {
    ctx.dialect_type(IdType { dim })
}

pub fn range_type(ctx: &Context, dim: u32) -> Type {
    ctx.dialect_type(RangeType { dim })
}

pub fn item_type(ctx: &Context, dim: u32) -> Type {
    ctx.dialect_type(ItemType { dim })
}

pub fn nd_item_type(ctx: &Context, dim: u32) -> Type {
    ctx.dialect_type(NdItemType { dim })
}

pub fn nd_range_type(ctx: &Context, dim: u32) -> Type {
    ctx.dialect_type(NdRangeType { dim })
}

pub fn group_type(ctx: &Context, dim: u32) -> Type {
    ctx.dialect_type(GroupType { dim })
}

pub fn accessor_type(
    ctx: &Context,
    elem: Type,
    dim: u32,
    mode: AccessMode,
    target: Target,
) -> Type {
    ctx.dialect_type(AccessorType {
        elem,
        dim,
        mode,
        target,
    })
}

pub fn buffer_type(ctx: &Context, elem: Type, dim: u32) -> Type {
    ctx.dialect_type(BufferType { elem, dim })
}

// ----------------------------------------------------------------------
// Inspection
// ----------------------------------------------------------------------

/// Accessor description, if `ty` is an accessor type.
pub fn accessor_info(ty: &Type) -> Option<&AccessorType> {
    ty.dialect_type::<AccessorType>()
}

/// Dimensionality of any dim-parameterised SYCL type (`id`, `range`, `item`,
/// `nd_item`, `nd_range`, `group`, `accessor`, `buffer`).
pub fn sycl_dim(ty: &Type) -> Option<u32> {
    if let Some(t) = ty.dialect_type::<IdType>() {
        return Some(t.dim);
    }
    if let Some(t) = ty.dialect_type::<RangeType>() {
        return Some(t.dim);
    }
    if let Some(t) = ty.dialect_type::<ItemType>() {
        return Some(t.dim);
    }
    if let Some(t) = ty.dialect_type::<NdItemType>() {
        return Some(t.dim);
    }
    if let Some(t) = ty.dialect_type::<NdRangeType>() {
        return Some(t.dim);
    }
    if let Some(t) = ty.dialect_type::<GroupType>() {
        return Some(t.dim);
    }
    if let Some(t) = ty.dialect_type::<AccessorType>() {
        return Some(t.dim);
    }
    if let Some(t) = ty.dialect_type::<BufferType>() {
        return Some(t.dim);
    }
    None
}

/// `true` if the type is `!sycl.item<n>` or `!sycl.nd_item<n>` — the types a
/// kernel's trailing index parameter may have (§II-A).
pub fn is_item_like(ty: &Type) -> bool {
    ty.dialect_type::<ItemType>().is_some() || ty.dialect_type::<NdItemType>().is_some()
}

// ----------------------------------------------------------------------
// Parsing
// ----------------------------------------------------------------------

/// Register the `!sycl.*` type parser with the context.
pub fn register_type_parser(ctx: &Context) {
    ctx.register_type_parser("sycl", parse_sycl_type);
}

fn parse_sycl_type(ctx: &Context, name: &str, body: &str) -> Option<Type> {
    let parts: Vec<&str> = split_top_level(body);
    match name {
        "id" | "range" | "item" | "nd_item" | "nd_range" | "group" => {
            let dim: u32 = body.trim().parse().ok()?;
            Some(match name {
                "id" => id_type(ctx, dim),
                "range" => range_type(ctx, dim),
                "item" => item_type(ctx, dim),
                "nd_item" => nd_item_type(ctx, dim),
                "nd_range" => nd_range_type(ctx, dim),
                _ => group_type(ctx, dim),
            })
        }
        "accessor" => {
            if parts.len() != 4 {
                return None;
            }
            let elem = parse_type_str(ctx, parts[0].trim()).ok()?;
            let dim: u32 = parts[1].trim().parse().ok()?;
            let mode = AccessMode::parse(parts[2].trim())?;
            let target = Target::parse(parts[3].trim())?;
            Some(accessor_type(ctx, elem, dim, mode, target))
        }
        "buffer" => {
            if parts.len() != 2 {
                return None;
            }
            let elem = parse_type_str(ctx, parts[0].trim()).ok()?;
            let dim: u32 = parts[1].trim().parse().ok()?;
            Some(buffer_type(ctx, elem, dim))
        }
        _ => None,
    }
}

/// Split `body` on commas that are not nested inside `<...>`.
fn split_top_level(body: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in body.char_indices() {
        match c {
            '<' => depth += 1,
            '>' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < body.len() || !body.is_empty() {
        parts.push(&body[start..]);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        let c = Context::new();
        sycl_mlir_dialects::register_all(&c);
        crate::register(&c);
        c
    }

    #[test]
    fn interning_and_display() {
        let c = ctx();
        let a = nd_item_type(&c, 2);
        let b = nd_item_type(&c, 2);
        assert_eq!(a, b);
        assert_ne!(a, nd_item_type(&c, 3));
        assert_eq!(a.to_string(), "!sycl.nd_item<2>");
        let acc = accessor_type(&c, c.f32_type(), 3, AccessMode::ReadWrite, Target::Global);
        assert_eq!(
            acc.to_string(),
            "!sycl.accessor<f32, 3, read_write, global>"
        );
        assert_eq!(sycl_dim(&acc), Some(3));
        assert_eq!(accessor_info(&acc).unwrap().mode, AccessMode::ReadWrite);
    }

    #[test]
    fn textual_roundtrip() {
        let c = ctx();
        for text in [
            "!sycl.id<1>",
            "!sycl.range<3>",
            "!sycl.item<2>",
            "!sycl.nd_item<2>",
            "!sycl.nd_range<2>",
            "!sycl.group<2>",
            "!sycl.accessor<f64, 2, read, global>",
            "!sycl.accessor<i32, 1, write, local>",
            "!sycl.buffer<f32, 2>",
        ] {
            let ty = parse_type_str(&c, text).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert_eq!(ty.to_string(), text);
        }
    }

    #[test]
    fn modes_and_targets() {
        assert!(AccessMode::Read.can_read());
        assert!(!AccessMode::Read.can_write());
        assert!(AccessMode::Write.can_write());
        assert!(!AccessMode::Write.can_read());
        assert!(AccessMode::ReadWrite.can_read() && AccessMode::ReadWrite.can_write());
        assert_eq!(Target::parse("local"), Some(Target::Local));
        assert_eq!(AccessMode::parse("nope"), None);
    }

    #[test]
    fn distinct_sycl_types_do_not_collide() {
        let c = ctx();
        // Same dim, different class: must be distinct types.
        assert_ne!(id_type(&c, 2), range_type(&c, 2));
        assert_ne!(item_type(&c, 2), nd_item_type(&c, 2));
        let acc_r = accessor_type(&c, c.f32_type(), 1, AccessMode::Read, Target::Global);
        let acc_w = accessor_type(&c, c.f32_type(), 1, AccessMode::Write, Target::Global);
        assert_ne!(acc_r, acc_w);
    }
}
