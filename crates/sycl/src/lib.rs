//! # sycl-mlir-sycl — the SYCL dialect
//!
//! The central contribution of the paper (§III–§IV): MLIR types and
//! operations capturing the SYCL programming model, on the device *and* the
//! host side.
//!
//! * [`types`] — `!sycl.id<n>`, `!sycl.range<n>`, `!sycl.item<n>`,
//!   `!sycl.nd_item<n>`, `!sycl.nd_range<n>`, `!sycl.group<n>`,
//!   `!sycl.accessor<elem, n, mode, target>` and `!sycl.buffer<elem, n>`.
//! * [`device`] — work-item queries (`sycl.nd_item.get_global_id`, …),
//!   accessor subscripting, object constructors and the work-group barrier.
//!   Query ops carry the `NON_UNIFORM_SOURCE` trait consumed by the
//!   uniformity analysis (§V-C) and declare memory effects consumed by the
//!   reaching-definition analysis (§V-B).
//! * [`host`] — `sycl.host.constructor` and `sycl.host.schedule_kernel`,
//!   the targets of the host raising pass (§VII-A, Listing 9).
//!
//! One deliberate deviation from the paper's listings: SYCL objects (`id`,
//! `range`, …) are modelled as *SSA values* rather than in-memory objects
//! behind `memref`s. Polygeist emits the memref form because C++ objects live
//! in allocas; the value form carries identical information with simpler
//! use-def chains. DESIGN.md records this substitution.
//!
//! ```
//! use sycl_mlir_ir::Context;
//! let ctx = Context::new();
//! sycl_mlir_dialects::register_all(&ctx);
//! sycl_mlir_sycl::register(&ctx);
//! let acc = sycl_mlir_sycl::types::accessor_type(
//!     &ctx,
//!     ctx.f32_type(),
//!     2,
//!     sycl_mlir_sycl::types::AccessMode::Read,
//!     sycl_mlir_sycl::types::Target::Global,
//! );
//! assert_eq!(acc.to_string(), "!sycl.accessor<f32, 2, read, global>");
//! ```

pub mod device;
pub mod host;
pub mod types;

use sycl_mlir_ir::Context;

/// The SYCL dialect registration handle.
pub struct SyclDialect;

impl sycl_mlir_ir::Dialect for SyclDialect {
    fn name(&self) -> &'static str {
        "sycl"
    }

    fn register(&self, ctx: &Context) {
        types::register_type_parser(ctx);
        device::register_ops(ctx);
        host::register_ops(ctx);
    }
}

/// Register the SYCL dialect (idempotent).
pub fn register(ctx: &Context) {
    ctx.register_dialect(&SyclDialect);
}

/// Attribute key marking a `func.func` as a SYCL kernel entry point.
pub const KERNEL_ATTR: &str = "sycl.kernel";

/// Attribute key on kernel functions: dense `[gx, gy, gz]` global range
/// propagated from the host (§VII-B "constant ND-range propagation").
pub const KERNEL_GLOBAL_RANGE_ATTR: &str = "sycl.global_range";

/// Attribute key on kernel functions: dense `[lx, ly, lz]` work-group size
/// propagated from the host.
pub const KERNEL_LOCAL_RANGE_ATTR: &str = "sycl.local_range";

/// Attribute key on kernel functions: dense list of argument indices the
/// SYCL Dead Argument Elimination pass proved unused (§VII-B); the runtime
/// skips passing them.
pub const KERNEL_DEAD_ARGS_ATTR: &str = "sycl.dead_args";

/// Symbol name of the nested device module inside a joint host/device
/// module (Fig. 1's dashed path).
pub const DEVICE_MODULE_SYM: &str = "device";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let ctx = Context::new();
        sycl_mlir_dialects::register_all(&ctx);
        register(&ctx);
        register(&ctx);
        assert!(ctx.lookup_op("sycl.nd_item.get_global_id").is_some());
        assert!(ctx.lookup_op("sycl.host.schedule_kernel").is_some());
    }
}
