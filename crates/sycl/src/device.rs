//! Device-side SYCL operations (§III): work-item position queries, accessor
//! subscripting, SYCL object constructors, local memory and the work-group
//! barrier.
//!
//! Traits carried by these ops drive the paper's analyses:
//!
//! * `NON_UNIFORM_SOURCE` on the id queries feeds the uniformity analysis
//!   (§V-C, Listing 2);
//! * memory effects on `sycl.accessor.subscript`-derived loads feed the
//!   reaching-definition analysis (§V-B);
//! * `BARRIER` on `sycl.group.barrier` is what makes divergence a legality
//!   concern for loop internalization (§VI-C).

use crate::types::{self, AccessorType};
use sycl_mlir_ir::dialect::{traits, Effect, OpInfo};
use sycl_mlir_ir::{Attribute, Builder, Context, Module, OpId, Type, ValueId};

pub(crate) fn register_ops(ctx: &Context) {
    // Object constructors (pure value producers).
    for name in [
        "sycl.id.constructor",
        "sycl.range.constructor",
        "sycl.nd_range.constructor",
    ] {
        ctx.register_op(
            OpInfo::new(name)
                .with_traits(traits::PURE)
                .with_verify(verify_constructor),
        );
    }

    // Uniform queries.
    for name in [
        "sycl.id.get",
        "sycl.range.get",
        "sycl.range.size",
        "sycl.item.get_range",
        "sycl.nd_item.get_global_range",
        "sycl.nd_item.get_local_range",
        "sycl.nd_item.get_group_id",
        "sycl.nd_item.get_group_range",
        "sycl.group.get_id",
        "sycl.group.get_local_range",
        "sycl.accessor.get_range",
    ] {
        ctx.register_op(
            OpInfo::new(name)
                .with_traits(traits::PURE)
                .with_verify(verify_query),
        );
    }

    // Non-uniform queries: the sources of divergence (§V-C).
    for name in [
        "sycl.item.get_id",
        "sycl.item.get_linear_id",
        "sycl.nd_item.get_global_id",
        "sycl.nd_item.get_local_id",
        "sycl.nd_item.get_global_linear_id",
        "sycl.nd_item.get_local_linear_id",
    ] {
        ctx.register_op(
            OpInfo::new(name)
                .with_traits(traits::PURE | traits::NON_UNIFORM_SOURCE)
                .with_verify(verify_query),
        );
    }

    // get_group produces a (uniform) group handle.
    ctx.register_op(OpInfo::new("sycl.nd_item.get_group").with_traits(traits::PURE));

    // Accessor subscript: pure view computation; the memory effect lives on
    // the load/store that consumes the resulting memref.
    ctx.register_op(
        OpInfo::new("sycl.accessor.subscript")
            .with_traits(traits::PURE)
            .with_verify(verify_subscript),
    );

    // Identity of the memory behind an accessor (buffer id + byte offset,
    // as an index). Used by LICM's runtime no-alias loop versioning
    // (§VI-A): `base(a) != base(b)` proves disjointness of non-ranged
    // accessors at run time.
    ctx.register_op(
        OpInfo::new("sycl.accessor.base")
            .with_traits(traits::PURE)
            .with_verify(verify_query),
    );

    // Work-group local memory allocation (inserted by loop internalization).
    ctx.register_op(
        OpInfo::new("sycl.local.alloca")
            .with_verify(verify_local_alloca)
            .with_effects(|m, op| vec![Effect::alloc(m.op_result(op, 0))]),
    );

    // Work-group barrier: synchronizes; must not be hoisted or duplicated,
    // so it reads and writes unknown memory.
    ctx.register_op(
        OpInfo::new("sycl.group.barrier")
            .with_traits(traits::BARRIER)
            .with_effects(|_m, _op| vec![Effect::read_unknown(), Effect::write_unknown()]),
    );
}

fn verify_constructor(m: &Module, op: OpId) -> Result<(), String> {
    if m.op_results(op).len() != 1 {
        return Err("must produce one result".into());
    }
    let ty = m.value_type(m.op_result(op, 0));
    let dim = types::sycl_dim(&ty).ok_or("result must be a SYCL type")?;
    let name = m.op_name_str(op);
    if &*name == "sycl.nd_range.constructor" {
        if m.op_operands(op).len() != 2 {
            return Err("nd_range takes (global range, local range)".into());
        }
        return Ok(());
    }
    if m.op_operands(op).len() != dim as usize {
        return Err(format!(
            "{}-dimensional value constructed from {} operands",
            dim,
            m.op_operands(op).len()
        ));
    }
    for (i, &v) in m.op_operands(op).iter().enumerate() {
        if !m.value_type(v).is_int_or_index() {
            return Err(format!("operand #{i} must be integer/index"));
        }
    }
    Ok(())
}

fn verify_query(m: &Module, op: OpId) -> Result<(), String> {
    let operands = m.op_operands(op);
    if operands.is_empty() {
        return Err("expects the queried SYCL object as first operand".into());
    }
    let ty = m.value_type(operands[0]);
    if types::sycl_dim(&ty).is_none() {
        return Err(format!("first operand must be a SYCL object, got {ty}"));
    }
    if m.op_results(op).len() != 1 {
        return Err("must produce one result".into());
    }
    Ok(())
}

fn verify_subscript(m: &Module, op: OpId) -> Result<(), String> {
    let operands = m.op_operands(op);
    if operands.len() != 2 || m.op_results(op).len() != 1 {
        return Err("expects (accessor, id) -> memref".into());
    }
    let acc_ty = m.value_type(operands[0]);
    let acc = types::accessor_info(&acc_ty).ok_or("first operand must be an accessor")?;
    let id_ty = m.value_type(operands[1]);
    let id = id_ty
        .dialect_type::<types::IdType>()
        .ok_or("second operand must be a !sycl.id")?;
    if id.dim != acc.dim {
        return Err(format!(
            "id dimensionality {} does not match accessor {}",
            id.dim, acc.dim
        ));
    }
    let res = m.value_type(m.op_result(op, 0));
    match res.memref_elem() {
        Some(e) if e == acc.elem => Ok(()),
        _ => Err(format!("result must be memref of {}, got {res}", acc.elem)),
    }
}

fn verify_local_alloca(m: &Module, op: OpId) -> Result<(), String> {
    if m.op_results(op).len() != 1 {
        return Err("must produce one memref result".into());
    }
    let ty = m.value_type(m.op_result(op, 0));
    let shape = ty.memref_shape().ok_or("result must be a memref")?;
    if shape.iter().any(|&d| d < 0) {
        return Err("local memory requires a static shape".into());
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Builder helpers
// ----------------------------------------------------------------------

fn dim_const(b: &mut Builder<'_>, dim: u32) -> ValueId {
    let i32t = b.ctx().i32_type();
    b.build_value(
        "arith.constant",
        &[],
        i32t,
        vec![("value".into(), Attribute::Int(dim as i64))],
    )
}

fn query(b: &mut Builder<'_>, name: &str, obj: ValueId, dim: u32) -> ValueId {
    let d = dim_const(b, dim);
    let index = b.ctx().index_type();
    b.build_value(name, &[obj, d], index, vec![])
}

/// `item.get_id(dim)` — non-uniform global position.
pub fn item_get_id(b: &mut Builder<'_>, item: ValueId, dim: u32) -> ValueId {
    query(b, "sycl.item.get_id", item, dim)
}

/// `item.get_range(dim)`.
pub fn item_get_range(b: &mut Builder<'_>, item: ValueId, dim: u32) -> ValueId {
    query(b, "sycl.item.get_range", item, dim)
}

/// `nd_item.get_global_id(dim)` — the canonical non-uniform source
/// (Listing 2 of the paper).
pub fn global_id(b: &mut Builder<'_>, nd_item: ValueId, dim: u32) -> ValueId {
    query(b, "sycl.nd_item.get_global_id", nd_item, dim)
}

/// `nd_item.get_local_id(dim)`.
pub fn local_id(b: &mut Builder<'_>, nd_item: ValueId, dim: u32) -> ValueId {
    query(b, "sycl.nd_item.get_local_id", nd_item, dim)
}

/// `nd_item.get_group_id(dim)` (uniform within a work-group).
pub fn group_id(b: &mut Builder<'_>, nd_item: ValueId, dim: u32) -> ValueId {
    query(b, "sycl.nd_item.get_group_id", nd_item, dim)
}

/// `nd_item.get_global_range(dim)`.
pub fn global_range(b: &mut Builder<'_>, nd_item: ValueId, dim: u32) -> ValueId {
    query(b, "sycl.nd_item.get_global_range", nd_item, dim)
}

/// `nd_item.get_local_range(dim)` — the work-group size.
pub fn local_range(b: &mut Builder<'_>, nd_item: ValueId, dim: u32) -> ValueId {
    query(b, "sycl.nd_item.get_local_range", nd_item, dim)
}

/// `nd_item.get_group()` — group handle for barriers.
pub fn get_group(b: &mut Builder<'_>, nd_item: ValueId) -> ValueId {
    let ty = b.module().value_type(nd_item);
    let dim = types::sycl_dim(&ty).expect("nd_item operand");
    let ctx = b.ctx();
    let group = types::group_type(&ctx, dim);
    b.build_value("sycl.nd_item.get_group", &[nd_item], group, vec![])
}

/// `accessor.get_range(dim)`.
pub fn accessor_get_range(b: &mut Builder<'_>, acc: ValueId, dim: u32) -> ValueId {
    query(b, "sycl.accessor.get_range", acc, dim)
}

/// Runtime identity of the memory behind an accessor (see
/// `sycl.accessor.base`).
pub fn accessor_base(b: &mut Builder<'_>, acc: ValueId) -> ValueId {
    let index = b.ctx().index_type();
    b.build_value("sycl.accessor.base", &[acc], index, vec![])
}

/// Construct a `!sycl.id<n>` from `n` indices.
pub fn make_id(b: &mut Builder<'_>, indices: &[ValueId]) -> ValueId {
    let ctx = b.ctx();
    let ty = types::id_type(&ctx, indices.len() as u32);
    b.build_value("sycl.id.constructor", indices, ty, vec![])
}

/// Construct a `!sycl.range<n>` from `n` extents.
pub fn make_range(b: &mut Builder<'_>, extents: &[ValueId]) -> ValueId {
    let ctx = b.ctx();
    let ty = types::range_type(&ctx, extents.len() as u32);
    b.build_value("sycl.range.constructor", extents, ty, vec![])
}

/// `accessor[id]` — subscript an accessor, yielding a rank-1 dynamic memref
/// view positioned at the id (Listing 3 of the paper).
pub fn subscript(b: &mut Builder<'_>, acc: ValueId, id: ValueId) -> ValueId {
    let acc_ty = b.module().value_type(acc);
    let elem = types::accessor_info(&acc_ty)
        .expect("accessor operand")
        .elem
        .clone();
    let ctx = b.ctx();
    let view = ctx.memref_type(elem, &[-1]);
    b.build_value("sycl.accessor.subscript", &[acc, id], view, vec![])
}

/// Convenience: subscript + `affine.load` in one call.
pub fn load_via_id(b: &mut Builder<'_>, acc: ValueId, indices: &[ValueId]) -> ValueId {
    let id = make_id(b, indices);
    let view = subscript(b, acc, id);
    let zero = sycl_mlir_dialects::arith::constant_index(b, 0);
    sycl_mlir_dialects::affine::load(b, view, &[zero])
}

/// Convenience: subscript + `affine.store` in one call.
pub fn store_via_id(b: &mut Builder<'_>, value: ValueId, acc: ValueId, indices: &[ValueId]) {
    let id = make_id(b, indices);
    let view = subscript(b, acc, id);
    let zero = sycl_mlir_dialects::arith::constant_index(b, 0);
    sycl_mlir_dialects::affine::store(b, value, view, &[zero]);
}

/// Allocate work-group local memory of the given static shape.
pub fn local_alloca(b: &mut Builder<'_>, elem: Type, shape: &[i64]) -> ValueId {
    let ty = b.ctx().memref_type(elem, shape);
    b.build_value("sycl.local.alloca", &[], ty, vec![])
}

/// Insert a work-group barrier.
pub fn group_barrier(b: &mut Builder<'_>, group: ValueId) -> OpId {
    b.build("sycl.group.barrier", &[group], &[], vec![])
}

/// `true` if `func_op` is a SYCL kernel entry point.
pub fn is_kernel(m: &Module, func_op: OpId) -> bool {
    m.attr(func_op, crate::KERNEL_ATTR).is_some()
}

/// Mark a function as a SYCL kernel entry point.
pub fn mark_kernel(m: &mut Module, func_op: OpId) {
    m.set_attr(func_op, crate::KERNEL_ATTR, Attribute::Unit);
}

/// The accessor type of a kernel argument, if it is an accessor.
pub fn arg_accessor_info(m: &Module, func_op: OpId, arg: usize) -> Option<AccessorType> {
    let block = m.op_region_block(func_op, 0);
    let v = m.block_arg(block, arg);
    types::accessor_info(&m.value_type(v)).cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{accessor_type, nd_item_type, AccessMode, Target};
    use sycl_mlir_dialects::func::{build_func, build_return};
    use sycl_mlir_ir::{print_module, verify, Module};

    fn ctx() -> Context {
        let c = Context::new();
        sycl_mlir_dialects::register_all(&c);
        crate::register(&c);
        c
    }

    /// Builds the essence of the paper's Listing 2 prologue: a global-id
    /// query and a comparison on it.
    #[test]
    fn global_id_query_builds() {
        let c = ctx();
        let mut m = Module::new(&c);
        let nd2 = nd_item_type(&c, 2);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "k", &[nd2], &[]);
        mark_kernel(&mut m, func);
        let item = m.block_arg(entry, 0);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let gid = global_id(&mut b, item, 0);
            let zero = sycl_mlir_dialects::arith::constant_index(&mut b, 0);
            sycl_mlir_dialects::arith::cmpi(&mut b, "sgt", gid, zero);
            build_return(&mut b, &[]);
        }
        assert!(verify(&m).is_ok(), "{}\n{:?}", print_module(&m), verify(&m));
        assert!(is_kernel(&m, func));
        let text = print_module(&m);
        assert!(text.contains("sycl.nd_item.get_global_id"), "{text}");
    }

    #[test]
    fn subscript_checks_dimensions() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc2 = accessor_type(&c, c.f32_type(), 2, AccessMode::Read, Target::Global);
        let top = m.top();
        let (_f, entry) = build_func(&mut m, top, "k", &[acc2], &[]);
        let acc = m.block_arg(entry, 0);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let i = sycl_mlir_dialects::arith::constant_index(&mut b, 1);
            // 1-d id against 2-d accessor: must be rejected.
            let id1 = make_id(&mut b, &[i]);
            let f32t = b.ctx().f32_type();
            let view = b.ctx().memref_type(f32t, &[-1]);
            b.build("sycl.accessor.subscript", &[acc, id1], &[view], vec![]);
            build_return(&mut b, &[]);
        }
        let err = verify(&m).unwrap_err();
        assert!(err.to_string().contains("does not match accessor"), "{err}");
    }

    #[test]
    fn load_store_via_id_roundtrip() {
        let c = ctx();
        let mut m = Module::new(&c);
        let acc1 = accessor_type(&c, c.f64_type(), 1, AccessMode::ReadWrite, Target::Global);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        let (func, entry) = build_func(&mut m, top, "copy", &[acc1, nd1], &[]);
        mark_kernel(&mut m, func);
        let acc = m.block_arg(entry, 0);
        let item = m.block_arg(entry, 1);
        {
            let mut b = Builder::at_end(&mut m, entry);
            let gid = global_id(&mut b, item, 0);
            let v = load_via_id(&mut b, acc, &[gid]);
            store_via_id(&mut b, v, acc, &[gid]);
            build_return(&mut b, &[]);
        }
        assert!(verify(&m).is_ok(), "{}\n{:?}", print_module(&m), verify(&m));
    }

    #[test]
    fn barrier_has_blocking_effects() {
        let c = ctx();
        let mut m = Module::new(&c);
        let nd1 = nd_item_type(&c, 1);
        let top = m.top();
        let (_f, entry) = build_func(&mut m, top, "k", &[nd1], &[]);
        let item = m.block_arg(entry, 0);
        let barrier = {
            let mut b = Builder::at_end(&mut m, entry);
            let g = get_group(&mut b, item);
            let op = group_barrier(&mut b, g);
            build_return(&mut b, &[]);
            op
        };
        let effects = sycl_mlir_ir::dialect::memory_effects(&m, barrier).unwrap();
        assert_eq!(effects.len(), 2);
        assert!(!sycl_mlir_ir::dialect::is_memory_effect_free(&m, barrier));
        assert!(m.op_info(barrier).has_trait(traits::BARRIER));
    }

    #[test]
    fn local_alloca_requires_static_shape() {
        let c = ctx();
        let mut m = Module::new(&c);
        let block = m.top_block();
        {
            let mut b = Builder::at_end(&mut m, block);
            let f32t = b.ctx().f32_type();
            let bad = b.ctx().memref_type(f32t, &[-1, 16]);
            b.build("sycl.local.alloca", &[], &[bad], vec![]);
        }
        assert!(verify(&m).is_err());
    }
}
