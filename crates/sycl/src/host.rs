//! Host-side SYCL operations (§VII-A, Listing 9): the raised representation
//! of command-group functions.
//!
//! Before raising, a CGF is `llvm.call`s into the runtime; after raising it
//! contains:
//!
//! * `sycl.host.constructor(%dst, args…) {type = !sycl.buffer<…>}` — the
//!   construction of a buffer / accessor / range / id object at `%dst`;
//! * `sycl.host.schedule_kernel(%handler, %range…, args…)
//!   {kernel = @device::@K}` — the kernel submission with its invocation
//!   context.

use sycl_mlir_ir::dialect::{Effect, OpInfo};
use sycl_mlir_ir::{Attribute, Builder, Context, Module, OpId, Type, ValueId};

/// Value of the `form` attribute on `sycl.host.schedule_kernel` for a
/// `parallel_for(range)` submission (runtime picks the work-group size).
pub const FORM_RANGE: &str = "range";

/// Value of the `form` attribute for a `parallel_for(nd_range)` submission.
pub const FORM_ND_RANGE: &str = "nd_range";

pub(crate) fn register_ops(ctx: &Context) {
    ctx.register_op(
        OpInfo::new("sycl.host.constructor")
            .with_verify(verify_constructor)
            .with_effects(|m, op| {
                let mut effects = vec![Effect::write(m.op_operand(op, 0))];
                for &v in &m.op_operands(op)[1..] {
                    effects.push(Effect::read(v));
                }
                effects
            }),
    );
    ctx.register_op(
        OpInfo::new("sycl.host.schedule_kernel")
            .with_verify(verify_schedule)
            .with_effects(|m, op| {
                // Reads every operand; writes unknown memory (the device).
                let mut effects: Vec<Effect> =
                    m.op_operands(op).iter().map(|&v| Effect::read(v)).collect();
                effects.push(Effect::write_unknown());
                effects
            }),
    );
}

fn verify_constructor(m: &Module, op: OpId) -> Result<(), String> {
    if m.op_operands(op).is_empty() {
        return Err("expects the destination pointer as first operand".into());
    }
    m.attr(op, "type")
        .and_then(|a| a.as_type())
        .map(|_| ())
        .ok_or_else(|| "missing `type` attribute naming the constructed SYCL type".into())
}

fn verify_schedule(m: &Module, op: OpId) -> Result<(), String> {
    let path = m
        .attr(op, "kernel")
        .and_then(|a| a.as_symbol_ref())
        .ok_or("missing `kernel` symbol attribute")?;
    if path.is_empty() {
        return Err("empty kernel symbol".into());
    }
    let form = m
        .attr(op, "form")
        .and_then(|a| a.as_str())
        .ok_or("missing `form` attribute")?;
    let min_operands = match form {
        FORM_RANGE => 2,    // handler, global range
        FORM_ND_RANGE => 3, // handler, global range, local range
        other => return Err(format!("unknown form `{other}`")),
    };
    if m.op_operands(op).len() < min_operands {
        return Err(format!(
            "form `{form}` requires at least {min_operands} operands, got {}",
            m.op_operands(op).len()
        ));
    }
    Ok(())
}

/// Build a `sycl.host.constructor` writing an object of SYCL type `ty` to
/// `dst` from `args`.
pub fn constructor(b: &mut Builder<'_>, dst: ValueId, args: &[ValueId], ty: Type) -> OpId {
    let mut operands = vec![dst];
    operands.extend_from_slice(args);
    b.build(
        "sycl.host.constructor",
        &operands,
        &[],
        vec![("type".into(), Attribute::Type(ty))],
    )
}

/// Build a `sycl.host.schedule_kernel` for a `parallel_for(nd_range)`.
/// `kernel_path` is the nested symbol, e.g. `["device", "gemm"]`.
pub fn schedule_nd_range(
    b: &mut Builder<'_>,
    handler: ValueId,
    global_range: ValueId,
    local_range: ValueId,
    args: &[ValueId],
    kernel_path: &[&str],
) -> OpId {
    let mut operands = vec![handler, global_range, local_range];
    operands.extend_from_slice(args);
    b.build(
        "sycl.host.schedule_kernel",
        &operands,
        &[],
        vec![
            (
                "kernel".into(),
                Attribute::SymbolRef(kernel_path.iter().map(|s| s.to_string()).collect()),
            ),
            ("form".into(), Attribute::Str(FORM_ND_RANGE.into())),
        ],
    )
}

/// Build a `sycl.host.schedule_kernel` for a `parallel_for(range)`.
pub fn schedule_range(
    b: &mut Builder<'_>,
    handler: ValueId,
    global_range: ValueId,
    args: &[ValueId],
    kernel_path: &[&str],
) -> OpId {
    let mut operands = vec![handler, global_range];
    operands.extend_from_slice(args);
    b.build(
        "sycl.host.schedule_kernel",
        &operands,
        &[],
        vec![
            (
                "kernel".into(),
                Attribute::SymbolRef(kernel_path.iter().map(|s| s.to_string()).collect()),
            ),
            ("form".into(), Attribute::Str(FORM_RANGE.into())),
        ],
    )
}

/// Accessors for a `sycl.host.schedule_kernel` op.
pub mod schedule_info {
    use super::*;

    pub fn kernel_path(m: &Module, op: OpId) -> Option<Vec<String>> {
        Some(m.attr(op, "kernel")?.as_symbol_ref()?.to_vec())
    }

    pub fn form(m: &Module, op: OpId) -> Option<String> {
        Some(m.attr(op, "form")?.as_str()?.to_string())
    }

    pub fn handler(m: &Module, op: OpId) -> ValueId {
        m.op_operand(op, 0)
    }

    pub fn global_range(m: &Module, op: OpId) -> ValueId {
        m.op_operand(op, 1)
    }

    pub fn local_range(m: &Module, op: OpId) -> Option<ValueId> {
        if form(m, op).as_deref() == Some(FORM_ND_RANGE) {
            Some(m.op_operand(op, 2))
        } else {
            None
        }
    }

    /// The kernel arguments (everything after handler + range operands).
    pub fn kernel_args(m: &Module, op: OpId) -> Vec<ValueId> {
        let skip = if form(m, op).as_deref() == Some(FORM_ND_RANGE) {
            3
        } else {
            2
        };
        m.op_operands(op)[skip..].to_vec()
    }

    /// Resolve the scheduled kernel function inside the joint module.
    pub fn resolve_kernel(m: &Module, op: OpId) -> Option<OpId> {
        let path = kernel_path(m, op)?;
        m.lookup_symbol_path(m.top(), &path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{buffer_type, range_type};
    use sycl_mlir_dialects::func::{build_func, build_return};
    use sycl_mlir_dialects::llvm;
    use sycl_mlir_ir::{verify, Module};

    fn ctx() -> Context {
        let c = Context::new();
        sycl_mlir_dialects::register_all(&c);
        crate::register(&c);
        c
    }

    /// Builds the shape of the paper's Listing 9 and checks the accessors.
    #[test]
    fn listing9_shape() {
        let c = ctx();
        let mut m = Module::new(&c);
        let ptr = c.ptr_type();
        let top = m.top();
        let (_f, entry) = build_func(&mut m, top, "cgf", &[ptr.clone(), ptr.clone(), ptr], &[]);
        let cgh = m.block_arg(entry, 0);
        let buf_a = m.block_arg(entry, 1);
        let schedule = {
            let mut b = Builder::at_end(&mut m, entry);
            let i64t = b.ctx().i64_type();
            let f32t = b.ctx().f32_type();
            let range_ty = range_type(&b.ctx(), 1);
            let buffer_ty = buffer_type(&b.ctx(), f32t, 1);
            let range = llvm::alloca(&mut b, "sycl::range");
            let size = sycl_mlir_dialects::arith::constant_int(&mut b, 1024, i64t);
            constructor(&mut b, range, &[size], range_ty);
            let acc = llvm::alloca(&mut b, "sycl::accessor");
            constructor(&mut b, acc, &[buf_a, cgh, range], buffer_ty);
            let op = schedule_range(&mut b, cgh, range, &[acc], &["device", "K"]);
            build_return(&mut b, &[]);
            op
        };
        assert!(verify(&m).is_ok(), "{:?}", verify(&m));
        assert_eq!(
            schedule_info::kernel_path(&m, schedule),
            Some(vec!["device".to_string(), "K".to_string()])
        );
        assert_eq!(
            schedule_info::form(&m, schedule).as_deref(),
            Some(FORM_RANGE)
        );
        assert_eq!(schedule_info::kernel_args(&m, schedule).len(), 1);
        assert!(schedule_info::local_range(&m, schedule).is_none());
    }

    #[test]
    fn schedule_requires_kernel_attr() {
        let c = ctx();
        let mut m = Module::new(&c);
        let block = m.top_block();
        {
            let mut b = Builder::at_end(&mut m, block);
            let h = llvm::alloca(&mut b, "handler");
            let r = llvm::alloca(&mut b, "range");
            b.build("sycl.host.schedule_kernel", &[h, r], &[], vec![]);
        }
        let err = verify(&m).unwrap_err();
        assert!(err.to_string().contains("kernel"), "{err}");
    }

    #[test]
    fn constructor_requires_type_attr() {
        let c = ctx();
        let mut m = Module::new(&c);
        let block = m.top_block();
        {
            let mut b = Builder::at_end(&mut m, block);
            let dst = llvm::alloca(&mut b, "obj");
            b.build("sycl.host.constructor", &[dst], &[], vec![]);
        }
        let err = verify(&m).unwrap_err();
        assert!(err.to_string().contains("type"), "{err}");
    }
}
